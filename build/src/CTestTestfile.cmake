# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("engine")
subdirs("udf")
subdirs("smpc")
subdirs("dp")
subdirs("federation")
subdirs("algorithms")
subdirs("etl")
subdirs("data")
subdirs("platform")
