file(REMOVE_RECURSE
  "libmip_platform.a"
)
