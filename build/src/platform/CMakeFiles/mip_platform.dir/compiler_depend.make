# Empty compiler generated dependencies file for mip_platform.
# This may be replaced when dependencies are built.
