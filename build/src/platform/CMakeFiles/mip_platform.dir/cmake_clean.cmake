file(REMOVE_RECURSE
  "CMakeFiles/mip_platform.dir/builtin_algorithms.cc.o"
  "CMakeFiles/mip_platform.dir/builtin_algorithms.cc.o.d"
  "CMakeFiles/mip_platform.dir/experiment.cc.o"
  "CMakeFiles/mip_platform.dir/experiment.cc.o.d"
  "libmip_platform.a"
  "libmip_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
