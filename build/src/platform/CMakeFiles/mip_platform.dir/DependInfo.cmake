
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/builtin_algorithms.cc" "src/platform/CMakeFiles/mip_platform.dir/builtin_algorithms.cc.o" "gcc" "src/platform/CMakeFiles/mip_platform.dir/builtin_algorithms.cc.o.d"
  "/root/repo/src/platform/experiment.cc" "src/platform/CMakeFiles/mip_platform.dir/experiment.cc.o" "gcc" "src/platform/CMakeFiles/mip_platform.dir/experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/mip_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/mip_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/smpc/CMakeFiles/mip_smpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/mip_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
