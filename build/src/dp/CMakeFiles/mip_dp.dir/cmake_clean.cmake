file(REMOVE_RECURSE
  "CMakeFiles/mip_dp.dir/mechanisms.cc.o"
  "CMakeFiles/mip_dp.dir/mechanisms.cc.o.d"
  "libmip_dp.a"
  "libmip_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
