# Empty compiler generated dependencies file for mip_dp.
# This may be replaced when dependencies are built.
