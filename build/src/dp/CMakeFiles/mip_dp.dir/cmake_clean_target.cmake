file(REMOVE_RECURSE
  "libmip_dp.a"
)
