file(REMOVE_RECURSE
  "CMakeFiles/mip_common.dir/logging.cc.o"
  "CMakeFiles/mip_common.dir/logging.cc.o.d"
  "CMakeFiles/mip_common.dir/parallel.cc.o"
  "CMakeFiles/mip_common.dir/parallel.cc.o.d"
  "CMakeFiles/mip_common.dir/rng.cc.o"
  "CMakeFiles/mip_common.dir/rng.cc.o.d"
  "CMakeFiles/mip_common.dir/status.cc.o"
  "CMakeFiles/mip_common.dir/status.cc.o.d"
  "CMakeFiles/mip_common.dir/string_util.cc.o"
  "CMakeFiles/mip_common.dir/string_util.cc.o.d"
  "libmip_common.a"
  "libmip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
