# Empty compiler generated dependencies file for mip_common.
# This may be replaced when dependencies are built.
