file(REMOVE_RECURSE
  "libmip_common.a"
)
