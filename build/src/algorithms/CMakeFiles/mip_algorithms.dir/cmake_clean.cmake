file(REMOVE_RECURSE
  "CMakeFiles/mip_algorithms.dir/anova.cc.o"
  "CMakeFiles/mip_algorithms.dir/anova.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/calibration_belt.cc.o"
  "CMakeFiles/mip_algorithms.dir/calibration_belt.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/common.cc.o"
  "CMakeFiles/mip_algorithms.dir/common.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/decision_tree.cc.o"
  "CMakeFiles/mip_algorithms.dir/decision_tree.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/descriptive.cc.o"
  "CMakeFiles/mip_algorithms.dir/descriptive.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/histogram.cc.o"
  "CMakeFiles/mip_algorithms.dir/histogram.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/kaplan_meier.cc.o"
  "CMakeFiles/mip_algorithms.dir/kaplan_meier.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/kmeans.cc.o"
  "CMakeFiles/mip_algorithms.dir/kmeans.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/linear_regression.cc.o"
  "CMakeFiles/mip_algorithms.dir/linear_regression.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/logistic_regression.cc.o"
  "CMakeFiles/mip_algorithms.dir/logistic_regression.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/naive_bayes.cc.o"
  "CMakeFiles/mip_algorithms.dir/naive_bayes.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/pca.cc.o"
  "CMakeFiles/mip_algorithms.dir/pca.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/pearson.cc.o"
  "CMakeFiles/mip_algorithms.dir/pearson.cc.o.d"
  "CMakeFiles/mip_algorithms.dir/ttest.cc.o"
  "CMakeFiles/mip_algorithms.dir/ttest.cc.o.d"
  "libmip_algorithms.a"
  "libmip_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
