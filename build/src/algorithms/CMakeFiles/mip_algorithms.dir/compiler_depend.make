# Empty compiler generated dependencies file for mip_algorithms.
# This may be replaced when dependencies are built.
