
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/anova.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/anova.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/anova.cc.o.d"
  "/root/repo/src/algorithms/calibration_belt.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/calibration_belt.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/calibration_belt.cc.o.d"
  "/root/repo/src/algorithms/common.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/common.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/common.cc.o.d"
  "/root/repo/src/algorithms/decision_tree.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/decision_tree.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/decision_tree.cc.o.d"
  "/root/repo/src/algorithms/descriptive.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/descriptive.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/descriptive.cc.o.d"
  "/root/repo/src/algorithms/histogram.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/histogram.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/histogram.cc.o.d"
  "/root/repo/src/algorithms/kaplan_meier.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/kaplan_meier.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/kaplan_meier.cc.o.d"
  "/root/repo/src/algorithms/kmeans.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/kmeans.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/kmeans.cc.o.d"
  "/root/repo/src/algorithms/linear_regression.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/linear_regression.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/linear_regression.cc.o.d"
  "/root/repo/src/algorithms/logistic_regression.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/logistic_regression.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/logistic_regression.cc.o.d"
  "/root/repo/src/algorithms/naive_bayes.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/naive_bayes.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/naive_bayes.cc.o.d"
  "/root/repo/src/algorithms/pca.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/pca.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/pca.cc.o.d"
  "/root/repo/src/algorithms/pearson.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/pearson.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/pearson.cc.o.d"
  "/root/repo/src/algorithms/ttest.cc" "src/algorithms/CMakeFiles/mip_algorithms.dir/ttest.cc.o" "gcc" "src/algorithms/CMakeFiles/mip_algorithms.dir/ttest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/mip_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/smpc/CMakeFiles/mip_smpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/mip_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
