file(REMOVE_RECURSE
  "libmip_algorithms.a"
)
