file(REMOVE_RECURSE
  "libmip_etl.a"
)
