file(REMOVE_RECURSE
  "CMakeFiles/mip_etl.dir/cde.cc.o"
  "CMakeFiles/mip_etl.dir/cde.cc.o.d"
  "CMakeFiles/mip_etl.dir/csv.cc.o"
  "CMakeFiles/mip_etl.dir/csv.cc.o.d"
  "libmip_etl.a"
  "libmip_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
