# Empty compiler generated dependencies file for mip_etl.
# This may be replaced when dependencies are built.
