file(REMOVE_RECURSE
  "CMakeFiles/mip_federation.dir/bus.cc.o"
  "CMakeFiles/mip_federation.dir/bus.cc.o.d"
  "CMakeFiles/mip_federation.dir/master.cc.o"
  "CMakeFiles/mip_federation.dir/master.cc.o.d"
  "CMakeFiles/mip_federation.dir/training.cc.o"
  "CMakeFiles/mip_federation.dir/training.cc.o.d"
  "CMakeFiles/mip_federation.dir/transfer.cc.o"
  "CMakeFiles/mip_federation.dir/transfer.cc.o.d"
  "CMakeFiles/mip_federation.dir/worker.cc.o"
  "CMakeFiles/mip_federation.dir/worker.cc.o.d"
  "libmip_federation.a"
  "libmip_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
