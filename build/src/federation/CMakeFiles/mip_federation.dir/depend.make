# Empty dependencies file for mip_federation.
# This may be replaced when dependencies are built.
