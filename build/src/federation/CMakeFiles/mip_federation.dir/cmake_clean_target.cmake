file(REMOVE_RECURSE
  "libmip_federation.a"
)
