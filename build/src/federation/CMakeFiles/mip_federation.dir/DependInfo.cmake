
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/bus.cc" "src/federation/CMakeFiles/mip_federation.dir/bus.cc.o" "gcc" "src/federation/CMakeFiles/mip_federation.dir/bus.cc.o.d"
  "/root/repo/src/federation/master.cc" "src/federation/CMakeFiles/mip_federation.dir/master.cc.o" "gcc" "src/federation/CMakeFiles/mip_federation.dir/master.cc.o.d"
  "/root/repo/src/federation/training.cc" "src/federation/CMakeFiles/mip_federation.dir/training.cc.o" "gcc" "src/federation/CMakeFiles/mip_federation.dir/training.cc.o.d"
  "/root/repo/src/federation/transfer.cc" "src/federation/CMakeFiles/mip_federation.dir/transfer.cc.o" "gcc" "src/federation/CMakeFiles/mip_federation.dir/transfer.cc.o.d"
  "/root/repo/src/federation/worker.cc" "src/federation/CMakeFiles/mip_federation.dir/worker.cc.o" "gcc" "src/federation/CMakeFiles/mip_federation.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/smpc/CMakeFiles/mip_smpc.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/mip_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
