file(REMOVE_RECURSE
  "libmip_engine.a"
)
