
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bitmap.cc" "src/engine/CMakeFiles/mip_engine.dir/bitmap.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/bitmap.cc.o.d"
  "/root/repo/src/engine/column.cc" "src/engine/CMakeFiles/mip_engine.dir/column.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/column.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/mip_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/mip_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/function_registry.cc" "src/engine/CMakeFiles/mip_engine.dir/function_registry.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/function_registry.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/mip_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/row_interpreter.cc" "src/engine/CMakeFiles/mip_engine.dir/row_interpreter.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/row_interpreter.cc.o.d"
  "/root/repo/src/engine/sql_lexer.cc" "src/engine/CMakeFiles/mip_engine.dir/sql_lexer.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/sql_lexer.cc.o.d"
  "/root/repo/src/engine/sql_parser.cc" "src/engine/CMakeFiles/mip_engine.dir/sql_parser.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/sql_parser.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/mip_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/type.cc" "src/engine/CMakeFiles/mip_engine.dir/type.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/type.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/mip_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/value.cc.o.d"
  "/root/repo/src/engine/vector_program.cc" "src/engine/CMakeFiles/mip_engine.dir/vector_program.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/vector_program.cc.o.d"
  "/root/repo/src/engine/vectorized.cc" "src/engine/CMakeFiles/mip_engine.dir/vectorized.cc.o" "gcc" "src/engine/CMakeFiles/mip_engine.dir/vectorized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
