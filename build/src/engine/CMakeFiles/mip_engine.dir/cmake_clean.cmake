file(REMOVE_RECURSE
  "CMakeFiles/mip_engine.dir/bitmap.cc.o"
  "CMakeFiles/mip_engine.dir/bitmap.cc.o.d"
  "CMakeFiles/mip_engine.dir/column.cc.o"
  "CMakeFiles/mip_engine.dir/column.cc.o.d"
  "CMakeFiles/mip_engine.dir/database.cc.o"
  "CMakeFiles/mip_engine.dir/database.cc.o.d"
  "CMakeFiles/mip_engine.dir/expr.cc.o"
  "CMakeFiles/mip_engine.dir/expr.cc.o.d"
  "CMakeFiles/mip_engine.dir/function_registry.cc.o"
  "CMakeFiles/mip_engine.dir/function_registry.cc.o.d"
  "CMakeFiles/mip_engine.dir/operators.cc.o"
  "CMakeFiles/mip_engine.dir/operators.cc.o.d"
  "CMakeFiles/mip_engine.dir/row_interpreter.cc.o"
  "CMakeFiles/mip_engine.dir/row_interpreter.cc.o.d"
  "CMakeFiles/mip_engine.dir/sql_lexer.cc.o"
  "CMakeFiles/mip_engine.dir/sql_lexer.cc.o.d"
  "CMakeFiles/mip_engine.dir/sql_parser.cc.o"
  "CMakeFiles/mip_engine.dir/sql_parser.cc.o.d"
  "CMakeFiles/mip_engine.dir/table.cc.o"
  "CMakeFiles/mip_engine.dir/table.cc.o.d"
  "CMakeFiles/mip_engine.dir/type.cc.o"
  "CMakeFiles/mip_engine.dir/type.cc.o.d"
  "CMakeFiles/mip_engine.dir/value.cc.o"
  "CMakeFiles/mip_engine.dir/value.cc.o.d"
  "CMakeFiles/mip_engine.dir/vector_program.cc.o"
  "CMakeFiles/mip_engine.dir/vector_program.cc.o.d"
  "CMakeFiles/mip_engine.dir/vectorized.cc.o"
  "CMakeFiles/mip_engine.dir/vectorized.cc.o.d"
  "libmip_engine.a"
  "libmip_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
