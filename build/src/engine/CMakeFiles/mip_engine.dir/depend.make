# Empty dependencies file for mip_engine.
# This may be replaced when dependencies are built.
