src/engine/CMakeFiles/mip_engine.dir/type.cc.o: \
 /root/repo/src/engine/type.cc /usr/include/stdc-predef.h \
 /root/repo/src/engine/type.h
