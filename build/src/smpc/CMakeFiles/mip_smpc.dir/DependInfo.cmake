
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smpc/cluster.cc" "src/smpc/CMakeFiles/mip_smpc.dir/cluster.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/cluster.cc.o.d"
  "/root/repo/src/smpc/field.cc" "src/smpc/CMakeFiles/mip_smpc.dir/field.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/field.cc.o.d"
  "/root/repo/src/smpc/fixed_point.cc" "src/smpc/CMakeFiles/mip_smpc.dir/fixed_point.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/fixed_point.cc.o.d"
  "/root/repo/src/smpc/noise.cc" "src/smpc/CMakeFiles/mip_smpc.dir/noise.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/noise.cc.o.d"
  "/root/repo/src/smpc/shamir.cc" "src/smpc/CMakeFiles/mip_smpc.dir/shamir.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/shamir.cc.o.d"
  "/root/repo/src/smpc/spdz.cc" "src/smpc/CMakeFiles/mip_smpc.dir/spdz.cc.o" "gcc" "src/smpc/CMakeFiles/mip_smpc.dir/spdz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
