# Empty dependencies file for mip_smpc.
# This may be replaced when dependencies are built.
