file(REMOVE_RECURSE
  "libmip_smpc.a"
)
