file(REMOVE_RECURSE
  "CMakeFiles/mip_smpc.dir/cluster.cc.o"
  "CMakeFiles/mip_smpc.dir/cluster.cc.o.d"
  "CMakeFiles/mip_smpc.dir/field.cc.o"
  "CMakeFiles/mip_smpc.dir/field.cc.o.d"
  "CMakeFiles/mip_smpc.dir/fixed_point.cc.o"
  "CMakeFiles/mip_smpc.dir/fixed_point.cc.o.d"
  "CMakeFiles/mip_smpc.dir/noise.cc.o"
  "CMakeFiles/mip_smpc.dir/noise.cc.o.d"
  "CMakeFiles/mip_smpc.dir/shamir.cc.o"
  "CMakeFiles/mip_smpc.dir/shamir.cc.o.d"
  "CMakeFiles/mip_smpc.dir/spdz.cc.o"
  "CMakeFiles/mip_smpc.dir/spdz.cc.o.d"
  "libmip_smpc.a"
  "libmip_smpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_smpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
