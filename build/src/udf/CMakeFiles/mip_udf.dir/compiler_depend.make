# Empty compiler generated dependencies file for mip_udf.
# This may be replaced when dependencies are built.
