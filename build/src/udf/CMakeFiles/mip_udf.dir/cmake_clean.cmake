file(REMOVE_RECURSE
  "CMakeFiles/mip_udf.dir/udf.cc.o"
  "CMakeFiles/mip_udf.dir/udf.cc.o.d"
  "libmip_udf.a"
  "libmip_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
