file(REMOVE_RECURSE
  "libmip_udf.a"
)
