file(REMOVE_RECURSE
  "CMakeFiles/mip_stats.dir/distributions.cc.o"
  "CMakeFiles/mip_stats.dir/distributions.cc.o.d"
  "CMakeFiles/mip_stats.dir/linalg.cc.o"
  "CMakeFiles/mip_stats.dir/linalg.cc.o.d"
  "CMakeFiles/mip_stats.dir/matrix.cc.o"
  "CMakeFiles/mip_stats.dir/matrix.cc.o.d"
  "CMakeFiles/mip_stats.dir/special.cc.o"
  "CMakeFiles/mip_stats.dir/special.cc.o.d"
  "CMakeFiles/mip_stats.dir/summary.cc.o"
  "CMakeFiles/mip_stats.dir/summary.cc.o.d"
  "libmip_stats.a"
  "libmip_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
