file(REMOVE_RECURSE
  "libmip_stats.a"
)
