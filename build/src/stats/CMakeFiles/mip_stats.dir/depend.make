# Empty dependencies file for mip_stats.
# This may be replaced when dependencies are built.
