
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/mip_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/mip_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/linalg.cc" "src/stats/CMakeFiles/mip_stats.dir/linalg.cc.o" "gcc" "src/stats/CMakeFiles/mip_stats.dir/linalg.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/mip_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/mip_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/special.cc" "src/stats/CMakeFiles/mip_stats.dir/special.cc.o" "gcc" "src/stats/CMakeFiles/mip_stats.dir/special.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/mip_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/mip_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
