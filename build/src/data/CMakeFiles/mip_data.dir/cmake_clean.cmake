file(REMOVE_RECURSE
  "CMakeFiles/mip_data.dir/synthetic.cc.o"
  "CMakeFiles/mip_data.dir/synthetic.cc.o.d"
  "libmip_data.a"
  "libmip_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
