# Empty dependencies file for mip_data.
# This may be replaced when dependencies are built.
