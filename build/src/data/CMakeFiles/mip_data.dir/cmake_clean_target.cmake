file(REMOVE_RECURSE
  "libmip_data.a"
)
