file(REMOVE_RECURSE
  "../bench/bench_linreg"
  "../bench/bench_linreg.pdb"
  "CMakeFiles/bench_linreg.dir/bench_linreg.cpp.o"
  "CMakeFiles/bench_linreg.dir/bench_linreg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
