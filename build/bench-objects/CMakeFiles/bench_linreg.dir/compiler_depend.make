# Empty compiler generated dependencies file for bench_linreg.
# This may be replaced when dependencies are built.
