file(REMOVE_RECURSE
  "../bench/bench_descriptive"
  "../bench/bench_descriptive.pdb"
  "CMakeFiles/bench_descriptive.dir/bench_descriptive.cpp.o"
  "CMakeFiles/bench_descriptive.dir/bench_descriptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
