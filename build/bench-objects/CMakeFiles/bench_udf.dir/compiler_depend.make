# Empty compiler generated dependencies file for bench_udf.
# This may be replaced when dependencies are built.
