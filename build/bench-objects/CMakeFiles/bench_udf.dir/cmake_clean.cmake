file(REMOVE_RECURSE
  "../bench/bench_udf"
  "../bench/bench_udf.pdb"
  "CMakeFiles/bench_udf.dir/bench_udf.cpp.o"
  "CMakeFiles/bench_udf.dir/bench_udf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
