file(REMOVE_RECURSE
  "../bench/bench_training"
  "../bench/bench_training.pdb"
  "CMakeFiles/bench_training.dir/bench_training.cpp.o"
  "CMakeFiles/bench_training.dir/bench_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
