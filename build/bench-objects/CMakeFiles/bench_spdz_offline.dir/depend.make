# Empty dependencies file for bench_spdz_offline.
# This may be replaced when dependencies are built.
