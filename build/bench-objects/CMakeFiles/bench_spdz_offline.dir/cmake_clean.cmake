file(REMOVE_RECURSE
  "../bench/bench_spdz_offline"
  "../bench/bench_spdz_offline.pdb"
  "CMakeFiles/bench_spdz_offline.dir/bench_spdz_offline.cpp.o"
  "CMakeFiles/bench_spdz_offline.dir/bench_spdz_offline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spdz_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
