file(REMOVE_RECURSE
  "../bench/bench_smpc_schemes"
  "../bench/bench_smpc_schemes.pdb"
  "CMakeFiles/bench_smpc_schemes.dir/bench_smpc_schemes.cpp.o"
  "CMakeFiles/bench_smpc_schemes.dir/bench_smpc_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smpc_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
