# Empty compiler generated dependencies file for bench_smpc_schemes.
# This may be replaced when dependencies are built.
