file(REMOVE_RECURSE
  "../bench/bench_algorithms"
  "../bench/bench_algorithms.pdb"
  "CMakeFiles/bench_algorithms.dir/bench_algorithms.cpp.o"
  "CMakeFiles/bench_algorithms.dir/bench_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
