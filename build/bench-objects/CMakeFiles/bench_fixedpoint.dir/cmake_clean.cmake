file(REMOVE_RECURSE
  "../bench/bench_fixedpoint"
  "../bench/bench_fixedpoint.pdb"
  "CMakeFiles/bench_fixedpoint.dir/bench_fixedpoint.cpp.o"
  "CMakeFiles/bench_fixedpoint.dir/bench_fixedpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
