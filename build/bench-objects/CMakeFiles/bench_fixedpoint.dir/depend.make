# Empty dependencies file for bench_fixedpoint.
# This may be replaced when dependencies are built.
