# Empty dependencies file for bench_alzheimer.
# This may be replaced when dependencies are built.
