file(REMOVE_RECURSE
  "../bench/bench_alzheimer"
  "../bench/bench_alzheimer.pdb"
  "CMakeFiles/bench_alzheimer.dir/bench_alzheimer.cpp.o"
  "CMakeFiles/bench_alzheimer.dir/bench_alzheimer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alzheimer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
