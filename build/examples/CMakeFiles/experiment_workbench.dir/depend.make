# Empty dependencies file for experiment_workbench.
# This may be replaced when dependencies are built.
