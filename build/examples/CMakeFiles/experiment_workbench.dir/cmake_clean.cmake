file(REMOVE_RECURSE
  "CMakeFiles/experiment_workbench.dir/experiment_workbench.cpp.o"
  "CMakeFiles/experiment_workbench.dir/experiment_workbench.cpp.o.d"
  "experiment_workbench"
  "experiment_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
