# Empty compiler generated dependencies file for epilepsy_study.
# This may be replaced when dependencies are built.
