file(REMOVE_RECURSE
  "CMakeFiles/epilepsy_study.dir/epilepsy_study.cpp.o"
  "CMakeFiles/epilepsy_study.dir/epilepsy_study.cpp.o.d"
  "epilepsy_study"
  "epilepsy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epilepsy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
