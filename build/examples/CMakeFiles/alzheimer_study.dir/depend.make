# Empty dependencies file for alzheimer_study.
# This may be replaced when dependencies are built.
