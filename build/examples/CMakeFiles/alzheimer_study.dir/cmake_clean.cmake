file(REMOVE_RECURSE
  "CMakeFiles/alzheimer_study.dir/alzheimer_study.cpp.o"
  "CMakeFiles/alzheimer_study.dir/alzheimer_study.cpp.o.d"
  "alzheimer_study"
  "alzheimer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alzheimer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
