# Empty dependencies file for engine_tour.
# This may be replaced when dependencies are built.
