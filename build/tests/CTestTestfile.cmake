# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_sql_test[1]_include.cmake")
include("/root/repo/build/tests/engine_exec_test[1]_include.cmake")
include("/root/repo/build/tests/smpc_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/etl_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/engine_sql_ext_test[1]_include.cmake")
include("/root/repo/build/tests/pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/domains_test[1]_include.cmake")
include("/root/repo/build/tests/smpc_property_test[1]_include.cmake")
include("/root/repo/build/tests/engine_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/mode_parity_test[1]_include.cmake")
