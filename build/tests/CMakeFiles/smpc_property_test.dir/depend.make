# Empty dependencies file for smpc_property_test.
# This may be replaced when dependencies are built.
