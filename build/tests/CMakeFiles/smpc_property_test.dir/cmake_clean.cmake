file(REMOVE_RECURSE
  "CMakeFiles/smpc_property_test.dir/smpc_property_test.cc.o"
  "CMakeFiles/smpc_property_test.dir/smpc_property_test.cc.o.d"
  "smpc_property_test"
  "smpc_property_test.pdb"
  "smpc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
