file(REMOVE_RECURSE
  "CMakeFiles/engine_sql_test.dir/engine_sql_test.cc.o"
  "CMakeFiles/engine_sql_test.dir/engine_sql_test.cc.o.d"
  "engine_sql_test"
  "engine_sql_test.pdb"
  "engine_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
