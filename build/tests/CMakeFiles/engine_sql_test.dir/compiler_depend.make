# Empty compiler generated dependencies file for engine_sql_test.
# This may be replaced when dependencies are built.
