# Empty compiler generated dependencies file for engine_sql_ext_test.
# This may be replaced when dependencies are built.
