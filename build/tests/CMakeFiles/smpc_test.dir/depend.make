# Empty dependencies file for smpc_test.
# This may be replaced when dependencies are built.
