file(REMOVE_RECURSE
  "CMakeFiles/smpc_test.dir/smpc_test.cc.o"
  "CMakeFiles/smpc_test.dir/smpc_test.cc.o.d"
  "smpc_test"
  "smpc_test.pdb"
  "smpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
