file(REMOVE_RECURSE
  "CMakeFiles/mode_parity_test.dir/mode_parity_test.cc.o"
  "CMakeFiles/mode_parity_test.dir/mode_parity_test.cc.o.d"
  "mode_parity_test"
  "mode_parity_test.pdb"
  "mode_parity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
