# Empty compiler generated dependencies file for mode_parity_test.
# This may be replaced when dependencies are built.
