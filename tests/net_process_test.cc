// Cross-process federation test: spawns three real `mip_worker` daemons,
// points a MasterNode at them through a TcpTransport, and checks that a
// federated linear-regression run over sockets produces *byte-identical*
// results to the same run over the in-process MessageBus (the acceptance
// criterion for the transport layer: the delivery mechanism must not leak
// into the numerics).
//
// The daemon binary path is injected at compile time via MIP_WORKER_BIN.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "engine/table.h"
#include "federation/master.h"
#include "federation/training.h"
#include "federation/worker_steps.h"
#include "net/tcp_transport.h"

namespace mip {
namespace {

using federation::FederatedTrainer;
using federation::MasterNode;
using federation::TrainingConfig;
using federation::TrainingResult;
using federation::TransferData;

constexpr int kWorkers = 3;
constexpr size_t kRows = 120;
constexpr uint64_t kBaseSeed = 2024;
const std::vector<double> kTrueWeights = {1.5, -2.0, 0.8};
constexpr double kNoise = 0.1;

std::string WorkerId(int i) { return "hospital_" + std::to_string(i); }
uint64_t WorkerSeed(int i) { return kBaseSeed + static_cast<uint64_t>(i); }

/// One spawned mip_worker daemon. Lifetime is owned by its stdin pipe:
/// closing it makes the daemon exit cleanly.
struct WorkerProcess {
  pid_t pid = -1;
  int stdin_fd = -1;   // write end; close -> daemon exits
  FILE* stdout_f = nullptr;
  int port = 0;

  void Terminate() {
    if (stdin_fd >= 0) {
      close(stdin_fd);
      stdin_fd = -1;
    }
    if (pid > 0) {
      int status = 0;
      waitpid(pid, &status, 0);
      pid = -1;
    }
    if (stdout_f != nullptr) {
      fclose(stdout_f);
      stdout_f = nullptr;
    }
  }
};

/// `wire_version` 0 omits the flag (daemon default = current protocol);
/// 1 spawns the daemon as a pre-codec build for mixed-cohort interop tests.
bool SpawnWorker(int index, WorkerProcess* out, int wire_version = 0) {
  // CLOEXEC so later-spawned siblings don't inherit these pipe ends — a
  // stray write-end copy would keep a daemon's stdin open forever and
  // Terminate() would deadlock in waitpid.
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (pipe2(to_child, O_CLOEXEC) != 0 || pipe2(from_child, O_CLOEXEC) != 0) {
    return false;
  }

  std::string weights_csv;
  for (size_t j = 0; j < kTrueWeights.size(); ++j) {
    if (j > 0) weights_csv += ",";
    weights_csv += std::to_string(kTrueWeights[j]);
  }
  const std::string id_flag = "--id=" + WorkerId(index);
  const std::string seed_flag = "--seed=" + std::to_string(WorkerSeed(index));
  const std::string rows_flag = "--rows=" + std::to_string(kRows);
  const std::string weights_flag = "--weights=" + weights_csv;
  const std::string noise_flag = "--noise=" + std::to_string(kNoise);
  const std::string version_flag =
      "--wire-version=" + std::to_string(wire_version);

  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout and exec the daemon.
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(MIP_WORKER_BIN, MIP_WORKER_BIN, id_flag.c_str(), "--port=0",
          "--dataset=linreg", rows_flag.c_str(), seed_flag.c_str(),
          weights_flag.c_str(), noise_flag.c_str(),
          wire_version > 0 ? version_flag.c_str() : static_cast<char*>(nullptr),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  close(to_child[0]);
  close(from_child[1]);
  out->pid = pid;
  out->stdin_fd = to_child[1];
  out->stdout_f = fdopen(from_child[0], "r");
  if (out->stdout_f == nullptr) return false;

  // The daemon prints exactly one READY line once it is listening.
  char line[256];
  if (std::fgets(line, sizeof(line), out->stdout_f) == nullptr) return false;
  int port = 0;
  const char* marker = std::strstr(line, "port=");
  if (marker == nullptr || std::sscanf(marker, "port=%d", &port) != 1 ||
      port <= 0) {
    return false;
  }
  out->port = port;
  return true;
}

TrainingConfig FixedTrainingConfig() {
  TrainingConfig config;
  config.rounds = 12;
  config.learning_rate = 0.002;
  config.privacy = federation::TrainingPrivacy::kNone;
  config.seed = 77;
  return config;
}

/// Baseline: the whole federation in one address space over the MessageBus.
Result<TrainingResult> TrainInProcess() {
  MasterNode master;
  MIP_RETURN_NOT_OK(
      federation::RegisterPortableSteps(master.functions().get()));
  for (int i = 0; i < kWorkers; ++i) {
    MIP_ASSIGN_OR_RETURN(auto* worker, master.AddWorker(WorkerId(i)));
    (void)worker;
    MIP_RETURN_NOT_OK(master.LoadDataset(
        WorkerId(i), "linreg",
        federation::MakeSyntheticLinregTable(WorkerSeed(i), kRows,
                                             kTrueWeights, kNoise)));
  }
  MIP_ASSIGN_OR_RETURN(auto session, master.StartSession({"linreg"}));
  FederatedTrainer trainer(&master, FixedTrainingConfig());
  return trainer.Train(&session, "linreg.grad",
                       static_cast<int>(kTrueWeights.size()));
}

class NetProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workers_.resize(kWorkers);
    for (int i = 0; i < kWorkers; ++i) {
      ASSERT_TRUE(SpawnWorker(i, &workers_[i]))
          << "failed to spawn mip_worker " << i;
    }
  }
  void TearDown() override {
    for (auto& w : workers_) w.Terminate();
  }

  std::vector<WorkerProcess> workers_;
};

TEST_F(NetProcessTest, TcpTrainingByteIdenticalToInProcess) {
  // Run 1: everything in this process over the bus.
  auto in_process = TrainInProcess();
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  const std::vector<double>& bus_weights = in_process.ValueOrDie().weights;
  ASSERT_EQ(bus_weights.size(), kTrueWeights.size());

  // Run 2: same training, but every worker is its own OS process.
  MasterNode master;
  net::TcpTransport transport;
  for (int i = 0; i < kWorkers; ++i) {
    transport.AddPeer(WorkerId(i), "127.0.0.1", workers_[i].port);
    ASSERT_TRUE(master.AddRemoteWorker(WorkerId(i), {"linreg"}).ok());
  }
  master.set_transport(&transport);

  auto session = master.StartSession({"linreg"});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_EQ(session.ValueOrDie().num_workers(), static_cast<size_t>(kWorkers));

  FederatedTrainer trainer(&master, FixedTrainingConfig());
  auto tcp_result =
      trainer.Train(&session.ValueOrDie(), "linreg.grad",
                    static_cast<int>(kTrueWeights.size()));
  ASSERT_TRUE(tcp_result.ok()) << tcp_result.status().ToString();
  const std::vector<double>& tcp_weights = tcp_result.ValueOrDie().weights;

  // Byte-identical: the transport must not perturb the numerics at all.
  ASSERT_EQ(tcp_weights.size(), bus_weights.size());
  EXPECT_EQ(std::memcmp(tcp_weights.data(), bus_weights.data(),
                        bus_weights.size() * sizeof(double)),
            0)
      << "TCP and in-process training diverged";

  // The transport measured real traffic: bytes, messages and wall clock.
  const net::NetworkStats stats = transport.stats();
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.round_trips, 0u);
  EXPECT_GT(stats.wall_ms, 0.0);

  transport.Shutdown();
}

TEST_F(NetProcessTest, PlainAggregateMatchesInProcess) {
  // In-process reference for stats.moments over the same synthetic cohort.
  MasterNode local;
  ASSERT_TRUE(
      federation::RegisterPortableSteps(local.functions().get()).ok());
  for (int i = 0; i < kWorkers; ++i) {
    ASSERT_TRUE(local.AddWorker(WorkerId(i)).ok());
    ASSERT_TRUE(local
                    .LoadDataset(WorkerId(i), "linreg",
                                 federation::MakeSyntheticLinregTable(
                                     WorkerSeed(i), kRows, kTrueWeights,
                                     kNoise))
                    .ok());
  }
  auto local_session = local.StartSession({"linreg"});
  ASSERT_TRUE(local_session.ok());
  TransferData args;
  args.PutString("dataset", "linreg");
  args.PutString("column", "y");
  auto local_agg = local_session.ValueOrDie().LocalRunAndAggregate(
      "stats.moments", args, federation::AggregationMode::kPlain);
  ASSERT_TRUE(local_agg.ok()) << local_agg.status().ToString();

  // The same aggregate computed by the three daemons.
  MasterNode master;
  net::TcpTransport transport;
  for (int i = 0; i < kWorkers; ++i) {
    transport.AddPeer(WorkerId(i), "127.0.0.1", workers_[i].port);
    ASSERT_TRUE(master.AddRemoteWorker(WorkerId(i), {"linreg"}).ok());
  }
  master.set_transport(&transport);
  auto session = master.StartSession({"linreg"});
  ASSERT_TRUE(session.ok());
  auto remote_agg = session.ValueOrDie().LocalRunAndAggregate(
      "stats.moments", args, federation::AggregationMode::kPlain);
  ASSERT_TRUE(remote_agg.ok()) << remote_agg.status().ToString();

  for (const char* key : {"sum", "sum_sq", "n"}) {
    auto a = local_agg.ValueOrDie().GetScalar(key);
    auto b = remote_agg.ValueOrDie().GetScalar(key);
    ASSERT_TRUE(a.ok() && b.ok());
    const double av = a.ValueOrDie(), bv = b.ValueOrDie();
    EXPECT_EQ(std::memcmp(&av, &bv, sizeof(double)), 0) << key;
  }
  transport.Shutdown();
}

TEST_F(NetProcessTest, MixedVersionNegotiationIsByteIdentical) {
  // The daemons are a current (codec-capable) build. Talk to them twice:
  // once as an "old" pre-codec client (wire_version = 1: no handshake, v1
  // frames, replies must stay fixed-width) and once as a current client
  // (negotiates v2, replies may be codec-compressed). Both must produce
  // byte-identical numerics — compression is a transport concern only.
  TransferData args;
  args.PutString("dataset", "linreg");
  args.PutString("column", "y");

  auto run_with = [&](net::TcpTransport& transport) {
    MasterNode master;
    for (int i = 0; i < kWorkers; ++i) {
      transport.AddPeer(WorkerId(i), "127.0.0.1", workers_[i].port);
      EXPECT_TRUE(master.AddRemoteWorker(WorkerId(i), {"linreg"}).ok());
    }
    master.set_transport(&transport);
    auto session = master.StartSession({"linreg"});
    EXPECT_TRUE(session.ok());
    return session.ValueOrDie().LocalRunAndAggregate(
        "stats.moments", args, federation::AggregationMode::kPlain);
  };

  net::TcpTransportOptions old_options;
  old_options.wire_version = 1;
  net::TcpTransport old_client(old_options);
  auto old_agg = run_with(old_client);
  ASSERT_TRUE(old_agg.ok()) << old_agg.status().ToString();

  net::TcpTransport new_client;
  auto new_agg = run_with(new_client);
  ASSERT_TRUE(new_agg.ok()) << new_agg.status().ToString();

  for (const char* key : {"sum", "sum_sq", "n"}) {
    auto a = old_agg.ValueOrDie().GetScalar(key);
    auto b = new_agg.ValueOrDie().GetScalar(key);
    ASSERT_TRUE(a.ok() && b.ok());
    const double av = a.ValueOrDie(), bv = b.ValueOrDie();
    EXPECT_EQ(std::memcmp(&av, &bv, sizeof(double)), 0) << key;
  }

  // The old client never negotiated codecs: whatever it metered must show
  // no compression at all (wire == raw).
  const net::NetworkStats old_stats = old_client.stats();
  EXPECT_EQ(old_stats.bytes_raw, old_stats.bytes_wire);

  // The new client did negotiate: the ledger is populated and the wire side
  // never exceeds the raw side (measured fallback guarantees <=).
  const net::NetworkStats new_stats = new_client.stats();
  EXPECT_GT(new_stats.bytes_raw, 0u);
  EXPECT_GT(new_stats.bytes_wire, 0u);
  EXPECT_LE(new_stats.bytes_wire, new_stats.bytes_raw);
  EXPECT_GE(new_stats.CompressionRatio(), 1.0);

  // Mixed cohort: hospital_0 is replaced by a *daemon* running the pre-codec
  // protocol (--wire-version=1) while hospitals 1..n stay current. A current
  // client must negotiate per peer — v1 with the old site, v2 with the rest —
  // and still produce the same bytes.
  WorkerProcess old_daemon;
  ASSERT_TRUE(SpawnWorker(0, &old_daemon, /*wire_version=*/1));
  {
    net::TcpTransport mixed_client;
    MasterNode master;
    mixed_client.AddPeer(WorkerId(0), "127.0.0.1", old_daemon.port);
    ASSERT_TRUE(master.AddRemoteWorker(WorkerId(0), {"linreg"}).ok());
    for (int i = 1; i < kWorkers; ++i) {
      mixed_client.AddPeer(WorkerId(i), "127.0.0.1", workers_[i].port);
      ASSERT_TRUE(master.AddRemoteWorker(WorkerId(i), {"linreg"}).ok());
    }
    master.set_transport(&mixed_client);
    auto session = master.StartSession({"linreg"});
    ASSERT_TRUE(session.ok());
    auto mixed_agg = session.ValueOrDie().LocalRunAndAggregate(
        "stats.moments", args, federation::AggregationMode::kPlain);
    ASSERT_TRUE(mixed_agg.ok()) << mixed_agg.status().ToString();
    for (const char* key : {"sum", "sum_sq", "n"}) {
      const double av = new_agg.ValueOrDie().GetScalar(key).ValueOrDie();
      const double bv = mixed_agg.ValueOrDie().GetScalar(key).ValueOrDie();
      EXPECT_EQ(std::memcmp(&av, &bv, sizeof(double)), 0) << key;
    }
    // The old site's link must show zero compression; at least one of the
    // current sites' links must carry codec traffic.
    const auto links = mixed_client.link_stats();
    const auto old_link = links.find("master->" + WorkerId(0));
    ASSERT_NE(old_link, links.end());
    EXPECT_EQ(old_link->second.bytes_raw, old_link->second.bytes_wire);
    const auto new_link = links.find(WorkerId(1) + "->master");
    ASSERT_NE(new_link, links.end());
    EXPECT_GT(new_link->second.bytes_raw, 0u);
    mixed_client.Shutdown();
  }
  old_daemon.Terminate();

  old_client.Shutdown();
  new_client.Shutdown();
}

TEST_F(NetProcessTest, WorkerSurvivesBenignSignalsAndExitsCleanOnEof) {
  // Regression: a signal interrupting the daemon's blocking stdin read made
  // fgets return null, which the old loop mistook for EOF — the worker
  // silently exited mid-session. Poke the daemon repeatedly, prove it still
  // serves, then prove a real EOF still stops it cleanly.
  WorkerProcess& w = workers_[0];
  for (int k = 0; k < 3; ++k) {
    ASSERT_EQ(kill(w.pid, SIGUSR1), 0);
    usleep(20 * 1000);  // let the signal land while fgets is blocking
  }

  net::TcpTransport transport;
  transport.AddPeer(WorkerId(0), "127.0.0.1", w.port);
  BufferWriter writer;
  writer.WriteString("SELECT y FROM linreg LIMIT 5");
  auto reply = transport.Send(net::Envelope{"master", WorkerId(0), "run_sql",
                                            "", writer.TakeBytes()});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  BufferReader reader(reply.ValueOrDie());
  auto table = engine::DeserializeTable(&reader);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.ValueOrDie().num_rows(), 5u);
  transport.Shutdown();

  // True EOF: the daemon must exit on its own with status 0.
  close(w.stdin_fd);
  w.stdin_fd = -1;
  int status = 0;
  ASSERT_EQ(waitpid(w.pid, &status, 0), w.pid);
  w.pid = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace mip
