// Concurrent federated fan-out: with random per-link delays injected, the
// concurrent dispatch path must produce byte-identical aggregates to the
// sequential path, the traffic log must contain every envelope exactly
// once, and NetworkStats accounting must neither lose nor double-count
// under concurrency. Run under TSan in CI (ci/run_tests.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "federation/bus.h"
#include "federation/fault.h"
#include "federation/master.h"
#include "federation/training.h"
#include "federation/transfer.h"
#include "federation/worker.h"

namespace mip::federation {
namespace {

using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;

std::vector<uint8_t> SerializeTransfer(const TransferData& t) {
  BufferWriter w;
  t.Serialize(&w);
  return w.TakeBytes();
}

// N workers, worker w holding rows {w*10 + 1, w*10 + 2, w*10 + 3} of
// dataset "numbers", plus a "sum_x" local step.
class ConcurrencyFixture : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 8;

  void SetUp() override {
    for (int w = 0; w < kWorkers; ++w) {
      const std::string id = "h" + std::to_string(w);
      ASSERT_TRUE(master_.AddWorker(id).ok());
      Schema schema;
      ASSERT_TRUE(schema.AddField({"x", DataType::kFloat64}).ok());
      Table t = Table::Empty(schema);
      for (int r = 1; r <= 3; ++r) {
        ASSERT_TRUE(t.AppendRow({Value::Double(w * 10 + r)}).ok());
      }
      ASSERT_TRUE(master_.LoadDataset(id, "numbers", std::move(t)).ok());
    }
    ASSERT_TRUE(
        master_.functions()
            ->Register(
                "sum_x",
                [](WorkerContext& ctx,
                   const TransferData&) -> Result<TransferData> {
                  MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("numbers"));
                  MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                                       t.ColumnByName("x"));
                  double sum = 0, n = 0;
                  for (size_t r = 0; r < col->length(); ++r) {
                    sum += col->DoubleAt(r);
                    n += 1;
                  }
                  TransferData out;
                  out.PutScalar("sum", sum);
                  out.PutScalar("n", n);
                  return out;
                })
            .ok());
  }

  // Random-but-deterministic per-link delay on every master->worker link.
  void InjectRandomDelays(FaultInjector* injector) {
    for (int w = 0; w < kWorkers; ++w) {
      FaultSpec spec;
      spec.delay_ms = 0.5;
      spec.jitter_ms = 2.0;
      injector->SetLinkFault("master", "h" + std::to_string(w), spec);
    }
  }

  FanoutPolicy Sequential() {
    FanoutPolicy p;
    p.max_concurrency = 1;
    return p;
  }

  MasterNode master_;
};

TEST_F(ConcurrencyFixture, ConcurrentAggregateIsByteIdenticalToSequential) {
  FaultInjector injector(/*seed=*/42);
  InjectRandomDelays(&injector);
  master_.bus().set_fault_injector(&injector);

  FederationSession seq = *master_.StartSession({"numbers"});
  seq.set_fanout_policy(Sequential());
  TransferData seq_agg = *seq.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kPlain);

  FederationSession conc = *master_.StartSession({"numbers"});
  TransferData conc_agg = *conc.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kPlain);

  EXPECT_EQ(SerializeTransfer(seq_agg), SerializeTransfer(conc_agg));
  // 8 workers x (1+2+3 + w*30): 36*... sanity-check the actual value too.
  double expected = 0;
  for (int w = 0; w < kWorkers; ++w) expected += 3 * (w * 10) + 6;
  EXPECT_EQ(*conc_agg.GetScalar("sum"), expected);
  EXPECT_EQ(*conc_agg.GetScalar("n"), 3.0 * kWorkers);
  master_.bus().set_fault_injector(nullptr);
}

TEST_F(ConcurrencyFixture, ConcurrentPerWorkerResultsPreserveWorkerOrder) {
  FaultInjector injector(/*seed=*/7);
  InjectRandomDelays(&injector);
  master_.bus().set_fault_injector(&injector);

  FederationSession seq = *master_.StartSession({"numbers"});
  seq.set_fanout_policy(Sequential());
  std::vector<TransferData> seq_parts =
      *seq.LocalRun("sum_x", TransferData());

  FederationSession conc = *master_.StartSession({"numbers"});
  std::vector<TransferData> conc_parts =
      *conc.LocalRun("sum_x", TransferData());

  ASSERT_EQ(seq_parts.size(), conc_parts.size());
  for (size_t i = 0; i < seq_parts.size(); ++i) {
    EXPECT_EQ(SerializeTransfer(seq_parts[i]),
              SerializeTransfer(conc_parts[i]))
        << "worker slot " << i;
  }
  master_.bus().set_fault_injector(nullptr);
}

TEST_F(ConcurrencyFixture, SecureAggregateMatchesSequentialUnderDelays) {
  FaultInjector injector(/*seed=*/11);
  InjectRandomDelays(&injector);
  master_.bus().set_fault_injector(&injector);

  FederationSession seq = *master_.StartSession({"numbers"});
  seq.set_fanout_policy(Sequential());
  TransferData seq_agg = *seq.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kSecure);

  FederationSession conc = *master_.StartSession({"numbers"});
  TransferData conc_agg = *conc.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kSecure);

  // Fixed-point modular sums are order-independent, so even the secure
  // path is byte-identical between dispatch modes.
  EXPECT_EQ(SerializeTransfer(seq_agg), SerializeTransfer(conc_agg));
  master_.bus().set_fault_injector(nullptr);
}

TEST_F(ConcurrencyFixture, TrafficLogContainsEveryEnvelopeExactlyOnce) {
  FaultInjector injector(/*seed=*/3);
  InjectRandomDelays(&injector);
  master_.bus().set_fault_injector(&injector);
  master_.bus().set_keep_log(true);
  master_.bus().ClearLog();

  FederationSession session = *master_.StartSession({"numbers"});
  ASSERT_TRUE(session.LocalRun("sum_x", TransferData()).ok());

  std::map<std::string, int> local_runs_per_worker;
  for (const MessageBus::LogEntry& e : master_.bus().log()) {
    ASSERT_EQ(e.type, "local_run");
    ASSERT_EQ(e.from, "master");
    local_runs_per_worker[e.to] += 1;
    EXPECT_GT(e.request_bytes, 0u);
    EXPECT_GT(e.reply_bytes, 0u);
  }
  EXPECT_EQ(local_runs_per_worker.size(), static_cast<size_t>(kWorkers));
  for (const auto& [wid, count] : local_runs_per_worker) {
    EXPECT_EQ(count, 1) << "worker " << wid;
  }
  master_.bus().set_keep_log(false);
  master_.bus().set_fault_injector(nullptr);
}

// Property: total NetworkStats under concurrent dispatch equal the sum of
// per-link stats from a sequential run of the same step — no lost or
// double-counted accounting.
TEST_F(ConcurrencyFixture, ConcurrentStatsEqualSumOfSequentialLinkStats) {
  master_.bus().ResetStats();
  FederationSession seq = *master_.StartSession({"numbers"});
  seq.set_fanout_policy(Sequential());
  ASSERT_TRUE(seq.LocalRun("sum_x", TransferData()).ok());
  const std::map<std::string, NetworkStats> seq_links =
      master_.bus().link_stats();
  NetworkStats seq_sum;
  for (const auto& [link, s] : seq_links) {
    seq_sum.messages += s.messages;
    seq_sum.bytes += s.bytes;
  }
  const NetworkStats seq_total = master_.bus().stats();
  EXPECT_EQ(seq_sum.messages, seq_total.messages);
  EXPECT_EQ(seq_sum.bytes, seq_total.bytes);

  master_.bus().ResetStats();
  FederationSession conc = *master_.StartSession({"numbers"});
  ASSERT_TRUE(conc.LocalRun("sum_x", TransferData()).ok());
  const NetworkStats conc_total = master_.bus().stats();
  const std::map<std::string, NetworkStats> conc_links =
      master_.bus().link_stats();

  EXPECT_EQ(conc_total.messages, seq_total.messages);
  EXPECT_EQ(conc_total.bytes, seq_total.bytes);
  ASSERT_EQ(conc_links.size(), seq_links.size());
  for (const auto& [link, s] : seq_links) {
    auto it = conc_links.find(link);
    ASSERT_NE(it, conc_links.end()) << link;
    EXPECT_EQ(it->second.messages, s.messages) << link;
    EXPECT_EQ(it->second.bytes, s.bytes) << link;
  }
}

TEST_F(ConcurrencyFixture, FaultInjectionIsDeterministicAcrossRuns) {
  auto run_once = [this](uint64_t seed) {
    FaultInjector injector(seed);
    FaultSpec spec;
    spec.drop_rate = 0.4;
    for (int w = 0; w < kWorkers; ++w) {
      injector.SetLinkFault("master", "h" + std::to_string(w), spec);
    }
    master_.bus().set_fault_injector(&injector);
    FederationSession session = *master_.StartSession({"numbers"});
    FanoutPolicy policy;
    policy.max_attempts = 4;
    policy.retry_backoff_ms = 0.0;
    policy.min_workers = 1;
    session.set_fanout_policy(policy);
    (void)session.LocalRun("sum_x", TransferData());
    master_.bus().set_fault_injector(nullptr);
    std::vector<int> attempts;
    for (const WorkerRunReport& r : session.last_reports()) {
      attempts.push_back(r.attempts);
    }
    return attempts;
  };
  const std::vector<int> first = run_once(123);
  const std::vector<int> second = run_once(123);
  EXPECT_EQ(first, second);
  // ... and a different seed gives a different (still valid) pattern in
  // general; do not assert inequality (it may coincide), only shape.
  EXPECT_EQ(run_once(456).size(), first.size());
}

// Raw-bus stress: many threads hammer the locked bus; totals must be exact
// and the per-link breakdown must sum to the totals.
TEST(MessageBusConcurrencyTest, ConcurrentSendsNeverLoseOrDoubleCount) {
  MessageBus bus;
  constexpr int kEndpoints = 4;
  constexpr int kSenders = 8;
  constexpr int kMessagesEach = 200;
  std::atomic<int> handled{0};
  for (int e = 0; e < kEndpoints; ++e) {
    ASSERT_TRUE(bus.RegisterEndpoint("node" + std::to_string(e),
                                     [&handled](const Envelope& env)
                                         -> Result<std::vector<uint8_t>> {
                                       handled.fetch_add(1);
                                       return env.payload;  // echo
                                     })
                    .ok());
  }
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&bus, s] {
      for (int m = 0; m < kMessagesEach; ++m) {
        Envelope env{"sender" + std::to_string(s),
                     "node" + std::to_string(m % kEndpoints), "ping", "job",
                     std::vector<uint8_t>{1, 2, 3, 4, 5}};
        ASSERT_TRUE(bus.Send(std::move(env)).ok());
      }
    });
  }
  for (std::thread& t : senders) t.join();

  const int total_sends = kSenders * kMessagesEach;
  EXPECT_EQ(handled.load(), total_sends);
  const NetworkStats stats = bus.stats();
  EXPECT_EQ(stats.messages, static_cast<uint64_t>(2 * total_sends));
  EXPECT_EQ(stats.bytes, static_cast<uint64_t>(2 * total_sends * 5));
  NetworkStats link_sum;
  for (const auto& [link, s] : bus.link_stats()) {
    link_sum.messages += s.messages;
    link_sum.bytes += s.bytes;
  }
  EXPECT_EQ(link_sum.messages, stats.messages);
  EXPECT_EQ(link_sum.bytes, stats.bytes);
}

TEST(ThreadPoolTest, RunsEveryTaskAndDrainsOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(ran.load(), 1000);
}

TEST_F(ConcurrencyFixture, ConcurrentTrainingMatchesSequentialTraining) {
  ASSERT_TRUE(master_.functions()
                  ->Register("grad1d",
                             [](WorkerContext& ctx, const TransferData& args)
                                 -> Result<TransferData> {
                               MIP_ASSIGN_OR_RETURN(std::vector<double> w,
                                                    args.GetVector("weights"));
                               MIP_ASSIGN_OR_RETURN(
                                   Table t, ctx.db().GetTable("numbers"));
                               double grad = 0, loss = 0, n = 0;
                               for (size_t r = 0; r < t.num_rows(); ++r) {
                                 const double x = t.At(r, 0).AsDouble();
                                 const double err = w[0] * x - x;  // target 1
                                 grad += 2 * err * x;
                                 loss += err * err;
                                 n += 1;
                               }
                               TransferData out;
                               out.PutVector("grad", {grad});
                               out.PutScalar("loss", loss);
                               out.PutScalar("n", n);
                               return out;
                             })
                  .ok());
  TrainingConfig config;
  config.rounds = 5;
  config.learning_rate = 1e-4;

  FederatedTrainer seq_trainer(&master_, config);
  FederationSession seq = *master_.StartSession({"numbers"});
  FanoutPolicy sequential;
  sequential.max_concurrency = 1;
  seq.set_fanout_policy(sequential);
  TrainingResult seq_result = *seq_trainer.Train(&seq, "grad1d", 1);

  FederatedTrainer conc_trainer(&master_, config);
  FederationSession conc = *master_.StartSession({"numbers"});
  TrainingResult conc_result = *conc_trainer.Train(&conc, "grad1d", 1);

  ASSERT_EQ(seq_result.weights.size(), conc_result.weights.size());
  EXPECT_EQ(seq_result.weights[0], conc_result.weights[0]);  // bit-exact
  ASSERT_EQ(seq_result.history.size(), conc_result.history.size());
  for (size_t r = 0; r < seq_result.history.size(); ++r) {
    EXPECT_EQ(seq_result.history[r].loss, conc_result.history[r].loss);
    EXPECT_EQ(conc_result.history[r].active_workers,
              static_cast<size_t>(kWorkers));
  }
}

}  // namespace
}  // namespace mip::federation
