#include <gtest/gtest.h>

#include "algorithms/histogram.h"
#include "data/synthetic.h"
#include "federation/master.h"
#include "platform/experiment.h"

namespace mip::platform {
namespace {

using federation::MasterNode;

class PlatformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(data::SetupAlzheimerFederation(&master_).ok());
    manager_ = std::make_unique<ExperimentManager>(&master_);
  }

  static std::vector<std::string> Datasets() {
    return {"edsd_brescia", "edsd_lausanne", "edsd_lille", "adni"};
  }

  MasterNode master_;
  std::unique_ptr<ExperimentManager> manager_;
};

TEST_F(PlatformTest, AvailableAlgorithmsPanelHasFullCatalog) {
  const std::vector<std::string> names = manager_->registry()->Names();
  EXPECT_GE(names.size(), 19u);
  for (const char* expected :
       {"descriptive", "kmeans", "linear_regression", "logistic_regression",
        "anova_oneway", "anova_twoway", "cart", "id3", "kaplan_meier",
        "calibration_belt", "naive_bayes", "naive_bayes_cv", "pca",
        "pearson_correlation", "ttest_independent", "ttest_onesample",
        "ttest_paired", "histogram", "linear_regression_cv",
        "logistic_regression_cv"}) {
    EXPECT_TRUE(manager_->registry()->Has(expected)) << expected;
  }
}

TEST_F(PlatformTest, SubmitRunsAndRecordsExperiment) {
  ExperimentSpec spec;
  spec.algorithm = "linear_regression";
  spec.datasets = Datasets();
  spec.list_params["covariates"] = {"age", "p_tau"};
  spec.params["target"] = "left_hippocampus";
  auto id = manager_->Submit(spec);
  ASSERT_TRUE(id.ok());
  ExperimentRecord record = *manager_->Get(*id);
  EXPECT_EQ(record.status, ExperimentStatus::kCompleted);
  EXPECT_NE(record.result.find("Linear regression"), std::string::npos);
  EXPECT_GT(record.runtime_ms, 0.0);
  EXPECT_EQ(manager_->List().size(), 1u);
}

TEST_F(PlatformTest, KMeansExperimentMirrorsDashboardParams) {
  // The dashboard's k-means panel: k, iterations_max_number.
  ExperimentSpec spec;
  spec.algorithm = "kmeans";
  spec.datasets = Datasets();
  spec.list_params["variables"] = {"abeta42", "p_tau"};
  spec.params["k"] = "3";
  spec.params["iterations_max_number"] = "50";
  spec.params["standardize"] = "true";
  auto id = manager_->Submit(spec);
  ASSERT_TRUE(id.ok());
  ExperimentRecord record = *manager_->Get(*id);
  EXPECT_EQ(record.status, ExperimentStatus::kCompleted);
  EXPECT_NE(record.result.find("3 clusters"), std::string::npos);
}

TEST_F(PlatformTest, UnknownAlgorithmRejectedAtSubmit) {
  ExperimentSpec spec;
  spec.algorithm = "quantum_teleportation";
  spec.datasets = Datasets();
  EXPECT_FALSE(manager_->Submit(spec).ok());
  EXPECT_TRUE(manager_->List().empty());
}

TEST_F(PlatformTest, MissingParameterFailsTheExperimentNotTheManager) {
  ExperimentSpec spec;
  spec.algorithm = "linear_regression";
  spec.datasets = Datasets();
  // no covariates/target
  auto id = manager_->Submit(spec);
  ASSERT_TRUE(id.ok());  // submission works; the run fails
  ExperimentRecord record = *manager_->Get(*id);
  EXPECT_EQ(record.status, ExperimentStatus::kFailed);
  EXPECT_NE(record.error.find("covariates"), std::string::npos);
}

TEST_F(PlatformTest, BadDatasetSelectionFails) {
  ExperimentSpec spec;
  spec.algorithm = "pca";
  spec.datasets = {"nonexistent_dataset"};
  spec.list_params["variables"] = {"age"};
  auto id = manager_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*manager_->Get(*id)).status, ExperimentStatus::kFailed);
}

TEST_F(PlatformTest, SecureModeFlowsThroughTheSpec) {
  ExperimentSpec spec;
  spec.algorithm = "pearson_correlation";
  spec.datasets = Datasets();
  spec.list_params["variables"] = {"abeta42", "p_tau"};
  spec.mode = federation::AggregationMode::kSecure;
  auto id = manager_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*manager_->Get(*id)).status, ExperimentStatus::kCompleted);
  EXPECT_GT(master_.smpc().stats().bytes_transferred, 0u);
}

TEST_F(PlatformTest, MyExperimentsKeepsHistoryInOrder) {
  ExperimentSpec a;
  a.algorithm = "ttest_onesample";
  a.datasets = Datasets();
  a.params["variable"] = "mmse";
  a.params["mu0"] = "24";
  ExperimentSpec b = a;
  b.params["mu0"] = "10";
  ASSERT_TRUE(manager_->Submit(a).ok());
  ASSERT_TRUE(manager_->Submit(b).ok());
  const auto list = manager_->List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].spec.params.at("mu0"), "24");
  EXPECT_EQ(list[1].spec.params.at("mu0"), "10");
  EXPECT_FALSE(manager_->Get("exp-999").ok());
}

TEST_F(PlatformTest, DataCatalogueListsFederatedDatasets) {
  DataCatalogue catalogue = *DataCatalogue::Build(&master_);
  EXPECT_EQ(catalogue.datasets().size(), 4u);
  const auto* brescia = *catalogue.Find("edsd_brescia");
  EXPECT_EQ(brescia->total_rows, 1960);
  EXPECT_EQ(brescia->workers.size(), 1u);
  EXPECT_FALSE(brescia->schema.empty());
  EXPECT_FALSE(catalogue.Find("nope").ok());
  EXPECT_NE(catalogue.ToString().find("edsd_lille"), std::string::npos);
}

TEST_F(PlatformTest, WorkflowRunsStepsInOrder) {
  ExperimentManager::WorkflowSpec workflow;
  workflow.name = "screening";
  ExperimentSpec descriptive;
  descriptive.algorithm = "descriptive";
  descriptive.datasets = Datasets();
  descriptive.list_params["variables"] = {"p_tau"};
  ExperimentSpec regression;
  regression.algorithm = "linear_regression";
  regression.datasets = Datasets();
  regression.list_params["covariates"] = {"p_tau"};
  regression.params["target"] = "left_hippocampus";
  workflow.steps = {descriptive, regression};

  auto records = manager_->RunWorkflow(workflow);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.ValueOrDie().size(), 2u);
  EXPECT_EQ(records.ValueOrDie()[0].spec.algorithm, "descriptive");
  EXPECT_EQ(records.ValueOrDie()[1].status, ExperimentStatus::kCompleted);
  // The workflow's runs land in My Experiments too.
  EXPECT_EQ(manager_->List().size(), 2u);
}

TEST_F(PlatformTest, WorkflowStopsOnFailureByDefault) {
  ExperimentManager::WorkflowSpec workflow;
  workflow.name = "broken";
  ExperimentSpec bad;
  bad.algorithm = "linear_regression";  // missing params -> fails
  bad.datasets = Datasets();
  ExperimentSpec never_runs;
  never_runs.algorithm = "pca";
  never_runs.datasets = Datasets();
  never_runs.list_params["variables"] = {"age"};
  workflow.steps = {bad, never_runs};

  auto records = manager_->RunWorkflow(workflow);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.ValueOrDie().size(), 1u);  // aborted after the failure
  EXPECT_EQ(records.ValueOrDie()[0].status, ExperimentStatus::kFailed);

  workflow.stop_on_failure = false;
  auto all = manager_->RunWorkflow(workflow);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().size(), 2u);
  EXPECT_EQ(all.ValueOrDie()[1].status, ExperimentStatus::kCompleted);
}

TEST_F(PlatformTest, WorkflowValidatesAlgorithmNamesUpFront) {
  ExperimentManager::WorkflowSpec workflow;
  workflow.name = "typo";
  ExperimentSpec ok_step;
  ok_step.algorithm = "pca";
  ok_step.datasets = Datasets();
  ok_step.list_params["variables"] = {"age"};
  ExperimentSpec typo;
  typo.algorithm = "pcaa";
  workflow.steps = {ok_step, typo};
  EXPECT_FALSE(manager_->RunWorkflow(workflow).ok());
  EXPECT_TRUE(manager_->List().empty());  // nothing ran
  workflow.steps.clear();
  EXPECT_FALSE(manager_->RunWorkflow(workflow).ok());
}

// --- Histogram + disclosure control -----------------------------------------

TEST_F(PlatformTest, NumericHistogramCountsEverything) {
  algorithms::HistogramSpec spec;
  spec.datasets = Datasets();
  spec.variable = "mmse";
  spec.bins = 8;
  spec.privacy_threshold = 0;
  auto session = master_.StartSession(Datasets());
  auto r = algorithms::RunHistogram(&session.ValueOrDie(), spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().bins.size(), 8u);
  int64_t total = 0;
  for (const auto& bin : r.ValueOrDie().bins) total += bin.count;
  EXPECT_GT(total, 4500);
  EXPECT_EQ(total, r.ValueOrDie().total);
}

TEST_F(PlatformTest, NominalHistogramDiscoversLevels) {
  algorithms::HistogramSpec spec;
  spec.datasets = Datasets();
  spec.variable = "diagnosis";
  spec.nominal = true;
  spec.privacy_threshold = 0;
  auto session = master_.StartSession(Datasets());
  auto r = algorithms::RunHistogram(&session.ValueOrDie(), spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().bins.size(), 3u);  // CN / MCI / AD
}

TEST_F(PlatformTest, SmallCellsAreSuppressed) {
  // A rare category present in only a handful of patients must be withheld.
  MasterNode small;
  ASSERT_TRUE(small.AddWorker("w").ok());
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"grp", engine::DataType::kString}).ok());
  engine::Table t = engine::Table::Empty(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({engine::Value::String("common")}).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow({engine::Value::String("rare")}).ok());
  }
  ASSERT_TRUE(small.LoadDataset("w", "d", std::move(t)).ok());
  algorithms::HistogramSpec spec;
  spec.datasets = {"d"};
  spec.variable = "grp";
  spec.nominal = true;
  spec.privacy_threshold = 10;
  auto session = small.StartSession({"d"});
  auto r = algorithms::RunHistogram(&session.ValueOrDie(), spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().suppressed_bins, 1);
  for (const auto& bin : r.ValueOrDie().bins) {
    if (bin.label == "rare") {
      EXPECT_TRUE(bin.suppressed);
      EXPECT_EQ(bin.count, 0);
    } else {
      EXPECT_EQ(bin.count, 100);
    }
  }
  // The rendered panel marks the withheld cell.
  EXPECT_NE(r.ValueOrDie().ToString().find("<suppressed>"),
            std::string::npos);
}

TEST_F(PlatformTest, SecureHistogramWithFixedLevels) {
  algorithms::HistogramSpec spec;
  spec.datasets = Datasets();
  spec.variable = "diagnosis";
  spec.nominal = true;
  spec.levels = {"CN", "MCI", "AD"};
  spec.privacy_threshold = 0;
  spec.mode = federation::AggregationMode::kSecure;
  auto session = master_.StartSession(Datasets());
  auto r = algorithms::RunHistogram(&session.ValueOrDie(), spec);
  ASSERT_TRUE(r.ok());
  int64_t total = 0;
  for (const auto& bin : r.ValueOrDie().bins) total += bin.count;
  EXPECT_EQ(total, 5161);

  // Without levels the secure path is rejected.
  spec.levels.clear();
  auto s2 = master_.StartSession(Datasets());
  EXPECT_FALSE(algorithms::RunHistogram(&s2.ValueOrDie(), spec).ok());
}

}  // namespace
}  // namespace mip::platform
