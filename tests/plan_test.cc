// Plan layer: golden EXPLAIN renderings, optimizer-on vs optimizer-off byte
// parity over a generated query corpus (serial and 8-thread), the
// COUNT(DISTINCT)-over-merge regression, and the wire-byte win of federated
// scan pushdown.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/exec_context.h"
#include "engine/table.h"
#include "federation/master.h"

namespace mip::engine {
namespace {

std::vector<uint8_t> Bytes(const Table& t) {
  BufferWriter w;
  SerializeTable(t, &w);
  return w.TakeBytes();
}

// Joins the rows of an EXPLAIN result back into the rendered plan text.
std::string ExplainText(Database* db, const std::string& sql) {
  Result<Table> out = db->ExecuteSql("EXPLAIN " + sql);
  EXPECT_TRUE(out.ok()) << sql << ": " << out.status().ToString();
  if (!out.ok()) return "";
  EXPECT_EQ(out->num_columns(), 1u);
  EXPECT_EQ(out->schema().field(0).name, "plan");
  std::string text;
  for (size_t r = 0; r < out->num_rows(); ++r) {
    text += out->At(r, 0).string_value();
    text += '\n';
  }
  return text;
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mip::Rng rng(77);
    for (const char* part : {"p1", "p2", "p3"}) {
      ASSERT_TRUE(db_.ExecuteSql(std::string("CREATE TABLE ") + part +
                                 " (g varchar, x double, k bigint)")
                      .ok());
      for (int i = 0; i < 50; ++i) {
        const char* g = i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c");
        char sql[128];
        std::snprintf(sql, sizeof(sql),
                      "INSERT INTO %s VALUES ('%s', %.6f, %d)", part, g,
                      rng.NextGaussian(), i % 7);
        ASSERT_TRUE(db_.ExecuteSql(sql).ok());
      }
    }
    ASSERT_TRUE(db_.ExecuteSql("CREATE MERGE TABLE m (p1, p2, p3)").ok());
    ASSERT_TRUE(
        db_.ExecuteSql("CREATE TABLE dim (k bigint, label varchar)").ok());
    ASSERT_TRUE(db_.ExecuteSql("INSERT INTO dim VALUES (0, 'zero'), "
                               "(1, 'one'), (2, 'two'), (3, 'three')")
                    .ok());
  }

  Database db_{"plandb"};
};

TEST_F(PlanTest, GoldenFilterAndLimitPushThroughMerge) {
  EXPECT_EQ(ExplainText(&db_, "SELECT x FROM m WHERE k = 1 LIMIT 3"),
            "Limit 3\n"
            "  Project x\n"
            "    MergeUnion m\n"
            "      Filter (k = 1)\n"
            "        Scan p1\n"
            "      Filter (k = 1)\n"
            "        Scan p2\n"
            "      Filter (k = 1)\n"
            "        Scan p3\n");
}

TEST_F(PlanTest, GoldenJoin) {
  // The WHERE conjunct sinks into the left input (the Filter above stays —
  // pushes are individually sound, never load-bearing), and the cost model
  // annotates its cardinality estimates: 50 rows * 1/3 for x > 0, 4 dim
  // rows, 16.7 * 4 / max-NDV(k) = 7 for the join output.
  EXPECT_EQ(ExplainText(&db_, "SELECT g, x, label FROM p1 JOIN dim "
                              "ON p1.k = dim.k WHERE x > 0"),
            "Project g, x, label\n"
            "  Filter (x > 0)\n"
            "    Join INNER on k = k est: left=17 right=4 out=10\n"
            "      Filter (x > 0)\n"
            "        Scan p1\n"
            "      Scan dim\n");
}

TEST_F(PlanTest, GoldenMultiWayJoinFoldsLeftDeep) {
  // `a JOIN b ON .. JOIN c ON ..` parses as Join(Join(a, b), c); each Join
  // carries its own estimates.
  EXPECT_EQ(ExplainText(&db_, "SELECT label FROM p1 JOIN p2 ON p1.k = p2.k "
                              "JOIN dim ON p1.k = dim.k"),
            "Project label\n"
            "  Join INNER on k = k est: left=357 right=4 out=357\n"
            "    Join INNER on k = k est: left=50 right=50 out=357\n"
            "      Scan p1\n"
            "      Scan p2\n"
            "    Scan dim\n");
}

TEST_F(PlanTest, GoldenHavingAndOrderByLowering) {
  // HAVING lowers onto a Filter above the aggregate (over the hidden __agg
  // slot), ORDER BY ... DESC onto the existing Sort node above the final
  // projection — no new plan kinds.
  EXPECT_EQ(ExplainText(&db_, "SELECT g, count(*) AS n FROM p1 GROUP BY g "
                              "HAVING count(*) > 10 ORDER BY g DESC"),
            "Sort g DESC\n"
            "  Project __key0 AS g, __agg0 AS n\n"
            "    Filter (__agg0 > 10)\n"
            "      Aggregate keys=[g AS __key0] aggs=[count(*) AS __agg0]\n"
            "        Scan p1 cols=[g]\n");
}

TEST_F(PlanTest, JoinFingerprintStableAcrossCostModelAndStrategy) {
  // Strategy, estimates and costs are physical annotations: the canonical
  // rendering omits them, so flipping the cost model or forcing a strategy
  // never changes the fingerprint — a strategy flip must not fracture the
  // gateway result cache.
  const std::string sql =
      "SELECT g, x, label FROM p1 JOIN dim ON p1.k = dim.k WHERE x > 0";
  auto fingerprint = [&](int force, bool cost_model) {
    db_.set_cost_model(cost_model);
    db_.set_force_join_strategy(force);
    Result<PlanPtr> plan = db_.TryPlanSelectSql(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? PlanFingerprint(**plan) : 0;
  };
  const uint64_t base = fingerprint(-1, true);
  EXPECT_EQ(base, fingerprint(-1, false));
  EXPECT_EQ(base,
            fingerprint(static_cast<int>(JoinStrategy::kBroadcast), true));
  EXPECT_EQ(base,
            fingerprint(static_cast<int>(JoinStrategy::kCollect), true));
  db_.set_force_join_strategy(-1);
  db_.set_cost_model(true);
}

TEST_F(PlanTest, GoldenProjectionPruningAndEarlySort) {
  // ORDER BY resolves in the input, so the sort runs before the projection;
  // the scan is pruned to the referenced columns.
  EXPECT_EQ(ExplainText(&db_, "SELECT g FROM p1 WHERE x > 1 ORDER BY g"),
            "Project g\n"
            "  Sort g ASC\n"
            "    Filter (x > 1)\n"
            "      Scan p1 cols=[g, x]\n");
}

TEST_F(PlanTest, GoldenMergeAggregateDecomposition) {
  EXPECT_EQ(
      ExplainText(&db_, "SELECT g, avg(x) AS mean FROM m WHERE k < 5 "
                        "GROUP BY g ORDER BY g LIMIT 2"),
      "Limit 2\n"
      "  Sort g ASC\n"
      "    Project __key0 AS g, __agg0 AS mean\n"
      "      Project __key0 AS __key0, (__p0_ca / __p0_cb) AS __agg0\n"
      "        Aggregate keys=[__key0 AS __key0] "
      "aggs=[sum(__p0_a) AS __p0_ca, sum(__p0_b) AS __p0_cb]\n"
      "          MergeUnion m\n"
      "            Project __key0 AS __key0, __agg0 AS __p0_a, "
      "__agg1 AS __p0_b\n"
      "              Aggregate keys=[g AS __key0] "
      "aggs=[sum(x) AS __agg0, count(x) AS __agg1]\n"
      "                Filter (k < 5)\n"
      "                  Scan p1\n"
      "            Project __key0 AS __key0, __agg0 AS __p0_a, "
      "__agg1 AS __p0_b\n"
      "              Aggregate keys=[g AS __key0] "
      "aggs=[sum(x) AS __agg0, count(x) AS __agg1]\n"
      "                Filter (k < 5)\n"
      "                  Scan p2\n"
      "            Project __key0 AS __key0, __agg0 AS __p0_a, "
      "__agg1 AS __p0_b\n"
      "              Aggregate keys=[g AS __key0] "
      "aggs=[sum(x) AS __agg0, count(x) AS __agg1]\n"
      "                Filter (k < 5)\n"
      "                  Scan p3\n");
}

TEST_F(PlanTest, CountDistinctOverMergeBypassesDecomposition) {
  // Regression for the latent null-expression bug in the legacy pushdown's
  // final projection: COUNT(DISTINCT) must bypass the merge-aggregate rule
  // entirely (it does not decompose), with pushdown left enabled.
  ASSERT_TRUE(db_.aggregate_pushdown());
  EXPECT_EQ(ExplainText(&db_, "SELECT count(distinct g) AS kinds FROM m"),
            "Project __agg0 AS kinds\n"
            "  Aggregate aggs=[count(distinct g) AS __agg0]\n"
            "    MergeUnion m\n"
            "      Scan p1 cols=[g]\n"
            "      Scan p2 cols=[g]\n"
            "      Scan p3 cols=[g]\n");

  Result<Table> on = db_.ExecuteSql("SELECT count(distinct g) AS kinds, "
                                    "count(distinct k) AS kk FROM m");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(on->At(0, 0).int_value(), 3);
  EXPECT_EQ(on->At(0, 1).int_value(), 7);

  // Grouped variant, against the optimizer-off plan, byte-for-byte.
  const std::string sql =
      "SELECT g, count(distinct k) AS kk FROM m GROUP BY g ORDER BY g";
  Result<Table> grouped_on = db_.ExecuteSql(sql);
  ASSERT_TRUE(grouped_on.ok()) << grouped_on.status().ToString();
  db_.set_optimizer_enabled(false);
  Result<Table> grouped_off = db_.ExecuteSql(sql);
  db_.set_optimizer_enabled(true);
  ASSERT_TRUE(grouped_off.ok());
  EXPECT_EQ(Bytes(*grouped_on), Bytes(*grouped_off));
}

TEST_F(PlanTest, OptimizerParityOverGeneratedCorpus) {
  // Every rule except the merge-aggregate decomposition is bit-exact, so the
  // optimized plan must produce byte-identical tables. The merge-aggregate
  // rule is excluded here (it reassociates float sums; pushdown_test pins
  // its near-equality) by disabling aggregate pushdown for the corpus.
  db_.set_aggregate_pushdown(false);

  std::vector<std::string> corpus;
  const std::vector<std::string> sources = {"m", "p1"};
  const std::vector<std::string> selects = {
      "*", "g, x", "x + k AS xk", "DISTINCT g"};
  const std::vector<std::string> wheres = {
      "", " WHERE x > 0", " WHERE k % 2 = 0 AND x < 1"};
  const std::vector<std::string> tails = {
      "", " ORDER BY g LIMIT 7", " LIMIT 5"};
  for (const std::string& src : sources) {
    for (const std::string& sel : selects) {
      for (const std::string& where : wheres) {
        for (const std::string& tail : tails) {
          corpus.push_back("SELECT " + sel + " FROM " + src + where + tail);
        }
      }
    }
  }
  const std::vector<std::string> aggs = {
      "g, count(*) AS n", "k, sum(x) AS s, avg(x) AS mean",
      "g, min(x) AS lo, stddev(x) AS sd"};
  for (const std::string& src : sources) {
    for (const std::string& sel : aggs) {
      for (const std::string& where : wheres) {
        const std::string key = sel.substr(0, 1);
        corpus.push_back("SELECT " + sel + " FROM " + src + where +
                         " GROUP BY " + key + " ORDER BY " + key);
      }
    }
  }
  corpus.push_back("SELECT g, label FROM p1 JOIN dim ON p1.k = dim.k "
                   "WHERE x > 0 ORDER BY g LIMIT 9");
  corpus.push_back("SELECT count(*) AS n FROM m HAVING count(*) > 0");

  ThreadPool pool(8);
  ExecContext parallel_ctx;
  parallel_ctx.pool = &pool;
  parallel_ctx.morsel_size = 32;  // many morsels over 150 rows
  ExecContext serial_ctx;
  serial_ctx.morsel_size = 32;

  for (const ExecContext* ctx : {&serial_ctx, &parallel_ctx}) {
    db_.set_exec_context(ctx);
    for (const std::string& sql : corpus) {
      db_.set_optimizer_enabled(true);
      Result<Table> on = db_.ExecuteSql(sql);
      ASSERT_TRUE(on.ok()) << sql << ": " << on.status().ToString();
      db_.set_optimizer_enabled(false);
      Result<Table> off = db_.ExecuteSql(sql);
      ASSERT_TRUE(off.ok()) << sql << ": " << off.status().ToString();
      EXPECT_EQ(Bytes(*on), Bytes(*off))
          << sql << " (threads=" << (ctx->pool != nullptr ? 8 : 1) << ")";
    }
  }
  db_.set_optimizer_enabled(true);
}

class PlanRemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(remote_.ExecuteSql("CREATE TABLE d (g varchar, x double, "
                                   "k bigint)")
                    .ok());
    ASSERT_TRUE(remote_.ExecuteSql("INSERT INTO d VALUES ('a', 1.0, 1), "
                                   "('b', 2.0, 2), ('c', 3.0, 1)")
                    .ok());
    master_.SetRemoteFetcher(
        [this](const std::string&, const std::string& name) {
          return remote_.GetTable(name);
        });
    master_.SetRemoteQueryRunner(
        [this](const std::string&, const std::string& sql) {
          return remote_.ExecuteSql(sql);
        });
    ASSERT_TRUE(master_.ExecuteSql("CREATE REMOTE TABLE rd ON 'w1' AS d")
                    .ok());
    ASSERT_TRUE(master_.ExecuteSql("CREATE TABLE lp (g varchar, x double, "
                                   "k bigint)")
                    .ok());
    ASSERT_TRUE(master_.ExecuteSql("INSERT INTO lp VALUES ('d', 4.0, 1)")
                    .ok());
    ASSERT_TRUE(master_.ExecuteSql("CREATE MERGE TABLE fm (rd, lp)").ok());
  }

  Database remote_{"workerdb"};
  Database master_{"masterdb"};
};

TEST_F(PlanRemoteTest, GoldenRemoteScanCarriesFilterColumnsAndLimit) {
  EXPECT_EQ(
      ExplainText(&master_,
                  "SELECT x, g FROM rd WHERE k = 1 AND x > 0.5 LIMIT 4"),
      "Limit 4\n"
      "  Project x, g\n"
      "    RemoteScan rd on w1 remote=d cols=[x, g] "
      "filter=((k = 1) and (x > 0.5)) limit=4\n");

  Result<Table> out =
      master_.ExecuteSql("SELECT x, g FROM rd WHERE k = 1 AND x > 0.5 "
                         "LIMIT 4");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsDouble(), 1.0);
  EXPECT_EQ(out->At(1, 0).AsDouble(), 3.0);
}

TEST_F(PlanRemoteTest, GoldenFederatedMergeFilterPushdown) {
  EXPECT_EQ(ExplainText(&master_, "SELECT x FROM fm WHERE k = 1"),
            "Project x\n"
            "  MergeUnion fm\n"
            "    RemoteScan rd on w1 remote=d filter=(k = 1)\n"
            "    Filter (k = 1)\n"
            "      Scan lp\n");
  Result<Table> out = master_.ExecuteSql("SELECT x FROM fm WHERE k = 1");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
}

TEST_F(PlanRemoteTest, GoldenMergeAggregatePartialsShipAsSql) {
  EXPECT_EQ(
      ExplainText(&master_, "SELECT g, sum(x) AS s FROM fm GROUP BY g"),
      "Project __key0 AS g, __agg0 AS s\n"
      "  Project __key0 AS __key0, __p0_ca AS __agg0\n"
      "    Aggregate keys=[__key0 AS __key0] aggs=[sum(__p0_a) AS __p0_ca]\n"
      "      MergeUnion fm\n"
      "        RemoteScan rd on w1 remote=d "
      "sql=[SELECT g AS __key0, sum(x) AS __p0_a FROM d GROUP BY g]\n"
      "        Project __key0 AS __key0, __agg0 AS __p0_a\n"
      "          Aggregate keys=[g AS __key0] aggs=[sum(x) AS __agg0]\n"
      "            Scan lp cols=[g, x]\n");
}

TEST_F(PlanRemoteTest, GoldenJoinDerivedKeyFilterReachesBothSides) {
  // `rd.k = cohort.pid AND k = 1` implies `pid = 1` on every surviving row,
  // so the equality reaches BOTH inputs: the remote scan ships it as its
  // filter and the local side is filtered before the build. The original
  // Filter stays above (pushes are individually sound, never load-bearing).
  ASSERT_TRUE(
      master_.ExecuteSql("CREATE TABLE cohort (pid bigint, label varchar)")
          .ok());
  ASSERT_TRUE(master_
                  .ExecuteSql("INSERT INTO cohort VALUES (1, 'case'), "
                              "(2, 'control')")
                  .ok());
  const std::string sql =
      "SELECT label FROM rd JOIN cohort ON k = pid WHERE k = 1";
  EXPECT_EQ(ExplainText(&master_, sql),
            "Project label\n"
            "  Filter (k = 1)\n"
            "    Join INNER on k = pid\n"
            "      RemoteScan rd on w1 remote=d filter=(k = 1)\n"
            "      Filter (pid = 1)\n"
            "        Scan cohort\n");
  Result<Table> on = master_.ExecuteSql(sql);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  master_.set_optimizer_enabled(false);
  Result<Table> off = master_.ExecuteSql(sql);
  master_.set_optimizer_enabled(true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(Bytes(*on), Bytes(*off));
}

TEST_F(PlanRemoteTest, OptimizerParityAcrossTheWire) {
  // Pushed-down remote SQL must select exactly the rows/columns a local
  // evaluation would: byte parity for filtered, pruned, limited queries.
  const std::vector<std::string> corpus = {
      "SELECT x FROM fm WHERE k = 1",
      "SELECT g, x FROM rd WHERE x > 1.5",
      "SELECT x FROM rd LIMIT 2",
      "SELECT g FROM fm WHERE g <> 'b' ORDER BY g",
  };
  for (const std::string& sql : corpus) {
    master_.set_optimizer_enabled(true);
    Result<Table> on = master_.ExecuteSql(sql);
    ASSERT_TRUE(on.ok()) << sql << ": " << on.status().ToString();
    master_.set_optimizer_enabled(false);
    Result<Table> off = master_.ExecuteSql(sql);
    ASSERT_TRUE(off.ok()) << sql;
    master_.set_optimizer_enabled(true);
    EXPECT_EQ(Bytes(*on), Bytes(*off)) << sql;
  }
}

TEST(PlanFederationTest, ScanPushdownShrinksWireBytes) {
  // A ~1%-selective filter over a federated merge view: with the optimizer
  // on, only matching rows (in one pruned column) cross the bus; off, both
  // relations are fetched whole. E15 measures the same effect at bench
  // scale; this pins the >=5x floor.
  federation::MasterNode master;
  mip::Rng rng(99);
  for (const std::string id : {"w1", "w2"}) {
    ASSERT_TRUE(master.AddWorker(id).ok());
    Schema schema;
    ASSERT_TRUE(schema.AddField({"x", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"k", DataType::kInt64}).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(t.AppendRow({Value::Double(rng.NextGaussian()),
                               Value::Int(static_cast<int64_t>(
                                   rng.NextBounded(100)))})
                      .ok());
    }
    ASSERT_TRUE(master.LoadDataset(id, "d", std::move(t)).ok());
  }
  std::string view = *master.CreateFederatedView("d");
  const std::string sql = "SELECT x FROM " + view + " WHERE k = 3";

  // The planner's EXPLAIN shows every remote part scanning with the filter
  // pushed into it (and only the needed column fetched).
  Result<Table> plan = master.local_db().ExecuteSql("EXPLAIN " + sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool saw_pushed_remote_scan = false;
  for (size_t r = 0; r < plan->num_rows(); ++r) {
    const std::string line = plan->At(r, 0).string_value();
    if (line.find("RemoteScan") != std::string::npos) {
      EXPECT_NE(line.find("filter=(k = 3)"), std::string::npos) << line;
      EXPECT_NE(line.find("cols=[x]"), std::string::npos) << line;
      saw_pushed_remote_scan = true;
    }
  }
  EXPECT_TRUE(saw_pushed_remote_scan);

  master.local_db().set_optimizer_enabled(false);
  master.bus().ResetStats();
  Result<Table> pulled = master.local_db().ExecuteSql(sql);
  ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
  const uint64_t pull_wire = master.bus().stats().bytes_wire;

  master.local_db().set_optimizer_enabled(true);
  master.bus().ResetStats();
  Result<Table> pushed = master.local_db().ExecuteSql(sql);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  const uint64_t push_wire = master.bus().stats().bytes_wire;

  EXPECT_EQ(Bytes(*pulled), Bytes(*pushed));
  EXPECT_GT(pulled->num_rows(), 0u);
  EXPECT_GE(pull_wire, 5u * push_wire)
      << "pull=" << pull_wire << " push=" << push_wire;
}

}  // namespace
}  // namespace mip::engine
