#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "algorithms/anova.h"
#include "algorithms/calibration_belt.h"
#include "algorithms/decision_tree.h"
#include "algorithms/descriptive.h"
#include "algorithms/kaplan_meier.h"
#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "algorithms/logistic_regression.h"
#include "algorithms/naive_bayes.h"
#include "algorithms/pca.h"
#include "algorithms/pearson.h"
#include "algorithms/ttest.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "federation/master.h"

namespace mip::algorithms {
namespace {

using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;
using federation::AggregationMode;
using federation::FederationSession;
using federation::MasterNode;

// Shared fixture: a 3-hospital federation holding a synthetic regression /
// classification dataset split across sites, plus a pooled copy on a
// single-worker federation for equivalence checks.
class AlgorithmsFixture : public ::testing::Test {
 protected:
  static constexpr int kRowsPerSite = 160;

  void SetUp() override {
    Rng rng(20240101);
    Schema schema;
    ASSERT_TRUE(schema.AddField({"x1", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"x2", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"y", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"ybin", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"grp", DataType::kString}).ok());

    Table pooled = Table::Empty(schema);
    for (const std::string site : {"s1", "s2", "s3"}) {
      ASSERT_TRUE(fed_.AddWorker(site).ok());
      Table local = Table::Empty(schema);
      for (int i = 0; i < kRowsPerSite; ++i) {
        const double x1 = rng.NextGaussian(0, 2);
        const double x2 = rng.NextGaussian(1, 1.5);
        // y = 3 + 2 x1 - 1.5 x2 + noise.
        const double y = 3.0 + 2.0 * x1 - 1.5 * x2 + rng.NextGaussian(0, 1);
        const double z = 0.8 * x1 - 0.5 * x2;
        const double ybin =
            rng.NextDouble() < 1.0 / (1.0 + std::exp(-z)) ? 1.0 : 0.0;
        const std::string grp =
            ybin > 0.5 ? "case" : (rng.NextDouble() < 0.5 ? "ctl_a" : "ctl_b");
        std::vector<Value> row = {Value::Double(x1), Value::Double(x2),
                                  Value::Double(y), Value::Double(ybin),
                                  Value::String(grp)};
        ASSERT_TRUE(local.AppendRow(row).ok());
        ASSERT_TRUE(pooled.AppendRow(row).ok());
      }
      ASSERT_TRUE(fed_.LoadDataset(site, "study", std::move(local)).ok());
    }
    ASSERT_TRUE(central_.AddWorker("single").ok());
    ASSERT_TRUE(central_.LoadDataset("single", "study", std::move(pooled))
                    .ok());
  }

  FederationSession FedSession() { return *fed_.StartSession({"study"}); }
  FederationSession CentralSession() {
    return *central_.StartSession({"study"});
  }

  MasterNode fed_;
  MasterNode central_;
};

// --- Descriptive (E1) --------------------------------------------------------

TEST_F(AlgorithmsFixture, DescriptiveFederatedMatchesPooled) {
  DescriptiveSpec spec;
  spec.datasets = {"study"};
  spec.variables = {"x1", "x2", "y"};
  FederationSession fed = FedSession();
  FederationSession central = CentralSession();
  DescriptiveResult dist = *RunDescriptive(&fed, spec);
  DescriptiveResult pooled = *RunDescriptive(&central, spec);
  ASSERT_EQ(dist.federated.size(), 3u);
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(dist.federated[v].datapoints, pooled.federated[v].datapoints);
    EXPECT_NEAR(dist.federated[v].mean, pooled.federated[v].mean, 1e-9);
    EXPECT_NEAR(dist.federated[v].se, pooled.federated[v].se, 1e-9);
    EXPECT_NEAR(dist.federated[v].min, pooled.federated[v].min, 1e-9);
    EXPECT_NEAR(dist.federated[v].max, pooled.federated[v].max, 1e-9);
  }
  // Per-dataset rows carry exact quartiles when the dataset lives on one
  // worker (the pooled single-site federation).
  ASSERT_FALSE(pooled.per_dataset.empty());
  for (const auto& row : pooled.per_dataset) {
    EXPECT_LE(row.q1, row.q2);
    EXPECT_LE(row.q2, row.q3);
    EXPECT_GE(row.q1, row.min);
    EXPECT_LE(row.q3, row.max);
  }
  // Multi-worker datasets still merge counts/extrema exactly.
  ASSERT_FALSE(dist.per_dataset.empty());
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(dist.per_dataset[v].datapoints,
              pooled.per_dataset[v].datapoints);
    EXPECT_NEAR(dist.per_dataset[v].min, pooled.per_dataset[v].min, 1e-9);
  }
}

TEST_F(AlgorithmsFixture, DescriptiveSecureMatchesPlainWithinFixedPoint) {
  DescriptiveSpec plain;
  plain.datasets = {"study"};
  plain.variables = {"x1", "y"};
  DescriptiveSpec secure = plain;
  secure.mode = AggregationMode::kSecure;
  FederationSession s1 = FedSession();
  FederationSession s2 = FedSession();
  DescriptiveResult p = *RunDescriptive(&s1, plain);
  DescriptiveResult s = *RunDescriptive(&s2, secure);
  for (size_t v = 0; v < 2; ++v) {
    EXPECT_EQ(p.federated[v].datapoints, s.federated[v].datapoints);
    EXPECT_NEAR(p.federated[v].mean, s.federated[v].mean, 1e-3);
    EXPECT_NEAR(p.federated[v].min, s.federated[v].min, 1e-3);
    EXPECT_NEAR(p.federated[v].max, s.federated[v].max, 1e-3);
  }
}

// --- Linear regression (E2, Figure 2) ---------------------------------------

TEST_F(AlgorithmsFixture, LinearRegressionRecoversCoefficients) {
  LinearRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "y";
  FederationSession session = FedSession();
  LinearRegressionResult r = *RunLinearRegression(&session, spec);
  ASSERT_EQ(r.coefficients.size(), 3u);
  EXPECT_NEAR(r.coefficients[0].estimate, 3.0, 0.2);   // intercept
  EXPECT_NEAR(r.coefficients[1].estimate, 2.0, 0.1);   // x1
  EXPECT_NEAR(r.coefficients[2].estimate, -1.5, 0.1);  // x2
  EXPECT_GT(r.r_squared, 0.8);
  EXPECT_LT(r.coefficients[1].p_value, 1e-6);
  EXPECT_LT(r.f_p_value, 1e-6);
  EXPECT_EQ(r.n, 3 * kRowsPerSite);
}

TEST_F(AlgorithmsFixture, LinearRegressionFederatedEqualsPooled) {
  LinearRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "y";
  FederationSession fed = FedSession();
  FederationSession central = CentralSession();
  LinearRegressionResult distributed = *RunLinearRegression(&fed, spec);
  LinearRegressionResult pooled = *RunLinearRegression(&central, spec);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(distributed.coefficients[i].estimate,
                pooled.coefficients[i].estimate, 1e-9);
    EXPECT_NEAR(distributed.coefficients[i].std_error,
                pooled.coefficients[i].std_error, 1e-9);
  }
  EXPECT_NEAR(distributed.r_squared, pooled.r_squared, 1e-9);
}

TEST_F(AlgorithmsFixture, LinearRegressionSecureMatchesPlain) {
  LinearRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "y";
  FederationSession s1 = FedSession();
  LinearRegressionResult plain = *RunLinearRegression(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = FedSession();
  LinearRegressionResult secure = *RunLinearRegression(&s2, spec);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(plain.coefficients[i].estimate,
                secure.coefficients[i].estimate, 1e-3);
  }
}

TEST_F(AlgorithmsFixture, LinearRegressionCvReportsReasonableError) {
  LinearRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "y";
  FederationSession session = FedSession();
  LinearRegressionCvResult cv = *RunLinearRegressionCv(&session, spec, 5);
  EXPECT_EQ(cv.folds, 5);
  EXPECT_EQ(cv.rmse_per_fold.size(), 5u);
  // Noise sd is 1.0; held-out RMSE should sit near it.
  EXPECT_NEAR(cv.mean_rmse, 1.0, 0.25);
  EXPECT_LT(cv.mean_mae, cv.mean_rmse);
}

TEST_F(AlgorithmsFixture, LinearRegressionDegenerateErrors) {
  LinearRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x1"};  // duplicate column -> singular X'X
  spec.target = "y";
  FederationSession session = FedSession();
  EXPECT_FALSE(RunLinearRegression(&session, spec).ok());
}

// --- Logistic regression -----------------------------------------------------

TEST_F(AlgorithmsFixture, LogisticRegressionRecoversSignal) {
  LogisticRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "ybin";
  FederationSession session = FedSession();
  LogisticRegressionResult r = *RunLogisticRegression(&session, spec);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.coefficients[1].estimate, 0.8, 0.3);
  EXPECT_NEAR(r.coefficients[2].estimate, -0.5, 0.3);
  EXPECT_GT(r.accuracy, 0.6);
  EXPECT_GT(r.pseudo_r_squared, 0.05);
  EXPECT_LT(r.log_likelihood, 0.0);
}

TEST_F(AlgorithmsFixture, LogisticRegressionFederatedEqualsPooled) {
  LogisticRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "ybin";
  FederationSession fed = FedSession();
  FederationSession central = CentralSession();
  LogisticRegressionResult a = *RunLogisticRegression(&fed, spec);
  LogisticRegressionResult b = *RunLogisticRegression(&central, spec);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.coefficients[i].estimate, b.coefficients[i].estimate, 1e-6);
  }
  EXPECT_NEAR(a.log_likelihood, b.log_likelihood, 1e-6);
}

TEST_F(AlgorithmsFixture, LogisticRegressionWithCategoricalTarget) {
  LogisticRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1"};
  spec.target = "grp";
  spec.positive_class = "case";
  FederationSession session = FedSession();
  LogisticRegressionResult r = *RunLogisticRegression(&session, spec);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.coefficients[1].estimate, 0.0);  // x1 raises case odds
}

TEST_F(AlgorithmsFixture, LogisticRegressionCv) {
  LogisticRegressionSpec spec;
  spec.datasets = {"study"};
  spec.covariates = {"x1", "x2"};
  spec.target = "ybin";
  FederationSession session = FedSession();
  LogisticRegressionCvResult cv = *RunLogisticRegressionCv(&session, spec, 4);
  EXPECT_EQ(cv.accuracy_per_fold.size(), 4u);
  EXPECT_GT(cv.mean_accuracy, 0.6);
  EXPECT_EQ(cv.true_positive + cv.true_negative + cv.false_positive +
                cv.false_negative,
            3 * kRowsPerSite);
}

// --- k-means (E3) ------------------------------------------------------------

TEST_F(AlgorithmsFixture, KMeansFindsPlantedClusters) {
  // Build a dedicated 2-worker federation with 3 well-separated clusters.
  MasterNode m;
  Rng rng(5150);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"b", DataType::kFloat64}).ok());
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (const std::string site : {"w1", "w2"}) {
    ASSERT_TRUE(m.AddWorker(site).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 300; ++i) {
      const int c = static_cast<int>(rng.NextBounded(3));
      ASSERT_TRUE(
          t.AppendRow({Value::Double(centers[c][0] + rng.NextGaussian()),
                       Value::Double(centers[c][1] + rng.NextGaussian())})
              .ok());
    }
    ASSERT_TRUE(m.LoadDataset(site, "pts", std::move(t)).ok());
  }
  KMeansSpec spec;
  spec.datasets = {"pts"};
  spec.variables = {"a", "b"};
  spec.k = 3;
  spec.seed = 99;
  FederationSession session = *m.StartSession({"pts"});
  KMeansResult r = *RunKMeans(&session, spec);
  EXPECT_TRUE(r.converged);
  // Every planted center has a recovered centroid within 1.0.
  for (const auto& center : centers) {
    double best = 1e300;
    for (size_t c = 0; c < r.centroids.rows(); ++c) {
      best = std::min(best, std::hypot(r.centroids(c, 0) - center[0],
                                       r.centroids(c, 1) - center[1]));
    }
    EXPECT_LT(best, 1.0);
  }
  int64_t total = 0;
  for (int64_t n : r.cluster_sizes) total += n;
  EXPECT_EQ(total, 600);
  EXPECT_GT(r.inertia, 0.0);
}

TEST_F(AlgorithmsFixture, KMeansSecureMatchesPlain) {
  KMeansSpec spec;
  spec.datasets = {"study"};
  spec.variables = {"x1", "x2"};
  spec.k = 2;
  spec.seed = 7;
  FederationSession s1 = FedSession();
  KMeansResult plain = *RunKMeans(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = FedSession();
  KMeansResult secure = *RunKMeans(&s2, spec);
  EXPECT_LT(plain.centroids.MaxAbsDiff(secure.centroids), 0.05);
}

// --- PCA ----------------------------------------------------------------------

TEST_F(AlgorithmsFixture, PcaCorrelationEigenvaluesSumToDimension) {
  PcaSpec spec;
  spec.datasets = {"study"};
  spec.variables = {"x1", "x2", "y"};
  FederationSession session = FedSession();
  PcaResult r = *RunPca(&session, spec);
  double total = 0;
  for (double v : r.eigenvalues) total += v;
  EXPECT_NEAR(total, 3.0, 1e-9);  // trace of a correlation matrix
  EXPECT_GE(r.eigenvalues[0], r.eigenvalues[1]);
  double ratio_total = 0;
  for (double v : r.explained_ratio) ratio_total += v;
  EXPECT_NEAR(ratio_total, 1.0, 1e-9);
  // y is driven by x1/x2: the first PC dominates.
  EXPECT_GT(r.explained_ratio[0], 0.4);
}

TEST_F(AlgorithmsFixture, PcaFederatedEqualsPooled) {
  PcaSpec spec;
  spec.datasets = {"study"};
  spec.variables = {"x1", "x2", "y"};
  FederationSession fed = FedSession();
  FederationSession central = CentralSession();
  PcaResult a = *RunPca(&fed, spec);
  PcaResult b = *RunPca(&central, spec);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.eigenvalues[i], b.eigenvalues[i], 1e-9);
    EXPECT_NEAR(a.means[i], b.means[i], 1e-9);
  }
}

// --- Pearson ------------------------------------------------------------------

TEST_F(AlgorithmsFixture, PearsonMatchesDirectComputation) {
  PearsonSpec spec;
  spec.datasets = {"study"};
  spec.variables = {"x1", "y", "x2"};
  FederationSession session = FedSession();
  PearsonResult r = *RunPearson(&session, spec);
  // x1 strongly positively correlated with y by construction.
  const double r_x1y = *r.Correlation("x1", "y");
  EXPECT_GT(r_x1y, 0.7);
  const double r_x2y = *r.Correlation("x2", "y");
  EXPECT_LT(r_x2y, -0.3);
  EXPECT_NEAR(*r.Correlation("x1", "x1"), 1.0, 1e-12);
  // Symmetry.
  EXPECT_NEAR(*r.Correlation("y", "x1"), r_x1y, 1e-12);
  EXPECT_LT(r.p_values(0, 1), 1e-10);
  EXPECT_FALSE(r.Correlation("x1", "nope").ok());
}

// --- t-tests ------------------------------------------------------------------

TEST_F(AlgorithmsFixture, TTestOneSample) {
  TTestOneSampleSpec spec;
  spec.datasets = {"study"};
  spec.variable = "x2";  // mean 1 by construction
  spec.mu0 = 1.0;
  FederationSession s1 = FedSession();
  TTestResult at_mean = *RunTTestOneSample(&s1, spec);
  EXPECT_GT(at_mean.p_value, 0.01);  // cannot reject the true mean
  EXPECT_LT(at_mean.ci_low, 0.1);
  EXPECT_GT(at_mean.ci_high, -0.1);

  spec.mu0 = 0.0;
  FederationSession s2 = FedSession();
  TTestResult off_mean = *RunTTestOneSample(&s2, spec);
  EXPECT_LT(off_mean.p_value, 1e-6);  // strongly rejects mu0 = 0
  EXPECT_NEAR(off_mean.mean_difference, 1.0, 0.25);
}

TEST_F(AlgorithmsFixture, TTestIndependentSeparatesGroups) {
  TTestIndependentSpec spec;
  spec.datasets = {"study"};
  spec.variable = "x1";
  spec.group_variable = "grp";
  spec.group_a = "case";
  spec.group_b = "ctl_a";
  FederationSession session = FedSession();
  TTestResult welch = *RunTTestIndependent(&session, spec);
  // Cases have higher x1 by construction of ybin.
  EXPECT_GT(welch.mean_difference, 0.5);
  EXPECT_LT(welch.p_value, 1e-4);
  EXPECT_GT(welch.n1, 50);
  EXPECT_GT(welch.n2, 50);

  spec.pooled = true;
  FederationSession s2 = FedSession();
  TTestResult pooled = *RunTTestIndependent(&s2, spec);
  EXPECT_NEAR(pooled.degrees_of_freedom,
              static_cast<double>(welch.n1 + welch.n2 - 2), 1e-9);
}

TEST_F(AlgorithmsFixture, TTestPaired) {
  TTestPairedSpec spec;
  spec.datasets = {"study"};
  spec.variable_a = "y";
  spec.variable_b = "x1";
  FederationSession session = FedSession();
  TTestResult r = *RunTTestPaired(&session, spec);
  // E[y - x1] = 3 + x1 - 1.5 x2 ... nonzero; just check internal coherence.
  EXPECT_GT(std::fabs(r.t_statistic), 2.0);
  EXPECT_EQ(r.n1, 3 * kRowsPerSite);
  EXPECT_LT(r.ci_low, r.mean_difference);
  EXPECT_GT(r.ci_high, r.mean_difference);
}

// --- ANOVA --------------------------------------------------------------------

TEST_F(AlgorithmsFixture, AnovaOneWayDetectsGroupEffect) {
  AnovaOneWaySpec spec;
  spec.datasets = {"study"};
  spec.outcome = "x1";
  spec.factor = "grp";
  FederationSession session = FedSession();
  AnovaOneWayResult r = *RunAnovaOneWay(&session, spec);
  EXPECT_EQ(r.levels.size(), 3u);
  EXPECT_LT(r.p_value, 1e-4);  // case group differs on x1
  EXPECT_GT(r.f_statistic, 5.0);
  EXPECT_NEAR(r.df_between, 2.0, 1e-12);
}

TEST_F(AlgorithmsFixture, AnovaOneWayFixedLevelsMatchesDiscovered) {
  AnovaOneWaySpec discovered;
  discovered.datasets = {"study"};
  discovered.outcome = "x1";
  discovered.factor = "grp";
  FederationSession s1 = FedSession();
  AnovaOneWayResult a = *RunAnovaOneWay(&s1, discovered);

  AnovaOneWaySpec fixed = discovered;
  fixed.levels = {"case", "ctl_a", "ctl_b"};
  FederationSession s2 = FedSession();
  AnovaOneWayResult b = *RunAnovaOneWay(&s2, fixed);
  EXPECT_NEAR(a.f_statistic, b.f_statistic, 1e-9);

  // Secure mode requires levels.
  AnovaOneWaySpec secure = discovered;
  secure.mode = AggregationMode::kSecure;
  FederationSession s3 = FedSession();
  EXPECT_FALSE(RunAnovaOneWay(&s3, secure).ok());
  secure.levels = fixed.levels;
  FederationSession s4 = FedSession();
  AnovaOneWayResult c = *RunAnovaOneWay(&s4, secure);
  EXPECT_NEAR(c.f_statistic, a.f_statistic, 0.1);
}

TEST(AnovaTwoWayTest, DetectsMainEffectsAndInteraction) {
  MasterNode m;
  Rng rng(31);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"out", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"fa", DataType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"fb", DataType::kString}).ok());
  for (const std::string site : {"w1", "w2"}) {
    ASSERT_TRUE(m.AddWorker(site).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 400; ++i) {
      const bool a = rng.NextDouble() < 0.5;
      const bool b = rng.NextDouble() < 0.5;
      // Effects: A +2, B +1, interaction +3 only when both.
      const double y = (a ? 2 : 0) + (b ? 1 : 0) + (a && b ? 3 : 0) +
                       rng.NextGaussian();
      ASSERT_TRUE(t.AppendRow({Value::Double(y),
                               Value::String(a ? "a1" : "a0"),
                               Value::String(b ? "b1" : "b0")}).ok());
    }
    ASSERT_TRUE(m.LoadDataset(site, "d", std::move(t)).ok());
  }
  AnovaTwoWaySpec spec;
  spec.datasets = {"d"};
  spec.outcome = "out";
  spec.factor_a = "fa";
  spec.factor_b = "fb";
  spec.levels_a = {"a0", "a1"};
  spec.levels_b = {"b0", "b1"};
  federation::FederationSession session = *m.StartSession({"d"});
  AnovaTwoWayResult r = *RunAnovaTwoWay(&session, spec);
  EXPECT_LT(r.effect_a.p_value, 1e-6);
  EXPECT_LT(r.effect_b.p_value, 1e-6);
  EXPECT_LT(r.interaction.p_value, 1e-6);
  EXPECT_GT(r.effect_a.f_statistic, r.effect_b.f_statistic);
}

// --- Naive Bayes --------------------------------------------------------------

TEST_F(AlgorithmsFixture, NaiveBayesLearnsAndPredicts) {
  NaiveBayesSpec spec;
  spec.datasets = {"study"};
  spec.numeric_features = {"x1", "x2"};
  spec.target = "grp";
  FederationSession session = FedSession();
  NaiveBayesModel model = *RunNaiveBayes(&session, spec);
  EXPECT_EQ(model.classes.size(), 3u);
  double prior_total = 0;
  for (double p : model.priors) prior_total += p;
  EXPECT_NEAR(prior_total, 1.0, 1e-9);
  // A very high x1 should look like a "case".
  EXPECT_EQ(*model.Predict({4.0, 1.0}, {}), "case");
}

TEST_F(AlgorithmsFixture, NaiveBayesWithCategoricalFeature) {
  NaiveBayesSpec spec;
  spec.datasets = {"study"};
  spec.numeric_features = {"x1"};
  spec.categorical_features = {"grp"};
  spec.target = "grp";  // degenerate but exercises the counting path
  FederationSession session = FedSession();
  NaiveBayesModel model = *RunNaiveBayes(&session, spec);
  // grp predicts itself perfectly through the categorical likelihood.
  EXPECT_EQ(*model.Predict({0.0}, {"case"}), "case");
  EXPECT_EQ(*model.Predict({0.0}, {"ctl_b"}), "ctl_b");
}

TEST_F(AlgorithmsFixture, NaiveBayesCvAccuracyBeatsChance) {
  NaiveBayesSpec spec;
  spec.datasets = {"study"};
  spec.numeric_features = {"x1", "x2"};
  spec.target = "ybin";  // numeric 0/1 treated as categorical labels
  FederationSession session = FedSession();
  NaiveBayesCvResult cv = *RunNaiveBayesCv(&session, spec, 4);
  EXPECT_EQ(cv.accuracy_per_fold.size(), 4u);
  EXPECT_GT(cv.mean_accuracy, 0.55);
}

// --- Decision trees ------------------------------------------------------------

TEST(Id3Test, LearnsASimpleRule) {
  MasterNode m;
  Rng rng(41);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"color", DataType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"size", DataType::kString}).ok());
  ASSERT_TRUE(schema.AddField({"label", DataType::kString}).ok());
  for (const std::string site : {"w1", "w2"}) {
    ASSERT_TRUE(m.AddWorker(site).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 200; ++i) {
      const bool red = rng.NextDouble() < 0.5;
      const bool big = rng.NextDouble() < 0.5;
      // label = yes iff red (size is irrelevant noise).
      ASSERT_TRUE(t.AppendRow({Value::String(red ? "red" : "blue"),
                               Value::String(big ? "big" : "small"),
                               Value::String(red ? "yes" : "no")}).ok());
    }
    ASSERT_TRUE(m.LoadDataset(site, "d", std::move(t)).ok());
  }
  Id3Spec spec;
  spec.datasets = {"d"};
  spec.features = {"size", "color"};
  spec.target = "label";
  federation::FederationSession session = *m.StartSession({"d"});
  DecisionTreeResult r = std::move(RunId3(&session, spec)).MoveValueUnsafe();
  ASSERT_FALSE(r.root->is_leaf);
  EXPECT_EQ(r.root->split_feature, "color");  // the informative feature
  for (const auto& child : r.root->children) {
    EXPECT_TRUE(child->is_leaf);
    EXPECT_NEAR(child->impurity, 0.0, 1e-9);
  }
}

TEST(CartTest, LearnsAThresholdRule) {
  MasterNode m;
  Rng rng(43);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"v", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"noise", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"label", DataType::kString}).ok());
  for (const std::string site : {"w1", "w2"}) {
    ASSERT_TRUE(m.AddWorker(site).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 300; ++i) {
      const double v = rng.NextUniform(0, 10);
      ASSERT_TRUE(t.AppendRow({Value::Double(v),
                               Value::Double(rng.NextGaussian()),
                               Value::String(v > 5.0 ? "hi" : "lo")}).ok());
    }
    ASSERT_TRUE(m.LoadDataset(site, "d", std::move(t)).ok());
  }
  CartSpec spec;
  spec.datasets = {"d"};
  spec.features = {"noise", "v"};
  spec.target = "label";
  spec.candidate_thresholds = 19;
  federation::FederationSession session = *m.StartSession({"d"});
  DecisionTreeResult r = std::move(RunCart(&session, spec)).MoveValueUnsafe();
  ASSERT_FALSE(r.root->is_leaf);
  EXPECT_EQ(r.root->split_feature, "v");
  EXPECT_NEAR(r.root->threshold, 5.0, 0.6);
  EXPECT_GE(r.nodes, 3);
}

// --- Kaplan-Meier ---------------------------------------------------------------

TEST(KaplanMeierTest, CurveMatchesHandComputedExample) {
  // Classic worked example: times 1,2,3 with events/censorings.
  MasterNode m;
  Schema schema;
  ASSERT_TRUE(schema.AddField({"t", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"e", DataType::kFloat64}).ok());
  ASSERT_TRUE(m.AddWorker("w1").ok());
  ASSERT_TRUE(m.AddWorker("w2").ok());
  // Worker 1: events at t=1 (x2), censor at t=2.
  Table t1 = Table::Empty(schema);
  ASSERT_TRUE(t1.AppendRow({Value::Double(1), Value::Double(1)}).ok());
  ASSERT_TRUE(t1.AppendRow({Value::Double(1), Value::Double(1)}).ok());
  ASSERT_TRUE(t1.AppendRow({Value::Double(2), Value::Double(0)}).ok());
  // Worker 2: event at t=3, censor at t=3.
  Table t2 = Table::Empty(schema);
  ASSERT_TRUE(t2.AppendRow({Value::Double(3), Value::Double(1)}).ok());
  ASSERT_TRUE(t2.AppendRow({Value::Double(3), Value::Double(0)}).ok());
  ASSERT_TRUE(m.LoadDataset("w1", "surv", std::move(t1)).ok());
  ASSERT_TRUE(m.LoadDataset("w2", "surv", std::move(t2)).ok());

  KaplanMeierSpec spec;
  spec.datasets = {"surv"};
  spec.time_variable = "t";
  spec.event_variable = "e";
  federation::FederationSession session = *m.StartSession({"surv"});
  KaplanMeierResult r = *RunKaplanMeier(&session, spec);
  ASSERT_EQ(r.curves.size(), 1u);
  const auto& pts = r.curves[0].points;
  ASSERT_EQ(pts.size(), 3u);
  // t=1: 5 at risk, 2 events -> S = 3/5.
  EXPECT_EQ(pts[0].at_risk, 5);
  EXPECT_NEAR(pts[0].survival, 0.6, 1e-12);
  // t=2: censoring only -> S unchanged.
  EXPECT_NEAR(pts[1].survival, 0.6, 1e-12);
  // t=3: 2 at risk, 1 event -> S = 0.6 * 1/2 = 0.3.
  EXPECT_EQ(pts[2].at_risk, 2);
  EXPECT_NEAR(pts[2].survival, 0.3, 1e-12);
  EXPECT_NEAR(r.curves[0].median_survival_time, 3.0, 1e-12);
  // CI sanity.
  for (const auto& p : pts) {
    EXPECT_LE(p.ci_low, p.survival + 1e-12);
    EXPECT_GE(p.ci_high, p.survival - 1e-12);
  }
}

TEST(KaplanMeierTest, GroupedCurvesSeparateByHazard) {
  MasterNode m;
  ASSERT_TRUE(data::SetupAlzheimerFederation(&m).ok());
  KaplanMeierSpec spec;
  spec.datasets = {"edsd_brescia", "edsd_lausanne", "edsd_lille", "adni"};
  spec.time_variable = "followup_months";
  spec.event_variable = "event";
  spec.group_variable = "diagnosis";
  federation::FederationSession session = *m.StartSession(spec.datasets);
  KaplanMeierResult r = *RunKaplanMeier(&session, spec);
  ASSERT_EQ(r.curves.size(), 3u);  // CN, MCI, AD
  std::map<std::string, double> survival_at_end;
  for (const auto& curve : r.curves) {
    survival_at_end[curve.group] = curve.points.back().survival;
  }
  // Higher severity -> lower survival (generator hazard rises with dx).
  EXPECT_GT(survival_at_end["CN"], survival_at_end["MCI"]);
  EXPECT_GT(survival_at_end["MCI"], survival_at_end["AD"]);
  // The hazard difference is large; the log-rank test must scream.
  EXPECT_GT(r.log_rank_chi2, 100.0);
  EXPECT_NEAR(r.log_rank_df, 2.0, 1e-12);
  EXPECT_LT(r.log_rank_p, 1e-10);
}

TEST(KaplanMeierTest, LogRankAcceptsEqualHazards) {
  // Two groups drawn from the SAME survival distribution: the log-rank
  // p-value should not reject at any aggressive level.
  MasterNode m;
  Rng rng(2026);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"t", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"e", DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"g", DataType::kString}).ok());
  ASSERT_TRUE(m.AddWorker("w").ok());
  Table t = Table::Empty(schema);
  for (int i = 0; i < 2000; ++i) {
    const double time = rng.NextExponential(0.05);
    const bool event = time <= 40.0;
    ASSERT_TRUE(t.AppendRow({Value::Double(std::min(time, 40.0)),
                             Value::Double(event ? 1.0 : 0.0),
                             Value::String(i % 2 == 0 ? "a" : "b")}).ok());
  }
  ASSERT_TRUE(m.LoadDataset("w", "surv", std::move(t)).ok());
  KaplanMeierSpec spec;
  spec.datasets = {"surv"};
  spec.time_variable = "t";
  spec.event_variable = "e";
  spec.group_variable = "g";
  federation::FederationSession session = *m.StartSession({"surv"});
  KaplanMeierResult r = *RunKaplanMeier(&session, spec);
  EXPECT_GT(r.log_rank_p, 0.001);
}

// --- Calibration belt -----------------------------------------------------------

TEST(CalibrationBeltTest, WellCalibratedModelCoversDiagonal) {
  MasterNode m;
  ASSERT_TRUE(m.AddWorker("w1").ok());
  ASSERT_TRUE(m.AddWorker("w2").ok());
  ASSERT_TRUE(m.LoadDataset("w1", "risk",
                            *data::GenerateRiskCohort(2500, 1, 0.0)).ok());
  ASSERT_TRUE(m.LoadDataset("w2", "risk",
                            *data::GenerateRiskCohort(2500, 2, 0.0)).ok());
  CalibrationBeltSpec spec;
  spec.datasets = {"risk"};
  spec.probability_variable = "predicted_prob";
  spec.outcome_variable = "outcome";
  federation::FederationSession session = *m.StartSession({"risk"});
  CalibrationBeltResult r = *RunCalibrationBelt(&session, spec);
  EXPECT_TRUE(r.covers_diagonal_95);
  EXPECT_EQ(r.n, 5000);
  ASSERT_FALSE(r.belt.empty());
  for (const auto& p : r.belt) {
    EXPECT_LE(p.ci95_low, p.ci80_low + 1e-12);
    EXPECT_GE(p.ci95_high, p.ci80_high - 1e-12);
  }
}

TEST(CalibrationBeltTest, MiscalibratedModelIsFlagged) {
  MasterNode m;
  ASSERT_TRUE(m.AddWorker("w1").ok());
  ASSERT_TRUE(m.LoadDataset("w1", "risk",
                            *data::GenerateRiskCohort(4000, 3, 0.8)).ok());
  CalibrationBeltSpec spec;
  spec.datasets = {"risk"};
  spec.probability_variable = "predicted_prob";
  spec.outcome_variable = "outcome";
  federation::FederationSession session = *m.StartSession({"risk"});
  CalibrationBeltResult r = *RunCalibrationBelt(&session, spec);
  EXPECT_FALSE(r.covers_diagonal_95);
}

}  // namespace
}  // namespace mip::algorithms
