// Secure-vs-plain parity sweep: every algorithm that supports both
// aggregation modes must produce the same answer through the SMPC cluster
// (within fixed-point tolerance) as through the plain merge path.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/anova.h"
#include "algorithms/histogram.h"
#include "algorithms/pca.h"
#include "algorithms/pearson.h"
#include "algorithms/ttest.h"
#include "data/synthetic.h"
#include "federation/master.h"

namespace mip::algorithms {
namespace {

using federation::AggregationMode;
using federation::FederationSession;
using federation::MasterNode;

class ModeParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(data::SetupAlzheimerFederation(&master_, 31337).ok());
  }
  static std::vector<std::string> Datasets() {
    return {"edsd_brescia", "edsd_lausanne", "edsd_lille", "adni"};
  }
  FederationSession Session() { return *master_.StartSession(Datasets()); }
  MasterNode master_;
};

TEST_F(ModeParityTest, Pearson) {
  PearsonSpec spec;
  spec.datasets = Datasets();
  spec.variables = {"abeta42", "p_tau", "mmse"};
  FederationSession s1 = Session();
  PearsonResult plain = *RunPearson(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = Session();
  PearsonResult secure = *RunPearson(&s2, spec);
  EXPECT_EQ(plain.n, secure.n);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(plain.correlations(i, j), secure.correlations(i, j), 1e-4);
    }
  }
}

TEST_F(ModeParityTest, TTestsAllThree) {
  {
    TTestOneSampleSpec spec;
    spec.datasets = Datasets();
    spec.variable = "mmse";
    spec.mu0 = 24.0;
    FederationSession s1 = Session();
    TTestResult plain = *RunTTestOneSample(&s1, spec);
    spec.mode = AggregationMode::kSecure;
    FederationSession s2 = Session();
    TTestResult secure = *RunTTestOneSample(&s2, spec);
    EXPECT_NEAR(plain.t_statistic, secure.t_statistic, 1e-2);
    EXPECT_EQ(plain.n1, secure.n1);
  }
  {
    TTestIndependentSpec spec;
    spec.datasets = Datasets();
    spec.variable = "left_hippocampus";
    spec.group_variable = "diagnosis";
    spec.group_a = "AD";
    spec.group_b = "CN";
    FederationSession s1 = Session();
    TTestResult plain = *RunTTestIndependent(&s1, spec);
    spec.mode = AggregationMode::kSecure;
    FederationSession s2 = Session();
    TTestResult secure = *RunTTestIndependent(&s2, spec);
    EXPECT_NEAR(plain.mean_difference, secure.mean_difference, 1e-3);
    EXPECT_NEAR(plain.t_statistic, secure.t_statistic, 0.05);
  }
  {
    TTestPairedSpec spec;
    spec.datasets = Datasets();
    spec.variable_a = "left_hippocampus";
    spec.variable_b = "right_hippocampus";
    FederationSession s1 = Session();
    TTestResult plain = *RunTTestPaired(&s1, spec);
    spec.mode = AggregationMode::kSecure;
    FederationSession s2 = Session();
    TTestResult secure = *RunTTestPaired(&s2, spec);
    EXPECT_NEAR(plain.mean_difference, secure.mean_difference, 1e-3);
  }
}

TEST_F(ModeParityTest, AnovaOneWayWithFixedLevels) {
  AnovaOneWaySpec spec;
  spec.datasets = Datasets();
  spec.outcome = "p_tau";
  spec.factor = "diagnosis";
  spec.levels = {"CN", "MCI", "AD"};
  FederationSession s1 = Session();
  AnovaOneWayResult plain = *RunAnovaOneWay(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = Session();
  AnovaOneWayResult secure = *RunAnovaOneWay(&s2, spec);
  EXPECT_EQ(plain.level_counts, secure.level_counts);
  EXPECT_NEAR(plain.f_statistic, secure.f_statistic,
              0.01 * plain.f_statistic);
}

TEST_F(ModeParityTest, AnovaTwoWay) {
  AnovaTwoWaySpec spec;
  spec.datasets = Datasets();
  spec.outcome = "left_hippocampus";
  spec.factor_a = "diagnosis";
  spec.factor_b = "sex";
  spec.levels_a = {"CN", "MCI", "AD"};
  spec.levels_b = {"M", "F"};
  FederationSession s1 = Session();
  AnovaTwoWayResult plain = *RunAnovaTwoWay(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = Session();
  AnovaTwoWayResult secure = *RunAnovaTwoWay(&s2, spec);
  EXPECT_NEAR(plain.effect_a.f_statistic, secure.effect_a.f_statistic,
              0.01 * plain.effect_a.f_statistic);
  EXPECT_NEAR(plain.interaction.p_value, secure.interaction.p_value, 0.05);
}

TEST_F(ModeParityTest, Pca) {
  PcaSpec spec;
  spec.datasets = Datasets();
  spec.variables = {"abeta42", "p_tau", "left_hippocampus", "mmse"};
  FederationSession s1 = Session();
  PcaResult plain = *RunPca(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = Session();
  PcaResult secure = *RunPca(&s2, spec);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(plain.eigenvalues[i], secure.eigenvalues[i], 1e-3);
  }
}

TEST_F(ModeParityTest, NumericHistogram) {
  HistogramSpec spec;
  spec.datasets = Datasets();
  spec.variable = "age";
  spec.bins = 6;
  spec.privacy_threshold = 0;
  FederationSession s1 = Session();
  HistogramResult plain = *RunHistogram(&s1, spec);
  spec.mode = AggregationMode::kSecure;
  FederationSession s2 = Session();
  HistogramResult secure = *RunHistogram(&s2, spec);
  ASSERT_EQ(plain.bins.size(), secure.bins.size());
  for (size_t b = 0; b < plain.bins.size(); ++b) {
    EXPECT_EQ(plain.bins[b].count, secure.bins[b].count) << b;
  }
}

}  // namespace
}  // namespace mip::algorithms
