#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mip {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  MIP_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(QuarterViaMacro(8).ok());
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 3 is odd
  EXPECT_FALSE(QuarterViaMacro(5).ok());
}

TEST(BytesTest, ScalarRoundTrip) {
  BufferWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(0xDEADBEEFCAFEull);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("hello");

  BufferReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 123456u);
  EXPECT_EQ(*r.ReadU64(), 0xDEADBEEFCAFEull);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadBool(), true);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VectorRoundTrip) {
  BufferWriter w;
  w.WriteDoubleVector({1.5, -2.5, 0.0});
  w.WriteU64Vector({1, 2, 3, 4});
  w.WriteI64Vector({-1, 0, 1});
  BufferReader r(w.bytes());
  EXPECT_EQ(*r.ReadDoubleVector(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(*r.ReadU64Vector(), (std::vector<uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(*r.ReadI64Vector(), (std::vector<int64_t>{-1, 0, 1}));
}

TEST(BytesTest, TruncatedReadFails) {
  BufferWriter w;
  w.WriteU32(10);
  BufferReader r(w.bytes());
  EXPECT_TRUE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadDouble().ok());
}

TEST(BytesTest, MaliciousLengthPrefixIsRejected) {
  // A string claiming 2^31 bytes with only 4 available must error, not
  // crash.
  BufferWriter w;
  w.WriteU32(0x7FFFFFFF);
  w.AppendRaw("abcd", 4);
  BufferReader r(w.bytes());
  EXPECT_FALSE(r.ReadString().ok());
  BufferReader r2(w.bytes());
  EXPECT_FALSE(r2.ReadDoubleVector().ok());
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2024);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(555);
  const double b = 2.0;
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextLaplace(b);
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 2 * b * b, 0.3);  // Var(Laplace) = 2b^2
}

TEST(RngTest, GammaMean) {
  Rng rng(31337);
  const double shape = 2.5, scale = 1.5;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape, scale);
  EXPECT_NEAR(sum / n, shape * scale, 0.1);
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(31338);
  const double shape = 0.25, scale = 2.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGamma(shape, scale);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  std::vector<size_t> p = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (size_t v : p) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(4242);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextCategorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinTrimCase) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("abc"), "ABC");
  EXPECT_TRUE(StartsWith("federated", "fed"));
  EXPECT_FALSE(StartsWith("fed", "federated"));
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("group", "groups"));
}

}  // namespace
}  // namespace mip
