#include <gtest/gtest.h>

#include "etl/cde.h"
#include "etl/csv.h"

namespace mip::etl {
namespace {

using engine::DataType;
using engine::Table;

TEST(CsvTest, ParsesTypesAndNulls) {
  const std::string csv =
      "id,vol,dx\n"
      "1,3.5,CN\n"
      "2,NA,AD\n"
      "3,2.25,\n";
  Table t = *ReadCsvString(csv);
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(1).type, DataType::kFloat64);
  EXPECT_EQ(t.schema().field(2).type, DataType::kString);
  EXPECT_TRUE(t.At(1, 1).is_null());
  EXPECT_TRUE(t.At(2, 2).is_null());
  EXPECT_EQ(t.At(0, 1).AsDouble(), 3.5);
}

TEST(CsvTest, QuotedFieldsAndEscapedQuotes) {
  const std::string csv =
      "name,note\n"
      "\"Smith, John\",\"said \"\"hi\"\"\"\n";
  Table t = *ReadCsvString(csv);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).string_value(), "Smith, John");
  EXPECT_EQ(t.At(0, 1).string_value(), "said \"hi\"");
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(ReadCsvString("a\n\"unterminated\n").ok());
}

TEST(CsvTest, NoHeaderAndCustomDelimiter) {
  CsvOptions options;
  options.header = false;
  options.delimiter = ';';
  Table t = *ReadCsvString("1;2\n3;4\n", options);
  EXPECT_EQ(t.schema().field(0).name, "col0");
  EXPECT_EQ(t.At(1, 1).AsInt(), 4);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string csv =
      "id,vol,dx\n"
      "1,3.5,CN\n"
      "2,,AD\n";
  Table t = *ReadCsvString(csv);
  const std::string rendered = WriteCsvString(t);
  Table back = *ReadCsvString(rendered);
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_TRUE(back.At(r, c).Equals(t.At(r, c))) << r << "," << c;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Table t = *ReadCsvString("a,b\n1,x\n2,y\n");
  const std::string path = ::testing::TempDir() + "/mip_etl_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  Table back = *ReadCsvFile(path);
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/file.csv").ok());
}

TEST(CdeTest, CatalogResolution) {
  CdeCatalog catalog = DementiaCatalog();
  EXPECT_EQ(catalog.domain(), "dementia");
  EXPECT_TRUE(catalog.GetVariable("p_tau").ok());
  EXPECT_FALSE(catalog.GetVariable("nothere").ok());
  // Aliases and case-insensitivity.
  ASSERT_NE(catalog.Resolve("PTAU"), nullptr);
  EXPECT_EQ(catalog.Resolve("PTAU")->name, "p_tau");
  EXPECT_EQ(catalog.Resolve("gender")->name, "sex");
  EXPECT_EQ(catalog.Resolve("unknown_thing"), nullptr);
}

TEST(CdeTest, DuplicateVariableRejected) {
  CdeCatalog catalog("test");
  CdeVariable v;
  v.name = "x";
  EXPECT_TRUE(catalog.AddVariable(v).ok());
  EXPECT_FALSE(catalog.AddVariable(v).ok());
}

TEST(HarmonizeTest, RenamesCoercesAndValidates) {
  // Source data as a hospital might export it: aliased names, strings for
  // numbers, out-of-range values, bad enumerations.
  const std::string csv =
      "id,dx,ptau,gender,age\n"
      "p1,AD,25.5,M,70\n"
      "p2,cn,900,F,69\n"       // ptau 900 out of range -> NULL; dx lowercase
      "p3,Unknown,20,M,71\n"   // dx not in enumeration -> NULL -> row drop
      "p4,MCI,30,X,200\n";     // bad sex -> NULL; age 200 out of range
  Table source = *ReadCsvString(csv);
  HarmonizationReport report;
  Table out = *Harmonize(source, DementiaCatalog(), &report);

  EXPECT_EQ(report.rows_in, 4);
  EXPECT_EQ(report.rows_out, 3);  // p3 dropped (required diagnosis null)
  EXPECT_EQ(report.rows_dropped_missing_required, 1);
  EXPECT_GE(report.cells_nulled_out_of_range, 2);  // ptau 900, age 200
  EXPECT_GE(report.cells_nulled_bad_enum, 2);      // dx Unknown, sex X

  // Harmonized names in catalog order; aliased columns renamed.
  EXPECT_GE(out.schema().FieldIndex("p_tau"), 0);
  EXPECT_GE(out.schema().FieldIndex("sex"), 0);
  EXPECT_EQ(out.schema().FieldIndex("ptau"), -1);
  // Enumeration canonicalizes case ("cn" -> "CN").
  const int dx = out.schema().FieldIndex("diagnosis");
  EXPECT_EQ(out.At(1, dx).string_value(), "CN");
}

TEST(HarmonizeTest, UnmappedColumnsReported) {
  Table source = *ReadCsvString("id,dx,internal_code\np1,AD,xyz\n");
  HarmonizationReport report;
  Table out = *Harmonize(source, DementiaCatalog(), &report);
  ASSERT_EQ(report.unmapped_columns.size(), 1u);
  EXPECT_EQ(report.unmapped_columns[0], "internal_code");
  EXPECT_EQ(out.num_columns(), 2u);
}

TEST(HarmonizeTest, NumericStringCoercion) {
  Table source = *ReadCsvString("id,dx,age\np1,AD,not_a_number\n");
  HarmonizationReport report;
  Table out = *Harmonize(source, DementiaCatalog(), &report);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_TRUE(out.At(0, out.schema().FieldIndex("age")).is_null());
}

}  // namespace
}  // namespace mip::etl
