#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/distributions.h"
#include "stats/linalg.h"
#include "stats/matrix.h"
#include "stats/special.h"
#include "stats/summary.h"

namespace mip::stats {
namespace {

TEST(MatrixTest, BasicOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = *a.MatMul(b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);

  Matrix t = a.Transpose();
  EXPECT_EQ(t(0, 1), 3);
  EXPECT_EQ(t(1, 0), 2);

  Matrix s = *a.Add(b);
  EXPECT_EQ(s(1, 1), 12);
  Matrix d = *b.Sub(a);
  EXPECT_EQ(d(0, 0), 4);
  EXPECT_EQ(a.Scale(2.0)(1, 0), 6);
}

TEST(MatrixTest, DimensionMismatchIsError) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_FALSE(a.MatMul(b).ok());
  Matrix c(4, 4);
  EXPECT_FALSE(a.Add(c).ok());
  EXPECT_FALSE(a.AddInPlace(c).ok());
}

TEST(MatrixTest, IdentityAndFlatten) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_EQ(eye(1, 1), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  std::vector<double> flat = eye.Flatten();
  EXPECT_EQ(flat.size(), 9u);
  Matrix back = *Matrix::FromFlat(3, 3, flat);
  EXPECT_EQ(back.MaxAbsDiff(eye), 0.0);
  EXPECT_FALSE(Matrix::FromFlat(2, 2, flat).ok());
}

TEST(MatrixTest, MatVec) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  std::vector<double> x = {1, 0, -1};
  std::vector<double> y = *MatVec(a, x);
  EXPECT_EQ(y[0], -2);
  EXPECT_EQ(y[1], -2);
  EXPECT_FALSE(MatVec(a, {1, 2}).ok());
}

TEST(LinalgTest, CholeskySolveKnownSystem) {
  // SPD system with known solution.
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  std::vector<double> x = *SolveSpd(a, {10, 8});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(LinalgTest, InverseSpd) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Matrix inv = *InverseSpd(a);
  Matrix prod = *a.MatMul(inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(2)), 1e-12);
}

TEST(LinalgTest, SolveGeneralWithPivoting) {
  // Requires row swaps (zero pivot in natural order).
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  std::vector<double> x = *SolveGeneral(a, {3, 7});
  EXPECT_NEAR(x[0], 7, 1e-12);
  EXPECT_NEAR(x[1], 3, 1e-12);
  Matrix singular = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(SolveGeneral(singular, {1, 1}).ok());
}

TEST(LinalgTest, EigenSymmetricKnown) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});  // eigenvalues 3, 1
  EigenResult eig = *EigenSymmetric(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector columns are orthonormal and satisfy A v = lambda v.
  for (size_t k = 0; k < 2; ++k) {
    std::vector<double> v = eig.eigenvectors.Column(k);
    std::vector<double> av = *MatVec(a, v);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(av[i], eig.eigenvalues[k] * v[i], 1e-10);
    }
    EXPECT_NEAR(Norm2(v), 1.0, 1e-10);
  }
}

TEST(LinalgTest, EigenRandomSpdReconstructs) {
  mip::Rng rng(11);
  const size_t n = 6;
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextGaussian();
  }
  Matrix a = *b.Transpose().MatMul(b);  // SPD-ish (PSD)
  EigenResult eig = *EigenSymmetric(a);
  // Reconstruct A = V diag(lambda) V'.
  Matrix lambda(n, n);
  for (size_t i = 0; i < n; ++i) lambda(i, i) = eig.eigenvalues[i];
  Matrix recon = *(*eig.eigenvectors.MatMul(lambda))
                      .MatMul(eig.eigenvectors.Transpose());
  EXPECT_LT(recon.MaxAbsDiff(a), 1e-8);
}

TEST(LinalgTest, DeterminantSpd) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  EXPECT_NEAR(*DeterminantSpd(a), 8.0, 1e-10);
}

TEST(SpecialTest, LogGammaMatchesFactorials) {
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

TEST(SpecialTest, RegularizedGamma) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
}

TEST(SpecialTest, RegularizedBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.35, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedBeta(x, 2.0, 5.0),
                1.0 - RegularizedBeta(1.0 - x, 5.0, 2.0), 1e-10);
  }
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedBeta(0.3, 1.0, 1.0), 0.3, 1e-12);
}

TEST(SpecialTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
}

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525, 1e-7);
  EXPECT_NEAR(NormalCdf(10.0, 10.0, 2.0), 0.5, 1e-12);
}

TEST(DistributionsTest, StudentTKnownValues) {
  // t distribution with large df approaches normal.
  EXPECT_NEAR(StudentTCdf(1.96, 1e7), NormalCdf(1.96), 1e-4);
  // Known: P(T_10 <= 2.228) ~= 0.975.
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-4);
  EXPECT_NEAR(StudentTTwoSidedP(2.228, 10), 0.05, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 10), 2.228, 2e-3);
}

TEST(DistributionsTest, ChiSquaredKnownValues) {
  // Known: P(chi2_1 <= 3.841) ~= 0.95.
  EXPECT_NEAR(ChiSquaredCdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(5.991, 2), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredSf(0.0, 3), 1.0, 1e-12);
}

TEST(DistributionsTest, FKnownValues) {
  // Known: P(F_{2,10} <= 4.103) ~= 0.95.
  EXPECT_NEAR(FCdf(4.103, 2, 10), 0.95, 1e-3);
  EXPECT_NEAR(FSf(4.103, 2, 10), 0.05, 1e-3);
}

TEST(SummaryTest, MatchesDirectComputation) {
  SummaryAccumulator acc;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
  for (double x : xs) acc.Add(x);
  EXPECT_EQ(acc.count(), 5);
  EXPECT_NEAR(acc.mean(), 22.0, 1e-12);
  EXPECT_NEAR(acc.variance(), 1902.5, 1e-9);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 100.0);
}

TEST(SummaryTest, NanCountsAsMissing) {
  SummaryAccumulator acc;
  acc.Add(1.0);
  acc.Add(std::nan(""));
  acc.AddMissing();
  EXPECT_EQ(acc.count(), 1);
  EXPECT_EQ(acc.na_count(), 2);
  EXPECT_EQ(acc.total(), 3);
}

TEST(SummaryTest, RoundTripVector) {
  SummaryAccumulator acc;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) acc.Add(x);
  SummaryAccumulator back = SummaryAccumulator::FromVector(acc.ToVector());
  EXPECT_EQ(back.count(), acc.count());
  EXPECT_DOUBLE_EQ(back.mean(), acc.mean());
  EXPECT_DOUBLE_EQ(back.variance(), acc.variance());
}

// Property: merging partitioned accumulators reproduces the pooled moments
// exactly — the core federated-descriptives invariant.
class SummaryMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SummaryMergeProperty, MergeEqualsPooled) {
  mip::Rng rng(1000 + GetParam());
  const int parts = 1 + GetParam() % 7;
  SummaryAccumulator pooled;
  std::vector<SummaryAccumulator> shards(parts);
  const int n = 50 + GetParam() * 13;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(5.0, 20.0);
    pooled.Add(x);
    shards[rng.NextBounded(parts)].Add(x);
  }
  SummaryAccumulator merged;
  for (const auto& s : shards) merged.Merge(s);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-8);
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryMergeProperty,
                         ::testing::Range(0, 20));

TEST(QuantileTest, KnownQuartiles) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5);
  EXPECT_DOUBLE_EQ(Quantile({1, 2}, 0.5), 1.5);  // interpolation
}

TEST(QuantileTest, IgnoresNans) {
  EXPECT_DOUBLE_EQ(Quantile({std::nan(""), 2.0, std::nan(""), 4.0}, 0.5),
                   3.0);
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

}  // namespace
}  // namespace mip::stats
