#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "federation/bus.h"
#include "federation/master.h"
#include "federation/training.h"
#include "federation/transfer.h"
#include "federation/worker.h"

namespace mip::federation {
namespace {

using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;
using engine::Value;

TEST(TransferDataTest, TypedAccess) {
  TransferData t;
  t.PutScalar("n", 5.0);
  t.PutVector("grad", {1.0, 2.0});
  t.PutMatrix("h", stats::Matrix::Identity(2));
  t.PutString("who", "worker1");
  t.PutStringList("vars", {"a", "b"});
  EXPECT_EQ(*t.GetScalar("n"), 5.0);
  EXPECT_EQ((*t.GetVector("grad"))[1], 2.0);
  EXPECT_EQ((*t.GetMatrix("h"))(0, 0), 1.0);
  EXPECT_EQ(*t.GetString("who"), "worker1");
  EXPECT_EQ((*t.GetStringList("vars")).size(), 2u);
  EXPECT_FALSE(t.GetScalar("missing").ok());
  EXPECT_FALSE(t.GetVector("missing").ok());
  EXPECT_TRUE(t.GetStringListOrEmpty("missing").empty());
}

TEST(TransferDataTest, SerializationRoundTrip) {
  TransferData t;
  t.PutScalar("a", -2.5);
  t.PutVector("v", {1, 2, 3});
  t.PutMatrix("m", stats::Matrix::FromRows({{1, 2}, {3, 4}}));
  t.PutString("s", "hello");
  t.PutStringList("l", {"x", "y", "z"});
  Schema schema;
  ASSERT_TRUE(schema.AddField({"c", DataType::kInt64}).ok());
  Table table = Table::Empty(schema);
  ASSERT_TRUE(table.AppendRow({Value::Int(9)}).ok());
  t.PutTable("t", table);

  BufferWriter w;
  t.Serialize(&w);
  EXPECT_EQ(t.SerializedBytes(), w.size());
  BufferReader r(w.bytes());
  TransferData back = *TransferData::Deserialize(&r);
  EXPECT_EQ(*back.GetScalar("a"), -2.5);
  EXPECT_EQ((*back.GetVector("v")).size(), 3u);
  EXPECT_EQ((*back.GetMatrix("m"))(1, 0), 3.0);
  EXPECT_EQ(*back.GetString("s"), "hello");
  EXPECT_EQ((*back.GetStringList("l"))[2], "z");
  EXPECT_EQ((*back.GetTable("t")).num_rows(), 1u);
}

TEST(TransferDataTest, SumMergeAddsNumericsConcatsTables) {
  TransferData a;
  a.PutScalar("n", 2.0);
  a.PutVector("v", {1, 1});
  a.PutMatrix("m", stats::Matrix::Identity(2));
  TransferData b = a;
  TransferData merged = *TransferData::SumMerge({a, b});
  EXPECT_EQ(*merged.GetScalar("n"), 4.0);
  EXPECT_EQ((*merged.GetVector("v"))[0], 2.0);
  EXPECT_EQ((*merged.GetMatrix("m"))(1, 1), 2.0);

  TransferData bad;
  bad.PutScalar("other", 1.0);
  EXPECT_FALSE(TransferData::SumMerge({a, bad}).ok());

  TransferData short_vec;
  short_vec.PutScalar("n", 1.0);
  short_vec.PutVector("v", {1});
  short_vec.PutMatrix("m", stats::Matrix::Identity(2));
  EXPECT_FALSE(TransferData::SumMerge({a, short_vec}).ok());
}

TEST(TransferDataTest, FlattenUnflattenRoundTrip) {
  TransferData t;
  t.PutScalar("n", 7.0);
  t.PutVector("v", {1, 2, 3});
  t.PutMatrix("m", stats::Matrix::FromRows({{4, 5}, {6, 7}}));
  std::vector<double> flat = t.FlattenNumeric();
  EXPECT_EQ(flat.size(), 1u + 3u + 4u);
  TransferData back = *t.UnflattenNumeric(flat);
  EXPECT_EQ(*back.GetScalar("n"), 7.0);
  EXPECT_EQ((*back.GetVector("v"))[2], 3.0);
  EXPECT_EQ((*back.GetMatrix("m"))(1, 1), 7.0);
  flat.pop_back();
  EXPECT_FALSE(t.UnflattenNumeric(flat).ok());
}

TEST(MessageBusTest, RoutingAndStats) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("echo", [](const Envelope& e) {
                   return Result<std::vector<uint8_t>>(e.payload);
                 }).ok());
  EXPECT_FALSE(bus.RegisterEndpoint("echo", nullptr).ok());

  Envelope env{"me", "echo", "ping", "j1", {1, 2, 3}};
  std::vector<uint8_t> reply = *bus.Send(env);
  EXPECT_EQ(reply.size(), 3u);
  EXPECT_EQ(bus.stats().messages, 2u);  // request + reply
  EXPECT_EQ(bus.stats().bytes, 6u);

  Envelope bad{"me", "nobody", "ping", "", {}};
  EXPECT_FALSE(bus.Send(bad).ok());
}

class FederationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const std::string id : {"h1", "h2", "h3"}) {
      ASSERT_TRUE(master_.AddWorker(id).ok());
      Schema schema;
      ASSERT_TRUE(schema.AddField({"x", DataType::kFloat64}).ok());
      Table t = Table::Empty(schema);
      // h1: 1,2  h2: 3,4  h3: 5,6
      const double base = (id == "h1") ? 1 : (id == "h2" ? 3 : 5);
      ASSERT_TRUE(t.AppendRow({Value::Double(base)}).ok());
      ASSERT_TRUE(t.AppendRow({Value::Double(base + 1)}).ok());
      ASSERT_TRUE(master_.LoadDataset(id, "numbers", std::move(t)).ok());
    }
    ASSERT_TRUE(
        master_.functions()
            ->Register(
                "sum_x",
                [](WorkerContext& ctx,
                   const TransferData&) -> Result<TransferData> {
                  MIP_ASSIGN_OR_RETURN(Table t,
                                       ctx.db().GetTable("numbers"));
                  double sum = 0, n = 0;
                  MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                                       t.ColumnByName("x"));
                  for (size_t r = 0; r < col->length(); ++r) {
                    sum += col->DoubleAt(r);
                    n += 1;
                  }
                  TransferData out;
                  out.PutScalar("sum", sum);
                  out.PutScalar("n", n);
                  return out;
                })
            .ok());
  }
  MasterNode master_;
};

TEST_F(FederationFixture, CatalogTracksDatasets) {
  EXPECT_EQ(master_.num_workers(), 3u);
  EXPECT_EQ(master_.WorkersWithDatasets({"numbers"}).size(), 3u);
  EXPECT_TRUE(master_.WorkersWithDatasets({"nope"}).empty());
  EXPECT_EQ(master_.WorkersWithDatasets({}).size(), 3u);  // all workers
}

TEST_F(FederationFixture, SessionJobIdsAreUnique) {
  FederationSession s1 = *master_.StartSession({"numbers"});
  FederationSession s2 = *master_.StartSession({"numbers"});
  EXPECT_NE(s1.job_id(), s2.job_id());
  EXPECT_EQ(s1.num_workers(), 3u);
  EXPECT_FALSE(master_.StartSession({"nope"}).ok());
}

TEST_F(FederationFixture, PlainAggregationSums) {
  FederationSession session = *master_.StartSession({"numbers"});
  TransferData agg = *session.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kPlain);
  EXPECT_EQ(*agg.GetScalar("sum"), 21.0);  // 1+2+3+4+5+6
  EXPECT_EQ(*agg.GetScalar("n"), 6.0);
}

TEST_F(FederationFixture, SecureAggregationMatchesPlain) {
  FederationSession session = *master_.StartSession({"numbers"});
  TransferData secure = *session.LocalRunAndAggregate(
      "sum_x", TransferData(), AggregationMode::kSecure);
  EXPECT_NEAR(*secure.GetScalar("sum"), 21.0, 1e-4);
  EXPECT_NEAR(*secure.GetScalar("n"), 6.0, 1e-4);
}

TEST_F(FederationFixture, SecurePathLeaksOnlyShapes) {
  // Traffic audit: on the secure path the workers' replies over the bus
  // must contain zeroed payloads (shapes); the actual values travel as
  // secret shares to the SMPC cluster.
  master_.bus().set_keep_log(true);
  FederationSession session = *master_.StartSession({"numbers"});
  ASSERT_TRUE(session
                  .LocalRunAndAggregate("sum_x", TransferData(),
                                        AggregationMode::kSecure)
                  .ok());
  bool saw_secure = false;
  for (const MessageBus::LogEntry& e : master_.bus().log()) {
    if (e.type == "local_run_secure") saw_secure = true;
  }
  EXPECT_TRUE(saw_secure);
}

TEST_F(FederationFixture, SecureOpMinMax) {
  FederationSession session = *master_.StartSession({"numbers"});
  ASSERT_TRUE(master_.functions()
                  ->Register("local_max",
                             [](WorkerContext& ctx, const TransferData&)
                                 -> Result<TransferData> {
                               MIP_ASSIGN_OR_RETURN(
                                   Table t, ctx.db().GetTable("numbers"));
                               MIP_ASSIGN_OR_RETURN(
                                   const engine::Column* col,
                                   t.ColumnByName("x"));
                               double best = -1e18;
                               for (double v : col->NonNullDoubles()) {
                                 best = std::max(best, v);
                               }
                               TransferData out;
                               out.PutVector("vals", {best});
                               return out;
                             })
                  .ok());
  std::vector<double> maxs = *session.LocalRunSecureOp(
      "local_max", TransferData(), "vals", smpc::SmpcOp::kMax);
  EXPECT_NEAR(maxs[0], 6.0, 1e-4);
}

TEST_F(FederationFixture, WorkerStatePersistsAcrossSteps) {
  ASSERT_TRUE(master_.functions()
                  ->Register("remember",
                             [](WorkerContext& ctx, const TransferData& args)
                                 -> Result<TransferData> {
                               MIP_ASSIGN_OR_RETURN(double v,
                                                    args.GetScalar("v"));
                               ctx.state().PutScalar("stored", v);
                               TransferData out;
                               out.PutScalar("ok", 1);
                               return out;
                             })
                  .ok());
  ASSERT_TRUE(master_.functions()
                  ->Register("recall",
                             [](WorkerContext& ctx, const TransferData&)
                                 -> Result<TransferData> {
                               TransferData out;
                               MIP_ASSIGN_OR_RETURN(
                                   double v, ctx.state().GetScalar("stored"));
                               out.PutScalar("v", v);
                               return out;
                             })
                  .ok());
  FederationSession session = *master_.StartSession({"numbers"});
  TransferData args;
  args.PutScalar("v", 42.0);
  ASSERT_TRUE(session.LocalRun("remember", args).ok());
  TransferData agg = *session.LocalRunAndAggregate(
      "recall", TransferData(), AggregationMode::kPlain);
  EXPECT_EQ(*agg.GetScalar("v"), 3 * 42.0);
}

TEST_F(FederationFixture, UnknownLocalFunctionErrors) {
  FederationSession session = *master_.StartSession({"numbers"});
  EXPECT_FALSE(session.LocalRun("nope", TransferData()).ok());
}

TEST_F(FederationFixture, FederatedViewOverRemoteTables) {
  std::string view = *master_.CreateFederatedView("numbers");
  Table out = *master_.local_db().ExecuteSql(
      "SELECT count(*) AS n, sum(x) AS total FROM " + view);
  EXPECT_EQ(out.At(0, 0).int_value(), 6);
  EXPECT_EQ(out.At(0, 1).AsDouble(), 21.0);
  // The fetches went over the metered bus.
  EXPECT_GT(master_.bus().stats().bytes, 0u);
}

TEST(TrainingTest, FederatedLogisticTrainingConverges) {
  MasterNode master;
  Rng rng(7);
  // Two workers, linearly separable-ish data: y = 1 iff x0 + x1 > 0.
  for (const std::string id : {"w1", "w2"}) {
    ASSERT_TRUE(master.AddWorker(id).ok());
    Schema schema;
    ASSERT_TRUE(schema.AddField({"x0", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"x1", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"y", DataType::kFloat64}).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 200; ++i) {
      const double a = rng.NextGaussian();
      const double b = rng.NextGaussian();
      const double y = (a + b + 0.3 * rng.NextGaussian()) > 0 ? 1.0 : 0.0;
      ASSERT_TRUE(t.AppendRow({Value::Double(a), Value::Double(b),
                               Value::Double(y)}).ok());
    }
    ASSERT_TRUE(master.LoadDataset(id, "train", std::move(t)).ok());
  }
  // Local gradient step for logistic loss.
  ASSERT_TRUE(master.functions()
                  ->Register(
                      "grad",
                      [](WorkerContext& ctx, const TransferData& args)
                          -> Result<TransferData> {
                        MIP_ASSIGN_OR_RETURN(std::vector<double> w,
                                             args.GetVector("weights"));
                        MIP_ASSIGN_OR_RETURN(Table t,
                                             ctx.db().GetTable("train"));
                        std::vector<double> grad(w.size(), 0.0);
                        double loss = 0, n = 0;
                        for (size_t r = 0; r < t.num_rows(); ++r) {
                          const double x0 = t.At(r, 0).AsDouble();
                          const double x1 = t.At(r, 1).AsDouble();
                          const double y = t.At(r, 2).AsDouble();
                          const double z = w[0] * x0 + w[1] * x1;
                          const double mu = 1.0 / (1.0 + std::exp(-z));
                          grad[0] += (mu - y) * x0;
                          grad[1] += (mu - y) * x1;
                          loss += -(y * std::log(std::max(mu, 1e-12)) +
                                    (1 - y) *
                                        std::log(std::max(1 - mu, 1e-12)));
                          n += 1;
                        }
                        TransferData out;
                        out.PutVector("grad", grad);
                        out.PutScalar("loss", loss);
                        out.PutScalar("n", n);
                        return out;
                      })
                  .ok());

  auto run = [&master](TrainingPrivacy privacy, double epsilon) {
    TrainingConfig config;
    config.rounds = 25;
    config.learning_rate = 1.0;
    config.privacy = privacy;
    config.epsilon = epsilon;
    config.clip_norm = 1.0;
    FederatedTrainer trainer(&master, config);
    FederationSession session = *master.StartSession({"train"});
    return *trainer.Train(&session, "grad", 2);
  };

  TrainingResult clean = run(TrainingPrivacy::kNone, 0);
  EXPECT_EQ(clean.history.size(), 25u);
  EXPECT_LT(clean.history.back().loss, clean.history.front().loss);
  EXPECT_GT(clean.weights[0], 0.5);
  EXPECT_GT(clean.weights[1], 0.5);
  EXPECT_EQ(clean.total_examples, 400);

  // Local DP needs a generous budget to converge at this scale — that IS
  // the phenomenon experiment E7 quantifies.
  TrainingResult dp = run(TrainingPrivacy::kLocalDp, 400.0);
  EXPECT_NEAR(dp.spent_epsilon, 400.0, 1e-9);
  EXPECT_LT(dp.history.back().loss, dp.history.front().loss);

  TrainingResult sa = run(TrainingPrivacy::kSecureAggregation, 400.0);
  EXPECT_NEAR(sa.spent_epsilon, 400.0, 1e-9);
  EXPECT_LT(sa.history.back().loss, sa.history.front().loss);

  // At equal privacy budget, secure aggregation adds noise ONCE to the sum
  // rather than per worker, so it should land at least as close to the
  // clean solution on average. (Statistical claim; loose assertion.)
  const double dp_dist = std::hypot(dp.weights[0] - clean.weights[0],
                                    dp.weights[1] - clean.weights[1]);
  const double sa_dist = std::hypot(sa.weights[0] - clean.weights[0],
                                    sa.weights[1] - clean.weights[1]);
  EXPECT_LT(sa_dist, dp_dist + 1.0);
}


TEST(TrainingTest, FedAvgConvergesWithLocalEpochs) {
  MasterNode master;
  Rng rng(77);
  for (const std::string id : {"w1", "w2", "w3"}) {
    ASSERT_TRUE(master.AddWorker(id).ok());
    Schema schema;
    ASSERT_TRUE(schema.AddField({"x0", DataType::kFloat64}).ok());
    ASSERT_TRUE(schema.AddField({"y", DataType::kFloat64}).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 150; ++i) {
      const double x = rng.NextGaussian();
      const double y = (2.0 * x + 0.2 * rng.NextGaussian()) > 0 ? 1.0 : 0.0;
      ASSERT_TRUE(
          t.AppendRow({Value::Double(x), Value::Double(y)}).ok());
    }
    ASSERT_TRUE(master.LoadDataset(id, "fa", std::move(t)).ok());
  }
  // FedAvg local step: `local_epochs` passes of full-batch local SGD, then
  // ship the example-weighted delta.
  ASSERT_TRUE(master.functions()
                  ->Register(
                      "fedavg.step",
                      [](WorkerContext& ctx, const TransferData& args)
                          -> Result<TransferData> {
                        MIP_ASSIGN_OR_RETURN(std::vector<double> w,
                                             args.GetVector("weights"));
                        MIP_ASSIGN_OR_RETURN(double epochs_d,
                                             args.GetScalar("local_epochs"));
                        MIP_ASSIGN_OR_RETURN(double lr,
                                             args.GetScalar("local_lr"));
                        MIP_ASSIGN_OR_RETURN(Table t,
                                             ctx.db().GetTable("fa"));
                        std::vector<double> local = w;
                        const double n =
                            static_cast<double>(t.num_rows());
                        double loss = 0;
                        for (int e = 0; e < static_cast<int>(epochs_d);
                             ++e) {
                          double grad = 0;
                          loss = 0;
                          for (size_t r = 0; r < t.num_rows(); ++r) {
                            const double x = t.At(r, 0).AsDouble();
                            const double y = t.At(r, 1).AsDouble();
                            const double mu =
                                1.0 / (1.0 + std::exp(-local[0] * x));
                            grad += (mu - y) * x;
                            loss += -(y * std::log(std::max(mu, 1e-12)) +
                                      (1 - y) * std::log(
                                                    std::max(1 - mu, 1e-12)));
                          }
                          local[0] -= lr * grad / n;
                        }
                        TransferData out;
                        out.PutVector("delta", {(local[0] - w[0]) * n});
                        out.PutScalar("loss", loss);
                        out.PutScalar("n", n);
                        return out;
                      })
                  .ok());
  TrainingConfig config;
  config.algorithm = TrainingAlgorithm::kFedAvg;
  config.rounds = 15;
  config.local_epochs = 5;
  config.local_learning_rate = 0.5;
  FederatedTrainer trainer(&master, config);
  FederationSession session = *master.StartSession({"fa"});
  TrainingResult result = *trainer.Train(&session, "fedavg.step", 1);
  EXPECT_LT(result.history.back().loss, result.history.front().loss);
  EXPECT_GT(result.weights[0], 1.0);  // steep positive separator recovered
  EXPECT_EQ(result.total_examples, 450);
}

TEST(SyntheticDataTest, AlzheimerFederationLoads) {
  MasterNode master;
  ASSERT_TRUE(data::SetupAlzheimerFederation(&master).ok());
  EXPECT_EQ(master.num_workers(), 4u);
  WorkerNode* brescia = master.GetWorker("brescia");
  ASSERT_NE(brescia, nullptr);
  Table t = *brescia->db().GetTable("edsd_brescia");
  EXPECT_EQ(t.num_rows(), 1960u);
  EXPECT_GE(t.schema().FieldIndex("abeta42"), 0);
  EXPECT_GE(t.schema().FieldIndex("p_tau"), 0);
}

TEST(SyntheticDataTest, DiagnosisShiftsAreDirectionallyCorrect) {
  data::DementiaCohortConfig config;
  config.num_patients = 4000;
  config.missing_rate = 0.0;
  Table t = *data::GenerateDementiaCohort(config);
  double hippo_cn = 0, hippo_ad = 0, abeta_cn = 0, abeta_ad = 0;
  double ptau_cn = 0, ptau_ad = 0;
  int n_cn = 0, n_ad = 0;
  const int dx_col = t.schema().FieldIndex("diagnosis");
  const int lh = t.schema().FieldIndex("left_hippocampus");
  const int ab = t.schema().FieldIndex("abeta42");
  const int pt = t.schema().FieldIndex("p_tau");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string dx = t.At(r, dx_col).string_value();
    if (dx == "CN") {
      hippo_cn += t.At(r, lh).AsDouble();
      abeta_cn += t.At(r, ab).AsDouble();
      ptau_cn += t.At(r, pt).AsDouble();
      ++n_cn;
    } else if (dx == "AD") {
      hippo_ad += t.At(r, lh).AsDouble();
      abeta_ad += t.At(r, ab).AsDouble();
      ptau_ad += t.At(r, pt).AsDouble();
      ++n_ad;
    }
  }
  ASSERT_GT(n_cn, 100);
  ASSERT_GT(n_ad, 100);
  EXPECT_LT(hippo_ad / n_ad, hippo_cn / n_cn);  // atrophy
  EXPECT_LT(abeta_ad / n_ad, abeta_cn / n_cn);  // low Abeta42 in AD
  EXPECT_GT(ptau_ad / n_ad, ptau_cn / n_cn);    // high pTau in AD
}

}  // namespace
}  // namespace mip::federation
