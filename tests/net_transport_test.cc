// Tests for the src/net transport layer: frame codec correctness, the TCP
// transport (echo round trips, concurrency, deadlines, peer death), fault
// injection parity with the in-process bus, and a deterministic mutation
// fuzz over every deserializer that consumes bytes from the network.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "engine/table.h"
#include "federation/fault.h"
#include "federation/bus.h"
#include "federation/transfer.h"
#include "net/frame.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

namespace mip {
namespace {

using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;
using federation::FaultInjector;
using federation::FaultSpec;
using federation::MessageBus;
using federation::TransferData;
using net::Envelope;
using net::FrameDecoder;
using net::TcpTransport;
using net::TcpTransportOptions;

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, Crc32KnownAnswer) {
  const std::string check = "123456789";
  EXPECT_EQ(net::Crc32(reinterpret_cast<const uint8_t*>(check.data()),
                       check.size()),
            0xCBF43926u);
  EXPECT_EQ(net::Crc32(nullptr, 0), 0u);
}

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 255, 0, 42};
  BufferWriter w;
  net::EncodeFrame(payload, &w);
  ASSERT_EQ(w.size(), net::kFrameHeaderBytes + payload.size());

  FrameDecoder dec;
  dec.Feed(w.bytes().data(), w.size());
  std::vector<uint8_t> out;
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(dec.buffered(), 0u);

  // Nothing further buffered -> need more bytes, not an error.
  auto r2 = dec.Next(&out);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.ValueOrDie());
}

TEST(FrameTest, IncrementalByteByByteDecode) {
  const std::vector<uint8_t> payload(300, 0xAB);
  BufferWriter w;
  net::EncodeFrame(payload, &w);
  net::EncodeFrame(payload, &w);  // two frames back to back

  FrameDecoder dec;
  std::vector<uint8_t> out;
  int frames = 0;
  for (uint8_t b : w.bytes()) {
    dec.Feed(&b, 1);
    auto r = dec.Next(&out);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r.ValueOrDie()) {
      EXPECT_EQ(out, payload);
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(FrameTest, EmptyPayloadFrame) {
  BufferWriter w;
  net::EncodeFrame(nullptr, 0, &w);
  FrameDecoder dec;
  dec.Feed(w.bytes().data(), w.size());
  std::vector<uint8_t> out = {9};
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, CorruptStreamsReportParseError) {
  const std::vector<uint8_t> payload = {10, 20, 30};
  BufferWriter w;
  net::EncodeFrame(payload, &w);
  const std::vector<uint8_t> good = w.bytes();

  auto decode = [](std::vector<uint8_t> bytes) {
    FrameDecoder dec;
    dec.Feed(bytes.data(), bytes.size());
    std::vector<uint8_t> out;
    return dec.Next(&out);
  };

  {  // bad magic
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xFF;
    auto r = decode(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {  // unknown version
    std::vector<uint8_t> bad = good;
    bad[4] = 99;
    auto r = decode(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {  // corrupt payload byte -> CRC mismatch
    std::vector<uint8_t> bad = good;
    bad[net::kFrameHeaderBytes] ^= 0x01;
    auto r = decode(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {  // oversized length field
    std::vector<uint8_t> bad = good;
    const uint32_t huge = 1u << 30;
    std::memcpy(bad.data() + 5, &huge, sizeof(huge));
    auto r = decode(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {  // truncated: every proper prefix just needs more bytes
    for (size_t cut = 0; cut < good.size(); ++cut) {
      std::vector<uint8_t> prefix(good.begin(), good.begin() + cut);
      auto r = decode(prefix);
      ASSERT_TRUE(r.ok()) << "cut=" << cut << ": " << r.status().ToString();
      EXPECT_FALSE(r.ValueOrDie());
    }
  }
}

TEST(FrameTest, EnvelopeCodecRoundTrip) {
  Envelope e;
  e.from = "master";
  e.to = "hospital_3";
  e.type = "local_run";
  e.job_id = "job/42";
  e.payload = {0, 1, 2, 3, 255};
  e.deadline_ms = 1234.0;  // local metadata: must NOT cross the wire

  const std::vector<uint8_t> wire = net::EncodeEnvelopePayload(e);
  auto decoded = net::DecodeEnvelopePayload(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Envelope& d = decoded.ValueOrDie();
  EXPECT_EQ(d.from, e.from);
  EXPECT_EQ(d.to, e.to);
  EXPECT_EQ(d.type, e.type);
  EXPECT_EQ(d.job_id, e.job_id);
  EXPECT_EQ(d.payload, e.payload);
  EXPECT_EQ(d.deadline_ms, 0.0);
}

TEST(FrameTest, ReplyCodecPropagatesStatusCode) {
  {  // OK reply carries the payload
    const std::vector<uint8_t> reply = {7, 8, 9};
    const auto wire = net::EncodeReplyPayload(Status::OK(), reply);
    auto r = net::DecodeReplyPayload(wire);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie(), reply);
  }
  {  // handler errors come back with their original code
    const auto wire = net::EncodeReplyPayload(
        Status::InvalidArgument("bad weights"), {});
    auto r = net::DecodeReplyPayload(wire);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().ToString().find("bad weights"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// TCP transport

Envelope MakeEnvelope(const std::string& to, std::vector<uint8_t> payload,
                      double deadline_ms = 0.0) {
  Envelope e;
  e.from = "master";
  e.to = to;
  e.type = "test";
  e.job_id = "job0";
  e.payload = std::move(payload);
  e.deadline_ms = deadline_ms;
  return e;
}

TEST(TcpTransportTest, EchoRoundTripAndStats) {
  TcpTransport server;
  ASSERT_TRUE(server
                  .RegisterEndpoint(
                      "echo",
                      [](const Envelope& e) -> Result<std::vector<uint8_t>> {
                        return e.payload;
                      })
                  .ok());
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_GT(server.port(), 0);

  TcpTransport client;
  client.AddPeer("echo", "127.0.0.1", server.port());

  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto reply = client.Send(MakeEnvelope("echo", payload));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.ValueOrDie(), payload);

  // Measured accounting: one round trip, bytes in both directions.
  const net::NetworkStats stats = client.stats();
  EXPECT_EQ(stats.round_trips, 1u);
  EXPECT_EQ(stats.messages, 2u);  // request + reply
  EXPECT_GT(stats.bytes, payload.size());
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.MeanRoundTripMs(), 0.0);

  const auto links = client.link_stats();
  ASSERT_TRUE(links.count("master->echo"));
  EXPECT_EQ(links.at("master->echo").round_trips, 1u);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, MissingEndpointIsNotFoundNotRetryable) {
  TcpTransport server;
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client;
  client.AddPeer("ghost", "127.0.0.1", server.port());
  auto r = client.Send(MakeEnvelope("ghost", {1}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, UnknownPeerFailsFast) {
  TcpTransport client;
  auto r = client.Send(MakeEnvelope("nowhere", {1}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TcpTransportTest, ConcurrentSendersLinkSumsEqualTotals) {
  TcpTransport server;
  std::atomic<int> handled{0};
  for (const char* id : {"w0", "w1", "w2"}) {
    ASSERT_TRUE(server
                    .RegisterEndpoint(
                        id,
                        [&handled](const Envelope& e)
                            -> Result<std::vector<uint8_t>> {
                          handled.fetch_add(1);
                          return e.payload;
                        })
                    .ok());
  }
  ASSERT_TRUE(server.Listen(0).ok());

  TcpTransport client;
  for (const char* id : {"w0", "w1", "w2"}) {
    client.AddPeer(id, "127.0.0.1", server.port());
  }

  constexpr int kThreads = 8;
  constexpr int kSendsPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &failures, t] {
      for (int i = 0; i < kSendsPerThread; ++i) {
        const std::string to = "w" + std::to_string((t + i) % 3);
        std::vector<uint8_t> payload(1 + (i % 32), static_cast<uint8_t>(i));
        Envelope e = MakeEnvelope(to, payload);
        e.from = "sender" + std::to_string(t);
        auto r = client.Send(std::move(e));
        if (!r.ok() || r.ValueOrDie() != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kThreads * kSendsPerThread);

  // The per-link ledgers must sum exactly to the totals.
  const net::NetworkStats total = client.stats();
  uint64_t messages = 0, bytes = 0, round_trips = 0;
  for (const auto& [link, s] : client.link_stats()) {
    messages += s.messages;
    bytes += s.bytes;
    round_trips += s.round_trips;
  }
  EXPECT_EQ(messages, total.messages);
  EXPECT_EQ(bytes, total.bytes);
  EXPECT_EQ(round_trips, total.round_trips);
  EXPECT_EQ(round_trips,
            static_cast<uint64_t>(kThreads) * kSendsPerThread);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, DeadlineExpiryIsUnavailable) {
  TcpTransport server;
  ASSERT_TRUE(server
                  .RegisterEndpoint(
                      "slow",
                      [](const Envelope& e) -> Result<std::vector<uint8_t>> {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(300));
                        return e.payload;
                      })
                  .ok());
  ASSERT_TRUE(server.Listen(0).ok());

  TcpTransport client;
  client.AddPeer("slow", "127.0.0.1", server.port());

  // Tight deadline: the reply cannot arrive in time.
  auto r = client.Send(MakeEnvelope("slow", {1}, /*deadline_ms=*/50.0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  // Generous deadline: same endpoint succeeds.
  auto ok = client.Send(MakeEnvelope("slow", {2}, /*deadline_ms=*/5000.0));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, ConnectRefusedIsRetryableError) {
  // Grab a port that nothing listens on by binding and immediately closing.
  int dead_port = 0;
  {
    TcpTransport probe;
    ASSERT_TRUE(probe.Listen(0).ok());
    dead_port = probe.port();
    probe.Shutdown();
  }
  TcpTransportOptions opts;
  opts.connect_timeout_ms = 500.0;
  TcpTransport client(opts);
  client.AddPeer("gone", "127.0.0.1", dead_port);
  auto r = client.Send(MakeEnvelope("gone", {1}));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable ||
              r.status().code() == StatusCode::kIOError)
      << r.status().ToString();
  client.Shutdown();
}

TEST(TcpTransportTest, PeerDeathMidRequestIsRetryableError) {
  // A "peer" that accepts the connection, reads part of the request, then
  // closes the socket without replying — the deterministic equivalent of a
  // worker process dying mid-request.
  auto listener = net::Socket::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto port = listener.ValueOrDie().BoundPort();
  ASSERT_TRUE(port.ok());

  std::thread dying_peer([&listener] {
    auto conn = listener.ValueOrDie().Accept(/*timeout_ms=*/5000.0);
    if (!conn.ok()) return;
    uint8_t buf[8];
    (void)conn.ValueOrDie().RecvSome(buf, sizeof(buf), /*timeout_ms=*/5000.0);
    // Socket destructor closes the connection: peer death mid-request.
  });

  TcpTransport client;
  client.AddPeer("dying", "127.0.0.1", port.ValueOrDie());
  auto r = client.Send(MakeEnvelope("dying", {1}, /*deadline_ms=*/5000.0));
  dying_peer.join();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable ||
              r.status().code() == StatusCode::kIOError)
      << r.status().ToString();
  client.Shutdown();
}

// ---------------------------------------------------------------------------
// Fault-injection parity: the same seeded injector must produce the same
// delivery outcome sequence whether the transport is the in-process bus or
// real sockets.

std::vector<bool> RunFaultSequence(net::Transport* transport,
                                   FaultInjector* injector, int sends) {
  transport->set_fault_hook(injector);
  std::vector<bool> outcomes;
  for (int i = 0; i < sends; ++i) {
    Envelope e = MakeEnvelope("worker", {static_cast<uint8_t>(i)});
    outcomes.push_back(transport->Send(std::move(e)).ok());
  }
  transport->set_fault_hook(nullptr);
  return outcomes;
}

TEST(FaultParityTest, SeededOutcomesIdenticalOnBusAndTcp) {
  constexpr int kSends = 40;
  constexpr uint64_t kSeed = 0xF417;
  FaultSpec flaky;
  flaky.drop_rate = 0.4;
  flaky.fail_first_n = 2;

  // In-process bus.
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint(
                     "worker",
                     [](const Envelope& e) -> Result<std::vector<uint8_t>> {
                       return e.payload;
                     })
                  .ok());
  FaultInjector bus_injector(kSeed);
  bus_injector.SetLinkFault("master", "worker", flaky);
  const std::vector<bool> bus_outcomes =
      RunFaultSequence(&bus, &bus_injector, kSends);

  // TCP loopback.
  TcpTransport server;
  ASSERT_TRUE(server
                  .RegisterEndpoint(
                      "worker",
                      [](const Envelope& e) -> Result<std::vector<uint8_t>> {
                        return e.payload;
                      })
                  .ok());
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client;
  client.AddPeer("worker", "127.0.0.1", server.port());
  FaultInjector tcp_injector(kSeed);
  tcp_injector.SetLinkFault("master", "worker", flaky);
  const std::vector<bool> tcp_outcomes =
      RunFaultSequence(&client, &tcp_injector, kSends);

  EXPECT_EQ(bus_outcomes, tcp_outcomes);
  // Sanity: the fault model actually fired (first 2 forced failures).
  ASSERT_GE(bus_outcomes.size(), 2u);
  EXPECT_FALSE(bus_outcomes[0]);
  EXPECT_FALSE(bus_outcomes[1]);

  client.Shutdown();
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Deterministic mutation fuzz: every deserializer that parses bytes off the
// network must survive arbitrary truncation and corruption with a clean
// Status — no crash, no over-read (run under ASan in CI).

TransferData MakeRichTransfer() {
  TransferData t;
  t.PutString("algo", "linreg");
  t.PutStringList("datasets", {"cohort_a", "cohort_b"});
  t.PutScalar("n", 128.0);
  t.PutVector("weights", {0.5, -1.25, 3.0});
  auto m = stats::Matrix::FromFlat(2, 2, {1.0, 2.0, 3.0, 4.0});
  t.PutMatrix("xtx", m.ValueOrDie());

  Schema schema;
  (void)schema.AddField({"flag", DataType::kBool});
  (void)schema.AddField({"count", DataType::kInt64});
  (void)schema.AddField({"value", DataType::kFloat64});
  (void)schema.AddField({"site", DataType::kString});
  Table table = Table::Empty(schema);
  (void)table.AppendRow({Value::Bool(true), Value::Int(7),
                         Value::Double(3.25), Value::String("athens")});
  (void)table.AppendRow(
      {Value::Null(), Value::Int(-1), Value::Null(), Value::String("paris")});
  t.PutTable("sample", std::move(table));
  return t;
}

void FuzzTransferBytes(const std::vector<uint8_t>& good) {
  // Every truncation point must fail cleanly (a strict prefix can at best
  // decode to a shorter valid value, never crash).
  for (size_t cut = 0; cut < good.size(); ++cut) {
    BufferReader r(good.data(), cut);
    auto st = TransferData::Deserialize(&r);
    (void)st;  // ok() or clean error; surviving is the assertion
  }
  // Deterministic single-byte corruptions.
  Rng rng(0xF022);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
    bad[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    BufferReader r(bad.data(), bad.size());
    auto st = TransferData::Deserialize(&r);
    (void)st;
  }
  // Multi-byte corruption bursts.
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> bad = good;
    for (int k = 0; k < 8; ++k) {
      const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
      bad[pos] = static_cast<uint8_t>(rng.NextBounded(256));
    }
    BufferReader r(bad.data(), bad.size());
    auto st = TransferData::Deserialize(&r);
    (void)st;
  }
}

TEST(MutationFuzzTest, TransferDataDeserializeNeverCrashes) {
  BufferWriter w;
  MakeRichTransfer().Serialize(&w);
  ASSERT_GT(w.size(), 0u);

  // The untouched round trip must still work.
  BufferReader r(w.bytes().data(), w.size());
  auto ok = TransferData::Deserialize(&r);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  FuzzTransferBytes(w.bytes());
}

TEST(MutationFuzzTest, DeserializeTableNeverCrashes) {
  BufferWriter w;
  Schema schema;
  (void)schema.AddField({"flag", DataType::kBool});
  (void)schema.AddField({"count", DataType::kInt64});
  (void)schema.AddField({"value", DataType::kFloat64});
  (void)schema.AddField({"site", DataType::kString});
  Table table = Table::Empty(schema);
  (void)table.AppendRow({Value::Bool(false), Value::Int(1),
                         Value::Double(-2.5), Value::String("madrid")});
  (void)table.AppendRow(
      {Value::Bool(true), Value::Null(), Value::Double(0.0), Value::Null()});
  engine::SerializeTable(table, &w);
  const std::vector<uint8_t>& good = w.bytes();

  for (size_t cut = 0; cut < good.size(); ++cut) {
    BufferReader r(good.data(), cut);
    auto st = engine::DeserializeTable(&r);
    (void)st;
  }
  Rng rng(0x7AB1E);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
    bad[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    BufferReader r(bad.data(), bad.size());
    auto st = engine::DeserializeTable(&r);
    (void)st;
  }
}

TEST(MutationFuzzTest, FrameDecoderNeverCrashes) {
  Envelope e = MakeEnvelope("worker", {1, 2, 3, 4, 5, 6, 7, 8});
  BufferWriter w;
  net::EncodeFrame(net::EncodeEnvelopePayload(e), &w);
  const std::vector<uint8_t>& good = w.bytes();

  Rng rng(0xF8A3E);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
    bad[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    // Random truncation too, in the same trial.
    const size_t cut = 1 + static_cast<size_t>(rng.NextBounded(bad.size()));
    FrameDecoder dec;
    dec.Feed(bad.data(), cut);
    std::vector<uint8_t> payload;
    // Drain until need-more or error; a decoded frame must also survive
    // envelope decoding.
    while (true) {
      auto r = dec.Next(&payload);
      if (!r.ok() || !r.ValueOrDie()) break;
      auto env = net::DecodeEnvelopePayload(payload);
      (void)env;
    }
  }
}

}  // namespace
}  // namespace mip
