// Join layer: the vectorized hash join diffed against a naive nested-loop
// reference over a corpus of edge cases (NULL keys, duplicate keys, empty
// sides, string/int/mixed keys) at 1 and 8 threads; distributed broadcast
// vs collect strategies byte-identical over the in-process bus and real
// TCP; the get_stats wire round trip and its cache; HLL NDV accuracy; and
// the join counters surfacing in the gateway metrics text.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/exec_context.h"
#include "engine/operators.h"
#include "engine/stats.h"
#include "engine/table.h"
#include "federation/gateway.h"
#include "federation/master.h"
#include "federation/worker.h"
#include "net/tcp_transport.h"

namespace mip {
namespace {

using engine::Column;
using engine::DataType;
using engine::Database;
using engine::ExecContext;
using engine::Field;
using engine::JoinType;
using engine::Schema;
using engine::Table;
using engine::Value;

std::vector<uint8_t> Bytes(const Table& t) {
  BufferWriter w;
  engine::SerializeTable(t, &w);
  return w.TakeBytes();
}

// Reference implementation: a naive nested loop with the engine's key
// semantics spelled out longhand. Probe order is left-row order; matches
// come in right-row order (the hash join's build-insertion order), so the
// reference is byte-comparable against HashJoin, not just set-comparable.
Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const std::string& left_key,
                             const std::string& right_key, JoinType type) {
  MIP_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));
  MIP_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));
  Schema schema;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    MIP_RETURN_NOT_OK(schema.AddField(left.schema().field(c)));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Field f = right.schema().field(c);
    if (schema.FieldIndex(f.name) >= 0) f.name += "_r";
    MIP_RETURN_NOT_OK(schema.AddField(f));
  }
  const bool string_keys = lkey->type() == DataType::kString &&
                           rkey->type() == DataType::kString;
  const bool numeric_keys = lkey->type() != DataType::kString &&
                            rkey->type() != DataType::kString;
  auto match = [&](size_t l, size_t r) {
    if (!lkey->IsValid(l) || !rkey->IsValid(r)) return false;
    if (string_keys) return lkey->StringAt(l) == rkey->StringAt(r);
    if (!numeric_keys) return false;  // string vs numeric: never equal
    const double a = lkey->AsDoubleAt(l);
    const double b = rkey->AsDoubleAt(r);
    return !std::isnan(a) && !std::isnan(b) && a == b;
  };
  Table out = Table::Empty(std::move(schema));
  std::vector<Value> row(left.num_columns() + right.num_columns());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    bool matched = false;
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (!match(l, r)) continue;
      matched = true;
      for (size_t c = 0; c < left.num_columns(); ++c) row[c] = left.At(l, c);
      for (size_t c = 0; c < right.num_columns(); ++c) {
        row[left.num_columns() + c] = right.At(r, c);
      }
      MIP_RETURN_NOT_OK(out.AppendRow(row));
    }
    if (!matched && type == JoinType::kLeft) {
      for (size_t c = 0; c < left.num_columns(); ++c) row[c] = left.At(l, c);
      for (size_t c = 0; c < right.num_columns(); ++c) {
        row[left.num_columns() + c] = Value::Null();
      }
      MIP_RETURN_NOT_OK(out.AppendRow(row));
    }
  }
  return out;
}

Table MakeTable(const std::vector<Field>& fields,
                const std::vector<std::vector<Value>>& rows) {
  Schema schema;
  for (const Field& f : fields) EXPECT_TRUE(schema.AddField(f).ok());
  Table t = Table::Empty(std::move(schema));
  for (const auto& row : rows) EXPECT_TRUE(t.AppendRow(row).ok());
  return t;
}

TEST(JoinCorpusTest, HashJoinMatchesNestedLoopReference) {
  const Value N = Value::Null();
  // Duplicate keys on both sides, NULL keys on both sides, an unmatched key
  // on each side, and an int-vs-double key pair (5 joins 5.0).
  const Table l_int = MakeTable(
      {{"k", DataType::kInt64}, {"lv", DataType::kString}},
      {{Value::Int(1), Value::String("a")},
       {Value::Int(2), Value::String("b")},
       {Value::Int(2), Value::String("c")},
       {N, Value::String("null1")},
       {Value::Int(5), Value::String("d")},
       {Value::Int(7), Value::String("lonely")},
       {Value::Int(2), Value::String("e")},
       {N, Value::String("null2")},
       {Value::Int(0), Value::String("f")}});
  const Table r_num = MakeTable(
      {{"k", DataType::kFloat64}, {"rv", DataType::kFloat64}},
      {{Value::Double(2.0), Value::Double(20.0)},
       {Value::Double(2.0), Value::Double(21.0)},
       {N, Value::Double(-1.0)},
       {Value::Double(1.0), Value::Double(10.0)},
       {Value::Double(9.0), Value::Double(90.0)},
       {Value::Double(5.0), Value::Double(50.0)},
       {Value::Double(0.0), Value::Double(0.5)}});
  const Table l_str = MakeTable(
      {{"k", DataType::kString}, {"lv", DataType::kInt64}},
      {{Value::String("x"), Value::Int(1)},
       {Value::String(""), Value::Int(2)},
       {N, Value::Int(3)},
       {Value::String("y"), Value::Int(4)},
       {Value::String("x"), Value::Int(5)},
       {Value::String("z"), Value::Int(6)}});
  const Table r_str = MakeTable(
      {{"k", DataType::kString}, {"rv", DataType::kString}},
      {{Value::String("y"), Value::String("Y1")},
       {Value::String("x"), Value::String("X1")},
       {N, Value::String("NULLROW")},
       {Value::String("x"), Value::String("X2")},
       {Value::String(""), Value::String("EMPTY")}});
  const Table empty_int =
      MakeTable({{"k", DataType::kInt64}, {"rv", DataType::kFloat64}}, {});
  const Table empty_str =
      MakeTable({{"k", DataType::kString}, {"rv", DataType::kString}}, {});

  // Randomized bulk case: small key domain (heavy duplication), ~10% NULLs.
  Rng rng(4242);
  std::vector<std::vector<Value>> l_rows, r_rows;
  for (int i = 0; i < 200; ++i) {
    const bool lnull = rng.NextUint64() % 10 == 0;
    l_rows.push_back({lnull ? N : Value::Int(rng.NextUint64() % 17),
                      Value::String("L" + std::to_string(i))});
    const bool rnull = rng.NextUint64() % 10 == 0;
    r_rows.push_back({rnull ? N : Value::Int(rng.NextUint64() % 17),
                      Value::Double(static_cast<double>(i))});
  }
  const Table l_bulk = MakeTable(
      {{"k", DataType::kInt64}, {"lv", DataType::kString}}, l_rows);
  const Table r_bulk = MakeTable(
      {{"k", DataType::kInt64}, {"rv", DataType::kFloat64}}, r_rows);

  struct Case {
    const char* name;
    const Table* left;
    const Table* right;
  };
  const std::vector<Case> cases = {
      {"int_x_double", &l_int, &r_num},
      {"double_x_int (swapped)", &r_num, &l_int},
      {"string_x_string", &l_str, &r_str},
      {"string_x_int (type mismatch, no matches)", &l_str, &r_bulk},
      {"empty_right", &l_int, &empty_int},
      {"empty_left", &empty_int, &r_num},
      {"empty_both", &empty_str, &empty_str},
      {"bulk_duplicates", &l_bulk, &r_bulk},
  };

  ThreadPool pool(8);
  ExecContext parallel_ctx;
  parallel_ctx.pool = &pool;
  parallel_ctx.morsel_size = 3;  // many morsels even over the tiny tables
  ExecContext serial_ctx;
  serial_ctx.morsel_size = 3;

  for (const Case& c : cases) {
    for (const JoinType type : {JoinType::kInner, JoinType::kLeft}) {
      Result<Table> expected =
          NestedLoopJoin(*c.left, *c.right, "k", "k", type);
      ASSERT_TRUE(expected.ok()) << c.name << ": "
                                 << expected.status().ToString();
      for (const ExecContext* ctx : {&serial_ctx, &parallel_ctx}) {
        Result<Table> got =
            engine::HashJoin(*c.left, *c.right, "k", "k", type, ctx);
        ASSERT_TRUE(got.ok()) << c.name << ": " << got.status().ToString();
        EXPECT_EQ(Bytes(*got), Bytes(*expected))
            << c.name << " type=" << (type == JoinType::kInner ? "inner"
                                                               : "left")
            << " threads=" << (ctx->pool != nullptr ? 8 : 1);
      }
    }
  }
}

TEST(JoinStatsTest, HllNdvEstimateWithinTolerance) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"v", DataType::kInt64}).ok());
  Table t = Table::Empty(std::move(schema));
  // 5000 distinct values, each appearing twice: NDV must track distincts,
  // not rows.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i)}).ok());
    ASSERT_TRUE(t.AppendRow({Value::Int(i)}).ok());
  }
  const engine::TableStats stats = engine::ComputeTableStats(t);
  EXPECT_EQ(stats.row_count, 10000);
  ASSERT_EQ(stats.columns.size(), 1u);
  const int64_t ndv = stats.columns[0].ndv;
  // 1024 registers give ~3.2% standard error; 10% is a safe deterministic
  // bound (the sketch hash is fixed, so this never flakes).
  EXPECT_GT(ndv, 4500);
  EXPECT_LT(ndv, 5500);
}

// Three workers each hold a shard of `visits`; the master holds a small
// `cohort`. The federated view merges the remote shards, so a cohort join
// exercises MergeUnion-over-RemoteScan against a local build side — the
// exact shape the broadcast/collect strategy choice targets.
class DistributedJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2026);
    for (const std::string id : {"w1", "w2", "w3"}) {
      ASSERT_TRUE(master_.AddWorker(id).ok());
      Schema schema;
      ASSERT_TRUE(schema.AddField({"patient_id", DataType::kInt64}).ok());
      ASSERT_TRUE(schema.AddField({"dur", DataType::kFloat64}).ok());
      Table t = Table::Empty(std::move(schema));
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(t.AppendRow({Value::Int(rng.NextUint64() % 200),
                                 Value::Double(rng.NextGaussian())})
                        .ok());
      }
      ASSERT_TRUE(master_.LoadDataset(id, "visits", std::move(t)).ok());
    }
    view_ = *master_.CreateFederatedView("visits");
    ASSERT_TRUE(master_.local_db()
                    .ExecuteSql("CREATE TABLE cohort (patient_id bigint, "
                                "label varchar)")
                    .ok());
    ASSERT_TRUE(master_.local_db()
                    .ExecuteSql("INSERT INTO cohort VALUES (3, 'case'), "
                                "(17, 'case'), (42, 'control'), "
                                "(99, 'control'), (140, 'case'), "
                                "(199, 'control'), (1000, 'nohit')")
                    .ok());
    join_sql_ = "SELECT label, dur FROM " + view_ + " JOIN cohort ON " +
                view_ + ".patient_id = cohort.patient_id";
  }

  federation::MasterNode master_;
  std::string view_;
  std::string join_sql_;
};

TEST_F(DistributedJoinTest, StrategiesAreByteIdenticalAtAnyThreadCount) {
  Database& db = master_.local_db();
  db.set_force_join_strategy(-1);
  db.set_optimizer_enabled(false);
  Result<Table> reference = db.ExecuteSql(join_sql_);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->num_rows(), 0u);
  db.set_optimizer_enabled(true);

  ThreadPool pool(8);
  ExecContext parallel_ctx;
  parallel_ctx.pool = &pool;
  parallel_ctx.morsel_size = 32;
  ExecContext serial_ctx;

  for (const ExecContext* ctx : {&serial_ctx, &parallel_ctx}) {
    db.set_exec_context(ctx);
    // kCollect=0, kBroadcast=1, -1 = let the cost model pick.
    for (const int force : {-1, 0, 1}) {
      db.set_force_join_strategy(force);
      Result<Table> got = db.ExecuteSql(join_sql_);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Bytes(*got), Bytes(*reference))
          << "force=" << force
          << " threads=" << (ctx->pool != nullptr ? 8 : 1);
    }
  }
  db.set_exec_context(nullptr);
  db.set_force_join_strategy(-1);
}

TEST_F(DistributedJoinTest, BroadcastShipsFewerBytesThanCollect) {
  Database& db = master_.local_db();
  // Warm the schema/stats caches so the measured runs carry only data.
  ASSERT_TRUE(db.ExecuteSql(join_sql_).ok());

  db.set_force_join_strategy(0);  // collect: fetch all 900 visit rows
  master_.bus().ResetStats();
  ASSERT_TRUE(db.ExecuteSql(join_sql_).ok());
  const uint64_t collect_bytes = master_.bus().stats().bytes;

  db.set_force_join_strategy(1);  // broadcast: ship 7 cohort rows out
  master_.bus().ResetStats();
  ASSERT_TRUE(db.ExecuteSql(join_sql_).ok());
  const uint64_t broadcast_bytes = master_.bus().stats().bytes;
  db.set_force_join_strategy(-1);

  // ~35 joined rows come back instead of 900 shard rows; the win must be
  // large, not marginal.
  EXPECT_LT(broadcast_bytes * 2, collect_bytes)
      << "broadcast=" << broadcast_bytes << " collect=" << collect_bytes;
}

TEST_F(DistributedJoinTest, CostModelPicksBroadcastForSmallBuildSide) {
  Database& db = master_.local_db();
  db.set_force_join_strategy(-1);
  db.set_cost_model(true);
  Result<Table> explain = db.ExecuteSql("EXPLAIN " + join_sql_);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  std::string text;
  for (size_t r = 0; r < explain->num_rows(); ++r) {
    text += explain->At(r, 0).string_value();
    text += '\n';
  }
  // 7 cohort rows against 900 remote rows: shipping the cohort is cheaper
  // than collecting the shards, and the rendering says so.
  EXPECT_NE(text.find("strategy=broadcast"), std::string::npos) << text;
  EXPECT_NE(text.find("cost: broadcast="), std::string::npos) << text;

  // The ablation: with the model off the plan keeps the collect default and
  // renders no costs, yet the fingerprint (canonical rendering) is shared —
  // covered by plan_test's fingerprint stability test.
  db.set_cost_model(false);
  Result<Table> off = db.ExecuteSql("EXPLAIN " + join_sql_);
  ASSERT_TRUE(off.ok());
  std::string off_text;
  for (size_t r = 0; r < off->num_rows(); ++r) {
    off_text += off->At(r, 0).string_value();
    off_text += '\n';
  }
  EXPECT_EQ(off_text.find("strategy=broadcast"), std::string::npos)
      << off_text;
  EXPECT_EQ(off_text.find("cost:"), std::string::npos) << off_text;
  db.set_cost_model(true);
}

TEST_F(DistributedJoinTest, RemoteStatsRoundTripAndCaching) {
  Database& db = master_.local_db();
  // The merged view's stats come from per-shard get_stats probes: exact row
  // counts sum; NDV is an upper-bound merge capped by the row count.
  Result<engine::TableStats> stats = db.GetTableStats(view_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->row_count, 900);
  const engine::ColumnStats* pid = stats->FindColumn("patient_id");
  ASSERT_NE(pid, nullptr);
  EXPECT_GT(pid->ndv, 150);  // ~200 distinct patients across shards
  ASSERT_TRUE(pid->has_range);
  EXPECT_GE(pid->min_value, 0.0);
  EXPECT_LE(pid->max_value, 199.0);

  // Second fetch is served from the stats cache: no new bus traffic.
  master_.bus().ResetStats();
  ASSERT_TRUE(db.GetTableStats(view_).ok());
  EXPECT_EQ(master_.bus().stats().messages, 0u);

  // Any catalog mutation bumps the version and invalidates the cache, so
  // the next fetch goes back over the wire.
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE poke (x bigint)").ok());
  master_.bus().ResetStats();
  ASSERT_TRUE(db.GetTableStats(view_).ok());
  EXPECT_GT(master_.bus().stats().messages, 0u);
}

TEST_F(DistributedJoinTest, JoinCountersSurfaceInGatewayMetrics) {
  Database& db = master_.local_db();
  db.set_force_join_strategy(-1);
  ASSERT_TRUE(db.ExecuteSql(join_sql_).ok());
  federation::Gateway gateway(&db, federation::GatewayOptions{});
  const std::string metrics = gateway.MetricsText();
  EXPECT_NE(metrics.find("# joins\n"), std::string::npos);
  EXPECT_NE(metrics.find("joins_planned "), std::string::npos);
  EXPECT_EQ(metrics.find("joins_planned 0\n"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("join_build_rows "), std::string::npos);
  EXPECT_EQ(metrics.find("join_build_rows 0\n"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("join_probe_rows "), std::string::npos);
}

// The same shards and cohort, but the worker answers over a real loopback
// TCP socket: strategy results must match the in-process bus byte for byte
// (the transport must not perturb join bytes, and run_sql_bound must work
// through the framed wire protocol, not just direct dispatch).
TEST(DistributedJoinTcpTest, StrategiesMatchBusResultsOverTcp) {
  auto make_shard = [](uint64_t seed) {
    Rng rng(seed);
    Schema schema;
    EXPECT_TRUE(schema.AddField({"patient_id", DataType::kInt64}).ok());
    EXPECT_TRUE(schema.AddField({"dur", DataType::kFloat64}).ok());
    Table t = Table::Empty(std::move(schema));
    for (int i = 0; i < 150; ++i) {
      EXPECT_TRUE(t.AppendRow({Value::Int(rng.NextUint64() % 80),
                               Value::Double(rng.NextGaussian())})
                      .ok());
    }
    return t;
  };
  auto setup_master = [](federation::MasterNode* master) {
    ASSERT_TRUE(master->local_db()
                    .ExecuteSql("CREATE TABLE cohort (patient_id bigint, "
                                "label varchar)")
                    .ok());
    ASSERT_TRUE(master->local_db()
                    .ExecuteSql("INSERT INTO cohort VALUES (5, 'case'), "
                                "(31, 'control'), (77, 'case')")
                    .ok());
  };
  const std::string sql =
      "SELECT label, dur FROM visits_federated JOIN cohort "
      "ON visits_federated.patient_id = cohort.patient_id";

  // Reference run over the in-process bus.
  federation::MasterNode bus_master;
  ASSERT_TRUE(bus_master.AddWorker("t1").ok());
  ASSERT_TRUE(bus_master.LoadDataset("t1", "visits", make_shard(99)).ok());
  ASSERT_TRUE(bus_master.CreateFederatedView("visits").ok());
  setup_master(&bus_master);
  std::vector<std::vector<uint8_t>> bus_bytes;
  for (const int force : {0, 1}) {
    bus_master.local_db().set_force_join_strategy(force);
    Result<Table> got = bus_master.local_db().ExecuteSql(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_GT(got->num_rows(), 0u);
    bus_bytes.push_back(Bytes(*got));
  }

  // The same worker data behind a listening TCP transport.
  auto functions = std::make_shared<federation::LocalFunctionRegistry>();
  federation::WorkerNode worker("t1", functions, 7);
  ASSERT_TRUE(worker.LoadDataset("visits", make_shard(99)).ok());
  net::TcpTransport server;
  ASSERT_TRUE(worker.AttachToBus(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());
  net::TcpTransport client;
  client.AddPeer("t1", "127.0.0.1", server.port());

  federation::MasterNode tcp_master;
  tcp_master.set_transport(&client);
  ASSERT_TRUE(tcp_master.AddRemoteWorker("t1", {"visits"}).ok());
  ASSERT_TRUE(tcp_master.CreateFederatedView("visits").ok());
  setup_master(&tcp_master);
  for (size_t i = 0; i < 2; ++i) {
    tcp_master.local_db().set_force_join_strategy(static_cast<int>(i));
    Result<Table> got = tcp_master.local_db().ExecuteSql(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(Bytes(*got), bus_bytes[i]) << "force=" << i;
  }
  EXPECT_GT(client.stats().bytes, 0u);
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace mip
