#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/mechanisms.h"

namespace mip::dp {
namespace {

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  LaplaceMechanism mech(0.5, 2.0);
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
}

TEST(LaplaceMechanismTest, NoiseHasTargetVariance) {
  Rng rng(1);
  LaplaceMechanism mech(1.0, 1.0);  // b = 1, Var = 2
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double err = mech.Apply(10.0, &rng) - 10.0;
    sum += err;
    sumsq += err * err;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 2.0, 0.1);
}

TEST(GaussianMechanismTest, SigmaFollowsClassicFormula) {
  GaussianMechanism mech(1.0, 1e-5, 1.0);
  EXPECT_NEAR(mech.sigma(), std::sqrt(2.0 * std::log(1.25e5)), 1e-12);
  // Halving epsilon doubles sigma.
  GaussianMechanism tight(0.5, 1e-5, 1.0);
  EXPECT_NEAR(tight.sigma(), 2.0 * mech.sigma(), 1e-12);
}

TEST(GaussianMechanismTest, VectorNoiseIsIndependent) {
  Rng rng(2);
  GaussianMechanism mech(1.0, 1e-5, 1.0);
  std::vector<double> base(3, 0.0);
  std::vector<double> a = mech.ApplyVector(base, &rng);
  std::vector<double> b = mech.ApplyVector(base, &rng);
  EXPECT_NE(a[0], b[0]);
  EXPECT_NE(a[1], a[2]);
}

TEST(ClipTest, L2ClippingBehaviour) {
  const std::vector<double> small = {0.3, 0.4};  // norm 0.5
  EXPECT_EQ(ClipL2(small, 1.0), small);  // unchanged
  const std::vector<double> big = {3.0, 4.0};  // norm 5
  std::vector<double> clipped = ClipL2(big, 1.0);
  EXPECT_NEAR(std::sqrt(clipped[0] * clipped[0] + clipped[1] * clipped[1]),
              1.0, 1e-12);
  EXPECT_NEAR(clipped[0] / clipped[1], big[0] / big[1], 1e-12);  // direction
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_EQ(ClipL2(zero, 1.0), zero);
}

TEST(AccountantTest, BasicComposition) {
  PrivacyAccountant acc;
  acc.Spend(0.1, 1e-6);
  acc.Spend(0.2, 1e-6);
  acc.Spend(0.3, 0.0);
  EXPECT_EQ(acc.num_releases(), 3);
  EXPECT_NEAR(acc.TotalEpsilonBasic(), 0.6, 1e-12);
  EXPECT_NEAR(acc.TotalDeltaBasic(), 2e-6, 1e-18);
  EXPECT_FALSE(acc.ExceedsBudget(1.0));
  EXPECT_TRUE(acc.ExceedsBudget(0.5));
}

TEST(AccountantTest, AdvancedCompositionBeatsBasicForManySmallSteps) {
  PrivacyAccountant acc;
  const int k = 100;
  const double eps = 0.01;
  for (int i = 0; i < k; ++i) acc.Spend(eps, 1e-7);
  const double basic = acc.TotalEpsilonBasic();
  const double advanced = acc.TotalEpsilonAdvanced(1e-5);
  EXPECT_NEAR(basic, 1.0, 1e-9);
  EXPECT_LT(advanced, basic);
  // Formula check.
  const double expected = eps * std::sqrt(2.0 * k * std::log(1e5)) +
                          k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(advanced, expected, 1e-12);
}

TEST(AccountantTest, HeterogeneousFallsBackToBasic) {
  PrivacyAccountant acc;
  acc.Spend(0.1);
  acc.Spend(0.2);
  EXPECT_NEAR(acc.TotalEpsilonAdvanced(1e-5), 0.3, 1e-12);
}

TEST(AccountantTest, EmptyAccountant) {
  PrivacyAccountant acc;
  EXPECT_EQ(acc.TotalEpsilonBasic(), 0.0);
  EXPECT_EQ(acc.TotalEpsilonAdvanced(1e-5), 0.0);
}

}  // namespace
}  // namespace mip::dp
