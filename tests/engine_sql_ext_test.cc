#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/row_interpreter.h"
#include "engine/sql_parser.h"
#include "engine/vector_program.h"
#include "engine/vectorized.h"

namespace mip::engine {
namespace {

class SqlExtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE p (id bigint, vol double, "
                               "dx varchar, age double)").ok());
    ASSERT_TRUE(db_.ExecuteSql(
        "INSERT INTO p VALUES "
        "(1, 3.1, 'CN', 70), (2, 2.2, 'AD', 75), (3, 2.9, 'MCI', 68), "
        "(4, 1.9, 'AD', 80), (5, NULL, 'CN', 66), (6, 3.4, 'CN', 72)").ok());
  }
  Database db_{"ext"};
};

TEST_F(SqlExtTest, CaseWhenClassifies) {
  Table out = *db_.ExecuteSql(
      "SELECT id, CASE WHEN vol < 2.0 THEN 'severe' "
      "WHEN vol < 3.0 THEN 'moderate' ELSE 'normal' END AS severity "
      "FROM p ORDER BY id");
  EXPECT_EQ(out.At(0, 1).string_value(), "normal");    // 3.1
  EXPECT_EQ(out.At(1, 1).string_value(), "moderate");  // 2.2
  EXPECT_EQ(out.At(3, 1).string_value(), "severe");    // 1.9
  // NULL vol matches no WHEN -> ELSE branch.
  EXPECT_EQ(out.At(4, 1).string_value(), "normal");
}

TEST_F(SqlExtTest, CaseWithoutElseYieldsNull) {
  Table out = *db_.ExecuteSql(
      "SELECT id, CASE WHEN vol > 3.0 THEN 1 END AS big FROM p ORDER BY id");
  EXPECT_EQ(out.At(0, 1).AsInt(), 1);
  EXPECT_TRUE(out.At(1, 1).is_null());
}

TEST_F(SqlExtTest, CaseNumericInAggregates) {
  // The classic conditional-count idiom.
  Table out = *db_.ExecuteSql(
      "SELECT sum(CASE WHEN dx = 'AD' THEN 1 ELSE 0 END) AS n_ad FROM p");
  EXPECT_EQ(out.At(0, 0).AsDouble(), 2.0);
}

TEST_F(SqlExtTest, InAndNotIn) {
  Table in_list = *db_.ExecuteSql(
      "SELECT id FROM p WHERE dx IN ('AD', 'MCI') ORDER BY id");
  ASSERT_EQ(in_list.num_rows(), 3u);
  EXPECT_EQ(in_list.At(0, 0).int_value(), 2);
  Table not_in = *db_.ExecuteSql(
      "SELECT id FROM p WHERE id NOT IN (1, 2, 3) ORDER BY id");
  ASSERT_EQ(not_in.num_rows(), 3u);
  EXPECT_EQ(not_in.At(0, 0).int_value(), 4);
}

TEST_F(SqlExtTest, BetweenAndNotBetween) {
  Table mid = *db_.ExecuteSql(
      "SELECT id FROM p WHERE age BETWEEN 68 AND 75 ORDER BY id");
  ASSERT_EQ(mid.num_rows(), 4u);  // 70, 75, 68, 72
  Table tails = *db_.ExecuteSql(
      "SELECT id FROM p WHERE age NOT BETWEEN 68 AND 75 ORDER BY id");
  ASSERT_EQ(tails.num_rows(), 2u);  // 80, 66
}

TEST_F(SqlExtTest, LikePatterns) {
  Table starts = *db_.ExecuteSql("SELECT id FROM p WHERE dx LIKE 'M%'");
  ASSERT_EQ(starts.num_rows(), 1u);
  EXPECT_EQ(starts.At(0, 0).int_value(), 3);
  Table underscore =
      *db_.ExecuteSql("SELECT count(*) AS n FROM p WHERE dx LIKE '_D'");
  EXPECT_EQ(underscore.At(0, 0).int_value(), 2);  // AD twice
  Table contains =
      *db_.ExecuteSql("SELECT count(*) AS n FROM p WHERE dx LIKE '%C%'");
  EXPECT_EQ(contains.At(0, 0).int_value(), 4);  // CN x3, MCI
  Table negated =
      *db_.ExecuteSql("SELECT count(*) AS n FROM p WHERE dx NOT LIKE 'CN'");
  EXPECT_EQ(negated.At(0, 0).int_value(), 3);
}

TEST_F(SqlExtTest, CastConversions) {
  Table out = *db_.ExecuteSql(
      "SELECT CAST(vol AS bigint) AS v_int, CAST(id AS varchar) AS id_s, "
      "CAST(dx AS varchar) AS dx2 FROM p WHERE id = 1");
  EXPECT_EQ(out.At(0, 0).int_value(), 3);
  EXPECT_EQ(out.At(0, 1).string_value(), "1");
  EXPECT_EQ(out.At(0, 2).string_value(), "CN");
  EXPECT_EQ(out.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(out.schema().field(1).type, DataType::kString);
}

TEST_F(SqlExtTest, CastStringToNumber) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE raw (v varchar)").ok());
  ASSERT_TRUE(db_.ExecuteSql(
      "INSERT INTO raw VALUES ('3.5'), ('nope'), ('42')").ok());
  Table out = *db_.ExecuteSql("SELECT CAST(v AS double) AS d FROM raw");
  EXPECT_EQ(out.At(0, 0).AsDouble(), 3.5);
  EXPECT_TRUE(out.At(1, 0).is_null());  // unparseable -> NULL
  EXPECT_EQ(out.At(2, 0).AsDouble(), 42.0);
}

TEST_F(SqlExtTest, CountDistinct) {
  Table out = *db_.ExecuteSql(
      "SELECT count(distinct dx) AS kinds, count(dx) AS total FROM p");
  EXPECT_EQ(out.At(0, 0).int_value(), 3);
  EXPECT_EQ(out.At(0, 1).int_value(), 6);
  // Grouped distinct.
  Table grouped = *db_.ExecuteSql(
      "SELECT dx, count(distinct age) AS ages FROM p GROUP BY dx "
      "ORDER BY dx");
  EXPECT_EQ(grouped.At(0, 0).string_value(), "AD");
  EXPECT_EQ(grouped.At(0, 1).int_value(), 2);
}


TEST_F(SqlExtTest, SelectDistinct) {
  Table dx = *db_.ExecuteSql("SELECT DISTINCT dx FROM p ORDER BY dx");
  ASSERT_EQ(dx.num_rows(), 3u);
  EXPECT_EQ(dx.At(0, 0).string_value(), "AD");
  EXPECT_EQ(dx.At(2, 0).string_value(), "MCI");
  // Multi-column distinct keeps distinct tuples.
  Table pairs = *db_.ExecuteSql(
      "SELECT DISTINCT dx, CASE WHEN age > 70 THEN 1 ELSE 0 END AS senior "
      "FROM p");
  EXPECT_EQ(pairs.num_rows(), 4u);  // (CN,0),(AD,1),(MCI,0),(CN,1)
  // Without DISTINCT all six rows survive.
  Table all = *db_.ExecuteSql("SELECT dx FROM p");
  EXPECT_EQ(all.num_rows(), 6u);
}

TEST_F(SqlExtTest, ParserErrorsForMalformedConstructs) {
  EXPECT_FALSE(db_.ExecuteSql("SELECT CASE vol WHEN 1 THEN 2 END FROM p")
                   .ok());  // simple CASE unsupported
  EXPECT_FALSE(db_.ExecuteSql("SELECT CASE WHEN vol THEN END FROM p").ok());
  EXPECT_FALSE(db_.ExecuteSql("SELECT CAST(vol) FROM p").ok());
  EXPECT_FALSE(db_.ExecuteSql("SELECT id FROM p WHERE id IN ()").ok());
  EXPECT_FALSE(
      db_.ExecuteSql("SELECT id FROM p WHERE age BETWEEN 1 2").ok());
  EXPECT_FALSE(db_.ExecuteSql("SELECT id FROM p WHERE vol LIKE 'x'").ok());
}

// Numeric CASE expressions must agree across all three execution engines.
TEST(CaseExecutionParity, RowVectorizedJitAgree) {
  Column a(DataType::kFloat64);
  mip::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    if (i % 17 == 0) {
      a.AppendNull();
    } else {
      a.AppendDouble(rng.NextGaussian());
    }
  }
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  Table t = *Table::Make(schema, {a});
  ExprPtr expr = *ParseExpression(
      "case when a > 1 then a * 2 when a > 0 then a else 0 - a end");
  ASSERT_TRUE(BindExpr(expr.get(), t.schema()).ok());
  Column vec = *EvalVectorized(*expr, t);
  VectorProgram prog = *VectorProgram::Compile(*expr, t.schema());
  Column jit = *prog.Execute(t);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value ref = *EvalRow(*expr, t, r);
    if (ref.is_null()) {
      EXPECT_TRUE(vec.ValueAt(r).is_null()) << r;
      EXPECT_TRUE(jit.ValueAt(r).is_null()) << r;
    } else {
      EXPECT_NEAR(vec.AsDoubleAt(r), ref.AsDouble(), 1e-12) << r;
      EXPECT_NEAR(jit.AsDoubleAt(r), ref.AsDouble(), 1e-12) << r;
    }
  }
}

}  // namespace
}  // namespace mip::engine
