// Determinism contract of morsel-driven execution: every operator must
// produce BYTE-IDENTICAL output at any thread count, because morsel
// boundaries depend only on morsel_size and per-morsel partials merge in
// morsel order (see engine/exec_context.h). Each case serializes the serial
// result and compares it against pools of 1/2/4/8 threads with a small
// morsel size that forces many morsels.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "engine/column.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/sql_parser.h"
#include "engine/table.h"
#include "engine/vectorized.h"

namespace mip::engine {
namespace {

constexpr size_t kRows = 10'000;
constexpr size_t kMorsel = 512;  // kRows/kMorsel ≈ 20 morsels per scan.

/// A deliberately awkward table: NULL group keys, NULL measures, repeated
/// string values (CountDistinct), negative ints, and ties for Min/Max.
Table MakeTable(size_t rows) {
  Rng rng(42);
  Column g(DataType::kString);   // group key with NULLs
  Column k(DataType::kInt64);    // int group key
  Column v(DataType::kFloat64);  // double measure with NULLs
  Column n(DataType::kInt64);    // int measure (typed Min/Max results)
  Column s(DataType::kString);   // string measure (string Min/Max)
  for (size_t i = 0; i < rows; ++i) {
    if (i % 13 == 5) {
      g.AppendNull();
    } else {
      g.AppendString("grp_" + std::to_string(i % 7));
    }
    k.AppendInt(static_cast<int64_t>(i % 5));
    if (i % 11 == 2) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.NextGaussian(0, 10));
    }
    n.AppendInt(static_cast<int64_t>(i % 97) - 48);
    s.AppendString(std::string(1, static_cast<char>('a' + i % 26)));
  }
  Schema schema;
  (void)schema.AddField({"g", DataType::kString});
  (void)schema.AddField({"k", DataType::kInt64});
  (void)schema.AddField({"v", DataType::kFloat64});
  (void)schema.AddField({"n", DataType::kInt64});
  (void)schema.AddField({"s", DataType::kString});
  return *Table::Make(schema, {std::move(g), std::move(k), std::move(v),
                               std::move(n), std::move(s)});
}

std::vector<uint8_t> Bytes(const Table& t) {
  BufferWriter w;
  SerializeTable(t, &w);
  return w.TakeBytes();
}

/// Runs `op` with no pool (serial morsel loop) and under pools of 1/2/4/8
/// threads, all at the same small morsel size, and asserts every serialized
/// result matches the no-pool bytes exactly. Morsel size is the determinism
/// parameter — float accumulation depends on the partition — so it is held
/// fixed while the thread count sweeps.
void ExpectIdenticalAcrossThreads(
    const std::function<Table(const ExecContext*)>& op) {
  ExecContext serial_ctx;
  serial_ctx.morsel_size = kMorsel;
  const std::vector<uint8_t> expected = Bytes(op(&serial_ctx));
  ASSERT_FALSE(expected.empty());
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ExecContext ctx;
    ctx.pool = &pool;
    ctx.morsel_size = kMorsel;
    EXPECT_EQ(Bytes(op(&ctx)), expected) << "threads=" << threads;
  }
}

ExprPtr Bound(const std::string& text, const Table& table) {
  ExprPtr e = *ParseExpression(text);
  EXPECT_TRUE(BindExpr(e.get(), table.schema()).ok());
  return e;
}

std::vector<AggregateSpec> AllAggregates(const Table& table) {
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "n_rows"});
  aggs.push_back({AggFunc::kCount, Bound("v", table), "n_v"});
  aggs.push_back({AggFunc::kCountDistinct, Bound("s", table), "nd_s"});
  aggs.push_back({AggFunc::kSum, Bound("v", table), "sum_v"});
  aggs.push_back({AggFunc::kAvg, Bound("v", table), "avg_v"});
  aggs.push_back({AggFunc::kMin, Bound("v", table), "min_v"});
  aggs.push_back({AggFunc::kMax, Bound("v", table), "max_v"});
  aggs.push_back({AggFunc::kMin, Bound("n", table), "min_n"});
  aggs.push_back({AggFunc::kMax, Bound("n", table), "max_n"});
  aggs.push_back({AggFunc::kMin, Bound("s", table), "min_s"});
  aggs.push_back({AggFunc::kMax, Bound("s", table), "max_s"});
  aggs.push_back({AggFunc::kVarSamp, Bound("v", table), "var_v"});
  aggs.push_back({AggFunc::kStddevSamp, Bound("v", table), "sd_v"});
  return aggs;
}

TEST(EngineParallelTest, FilterIsByteIdentical) {
  const Table table = MakeTable(kRows);
  ExprPtr pred = Bound("v > 2 and n < 30", table);
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *Filter(table, *pred, nullptr, exec);
  });
}

TEST(EngineParallelTest, ProjectIsByteIdentical) {
  const Table table = MakeTable(kRows);
  ExprPtr e1 = Bound("sqrt(abs(v)) + n / 7", table);
  ExprPtr e2 = Bound("v * v - 2 * v", table);
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *Project(table, {e1, e2}, {"score", "poly"}, nullptr, exec);
  });
}

TEST(EngineParallelTest, AggregateAllIsByteIdentical) {
  const Table table = MakeTable(kRows);
  const std::vector<AggregateSpec> aggs = AllAggregates(table);
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *AggregateAll(table, aggs, nullptr, exec);
  });
}

TEST(EngineParallelTest, GroupByWithNullGroupsIsByteIdentical) {
  const Table table = MakeTable(kRows);
  const std::vector<AggregateSpec> aggs = AllAggregates(table);
  ExprPtr key = Bound("g", table);  // has NULLs: they form their own group
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *GroupByAggregate(table, {key}, {"g"}, aggs, nullptr, exec);
  });
}

TEST(EngineParallelTest, MultiKeyGroupByIsByteIdentical) {
  const Table table = MakeTable(kRows);
  const std::vector<AggregateSpec> aggs = AllAggregates(table);
  ExprPtr g = Bound("g", table);
  ExprPtr k = Bound("k", table);
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *GroupByAggregate(table, {g, k}, {"g", "k"}, aggs, nullptr, exec);
  });
}

// Group order must equal the serial first-seen scan order even when the
// first occurrence of a key sits in a late morsel.
TEST(EngineParallelTest, GroupOrderMatchesSerialFirstSeen) {
  Column key(DataType::kInt64);
  Column val(DataType::kFloat64);
  const size_t rows = 4 * kMorsel;
  for (size_t i = 0; i < rows; ++i) {
    // Key 99 first appears in the last morsel; key 0/1 alternate earlier.
    key.AppendInt(i >= 3 * kMorsel ? 99 : static_cast<int64_t>(i % 2));
    val.AppendDouble(static_cast<double>(i));
  }
  Schema schema;
  (void)schema.AddField({"key", DataType::kInt64});
  (void)schema.AddField({"val", DataType::kFloat64});
  const Table table =
      *Table::Make(schema, {std::move(key), std::move(val)});
  ExprPtr k = Bound("key", table);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kSum, Bound("val", table), "sum_val"});
  ExpectIdenticalAcrossThreads([&](const ExecContext* exec) {
    return *GroupByAggregate(table, {k}, {"key"}, aggs, nullptr, exec);
  });
  ThreadPool pool(4);
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.morsel_size = kMorsel;
  const Table out = *GroupByAggregate(table, {k}, {"key"}, aggs, nullptr,
                                      &ctx);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.At(0, 0).AsInt(), 0);
  EXPECT_EQ(out.At(1, 0).AsInt(), 1);
  EXPECT_EQ(out.At(2, 0).AsInt(), 99);
}

// Typed Min/Max must keep the column's value kind at any thread count (an
// int column's min is Value::Int, not a widened double).
TEST(EngineParallelTest, TypedMinMaxPreservesKind) {
  const Table table = MakeTable(kRows);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kMin, Bound("n", table), "min_n"});
  aggs.push_back({AggFunc::kMax, Bound("n", table), "max_n"});
  ThreadPool pool(4);
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.morsel_size = kMorsel;
  const Table out = *AggregateAll(table, aggs, nullptr, &ctx);
  EXPECT_EQ(out.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(out.schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(out.At(0, 0).AsInt(), -48);
  EXPECT_EQ(out.At(0, 1).AsInt(), 48);
}

// Elementwise operators write disjoint index ranges, so they are invariant
// to the morsel partition itself, not just the thread count.
TEST(EngineParallelTest, ElementwiseOpsInvariantToMorselSize) {
  const Table table = MakeTable(kRows);
  ExprPtr pred = Bound("v > 2 and n < 30", table);
  ExprPtr proj = Bound("sqrt(abs(v)) + n / 7", table);
  const std::vector<uint8_t> filtered =
      Bytes(*Filter(table, *pred, nullptr, &ExecContext::Serial()));
  const std::vector<uint8_t> projected = Bytes(
      *Project(table, {proj}, {"score"}, nullptr, &ExecContext::Serial()));
  ThreadPool pool(4);
  for (size_t morsel : {64u, 1000u, 4096u, 1u << 20}) {
    ExecContext ctx;
    ctx.pool = &pool;
    ctx.morsel_size = morsel;
    EXPECT_EQ(Bytes(*Filter(table, *pred, nullptr, &ctx)), filtered)
        << "morsel_size=" << morsel;
    EXPECT_EQ(Bytes(*Project(table, {proj}, {"score"}, nullptr, &ctx)),
              projected)
        << "morsel_size=" << morsel;
  }
}

// At the default 64K morsel size a ≤64K-row table is a single morsel, and
// merging one partial into an empty state is an exact copy — so parallel
// contexts reproduce the legacy serial aggregation byte-for-byte. This is
// what keeps pre-existing results (and federated round payloads) unchanged.
TEST(EngineParallelTest, DefaultMorselMatchesLegacySerialOnSmallTables) {
  const Table table = MakeTable(kRows);
  const std::vector<AggregateSpec> aggs = AllAggregates(table);
  ExprPtr key = Bound("g", table);
  const std::vector<uint8_t> agg_expected =
      Bytes(*AggregateAll(table, aggs, nullptr, &ExecContext::Serial()));
  const std::vector<uint8_t> grp_expected = Bytes(*GroupByAggregate(
      table, {key}, {"g"}, aggs, nullptr, &ExecContext::Serial()));
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    ExecContext ctx;
    ctx.pool = &pool;  // default morsel_size: one morsel for kRows
    EXPECT_EQ(Bytes(*AggregateAll(table, aggs, nullptr, &ctx)),
              agg_expected)
        << "threads=" << threads;
    EXPECT_EQ(Bytes(*GroupByAggregate(table, {key}, {"g"}, aggs, nullptr,
                                      &ctx)),
              grp_expected)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace mip::engine
