// Gateway result cache semantics: hits on semantically identical SQL,
// misses on different plans, implicit invalidation through the catalog
// version, LRU eviction order, single-flight computation, and the typed
// BUSY admission path.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "engine/database.h"
#include "engine/table.h"
#include "federation/gateway.h"
#include "storage/io.h"
#include "storage/store.h"

namespace mip {
namespace {

using engine::Database;
using engine::Table;
using federation::Gateway;
using federation::GatewayOptions;
using federation::ResultCache;

net::Envelope SqlEnvelope(const std::string& sql,
                          const std::string& tenant = "alice") {
  BufferWriter writer;
  writer.WriteString(sql);
  return net::Envelope{tenant, "gateway", "run_sql", "", writer.TakeBytes()};
}

Result<Table> DecodeReply(const Result<std::vector<uint8_t>>& reply) {
  MIP_RETURN_NOT_OK(reply.status());
  BufferReader reader(reply.ValueOrDie());
  return engine::DeserializeTable(&reader);
}

class GatewayCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("serve");
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE t (x double)").ok());
    ASSERT_TRUE(
        db_->ExecuteSql("INSERT INTO t VALUES (1), (2), (3)").ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(GatewayCacheTest, HitOnSemanticallyIdenticalSql) {
  Gateway gateway(db_.get());
  // Different spellings, same optimized plan -> one computation, one hit.
  auto first = DecodeReply(
      gateway.Handle(SqlEnvelope("SELECT x FROM t WHERE x > 1")));
  auto second = DecodeReply(
      gateway.Handle(SqlEnvelope("select   x from t where x > 1")));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.ValueOrDie().ToString(100),
            second.ValueOrDie().ToString(100));
  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(GatewayCacheTest, MissOnSemanticallyDifferentSql) {
  Gateway gateway(db_.get());
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("SELECT x FROM t WHERE x > 1")).ok());
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("SELECT x FROM t WHERE x > 2")).ok());
  ASSERT_TRUE(gateway.Handle(SqlEnvelope("SELECT x FROM t")).ok());
  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(GatewayCacheTest, DdlAndDmlInvalidateThroughCatalogVersion) {
  Gateway gateway(db_.get());
  const std::string sql = "SELECT count(*) AS n FROM t";
  auto before = DecodeReply(gateway.Handle(SqlEnvelope(sql)));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.ValueOrDie().At(0, 0).int_value(), 3);

  // A write through the gateway bumps the catalog version: the cached entry
  // stops matching (no explicit invalidation anywhere).
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("INSERT INTO t VALUES (4)")).ok());
  auto after = DecodeReply(gateway.Handle(SqlEnvelope(sql)));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().At(0, 0).int_value(), 4);

  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.misses, 2u);  // recomputed after the write
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(GatewayCacheTest, CapacityEvictsLeastRecentlyUsed) {
  GatewayOptions options;
  options.cache_capacity = 2;
  Gateway gateway(db_.get(), options);
  const std::string a = "SELECT x FROM t WHERE x > 0";
  const std::string b = "SELECT x FROM t WHERE x > 1";
  const std::string c = "SELECT x FROM t WHERE x > 2";

  ASSERT_TRUE(gateway.Handle(SqlEnvelope(a)).ok());  // miss, cache {A}
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(b)).ok());  // miss, cache {B,A}
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(a)).ok());  // hit, order {A,B}
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(c)).ok());  // miss, evicts B
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(a)).ok());  // hit: A survived
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(b)).ok());  // miss: B was the victim

  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(gateway.cache().size(), 2u);
}

TEST_F(GatewayCacheTest, CacheDisabledAlwaysRecomputes) {
  GatewayOptions options;
  options.cache_enabled = false;
  Gateway gateway(db_.get(), options);
  const std::string sql = "SELECT x FROM t WHERE x > 1";
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(sql)).ok());
  ASSERT_TRUE(gateway.Handle(SqlEnvelope(sql)).ok());
  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // the cache is never consulted
}

TEST_F(GatewayCacheTest, ZeroCapacityShedsAdmissionWithTypedBusy) {
  GatewayOptions options;
  options.max_in_flight = 0;  // everything sheds: the deterministic BUSY path
  Gateway gateway(db_.get(), options);
  auto reply = gateway.Handle(SqlEnvelope("SELECT x FROM t"));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(reply.status().ToString().find("BUSY"), std::string::npos);
  EXPECT_EQ(gateway.stats().shed_capacity, 1u);
}

TEST_F(GatewayCacheTest, TenantQuotaShedsIndependently) {
  GatewayOptions options;
  options.per_tenant_in_flight = 0;  // every tenant over quota immediately
  Gateway gateway(db_.get(), options);
  auto reply = gateway.Handle(SqlEnvelope("SELECT x FROM t", "bob"));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(reply.status().ToString().find("bob"), std::string::npos);
  EXPECT_EQ(gateway.stats().shed_quota, 1u);
}

TEST_F(GatewayCacheTest, MetricsTextExposesCountersAndQuantiles) {
  Gateway gateway(db_.get());
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("SELECT x FROM t", "alice")).ok());
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("SELECT x FROM t", "alice")).ok());
  auto metrics = gateway.Handle(
      net::Envelope{"alice", "gateway", "metrics", "", {}});
  ASSERT_TRUE(metrics.ok());
  const std::string text(metrics.ValueOrDie().begin(),
                         metrics.ValueOrDie().end());
  EXPECT_NE(text.find("gateway_admitted 2"), std::string::npos);
  EXPECT_NE(text.find("cache_hits 1"), std::string::npos);
  EXPECT_NE(text.find("tenant{id=\"alice\"}"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

// --- ResultCache unit tests: single-flight ---------------------------------

TEST(ResultCacheTest, SingleFlightComputesOnceAcrossConcurrentCallers) {
  ResultCache cache(8);
  const ResultCache::Key key{42, 1};
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrCompute(key, [&]() -> Result<Table> {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Table();
      });
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(computes.load(), 1);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced + stats.hits,
            static_cast<uint64_t>(kThreads - 1));
}

TEST(ResultCacheTest, FailedLeaderDoesNotPoisonTheKey) {
  ResultCache cache(8);
  const ResultCache::Key key{7, 1};
  std::atomic<int> computes{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0}, error_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrCompute(key, [&]() -> Result<Table> {
        const int n = computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (n == 0) return Status::Unavailable("first leader dies");
        return Table();
      });
      (result.ok() ? ok_count : error_count).fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly the failing leader observes the failure; every waiter retries
  // into a successful leader (or a cached entry).
  EXPECT_EQ(error_count.load(), 1);
  EXPECT_EQ(ok_count.load(), kThreads - 1);
  // The key works afterwards — no poisoning.
  auto again = cache.GetOrCompute(
      key, [&]() -> Result<Table> { return Table(); });
  EXPECT_TRUE(again.ok());
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(GatewayDiskTest, DiskIngestInvalidatesCachedResults) {
  // A gateway serving a disk-backed table must never return stale cached
  // rows across an LSM ingest: IngestDisk bumps the catalog version, so
  // the (fingerprint, version) cache key stops matching.
  const std::string dir = ::testing::TempDir() + "mip_cache_disk";
  ASSERT_TRUE(storage::EnsureDir(dir).ok());
  if (auto names = storage::ListDir(dir); names.ok()) {
    for (const std::string& f : names.ValueOrDie()) {
      ASSERT_TRUE(storage::RemoveFile(dir + "/" + f).ok());
    }
  }
  auto store = storage::StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  engine::Schema schema({{"x", engine::DataType::kFloat64}});
  auto batch = Table::Make(
      schema, {engine::Column::FromDoubles({1.0, 2.0, 3.0})});
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*store)->AppendRows("readings", batch.ValueOrDie()).ok());

  Database db("diskserve");
  ASSERT_TRUE(db.AttachStorage(store.ValueOrDie().get()).ok());
  Gateway gateway(&db);
  const std::string sql = "SELECT count(*) AS n FROM readings";
  auto before = DecodeReply(gateway.Handle(SqlEnvelope(sql)));
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.ValueOrDie().At(0, 0).int_value(), 3);

  // Out-of-band ingest (a loader process, not SQL through the gateway).
  ASSERT_TRUE(db.IngestDisk("readings", batch.ValueOrDie()).ok());

  auto after = DecodeReply(gateway.Handle(SqlEnvelope(sql)));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie().At(0, 0).int_value(), 6);
  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.misses, 2u);  // recomputed, not served stale
  EXPECT_EQ(stats.hits, 0u);
}

TEST(GatewayDiskTest, CompactionDoesNotInvalidateCachedResults) {
  // Compaction rearranges bytes on disk without changing a single visible
  // row, so it must NOT bump the catalog version: cached results stay hot
  // across it (and across the Scan -> IndexScan access-path flip the new
  // segment layout may cause, because plan fingerprints are canonical).
  const std::string dir = ::testing::TempDir() + "mip_cache_compact";
  ASSERT_TRUE(storage::EnsureDir(dir).ok());
  if (auto names = storage::ListDir(dir); names.ok()) {
    for (const std::string& f : names.ValueOrDie()) {
      ASSERT_TRUE(storage::RemoveFile(dir + "/" + f).ok());
    }
  }
  storage::StorageOptions options;
  options.target_segment_rows = 40;
  auto store = storage::StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  engine::Schema schema({{"x", engine::DataType::kFloat64}});
  std::vector<double> xs;
  for (int i = 1; i <= 120; ++i) xs.push_back(static_cast<double>(i));
  auto batch = Table::Make(schema, {engine::Column::FromDoubles(xs)});
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*store)->AppendRows("readings", batch.ValueOrDie()).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_EQ((*store)->SegmentCount("readings").ValueOrDie(), 3u);

  Database db("diskserve");
  ASSERT_TRUE(db.AttachStorage(store.ValueOrDie().get()).ok());
  Gateway gateway(&db);
  const std::string sql = "SELECT count(*) AS n FROM readings WHERE x > 50";
  auto before = gateway.Handle(SqlEnvelope(sql));
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  auto decoded = DecodeReply(before);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().At(0, 0).int_value(), 70);

  const uint64_t version = db.catalog_version();
  ASSERT_TRUE((*store)->Compact("readings").ok());
  EXPECT_EQ(db.catalog_version(), version);

  // Same question after compaction: served from cache (hit, no recompute),
  // byte-for-byte the same reply.
  auto after = gateway.Handle(SqlEnvelope(sql));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie(), before.ValueOrDie());
  const ResultCache::Stats stats = gateway.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // Fresh questions against the compacted layout still answer correctly.
  auto fresh = DecodeReply(gateway.Handle(
      SqlEnvelope("SELECT count(*) AS n FROM readings WHERE x <= 50")));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh.ValueOrDie().At(0, 0).int_value(), 50);
}

TEST(GatewayDiskTest, MetricsExposeStorageCounters) {
  // The "# storage" /metrics section: lifetime flush/compaction/scan/index
  // counters from the attached store, absent when no storage is attached.
  const std::string dir = ::testing::TempDir() + "mip_cache_metrics";
  ASSERT_TRUE(storage::EnsureDir(dir).ok());
  if (auto names = storage::ListDir(dir); names.ok()) {
    for (const std::string& f : names.ValueOrDie()) {
      ASSERT_TRUE(storage::RemoveFile(dir + "/" + f).ok());
    }
  }
  storage::StorageOptions options;
  options.target_segment_rows = 40;
  auto store = storage::StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  engine::Schema schema({{"x", engine::DataType::kFloat64}});
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i % 37));
  auto batch = Table::Make(schema, {engine::Column::FromDoubles(xs)});
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*store)->AppendRows("readings", batch.ValueOrDie()).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Compact("readings").ok());

  Database db("metricsnode");
  ASSERT_TRUE(db.AttachStorage(store.ValueOrDie().get()).ok());
  Gateway gateway(&db);
  ASSERT_TRUE(
      gateway.Handle(SqlEnvelope("SELECT x FROM readings WHERE x > 30"))
          .ok());
  const std::string text = gateway.MetricsText();
  EXPECT_NE(text.find("# storage"), std::string::npos) << text;
  EXPECT_NE(text.find("storage_flushes 1"), std::string::npos) << text;
  EXPECT_NE(text.find("storage_compactions 1"), std::string::npos) << text;
  EXPECT_NE(text.find("storage_segments_scanned"), std::string::npos);
  EXPECT_NE(text.find("storage_index_probes"), std::string::npos);
  EXPECT_NE(text.find("storage_wal_replays"), std::string::npos);

  // No storage attached -> no storage section.
  Database bare("bare");
  Gateway plain(&bare);
  EXPECT_EQ(plain.MetricsText().find("# storage"), std::string::npos);
}

}  // namespace
}  // namespace mip
