#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "engine/sql_lexer.h"
#include "engine/sql_parser.h"

namespace mip::engine {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = *LexSql("SELECT x1, 'it''s' FROM t WHERE a >= 3.5e2 -- end");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "x1");
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_EQ(tokens[3].type, TokenType::kString);
  EXPECT_EQ(tokens[3].text, "it's");
  EXPECT_TRUE(tokens[4].IsKeyword("from"));
  EXPECT_TRUE(tokens[8].IsSymbol(">="));
  EXPECT_EQ(tokens[9].type, TokenType::kFloat);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT #").ok());
}

TEST(ParserTest, SelectStructure) {
  SqlStatement stmt = *ParseSql(
      "SELECT g, avg(v) AS mean_v FROM t WHERE v > 0 GROUP BY g "
      "HAVING count(*) > 2 ORDER BY mean_v DESC LIMIT 5");
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->items.size(), 2u);
  EXPECT_EQ(select->items[1].alias, "mean_v");
  EXPECT_NE(select->where, nullptr);
  EXPECT_EQ(select->group_by.size(), 1u);
  EXPECT_NE(select->having, nullptr);
  ASSERT_EQ(select->order_by.size(), 1u);
  EXPECT_FALSE(select->order_by[0].ascending);
  EXPECT_EQ(select->limit, 5);
}

TEST(ParserTest, OperatorPrecedence) {
  ExprPtr e = *ParseExpression("1 + 2 * 3 < 10 and not false");
  // ((1 + (2 * 3)) < 10) and (not false)
  EXPECT_EQ(e->ToString(), "(((1 + (2 * 3)) < 10) and (not false))");
}

TEST(ParserTest, IsNullAndUnaryMinus) {
  EXPECT_EQ((*ParseExpression("x is null"))->ToString(), "(x is null)");
  EXPECT_EQ((*ParseExpression("x is not null"))->ToString(),
            "(x is not null)");
  EXPECT_EQ((*ParseExpression("-3"))->ToString(), "-3");  // folded literal
  EXPECT_EQ((*ParseExpression("-x"))->ToString(), "(-x)");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("FOO BAR").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
}

TEST(ParserTest, CreateInsertDrop) {
  SqlStatement create = *ParseSql(
      "CREATE TABLE pat (id bigint, vol double, dx varchar(16))");
  auto* ct = std::get_if<CreateTableStmt>(&create);
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(ct->fields.size(), 3u);
  EXPECT_EQ(ct->fields[1].type, DataType::kFloat64);
  EXPECT_EQ(ct->fields[2].type, DataType::kString);

  SqlStatement insert =
      *ParseSql("INSERT INTO pat VALUES (1, -2.5, 'AD'), (2, NULL, 'CN')");
  auto* is = std::get_if<InsertStmt>(&insert);
  ASSERT_NE(is, nullptr);
  EXPECT_EQ(is->rows.size(), 2u);
  EXPECT_EQ(is->rows[0][1].AsDouble(), -2.5);
  EXPECT_TRUE(is->rows[1][1].is_null());

  EXPECT_TRUE(ParseSql("DROP TABLE pat").ok());
}

TEST(ParserTest, RemoteAndMergeTables) {
  SqlStatement remote =
      *ParseSql("CREATE REMOTE TABLE edsd_lille ON 'lille' AS edsd");
  auto* rt = std::get_if<CreateRemoteTableStmt>(&remote);
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->location, "lille");
  EXPECT_EQ(rt->remote_name, "edsd");

  SqlStatement merge = *ParseSql("CREATE MERGE TABLE all_edsd (a, b, c)");
  auto* mt = std::get_if<CreateMergeTableStmt>(&merge);
  ASSERT_NE(mt, nullptr);
  EXPECT_EQ(mt->parts.size(), 3u);
}

class DatabaseSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE p (id bigint, vol double, "
                               "dx varchar, age double)").ok());
    ASSERT_TRUE(db_.ExecuteSql(
        "INSERT INTO p VALUES "
        "(1, 3.1, 'CN', 70), (2, 2.2, 'AD', 75), (3, 2.9, 'MCI', 68), "
        "(4, 1.9, 'AD', 80), (5, NULL, 'CN', 66), (6, 3.4, 'CN', 72)").ok());
  }
  Database db_{"test"};
};

TEST_F(DatabaseSqlTest, SelectStar) {
  Table out = *db_.ExecuteSql("SELECT * FROM p");
  EXPECT_EQ(out.num_rows(), 6u);
  EXPECT_EQ(out.num_columns(), 4u);
}

TEST_F(DatabaseSqlTest, WhereAndProjection) {
  Table out = *db_.ExecuteSql(
      "SELECT id, vol * 1000 AS vol_mm3 FROM p WHERE dx = 'AD'");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema().field(1).name, "vol_mm3");
  EXPECT_EQ(out.At(0, 1).AsDouble(), 2200.0);
}

TEST_F(DatabaseSqlTest, GroupByWithHavingAndOrder) {
  Table out = *db_.ExecuteSql(
      "SELECT dx, count(*) AS n, avg(vol) AS mean_vol FROM p "
      "GROUP BY dx HAVING count(*) >= 2 ORDER BY dx");
  ASSERT_EQ(out.num_rows(), 2u);  // AD and CN (MCI has 1 row)
  EXPECT_EQ(out.At(0, 0).string_value(), "AD");
  EXPECT_EQ(out.At(0, 1).int_value(), 2);
  EXPECT_NEAR(out.At(0, 2).AsDouble(), 2.05, 1e-9);
  EXPECT_EQ(out.At(1, 0).string_value(), "CN");
  EXPECT_NEAR(out.At(1, 2).AsDouble(), 3.25, 1e-9);  // NULL vol skipped
}

TEST_F(DatabaseSqlTest, ArithmeticOverAggregates) {
  Table out = *db_.ExecuteSql(
      "SELECT sum(vol) / count(vol) AS manual_avg, avg(vol) AS direct "
      "FROM p");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_NEAR(out.At(0, 0).AsDouble(), out.At(0, 1).AsDouble(), 1e-12);
}

TEST_F(DatabaseSqlTest, AggregatesWithWhere) {
  Table out = *db_.ExecuteSql(
      "SELECT min(age) AS lo, max(age) AS hi, stddev(age) AS sd FROM p "
      "WHERE dx <> 'AD'");
  EXPECT_EQ(out.At(0, 0).AsDouble(), 66.0);
  EXPECT_EQ(out.At(0, 1).AsDouble(), 72.0);
}

TEST_F(DatabaseSqlTest, NullSemantics) {
  // NULL never satisfies comparisons.
  Table lt = *db_.ExecuteSql("SELECT id FROM p WHERE vol < 100");
  EXPECT_EQ(lt.num_rows(), 5u);
  Table isnull = *db_.ExecuteSql("SELECT id FROM p WHERE vol IS NULL");
  ASSERT_EQ(isnull.num_rows(), 1u);
  EXPECT_EQ(isnull.At(0, 0).int_value(), 5);
  // Division by zero -> NULL, coalesce replaces it.
  Table dz = *db_.ExecuteSql(
      "SELECT coalesce(vol / 0, -1) AS d FROM p WHERE id = 1");
  EXPECT_EQ(dz.At(0, 0).AsDouble(), -1.0);
}

TEST_F(DatabaseSqlTest, Join) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE dxinfo (dx varchar, sev bigint)")
                  .ok());
  ASSERT_TRUE(db_.ExecuteSql(
      "INSERT INTO dxinfo VALUES ('CN', 0), ('MCI', 1), ('AD', 2)").ok());
  Table out = *db_.ExecuteSql(
      "SELECT id, sev FROM p JOIN dxinfo ON p.dx = dxinfo.dx "
      "ORDER BY id");
  ASSERT_EQ(out.num_rows(), 6u);
  EXPECT_EQ(out.At(1, 1).int_value(), 2);  // id 2 is AD
}

TEST_F(DatabaseSqlTest, DdlErrors) {
  EXPECT_FALSE(db_.ExecuteSql("CREATE TABLE p (x bigint)").ok());  // exists
  EXPECT_FALSE(db_.ExecuteSql("DROP TABLE nope").ok());
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM nope").ok());
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO p VALUES (1)").ok());  // width
  EXPECT_FALSE(db_.ExecuteSql("SELECT nosuchcol FROM p").ok());
}

TEST_F(DatabaseSqlTest, GroupBySelectItemValidation) {
  // Non-aggregate select item that is not a group key is an error.
  EXPECT_FALSE(db_.ExecuteSql(
      "SELECT age, count(*) AS n FROM p GROUP BY dx").ok());
}

TEST_F(DatabaseSqlTest, MergeTablesConcatenateParts) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE p2 (id bigint, vol double, "
                             "dx varchar, age double)").ok());
  ASSERT_TRUE(db_.ExecuteSql(
      "INSERT INTO p2 VALUES (7, 2.0, 'AD', 81)").ok());
  ASSERT_TRUE(db_.ExecuteSql("CREATE MERGE TABLE allp (p, p2)").ok());
  Table out = *db_.ExecuteSql("SELECT count(*) AS n FROM allp");
  EXPECT_EQ(out.At(0, 0).int_value(), 7);
  // Merge tables reject INSERT.
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO allp VALUES (9, 1, 'x', 1)").ok());
}

TEST_F(DatabaseSqlTest, RemoteTableNeedsFetcher) {
  ASSERT_TRUE(
      db_.ExecuteSql("CREATE REMOTE TABLE rem ON 'other' AS p").ok());
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM rem").ok());  // no fetcher
  // Install a fetcher that serves from a second database.
  Database other("other");
  ASSERT_TRUE(other.ExecuteSql("CREATE TABLE p (a bigint)").ok());
  ASSERT_TRUE(other.ExecuteSql("INSERT INTO p VALUES (1), (2)").ok());
  db_.SetRemoteFetcher(
      [&other](const std::string& loc,
               const std::string& name) -> Result<Table> {
        EXPECT_EQ(loc, "other");
        return other.GetTable(name);
      });
  Table out = *db_.ExecuteSql("SELECT count(*) AS n FROM rem");
  EXPECT_EQ(out.At(0, 0).int_value(), 2);
}


TEST_F(DatabaseSqlTest, GroupByExpressionKey) {
  Table out = *db_.ExecuteSql(
      "SELECT round(age / 10) AS decade, count(*) AS n FROM p "
      "GROUP BY round(age / 10) ORDER BY decade");
  ASSERT_EQ(out.num_rows(), 2u);  // decades 7 and 8
  EXPECT_EQ(out.At(0, 0).AsDouble(), 7.0);
  EXPECT_EQ(out.At(0, 1).int_value(), 4);  // 70, 68, 66, 72
  EXPECT_EQ(out.At(1, 0).AsDouble(), 8.0);
  EXPECT_EQ(out.At(1, 1).int_value(), 2);  // 75 (rounds up), 80
}

TEST_F(DatabaseSqlTest, JoinThenAggregate) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE sev (dx varchar, rank bigint)")
                  .ok());
  ASSERT_TRUE(db_.ExecuteSql(
      "INSERT INTO sev VALUES ('CN', 0), ('MCI', 1), ('AD', 2)").ok());
  Table out = *db_.ExecuteSql(
      "SELECT rank, avg(vol) AS mean_vol FROM p JOIN sev ON p.dx = sev.dx "
      "GROUP BY rank ORDER BY rank");
  ASSERT_EQ(out.num_rows(), 3u);
  // AD (rank 2) has the smallest volumes.
  EXPECT_GT(out.At(0, 1).AsDouble(), out.At(2, 1).AsDouble());
}

TEST_F(DatabaseSqlTest, JoinWithWhereAndProjection) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE extra (id bigint, note varchar)")
                  .ok());
  ASSERT_TRUE(db_.ExecuteSql(
      "INSERT INTO extra VALUES (1, 'first'), (4, 'fourth')").ok());
  Table out = *db_.ExecuteSql(
      "SELECT p.id, note FROM p JOIN extra ON p.id = extra.id "
      "WHERE age > 60 ORDER BY id");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.At(1, 1).string_value(), "fourth");
}

TEST_F(DatabaseSqlTest, OrderByMultipleKeys) {
  Table out = *db_.ExecuteSql(
      "SELECT dx, age FROM p ORDER BY dx ASC, age DESC");
  EXPECT_EQ(out.At(0, 0).string_value(), "AD");
  EXPECT_EQ(out.At(0, 1).AsDouble(), 80.0);
  EXPECT_EQ(out.At(1, 1).AsDouble(), 75.0);
}

TEST_F(DatabaseSqlTest, BuiltinFunctions) {
  Table out = *db_.ExecuteSql(
      "SELECT abs(-2) AS a, sqrt(vol) AS s, pow(2, 10) AS p2, "
      "round(age / 10) AS decade FROM p WHERE id = 2");
  EXPECT_EQ(out.At(0, 0).AsDouble(), 2.0);
  EXPECT_NEAR(out.At(0, 1).AsDouble(), std::sqrt(2.2), 1e-12);
  EXPECT_EQ(out.At(0, 2).AsDouble(), 1024.0);
  EXPECT_EQ(out.At(0, 3).AsDouble(), 8.0);
}

}  // namespace
}  // namespace mip::engine
