// Failure injection and adversarial-input robustness: malformed SQL never
// crashes the engine, failing endpoints surface as Status (not aborts),
// inconsistent federations produce clean errors, and serialized payloads
// from hostile peers are rejected bounds-checked.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/linear_regression.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/sql_parser.h"
#include "federation/master.h"
#include "smpc/cluster.h"

namespace mip {
namespace {

using engine::Database;
using engine::Table;

// --- Parser fuzz: random token soup must error, never crash --------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "ON",    "CASE",   "WHEN",  "THEN",   "ELSE",
      "END",    "AND",   "OR",    "NOT",    "IN",    "BETWEEN", "LIKE",
      "CAST",   "AS",    "NULL",  "count",  "sum",   "avg",    "x",
      "y",      "t",     "(",     ")",      ",",     "*",      "+",
      "-",      "/",     "=",     "<",      ">",     "<=",     ">=",
      "<>",     "1",     "2.5",   "'s'",    ".",     ";",      "%",
  };
  Rng rng(20240707);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.NextBounded(24));
    for (int i = 0; i < len; ++i) {
      sql += kTokens[rng.NextBounded(std::size(kTokens))];
      sql += " ";
    }
    Result<engine::SqlStatement> result = engine::ParseSql(sql);
    if (result.ok()) ++parsed_ok;  // rare but legitimate
  }
  // The point is reaching here without UB; a few random strings do parse.
  SUCCEED() << parsed_ok << " of 3000 random strings parsed";
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsAreHandled) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  Result<engine::ExprPtr> parsed = engine::ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.ValueOrDie()->ContainsAggregate() == false);
}

// --- Engine execution never crashes on weird-but-valid input -------------

TEST(EngineRobustnessTest, ExtremeValuesFlowThrough) {
  Database db("edge");
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE e (x double)").ok());
  ASSERT_TRUE(db.ExecuteSql(
      "INSERT INTO e VALUES (1e308), (-1e308), (1e-308), (0), (NULL)").ok());
  Table out = *db.ExecuteSql(
      "SELECT sum(x) AS s, max(abs(x)) AS m, count(*) AS n FROM e");
  EXPECT_EQ(out.At(0, 2).int_value(), 5);
  // Overflowing arithmetic produces inf, not UB.
  Table inf = *db.ExecuteSql("SELECT x * 10 AS big FROM e WHERE x > 1e307");
  EXPECT_TRUE(std::isinf(inf.At(0, 0).AsDouble()));
}

TEST(EngineRobustnessTest, EmptyTablesEverywhere) {
  Database db("empty");
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE e (x double, g varchar)").ok());
  Table agg = *db.ExecuteSql(
      "SELECT count(*) AS n, sum(x) AS s, avg(x) AS m FROM e");
  EXPECT_EQ(agg.At(0, 0).int_value(), 0);
  EXPECT_TRUE(agg.At(0, 1).is_null());
  EXPECT_TRUE(agg.At(0, 2).is_null());
  Table grouped = *db.ExecuteSql(
      "SELECT g, count(*) AS n FROM e GROUP BY g");
  EXPECT_EQ(grouped.num_rows(), 0u);
  Table filtered = *db.ExecuteSql("SELECT * FROM e WHERE x > 0 LIMIT 5");
  EXPECT_EQ(filtered.num_rows(), 0u);
}

// --- Federation failure paths ---------------------------------------------

TEST(FederationRobustnessTest, FailingWorkerEndpointSurfacesAsStatus) {
  federation::MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint(
                   "broken",
                   [](const federation::Envelope&)
                       -> Result<std::vector<uint8_t>> {
                     return Status::ExecutionError("disk on fire");
                   })
                  .ok());
  federation::Envelope env{"master", "broken", "local_run", "j", {}};
  Result<std::vector<uint8_t>> reply = bus.Send(env);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kExecutionError);
}

TEST(FederationRobustnessTest, LocalStepErrorAbortsTheAlgorithmCleanly) {
  federation::MasterNode master;
  ASSERT_TRUE(master.AddWorker("w1").ok());
  ASSERT_TRUE(master.AddWorker("w2").ok());
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"y", engine::DataType::kFloat64}).ok());
  Table t = Table::Empty(schema);
  ASSERT_TRUE(t.AppendRow({engine::Value::Double(1),
                           engine::Value::Double(2)}).ok());
  // Only w1 holds the dataset columns the algorithm needs; w2's copy lacks
  // the target column -> its local step must fail, and the whole run must
  // return that failure (no partial/garbage result).
  ASSERT_TRUE(master.LoadDataset("w1", "d", t).ok());
  engine::Schema bad;
  ASSERT_TRUE(bad.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(master.LoadDataset("w2", "d", Table::Empty(bad)).ok());

  algorithms::LinearRegressionSpec spec;
  spec.datasets = {"d"};
  spec.covariates = {"x"};
  spec.target = "y";
  federation::FederationSession session = *master.StartSession({"d"});
  Result<algorithms::LinearRegressionResult> result =
      algorithms::RunLinearRegression(&session, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FederationRobustnessTest, ShapeMismatchAcrossWorkersIsAnError) {
  federation::MasterNode master;
  ASSERT_TRUE(master.AddWorker("a").ok());
  ASSERT_TRUE(master.AddWorker("b").ok());
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(master.LoadDataset("a", "d", Table::Empty(schema)).ok());
  ASSERT_TRUE(master.LoadDataset("b", "d", Table::Empty(schema)).ok());
  // A step whose transfer shape depends on the worker id — the Master's
  // merge must reject it rather than silently mis-sum.
  ASSERT_TRUE(master.functions()
                  ->Register("lopsided",
                             [](federation::WorkerContext& ctx,
                                const federation::TransferData&)
                                 -> Result<federation::TransferData> {
                               federation::TransferData out;
                               if (ctx.worker_id() == "a") {
                                 out.PutVector("v", {1, 2, 3});
                               } else {
                                 out.PutVector("v", {1});
                               }
                               return out;
                             })
                  .ok());
  federation::FederationSession session = *master.StartSession({"d"});
  Result<federation::TransferData> merged = session.LocalRunAndAggregate(
      "lopsided", federation::TransferData(),
      federation::AggregationMode::kPlain);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

// --- SMPC robustness -------------------------------------------------------

TEST(SmpcRobustnessTest, MismatchedContributionLengthsRejected) {
  smpc::SmpcCluster cluster(smpc::SmpcConfig{});
  ASSERT_TRUE(cluster.ImportShares("j", {1.0, 2.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("j", {1.0}).ok());
  EXPECT_FALSE(cluster.Compute("j", smpc::SmpcOp::kSum).ok());
  // Union tolerates different lengths by design.
  ASSERT_TRUE(cluster.ImportShares("u", {1.0, 2.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("u", {3.0}).ok());
  EXPECT_TRUE(cluster.Compute("u", smpc::SmpcOp::kUnion).ok());
}

TEST(SmpcRobustnessTest, NonFiniteInputsRejectedAtImport) {
  smpc::SmpcCluster cluster(smpc::SmpcConfig{});
  EXPECT_FALSE(cluster.ImportShares("j", {1.0, std::nan("")}).ok());
  EXPECT_FALSE(cluster.ImportShares("j", {INFINITY}).ok());
  // The failed imports must not leave partial contributions behind.
  EXPECT_EQ(cluster.NumContributions("j"), 0u);
}

TEST(SmpcRobustnessTest, OverflowingMagnitudeRejectedNotWrapped) {
  smpc::SmpcConfig config;
  config.frac_bits = 40;  // tiny headroom on purpose
  smpc::SmpcCluster cluster(config);
  const double too_big = 1e7;
  Result<std::vector<double>>* unused = nullptr;
  (void)unused;
  Status st = cluster.ImportShares("j", {too_big});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mip
