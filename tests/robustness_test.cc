// Failure injection and adversarial-input robustness: malformed SQL never
// crashes the engine, failing endpoints surface as Status (not aborts),
// inconsistent federations produce clean errors, and serialized payloads
// from hostile peers are rejected bounds-checked.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "algorithms/linear_regression.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/sql_parser.h"
#include "federation/fault.h"
#include "federation/master.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "smpc/cluster.h"

namespace mip {
namespace {

using engine::Database;
using engine::Table;

// --- Parser fuzz: random token soup must error, never crash --------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "ON",    "CASE",   "WHEN",  "THEN",   "ELSE",
      "END",    "AND",   "OR",    "NOT",    "IN",    "BETWEEN", "LIKE",
      "CAST",   "AS",    "NULL",  "count",  "sum",   "avg",    "x",
      "y",      "t",     "(",     ")",      ",",     "*",      "+",
      "-",      "/",     "=",     "<",      ">",     "<=",     ">=",
      "<>",     "1",     "2.5",   "'s'",    ".",     ";",      "%",
  };
  Rng rng(20240707);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.NextBounded(24));
    for (int i = 0; i < len; ++i) {
      sql += kTokens[rng.NextBounded(std::size(kTokens))];
      sql += " ";
    }
    Result<engine::SqlStatement> result = engine::ParseSql(sql);
    if (result.ok()) ++parsed_ok;  // rare but legitimate
  }
  // The point is reaching here without UB; a few random strings do parse.
  SUCCEED() << parsed_ok << " of 3000 random strings parsed";
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsAreHandled) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  Result<engine::ExprPtr> parsed = engine::ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.ValueOrDie()->ContainsAggregate() == false);
}

// --- Engine execution never crashes on weird-but-valid input -------------

TEST(EngineRobustnessTest, ExtremeValuesFlowThrough) {
  Database db("edge");
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE e (x double)").ok());
  ASSERT_TRUE(db.ExecuteSql(
      "INSERT INTO e VALUES (1e308), (-1e308), (1e-308), (0), (NULL)").ok());
  Table out = *db.ExecuteSql(
      "SELECT sum(x) AS s, max(abs(x)) AS m, count(*) AS n FROM e");
  EXPECT_EQ(out.At(0, 2).int_value(), 5);
  // Overflowing arithmetic produces inf, not UB.
  Table inf = *db.ExecuteSql("SELECT x * 10 AS big FROM e WHERE x > 1e307");
  EXPECT_TRUE(std::isinf(inf.At(0, 0).AsDouble()));
}

TEST(EngineRobustnessTest, EmptyTablesEverywhere) {
  Database db("empty");
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE e (x double, g varchar)").ok());
  Table agg = *db.ExecuteSql(
      "SELECT count(*) AS n, sum(x) AS s, avg(x) AS m FROM e");
  EXPECT_EQ(agg.At(0, 0).int_value(), 0);
  EXPECT_TRUE(agg.At(0, 1).is_null());
  EXPECT_TRUE(agg.At(0, 2).is_null());
  Table grouped = *db.ExecuteSql(
      "SELECT g, count(*) AS n FROM e GROUP BY g");
  EXPECT_EQ(grouped.num_rows(), 0u);
  Table filtered = *db.ExecuteSql("SELECT * FROM e WHERE x > 0 LIMIT 5");
  EXPECT_EQ(filtered.num_rows(), 0u);
}

// --- Federation failure paths ---------------------------------------------

TEST(FederationRobustnessTest, FailingWorkerEndpointSurfacesAsStatus) {
  federation::MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint(
                   "broken",
                   [](const federation::Envelope&)
                       -> Result<std::vector<uint8_t>> {
                     return Status::ExecutionError("disk on fire");
                   })
                  .ok());
  federation::Envelope env{"master", "broken", "local_run", "j", {}};
  Result<std::vector<uint8_t>> reply = bus.Send(env);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kExecutionError);
}

TEST(FederationRobustnessTest, LocalStepErrorAbortsTheAlgorithmCleanly) {
  federation::MasterNode master;
  ASSERT_TRUE(master.AddWorker("w1").ok());
  ASSERT_TRUE(master.AddWorker("w2").ok());
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(schema.AddField({"y", engine::DataType::kFloat64}).ok());
  Table t = Table::Empty(schema);
  ASSERT_TRUE(t.AppendRow({engine::Value::Double(1),
                           engine::Value::Double(2)}).ok());
  // Only w1 holds the dataset columns the algorithm needs; w2's copy lacks
  // the target column -> its local step must fail, and the whole run must
  // return that failure (no partial/garbage result).
  ASSERT_TRUE(master.LoadDataset("w1", "d", t).ok());
  engine::Schema bad;
  ASSERT_TRUE(bad.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(master.LoadDataset("w2", "d", Table::Empty(bad)).ok());

  algorithms::LinearRegressionSpec spec;
  spec.datasets = {"d"};
  spec.covariates = {"x"};
  spec.target = "y";
  federation::FederationSession session = *master.StartSession({"d"});
  Result<algorithms::LinearRegressionResult> result =
      algorithms::RunLinearRegression(&session, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FederationRobustnessTest, ShapeMismatchAcrossWorkersIsAnError) {
  federation::MasterNode master;
  ASSERT_TRUE(master.AddWorker("a").ok());
  ASSERT_TRUE(master.AddWorker("b").ok());
  engine::Schema schema;
  ASSERT_TRUE(schema.AddField({"x", engine::DataType::kFloat64}).ok());
  ASSERT_TRUE(master.LoadDataset("a", "d", Table::Empty(schema)).ok());
  ASSERT_TRUE(master.LoadDataset("b", "d", Table::Empty(schema)).ok());
  // A step whose transfer shape depends on the worker id — the Master's
  // merge must reject it rather than silently mis-sum.
  ASSERT_TRUE(master.functions()
                  ->Register("lopsided",
                             [](federation::WorkerContext& ctx,
                                const federation::TransferData&)
                                 -> Result<federation::TransferData> {
                               federation::TransferData out;
                               if (ctx.worker_id() == "a") {
                                 out.PutVector("v", {1, 2, 3});
                               } else {
                                 out.PutVector("v", {1});
                               }
                               return out;
                             })
                  .ok());
  federation::FederationSession session = *master.StartSession({"d"});
  Result<federation::TransferData> merged = session.LocalRunAndAggregate(
      "lopsided", federation::TransferData(),
      federation::AggregationMode::kPlain);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

// --- Fault injection: retries, quorum, graceful degradation ---------------

namespace {

// Three workers, each holding one row of dataset "d" with x = worker index
// + 1, plus a "sum_x" local step registered on the shared registry.
void SetupThreeWorkerFederation(federation::MasterNode* master) {
  for (int w = 0; w < 3; ++w) {
    const std::string id = "w" + std::to_string(w);
    ASSERT_TRUE(master->AddWorker(id).ok());
    engine::Schema schema;
    ASSERT_TRUE(schema.AddField({"x", engine::DataType::kFloat64}).ok());
    Table t = Table::Empty(schema);
    ASSERT_TRUE(t.AppendRow({engine::Value::Double(w + 1)}).ok());
    ASSERT_TRUE(master->LoadDataset(id, "d", std::move(t)).ok());
  }
  ASSERT_TRUE(
      master->functions()
          ->Register("sum_x",
                     [](federation::WorkerContext& ctx,
                        const federation::TransferData&)
                         -> Result<federation::TransferData> {
                       MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("d"));
                       federation::TransferData out;
                       out.PutScalar("sum", t.At(0, 0).AsDouble());
                       out.PutScalar("n", 1.0);
                       return out;
                     })
          .ok());
}

}  // namespace

TEST(FaultInjectionTest, WorkerFailingTwiceIsRetriedAndIncluded) {
  federation::MasterNode master;
  SetupThreeWorkerFederation(&master);
  federation::FaultInjector injector(/*seed=*/1);
  federation::FaultSpec flaky;
  flaky.fail_first_n = 2;  // down twice, then recovers
  injector.SetEndpointFault("w1", flaky);
  master.bus().set_fault_injector(&injector);

  federation::FederationSession session = *master.StartSession({"d"});
  federation::FanoutPolicy policy;
  policy.max_attempts = 3;
  policy.retry_backoff_ms = 0.1;
  session.set_fanout_policy(policy);

  federation::TransferData agg = *session.LocalRunAndAggregate(
      "sum_x", federation::TransferData(),
      federation::AggregationMode::kPlain);
  EXPECT_EQ(*agg.GetScalar("sum"), 6.0);  // 1+2+3: nobody excluded
  EXPECT_EQ(*agg.GetScalar("n"), 3.0);
  EXPECT_TRUE(session.excluded_workers().empty());
  for (const federation::WorkerRunReport& r : session.last_reports()) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, r.worker_id == "w1" ? 3 : 1);
  }
  master.bus().set_fault_injector(nullptr);
}

TEST(FaultInjectionTest, PersistentlyFailingWorkerIsExcludedOnceQuorumMet) {
  federation::MasterNode master;
  SetupThreeWorkerFederation(&master);
  federation::FaultInjector injector(/*seed=*/2);
  federation::FaultSpec dead;
  dead.fail_first_n = 1 << 20;  // never recovers
  injector.SetEndpointFault("w2", dead);
  master.bus().set_fault_injector(&injector);

  federation::FederationSession session = *master.StartSession({"d"});
  federation::FanoutPolicy policy;
  policy.max_attempts = 2;
  policy.retry_backoff_ms = 0.1;
  policy.min_workers = 2;
  session.set_fanout_policy(policy);

  federation::TransferData agg = *session.LocalRunAndAggregate(
      "sum_x", federation::TransferData(),
      federation::AggregationMode::kPlain);
  EXPECT_EQ(*agg.GetScalar("sum"), 3.0);  // w0 + w1 only
  ASSERT_EQ(session.excluded_workers().size(), 1u);
  EXPECT_EQ(session.excluded_workers()[0], "w2");
  ASSERT_EQ(session.ExcludedDatasets().size(), 1u);
  EXPECT_EQ(session.ExcludedDatasets()[0], "d");
  ASSERT_EQ(session.active_workers().size(), 2u);

  // Subsequent steps run against the surviving cohort without touching the
  // dead site again.
  const int deliveries_before = injector.DeliveriesOn("*->w2");
  federation::TransferData again = *session.LocalRunAndAggregate(
      "sum_x", federation::TransferData(),
      federation::AggregationMode::kPlain);
  EXPECT_EQ(*again.GetScalar("sum"), 3.0);
  EXPECT_EQ(injector.DeliveriesOn("*->w2"), deliveries_before);
  master.bus().set_fault_injector(nullptr);
}

TEST(FaultInjectionTest, BelowQuorumSessionReturnsCleanErrorNotPartial) {
  federation::MasterNode master;
  SetupThreeWorkerFederation(&master);
  federation::FaultInjector injector(/*seed=*/3);
  federation::FaultSpec dead;
  dead.fail_first_n = 1 << 20;
  injector.SetEndpointFault("w1", dead);
  injector.SetEndpointFault("w2", dead);
  master.bus().set_fault_injector(&injector);

  federation::FederationSession session = *master.StartSession({"d"});
  federation::FanoutPolicy policy;
  policy.max_attempts = 2;
  policy.retry_backoff_ms = 0.1;
  policy.min_workers = 2;  // only w0 can answer -> below quorum
  session.set_fanout_policy(policy);

  Result<federation::TransferData> result = session.LocalRunAndAggregate(
      "sum_x", federation::TransferData(),
      federation::AggregationMode::kPlain);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("quorum"), std::string::npos);
  // A failed step excludes nobody: the cohort is intact for a later retry
  // once the sites recover.
  EXPECT_TRUE(session.excluded_workers().empty());
  EXPECT_EQ(session.active_workers().size(), 3u);
  master.bus().set_fault_injector(nullptr);
}

TEST(FaultInjectionTest, StrictModeStillFailsFastWithoutQuorum) {
  federation::MasterNode master;
  SetupThreeWorkerFederation(&master);
  federation::FaultInjector injector(/*seed=*/4);
  federation::FaultSpec dead;
  dead.fail_first_n = 1 << 20;
  injector.SetEndpointFault("w1", dead);
  master.bus().set_fault_injector(&injector);

  // Default policy: min_workers = 0 -> every worker required.
  federation::FederationSession session = *master.StartSession({"d"});
  Result<std::vector<federation::TransferData>> result =
      session.LocalRun("sum_x", federation::TransferData());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  master.bus().set_fault_injector(nullptr);
}

TEST(FaultInjectionTest, SlowWorkerTimesOutAndIsExcludedUnderQuorum) {
  federation::MasterNode master;
  SetupThreeWorkerFederation(&master);
  federation::FaultInjector injector(/*seed=*/5);
  federation::FaultSpec slow;
  // Margins sized for loaded CI machines: the slow worker overshoots the
  // deadline 5x, while healthy workers (no injected delay, in-process bus)
  // have the full 50ms before a spurious timeout would break quorum.
  slow.delay_ms = 250.0;
  injector.SetEndpointFault("w0", slow);
  master.bus().set_fault_injector(&injector);

  federation::FederationSession session = *master.StartSession({"d"});
  federation::FanoutPolicy policy;
  policy.max_attempts = 2;
  policy.retry_backoff_ms = 0.1;
  policy.worker_timeout_ms = 50.0;
  policy.min_workers = 2;
  session.set_fanout_policy(policy);

  federation::TransferData agg = *session.LocalRunAndAggregate(
      "sum_x", federation::TransferData(),
      federation::AggregationMode::kPlain);
  EXPECT_EQ(*agg.GetScalar("sum"), 5.0);  // 2 + 3; w0 timed out
  ASSERT_EQ(session.excluded_workers().size(), 1u);
  EXPECT_EQ(session.excluded_workers()[0], "w0");
  master.bus().set_fault_injector(nullptr);
}

// --- Serving layer: slow-loris defense -------------------------------------

TEST(ServingRobustnessTest, SlowLorisClientEvictedWithoutCollateral) {
  net::TcpTransportOptions options;
  options.read_deadline_ms = 80.0;  // stall budget for a started frame
  net::TcpTransport server(options);
  ASSERT_TRUE(server
                  .RegisterEndpoint(
                      "svc",
                      [](const net::Envelope& e)
                          -> Result<std::vector<uint8_t>> {
                        return e.payload;
                      })
                  .ok());
  ASSERT_TRUE(server.Listen(0).ok());

  // The attacker: a seeded trickle feeding one byte of a valid frame at a
  // time, never completing it — the classic slow-loris hold.
  auto loris = net::Socket::ConnectTcp("127.0.0.1", server.port(), 2000.0);
  ASSERT_TRUE(loris.ok());
  net::Socket attacker = loris.MoveValueUnsafe();
  net::Envelope request{"loris", "svc", "echo", "",
                        std::vector<uint8_t>(128, 0xAB)};
  BufferWriter writer;
  net::EncodeFrame(net::EncodeEnvelopePayload(request), &writer);
  const std::vector<uint8_t> frame = writer.TakeBytes();

  Rng rng(20260809);
  bool evicted = false;
  size_t sent = 0;
  // Trickle for up to ~2s; the server must cut us off near the 80ms budget
  // (detected as a send failing or the read side reporting EOF).
  for (int step = 0; step < 200 && !evicted; ++step) {
    const size_t chunk = 1 + rng.NextBounded(2);  // 1-2 byte trickle
    if (sent + chunk < frame.size()) {  // never finish the frame
      if (!attacker.SendAll(frame.data() + sent, chunk, 100.0).ok()) {
        evicted = true;
        break;
      }
      sent += chunk;
    }
    uint8_t byte = 0;
    auto r = attacker.TryRecv(&byte, 1);
    if (!r.ok() && r.status().code() == StatusCode::kIOError) {
      evicted = true;  // server closed the connection
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Healthy clients during and after the attack are untouched.
  net::TcpTransport client;
  client.AddPeer("svc", "127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    auto reply = client.Send(net::Envelope{
        "good", "svc", "echo", "", std::vector<uint8_t>{1, 2, 3}});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.ValueOrDie(), (std::vector<uint8_t>{1, 2, 3}));
  }

  EXPECT_TRUE(evicted) << "slow-loris connection was never cut off";
  EXPECT_GE(server.server_stats().evicted_deadline, 1u);
  client.Shutdown();
  server.Shutdown();
}

// --- SMPC robustness -------------------------------------------------------

TEST(SmpcRobustnessTest, MismatchedContributionLengthsRejected) {
  smpc::SmpcCluster cluster(smpc::SmpcConfig{});
  ASSERT_TRUE(cluster.ImportShares("j", {1.0, 2.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("j", {1.0}).ok());
  EXPECT_FALSE(cluster.Compute("j", smpc::SmpcOp::kSum).ok());
  // Union tolerates different lengths by design.
  ASSERT_TRUE(cluster.ImportShares("u", {1.0, 2.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("u", {3.0}).ok());
  EXPECT_TRUE(cluster.Compute("u", smpc::SmpcOp::kUnion).ok());
}

TEST(SmpcRobustnessTest, NonFiniteInputsRejectedAtImport) {
  smpc::SmpcCluster cluster(smpc::SmpcConfig{});
  EXPECT_FALSE(cluster.ImportShares("j", {1.0, std::nan("")}).ok());
  EXPECT_FALSE(cluster.ImportShares("j", {INFINITY}).ok());
  // The failed imports must not leave partial contributions behind.
  EXPECT_EQ(cluster.NumContributions("j"), 0u);
}

TEST(SmpcRobustnessTest, OverflowingMagnitudeRejectedNotWrapped) {
  smpc::SmpcConfig config;
  config.frac_bits = 40;  // tiny headroom on purpose
  smpc::SmpcCluster cluster(config);
  const double too_big = 1e7;
  Result<std::vector<double>>* unused = nullptr;
  (void)unused;
  Status st = cluster.ImportShares("j", {too_big});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mip
