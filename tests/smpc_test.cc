#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "common/rng.h"
#include "engine/encoding.h"
#include "smpc/cluster.h"
#include "smpc/field.h"
#include "smpc/fixed_point.h"
#include "smpc/noise.h"
#include "smpc/shamir.h"
#include "smpc/spdz.h"
#include "smpc/wire.h"

namespace mip::smpc {
namespace {

// --- Field arithmetic -------------------------------------------------------

TEST(FieldTest, BasicIdentities) {
  EXPECT_EQ(Field::Add(Field::kPrime - 1, 1), 0u);
  EXPECT_EQ(Field::Sub(0, 1), Field::kPrime - 1);
  EXPECT_EQ(Field::Neg(0), 0u);
  EXPECT_EQ(Field::Add(5, Field::Neg(5)), 0u);
  EXPECT_EQ(Field::Mul(0, 12345), 0u);
  EXPECT_EQ(Field::Mul(1, 12345), 12345u);
  EXPECT_EQ(Field::Reduce(Field::kPrime), 0u);
}

TEST(FieldTest, PowAndFermat) {
  // 2^61 ≡ 1 (mod 2^61 - 1).
  EXPECT_EQ(Field::Pow(2, 61), 1u);
  // Fermat: a^(p-1) = 1 for a != 0.
  EXPECT_EQ(Field::Pow(123456789, Field::kPrime - 1), 1u);
}

class FieldProperty : public ::testing::TestWithParam<int> {};

TEST_P(FieldProperty, RingAxiomsOnRandomElements) {
  Rng rng(777 + GetParam());
  const uint64_t a = Field::Random(&rng);
  const uint64_t b = Field::Random(&rng);
  const uint64_t c = Field::Random(&rng);
  // Commutativity / associativity / distributivity.
  EXPECT_EQ(Field::Add(a, b), Field::Add(b, a));
  EXPECT_EQ(Field::Mul(a, b), Field::Mul(b, a));
  EXPECT_EQ(Field::Add(Field::Add(a, b), c), Field::Add(a, Field::Add(b, c)));
  EXPECT_EQ(Field::Mul(Field::Mul(a, b), c), Field::Mul(a, Field::Mul(b, c)));
  EXPECT_EQ(Field::Mul(a, Field::Add(b, c)),
            Field::Add(Field::Mul(a, b), Field::Mul(a, c)));
  // Subtraction inverts addition.
  EXPECT_EQ(Field::Sub(Field::Add(a, b), b), a);
  // Inverse (a != 0 with overwhelming probability).
  if (a != 0) {
    EXPECT_EQ(Field::Mul(a, Field::Inv(a)), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldProperty, ::testing::Range(0, 25));

// --- Fixed point -------------------------------------------------------------

TEST(FixedPointTest, RoundTripValues) {
  FixedPointCodec codec(20);
  for (double x : {0.0, 1.0, -1.0, 3.14159, -2718.28, 1e6, -1e6, 0.0000123}) {
    const double back = codec.Decode(*codec.Encode(x));
    EXPECT_NEAR(back, x, 1.0 / codec.scale() + std::fabs(x) * 1e-12) << x;
  }
}

TEST(FixedPointTest, RejectsOverflowAndNonFinite) {
  FixedPointCodec codec(20);
  EXPECT_FALSE(codec.Encode(codec.MaxMagnitude() * 2).ok());
  EXPECT_FALSE(codec.Encode(std::nan("")).ok());
  EXPECT_FALSE(codec.Encode(INFINITY).ok());
  EXPECT_TRUE(codec.Encode(codec.MaxMagnitude() * 0.5).ok());
}

TEST(FixedPointTest, AdditiveHomomorphism) {
  FixedPointCodec codec(16);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextUniform(-1000, 1000);
    const double y = rng.NextUniform(-1000, 1000);
    const uint64_t ex = *codec.Encode(x);
    const uint64_t ey = *codec.Encode(y);
    EXPECT_NEAR(codec.Decode(Field::Add(ex, ey)), x + y,
                2.0 / codec.scale());
  }
}

TEST(FixedPointTest, ProductScale) {
  FixedPointCodec codec(16);
  const double x = 12.5, y = -3.25;
  const uint64_t prod = Field::Mul(*codec.Encode(x), *codec.Encode(y));
  EXPECT_NEAR(codec.DecodeProduct(prod), x * y, 1e-3);
}

// --- SPDZ --------------------------------------------------------------------

TEST(SpdzTest, ShareAndOpen) {
  SpdzDealer dealer(3, 42);
  const uint64_t secret = 123456789;
  std::vector<SpdzShare> shares = dealer.ShareValue(secret);
  EXPECT_EQ(*Spdz::Open(shares, dealer.alpha_shares()), secret);
}

TEST(SpdzTest, SharesLookRandom) {
  SpdzDealer dealer(3, 42);
  std::vector<SpdzShare> s1 = dealer.ShareValue(5);
  std::vector<SpdzShare> s2 = dealer.ShareValue(5);
  // Two sharings of the same secret must differ (fresh randomness).
  EXPECT_NE(s1[0].value, s2[0].value);
}

TEST(SpdzTest, TamperedValueAborts) {
  SpdzDealer dealer(3, 42);
  std::vector<SpdzShare> shares = dealer.ShareValue(999);
  shares[1].value = Field::Add(shares[1].value, 1);  // malicious node
  Result<uint64_t> opened = Spdz::Open(shares, dealer.alpha_shares());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kSecurityError);
}

TEST(SpdzTest, TamperedMacAborts) {
  SpdzDealer dealer(4, 43);
  std::vector<SpdzShare> shares = dealer.ShareValue(7);
  shares[0].mac = Field::Add(shares[0].mac, 5);
  EXPECT_FALSE(Spdz::Open(shares, dealer.alpha_shares()).ok());
}

TEST(SpdzTest, LinearOpsPreserveMacs) {
  SpdzDealer dealer(3, 44);
  std::vector<SpdzShare> x = dealer.ShareValue(100);
  std::vector<SpdzShare> y = dealer.ShareValue(23);
  std::vector<SpdzShare> z(3);
  for (int p = 0; p < 3; ++p) {
    z[p] = Spdz::Add(x[p], y[p]);
    z[p] = Spdz::MulPublic(z[p], 3);
    z[p] = Spdz::AddPublic(z[p], 10, p, dealer.alpha_shares()[p]);
    z[p] = Spdz::Sub(z[p], y[p]);
  }
  // (100 + 23) * 3 + 10 - 23 = 356.
  EXPECT_EQ(*Spdz::Open(z, dealer.alpha_shares()), 356u);
}

TEST(SpdzTest, BeaverMultiplication) {
  SpdzDealer dealer(3, 45);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t a = rng.NextBounded(1u << 30);
    const uint64_t b = rng.NextBounded(1u << 30);
    std::vector<SpdzShare> xs = dealer.ShareValue(a);
    std::vector<SpdzShare> ys = dealer.ShareValue(b);
    std::vector<SpdzShare> zs =
        *Spdz::Multiply(xs, ys, dealer.MakeTriple(), dealer.alpha_shares());
    EXPECT_EQ(*Spdz::Open(zs, dealer.alpha_shares()), Field::Mul(a, b));
  }
}

TEST(SpdzTest, TriplePoolOfflineOnlineAccounting) {
  SpdzDealer dealer(3, 46);
  dealer.PrecomputeTriples(5);
  EXPECT_EQ(dealer.pool_size(), 5u);
  for (int i = 0; i < 7; ++i) dealer.TakeTriple();
  EXPECT_EQ(dealer.pool_size(), 0u);
  EXPECT_EQ(dealer.triples_precomputed(), 5u);
  EXPECT_EQ(dealer.triples_generated_online(), 2u);
}

// --- Shamir ------------------------------------------------------------------

TEST(ShamirTest, ReconstructFromAllParties) {
  ShamirScheme scheme(1, 4);
  Rng rng(12);
  const uint64_t secret = 987654321;
  std::vector<uint64_t> shares = scheme.Share(secret, &rng);
  std::vector<std::vector<uint64_t>> vecs(4, std::vector<uint64_t>(1));
  for (int p = 0; p < 4; ++p) vecs[p][0] = shares[p];
  EXPECT_EQ((*scheme.ReconstructVector(vecs))[0], secret);
}

TEST(ShamirTest, AnySubsetOfSizeTPlus1Reconstructs) {
  ShamirScheme scheme(2, 5);
  Rng rng(13);
  const uint64_t secret = 31415926;
  std::vector<uint64_t> shares = scheme.Share(secret, &rng);
  // All 3-subsets of 5 parties.
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      for (int k = j + 1; k < 5; ++k) {
        std::vector<std::pair<int, uint64_t>> subset = {
            {i, shares[i]}, {j, shares[j]}, {k, shares[k]}};
        EXPECT_EQ(*scheme.Reconstruct(subset), secret);
      }
    }
  }
}

TEST(ShamirTest, TooFewSharesRejected) {
  ShamirScheme scheme(2, 5);
  Rng rng(14);
  std::vector<uint64_t> shares = scheme.Share(42, &rng);
  std::vector<std::pair<int, uint64_t>> subset = {{0, shares[0]},
                                                  {1, shares[1]}};
  Result<uint64_t> r = scheme.Reconstruct(subset);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSecurityError);
}

TEST(ShamirTest, DuplicatePartyRejected) {
  ShamirScheme scheme(1, 3);
  Rng rng(15);
  std::vector<uint64_t> shares = scheme.Share(7, &rng);
  EXPECT_FALSE(
      scheme.Reconstruct({{0, shares[0]}, {0, shares[0]}}).ok());
}

TEST(ShamirTest, SharesOfSameSecretDiffer) {
  ShamirScheme scheme(1, 3);
  Rng rng(16);
  EXPECT_NE(scheme.Share(5, &rng)[0], scheme.Share(5, &rng)[0]);
}

TEST(ShamirTest, AdditiveHomomorphism) {
  ShamirScheme scheme(1, 3);
  Rng rng(17);
  std::vector<uint64_t> a = scheme.Share(1000, &rng);
  std::vector<uint64_t> b = scheme.Share(234, &rng);
  std::vector<std::vector<uint64_t>> sum(3, std::vector<uint64_t>(1));
  for (int p = 0; p < 3; ++p) sum[p][0] = Field::Add(a[p], b[p]);
  EXPECT_EQ((*scheme.ReconstructVector(sum))[0], 1234u);
}

TEST(ShamirTest, MultiplyReshare) {
  ShamirScheme scheme(1, 4);  // 2t < n required
  Rng rng(18);
  std::vector<std::vector<uint64_t>> x(4, std::vector<uint64_t>(2));
  std::vector<std::vector<uint64_t>> y(4, std::vector<uint64_t>(2));
  auto sx0 = scheme.Share(20, &rng);
  auto sx1 = scheme.Share(7, &rng);
  auto sy0 = scheme.Share(5, &rng);
  auto sy1 = scheme.Share(11, &rng);
  for (int p = 0; p < 4; ++p) {
    x[p] = {sx0[p], sx1[p]};
    y[p] = {sy0[p], sy1[p]};
  }
  auto z = *scheme.MultiplyReshare(x, y, &rng);
  std::vector<uint64_t> opened = *scheme.ReconstructVector(z);
  EXPECT_EQ(opened[0], 100u);
  EXPECT_EQ(opened[1], 77u);
}

TEST(ShamirTest, MultiplyNeedsLowDegree) {
  ShamirScheme scheme(1, 3);  // 2t = 2 >= n-1... 2t < n fails (2 < 3 ok)
  // With t=1, n=3: 2t=2 < 3 holds, so multiplication works.
  Rng rng(19);
  std::vector<std::vector<uint64_t>> x(3, std::vector<uint64_t>(1));
  std::vector<std::vector<uint64_t>> y(3, std::vector<uint64_t>(1));
  auto sx = scheme.Share(6, &rng);
  auto sy = scheme.Share(7, &rng);
  for (int p = 0; p < 3; ++p) {
    x[p][0] = sx[p];
    y[p][0] = sy[p];
  }
  EXPECT_EQ((*scheme.ReconstructVector(*scheme.MultiplyReshare(x, y, &rng)))[0],
            42u);
  // t=2, n=4: 2t = 4 >= 4 -> refused.
  ShamirScheme tight(2, 4);
  std::vector<std::vector<uint64_t>> a(4, std::vector<uint64_t>(1, 1));
  EXPECT_FALSE(tight.MultiplyReshare(a, a, &rng).ok());
}

// --- Distributed noise -------------------------------------------------------

TEST(NoiseTest, DistributedGaussianHasTargetVariance) {
  Rng rng(20);
  NoiseSpec spec;
  spec.kind = NoiseSpec::Kind::kGaussian;
  spec.param = 2.0;
  const int nodes = 5;
  double sum = 0, sumsq = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double total = 0;
    for (int k = 0; k < nodes; ++k) {
      total += SamplePartialNoise(spec, nodes, &rng);
    }
    sum += total;
    sumsq += total * total;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sumsq / trials, 4.0, 0.15);
}

TEST(NoiseTest, DistributedLaplaceHasTargetVariance) {
  Rng rng(21);
  NoiseSpec spec;
  spec.kind = NoiseSpec::Kind::kLaplace;
  spec.param = 1.5;  // Var = 2 b^2 = 4.5
  const int nodes = 4;
  double sum = 0, sumsq = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double total = 0;
    for (int k = 0; k < nodes; ++k) {
      total += SamplePartialNoise(spec, nodes, &rng);
    }
    sum += total;
    sumsq += total * total;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sumsq / trials, 4.5, 0.25);
}

// --- Cluster -----------------------------------------------------------------

class ClusterBothSchemes : public ::testing::TestWithParam<SmpcScheme> {
 protected:
  SmpcConfig Config() const {
    SmpcConfig config;
    config.scheme = GetParam();
    config.num_nodes = 4;
    config.threshold = 1;
    return config;
  }
};

TEST_P(ClusterBothSchemes, SecureSumMatchesPlaintext) {
  SmpcCluster cluster(Config());
  ASSERT_TRUE(cluster.ImportShares("job", {1.5, -2.0, 3.25}).ok());
  ASSERT_TRUE(cluster.ImportShares("job", {0.5, 10.0, -1.25}).ok());
  ASSERT_TRUE(cluster.ImportShares("job", {1.0, 1.0, 1.0}).ok());
  EXPECT_EQ(cluster.NumContributions("job"), 3u);
  ASSERT_TRUE(cluster.Compute("job", SmpcOp::kSum).ok());
  std::vector<double> result = *cluster.GetResult("job");
  ASSERT_EQ(result.size(), 3u);
  EXPECT_NEAR(result[0], 3.0, 1e-4);
  EXPECT_NEAR(result[1], 9.0, 1e-4);
  EXPECT_NEAR(result[2], 3.0, 1e-4);
}

TEST_P(ClusterBothSchemes, SecureProductMatchesPlaintext) {
  SmpcCluster cluster(Config());
  ASSERT_TRUE(cluster.ImportShares("job", {2.0, -3.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("job", {4.0, 0.5}).ok());
  ASSERT_TRUE(cluster.Compute("job", SmpcOp::kProduct).ok());
  std::vector<double> result = *cluster.GetResult("job");
  EXPECT_NEAR(result[0], 8.0, 1e-3);
  EXPECT_NEAR(result[1], -1.5, 1e-3);
}

TEST_P(ClusterBothSchemes, SecureMinMax) {
  SmpcCluster cluster(Config());
  ASSERT_TRUE(cluster.ImportShares("lo", {5.0, -2.0, 7.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("lo", {3.0, 4.0, 9.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("lo", {6.0, -8.0, 8.0}).ok());
  ASSERT_TRUE(cluster.Compute("lo", SmpcOp::kMin).ok());
  std::vector<double> mins = *cluster.GetResult("lo");
  EXPECT_NEAR(mins[0], 3.0, 1e-4);
  EXPECT_NEAR(mins[1], -8.0, 1e-4);
  EXPECT_NEAR(mins[2], 7.0, 1e-4);

  ASSERT_TRUE(cluster.ImportShares("hi", {5.0, -2.0, 7.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("hi", {3.0, 4.0, 9.0}).ok());
  ASSERT_TRUE(cluster.Compute("hi", SmpcOp::kMax).ok());
  std::vector<double> maxs = *cluster.GetResult("hi");
  EXPECT_NEAR(maxs[0], 5.0, 1e-4);
  EXPECT_NEAR(maxs[1], 4.0, 1e-4);
  EXPECT_NEAR(maxs[2], 9.0, 1e-4);
}

TEST_P(ClusterBothSchemes, SecureUnionConcatenates) {
  SmpcCluster cluster(Config());
  ASSERT_TRUE(cluster.ImportShares("u", {1.0, 2.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("u", {3.0}).ok());
  ASSERT_TRUE(cluster.Compute("u", SmpcOp::kUnion).ok());
  std::vector<double> result = *cluster.GetResult("u");
  ASSERT_EQ(result.size(), 3u);
  EXPECT_NEAR(result[0], 1.0, 1e-4);
  EXPECT_NEAR(result[1], 2.0, 1e-4);
  EXPECT_NEAR(result[2], 3.0, 1e-4);
}

TEST_P(ClusterBothSchemes, AsyncRetrievalByJobId) {
  SmpcCluster cluster(Config());
  EXPECT_FALSE(cluster.GetResult("nope").ok());
  ASSERT_TRUE(cluster.ImportShares("a", {1.0}).ok());
  ASSERT_TRUE(cluster.ImportShares("b", {2.0}).ok());
  ASSERT_TRUE(cluster.Compute("a", SmpcOp::kSum).ok());
  ASSERT_TRUE(cluster.Compute("b", SmpcOp::kSum).ok());
  EXPECT_NEAR((*cluster.GetResult("b"))[0], 2.0, 1e-4);
  EXPECT_NEAR((*cluster.GetResult("a"))[0], 1.0, 1e-4);
}

TEST_P(ClusterBothSchemes, NoiseInjectionPerturbsResult) {
  SmpcCluster cluster(Config());
  NoiseSpec noise;
  noise.kind = NoiseSpec::Kind::kGaussian;
  noise.param = 1.0;
  double sum_err = 0, sumsq_err = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const std::string job = "n" + std::to_string(i);
    ASSERT_TRUE(cluster.ImportShares(job, {100.0}).ok());
    ASSERT_TRUE(cluster.Compute(job, SmpcOp::kSum, noise).ok());
    const double err = (*cluster.GetResult(job))[0] - 100.0;
    sum_err += err;
    sumsq_err += err * err;
  }
  EXPECT_NEAR(sum_err / trials, 0.0, 0.3);
  EXPECT_NEAR(sumsq_err / trials, 1.0, 0.45);
}

TEST_P(ClusterBothSchemes, CostStatsAccumulate) {
  SmpcCluster cluster(Config());
  ASSERT_TRUE(cluster.ImportShares("j", std::vector<double>(100, 1.0)).ok());
  ASSERT_TRUE(cluster.Compute("j", SmpcOp::kSum).ok());
  EXPECT_GT(cluster.stats().bytes_transferred, 0u);
  EXPECT_GT(cluster.stats().rounds, 0u);
  EXPECT_GT(cluster.stats().SimulatedNetworkSeconds(cluster.config()), 0.0);
  cluster.ResetStats();
  EXPECT_EQ(cluster.stats().bytes_transferred, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ClusterBothSchemes,
                         ::testing::Values(SmpcScheme::kFullThreshold,
                                           SmpcScheme::kShamir));

TEST(ClusterSecurityTest, FullThresholdDetectsTampering) {
  SmpcConfig config;
  config.scheme = SmpcScheme::kFullThreshold;
  config.num_nodes = 3;
  SmpcCluster cluster(config);
  ASSERT_TRUE(cluster.ImportShares("j", {10.0, 20.0}).ok());
  ASSERT_TRUE(cluster.TamperWithShare(1, "j", 0, 0, 12345).ok());
  Status st = cluster.Compute("j", SmpcOp::kSum);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kSecurityError);  // abort, as promised
}

TEST(ClusterSecurityTest, ShamirSilentlyAcceptsTampering) {
  // The honest-but-curious scheme does NOT detect an active adversary:
  // the computation "succeeds" with a wrong result — the exact trade-off
  // the paper describes between the two security modes.
  SmpcConfig config;
  config.scheme = SmpcScheme::kShamir;
  config.num_nodes = 4;
  config.threshold = 1;
  SmpcCluster cluster(config);
  ASSERT_TRUE(cluster.ImportShares("j", {10.0}).ok());
  ASSERT_TRUE(cluster.TamperWithShare(0, "j", 0, 0, 999999).ok());
  ASSERT_TRUE(cluster.Compute("j", SmpcOp::kSum).ok());  // no abort!
  EXPECT_GT(std::fabs((*cluster.GetResult("j"))[0] - 10.0), 1e-6);
}

TEST(ClusterTest, FtBytesExceedShamirBytes) {
  // MACs double the per-element payload: the full-threshold mode must move
  // more bytes for the same job — half of the paper's "FT slow, Shamir
  // fast" claim (E4 benchmarks the full picture).
  const std::vector<double> data(1000, 1.0);
  SmpcConfig ft;
  ft.scheme = SmpcScheme::kFullThreshold;
  SmpcCluster ft_cluster(ft);
  ASSERT_TRUE(ft_cluster.ImportShares("j", data).ok());
  ASSERT_TRUE(ft_cluster.Compute("j", SmpcOp::kSum).ok());

  SmpcConfig sh;
  sh.scheme = SmpcScheme::kShamir;
  SmpcCluster sh_cluster(sh);
  ASSERT_TRUE(sh_cluster.ImportShares("j", data).ok());
  ASSERT_TRUE(sh_cluster.Compute("j", SmpcOp::kSum).ok());

  EXPECT_GT(ft_cluster.stats().bytes_transferred,
            sh_cluster.stats().bytes_transferred);
}

TEST(ClusterTest, OfflinePrecomputationSpeedsOnlineProducts) {
  SmpcConfig config;
  config.scheme = SmpcScheme::kFullThreshold;
  SmpcCluster warm(config);
  warm.PrecomputeTriples(64);
  ASSERT_TRUE(warm.ImportShares("j", std::vector<double>(32, 2.0)).ok());
  ASSERT_TRUE(warm.ImportShares("j", std::vector<double>(32, 3.0)).ok());
  ASSERT_TRUE(warm.Compute("j", SmpcOp::kProduct).ok());
  EXPECT_GT(warm.stats().offline_seconds, 0.0);
  EXPECT_NEAR((*warm.GetResult("j"))[0], 6.0, 1e-3);
}

// --- Wire format ------------------------------------------------------------

TEST(WireTest, LimbBlocksRoundTripAcrossSizes) {
  Rng rng(4711);
  for (const size_t n : {0ul, 1ul, 100ul, 4096ul, 4097ul, 10000ul}) {
    std::vector<uint64_t> limbs(n);
    for (auto& v : limbs) v = Field::Random(&rng);
    const std::vector<uint8_t> bytes =
        wire::EncodeLimbBlocks(limbs.data(), n, /*block_elems=*/4096);
    const auto decoded = wire::DecodeLimbBlocks(bytes);
    ASSERT_TRUE(decoded.ok()) << "n=" << n;
    EXPECT_EQ(*decoded, limbs) << "n=" << n;
    // Measured size matches what Encode actually wrote.
    EXPECT_EQ(wire::MeasureLimbBlocks(limbs.data(), n, 4096), bytes.size());
  }
}

TEST(WireTest, DecodeRejectsCorruptPayloads) {
  std::vector<uint64_t> limbs = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes =
      wire::EncodeLimbBlocks(limbs.data(), limbs.size(), 2);

  // Truncated payload.
  std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(wire::DecodeLimbBlocks(cut).ok());

  // Trailing garbage after the declared blocks.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0xAB);
  EXPECT_FALSE(wire::DecodeLimbBlocks(padded).ok());

  // Absurd element count (fails the kMaxWireElements bound).
  BufferWriter bomb;
  engine::PutVarint(&bomb, ~0ull >> 1);
  EXPECT_FALSE(wire::DecodeLimbBlocks(bomb.TakeBytes()).ok());
}

// --- Per-op timing histograms ----------------------------------------------

TEST(ClusterMetricsTest, PerOpHistogramsPopulateAndRender) {
  SmpcConfig config;
  config.scheme = SmpcScheme::kFullThreshold;
  SmpcCluster cluster(config);
  cluster.PrecomputeTriples(16);
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(cluster.ImportShares("m", v).ok());
  ASSERT_TRUE(cluster.ImportShares("m", v).ok());
  ASSERT_TRUE(cluster.Compute("m", SmpcOp::kProduct).ok());

  const SmpcCostStats& stats = cluster.stats();
  EXPECT_GE(stats.share_ms.count(), 2u);       // one record per ImportShares
  EXPECT_GE(stats.triple_ms.count(), 1u);      // PrecomputeTriples
  EXPECT_GE(stats.online_ms.count(), 1u);      // Compute
  EXPECT_GE(stats.reconstruct_ms.count(), 1u); // final open
  EXPECT_GT(stats.wire_blocks, 0u);

  const std::string text = cluster.MetricsText();
  EXPECT_NE(text.find("smpc_scheme"), std::string::npos);
  EXPECT_NE(text.find("smpc_bytes_transferred"), std::string::npos);
  EXPECT_NE(text.find("smpc_share_ms"), std::string::npos);
  EXPECT_NE(text.find("smpc_triple_ms"), std::string::npos);
  EXPECT_NE(text.find("smpc_online_ms"), std::string::npos);
  EXPECT_NE(text.find("smpc_reconstruct_ms"), std::string::npos);
  EXPECT_NE(text.find("smpc_wire_blocks"), std::string::npos);
}

TEST(ClusterTest, ErrorsOnUnknownJobAndBadIndices) {
  SmpcConfig config;
  SmpcCluster cluster(config);
  EXPECT_FALSE(cluster.Compute("missing", SmpcOp::kSum).ok());
  EXPECT_FALSE(cluster.TamperWithShare(99, "missing", 0, 0, 1).ok());
  ASSERT_TRUE(cluster.ImportShares("j", {1.0}).ok());
  EXPECT_FALSE(cluster.TamperWithShare(0, "j", 5, 0, 1).ok());
  EXPECT_FALSE(cluster.TamperWithShare(0, "j", 0, 9, 1).ok());
}

}  // namespace
}  // namespace mip::smpc
