// Semantic pins: the SQL three-valued logic truth tables, and the
// expression text round-trip property (parse -> ToString -> parse is a
// fixed point) that merge-table aggregate pushdown relies on when it ships
// expression text to remote nodes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/sql_parser.h"

namespace mip::engine {
namespace {

class ThreeValuedLogicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE tv (b boolean)").ok());
    ASSERT_TRUE(
        db_.ExecuteSql("INSERT INTO tv VALUES (true), (false), (NULL)").ok());
  }

  // Evaluates a boolean expression over the single-row cross of b values
  // via a self-join-free trick: constants on one side.
  Value Eval(const std::string& lhs, const std::string& op,
             const std::string& rhs) {
    const std::string sql = "SELECT (" + lhs + " " + op + " " + rhs +
                            ") AS r FROM tv LIMIT 1";
    Result<Table> out = db_.ExecuteSql(sql);
    EXPECT_TRUE(out.ok()) << sql;
    return out.ValueOrDie().At(0, 0);
  }

  Database db_{"tvl"};
};

TEST_F(ThreeValuedLogicTest, AndTruthTable) {
  // Kleene AND: F dominates, NULL otherwise when unknown involved.
  EXPECT_TRUE(Eval("true", "and", "true").AsBool());
  EXPECT_FALSE(Eval("true", "and", "false").AsBool());
  EXPECT_FALSE(Eval("false", "and", "NULL").AsBool());   // F and U = F
  EXPECT_FALSE(Eval("NULL", "and", "false").AsBool());
  EXPECT_TRUE(Eval("true", "and", "NULL").is_null());    // T and U = U
  EXPECT_TRUE(Eval("NULL", "and", "NULL").is_null());
}

TEST_F(ThreeValuedLogicTest, OrTruthTable) {
  // Kleene OR: T dominates.
  EXPECT_TRUE(Eval("false", "or", "true").AsBool());
  EXPECT_TRUE(Eval("true", "or", "NULL").AsBool());   // T or U = T
  EXPECT_TRUE(Eval("NULL", "or", "true").AsBool());
  EXPECT_TRUE(Eval("false", "or", "NULL").is_null());  // F or U = U
  EXPECT_TRUE(Eval("NULL", "or", "NULL").is_null());
  EXPECT_FALSE(Eval("false", "or", "false").AsBool());
}

TEST_F(ThreeValuedLogicTest, NotAndComparisonsWithNull) {
  Table n = *db_.ExecuteSql("SELECT (not NULL) AS r FROM tv LIMIT 1");
  EXPECT_TRUE(n.At(0, 0).is_null());
  Table cmp = *db_.ExecuteSql("SELECT (NULL = NULL) AS r FROM tv LIMIT 1");
  EXPECT_TRUE(cmp.At(0, 0).is_null());  // NULL never equals anything
  // WHERE keeps only definite-true rows.
  Table kept = *db_.ExecuteSql("SELECT b FROM tv WHERE b");
  EXPECT_EQ(kept.num_rows(), 1u);
  Table negated = *db_.ExecuteSql("SELECT b FROM tv WHERE not b");
  EXPECT_EQ(negated.num_rows(), 1u);  // NULL row excluded from both
}

// Round-trip property: rendering a parsed expression and re-parsing it is a
// fixed point, and both render identically.
class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, ParseRenderParseIsFixedPoint) {
  const std::string original = GetParam();
  Result<ExprPtr> first = ParseExpression(original);
  ASSERT_TRUE(first.ok()) << original;
  const std::string rendered = first.ValueOrDie()->ToString();
  Result<ExprPtr> second = ParseExpression(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(second.ValueOrDie()->ToString(), rendered) << original;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExprRoundTrip,
    ::testing::Values(
        "a + b * c - d / e",
        "(a + b) * (c - d)",
        "a > 1 and b <= 2 or not (c = 'x')",
        "x is null or y is not null",
        "case when a > 0 then 'pos' when a < 0 then 'neg' else 'zero' end",
        "sqrt(abs(a)) + pow(b, 2)",
        "coalesce(a, b, 0)",
        "x between 1 and 10",
        "g in ('a', 'b', 'c')",
        "name like '%smith%'",
        "cast_double(s) + 1",
        "count(*)",
        "sum(x * 2) / count(x)",
        "-x + -3.5",
        "a % 2 = 0"));

// Deterministically generated random expressions must also round-trip.
TEST(ExprRoundTripRandom, GeneratedExpressionsAreStable) {
  mip::Rng rng(808);
  auto gen = [&rng](auto&& self, int depth) -> std::string {
    if (depth <= 0 || rng.NextDouble() < 0.3) {
      switch (rng.NextBounded(4)) {
        case 0:
          return "a";
        case 1:
          return "b";
        case 2:
          return std::to_string(rng.NextBounded(100));
        default:
          return std::to_string(rng.NextBounded(100)) + ".5";
      }
    }
    static const char* kOps[] = {"+", "-", "*", "/", ">", "<", "="};
    const std::string lhs = self(self, depth - 1);
    const std::string rhs = self(self, depth - 1);
    return "(" + lhs + " " + kOps[rng.NextBounded(std::size(kOps))] + " " +
           rhs + ")";
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = gen(gen, 4);
    Result<ExprPtr> first = ParseExpression(text);
    ASSERT_TRUE(first.ok()) << text;
    const std::string rendered = first.ValueOrDie()->ToString();
    Result<ExprPtr> second = ParseExpression(rendered);
    ASSERT_TRUE(second.ok()) << rendered;
    ASSERT_EQ(second.ValueOrDie()->ToString(), rendered) << text;
  }
}

}  // namespace
}  // namespace mip::engine
