// Disk-backed segment store: segment round-trip byte identity, zone-map
// pruning parity against the in-memory engine, LSM ingest + crash recovery
// (torn WAL tails, orphaned segments), hardened readers over corrupted
// files, EXPLAIN segment accounting, and typed kIOError propagation.
//
// PR 9 additions: ordered secondary indexes (probe-vs-brute-force parity,
// flip-every-byte / truncate-every-prefix corruption falls back to the scan
// path and never changes results), background compaction (order-preserving
// byte identity, kill-between-every-step crash recovery), the
// Scan-vs-IndexScan access-path rule (EXPLAIN surface, byte parity at 1 and
// 8 threads), storage counters, and manifest v1 back-compat.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/parallel.h"
#include "engine/database.h"
#include "engine/encoding.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "net/frame.h"
#include "storage/compaction.h"
#include "storage/index.h"
#include "storage/io.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "storage/store.h"
#include "storage/wal.h"

namespace mip {
namespace {

using engine::Bitmap;
using engine::Column;
using engine::DataType;
using engine::Database;
using engine::Field;
using engine::Schema;
using engine::Table;
using engine::Value;
using storage::BuildKeyInterval;
using storage::CompactionHooks;
using storage::IndexFooter;
using storage::KeyInterval;
using storage::ProbeIndex;
using storage::PruneConjunct;
using storage::ReadIndexFooter;
using storage::SegmentFooter;
using storage::StorageEngine;
using storage::StorageOptions;
using storage::VerifyIndex;
using storage::WriteIndex;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mip_storage_" + name;
  // Fresh directory per test: nuke leftovers from earlier runs.
  if (storage::FileExists(dir)) {
    auto names = storage::ListDir(dir);
    if (names.ok()) {
      for (const std::string& f : names.ValueOrDie()) {
        (void)storage::RemoveFile(dir + "/" + f);
      }
    }
  }
  EXPECT_TRUE(storage::EnsureDir(dir).ok());
  return dir;
}

std::vector<uint8_t> TableBytes(const Table& t) {
  BufferWriter w;
  engine::SerializeTable(t, &w);
  return w.bytes();
}

/// All four types; NULLs, NaN, -0.0, int64 extremes, empty strings. Null
/// slots hold the engine's canonical placeholders (0 / NaN / "") — the
/// invariant every engine path (Concat, Take, AppendRow) maintains.
Table MakeGnarlyTable() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kFloat64},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
  Column ci = Column::FromInts({std::numeric_limits<int64_t>::min(), 0, 0, 7,
                                std::numeric_limits<int64_t>::max(), 42});
  Bitmap vi(6, true);
  vi.Set(1, false);
  EXPECT_TRUE(ci.SetValidity(vi).ok());
  Column cd = Column::FromDoubles({-0.0, nan, 1.5, -1e300, nan, nan});
  Bitmap vd(6, true);
  vd.Set(4, false);
  EXPECT_TRUE(cd.SetValidity(vd).ok());
  Column cb = Column::FromBools({1, 0, 1, 1, 0, 0});
  Bitmap vb(6, true);
  vb.Set(5, false);
  EXPECT_TRUE(cb.SetValidity(vb).ok());
  Column cs = Column::FromStrings({"", "alpha", "", "zeta", "alpha", "m"});
  Bitmap vs(6, true);
  vs.Set(0, false);
  EXPECT_TRUE(cs.SetValidity(vs).ok());
  auto t = Table::Make(schema, {ci, cd, cb, cs});
  EXPECT_TRUE(t.ok());
  return t.ValueOrDie();
}

/// Larger typed table for codec + multi-segment coverage: `id` ascending
/// (so segments have disjoint id ranges), `val` noisy doubles with NaNs,
/// `cat` low-cardinality strings, `flag` bools.
Table MakeEventsTable(int64_t start, int64_t count) {
  std::vector<int64_t> ids;
  std::vector<double> vals;
  std::vector<std::string> cats;
  std::vector<uint8_t> flags;
  for (int64_t i = start; i < start + count; ++i) {
    ids.push_back(i);
    if (i % 97 == 3) {
      vals.push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (i % 101 == 5) {
      vals.push_back(-0.0);
    } else {
      vals.push_back(static_cast<double>((i * 37) % 1000) / 8.0 - 40.0);
    }
    cats.push_back("cat_" + std::to_string(i / 100));
    flags.push_back(static_cast<uint8_t>(i % 3 == 0));
  }
  Schema schema({{"id", DataType::kInt64},
                 {"val", DataType::kFloat64},
                 {"cat", DataType::kString},
                 {"flag", DataType::kBool}});
  Bitmap v(static_cast<size_t>(count), true);
  for (int64_t i = 0; i < count; ++i) {
    if ((start + i) % 113 == 7) {
      v.Set(static_cast<size_t>(i), false);
      // Canonical null placeholder, as every engine path maintains.
      vals[static_cast<size_t>(i)] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  Column cv = Column::FromDoubles(vals);
  EXPECT_TRUE(cv.SetValidity(v).ok());
  auto t = Table::Make(schema, {Column::FromInts(ids), cv,
                                Column::FromStrings(cats),
                                Column::FromBools(flags)});
  EXPECT_TRUE(t.ok());
  return t.ValueOrDie();
}

/// Unsorted high-cardinality table — the shape indexes exist for. `key` is
/// a Fibonacci-hash permutation (every value distinct, no two neighbors
/// close), so every segment's zone map spans nearly the full key range and
/// zone pruning alone is useless; `val` carries NULLs and NaNs; `grp` is
/// low-cardinality.
Table MakeKeyedTable(int64_t start, int64_t count) {
  std::vector<int64_t> keys;
  std::vector<double> vals;
  std::vector<std::string> grps;
  for (int64_t i = start; i < start + count; ++i) {
    keys.push_back((i * 2654435761LL) % 1000003);
    vals.push_back(i % 89 == 2 ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>((i * 53) % 500) / 4.0);
    grps.push_back("g" + std::to_string(i % 7));
  }
  Schema schema({{"key", DataType::kInt64},
                 {"val", DataType::kFloat64},
                 {"grp", DataType::kString}});
  Bitmap v(static_cast<size_t>(count), true);
  for (int64_t i = 0; i < count; ++i) {
    if ((start + i) % 97 == 11) {
      v.Set(static_cast<size_t>(i), false);
      vals[static_cast<size_t>(i)] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  Column cv = Column::FromDoubles(vals);
  EXPECT_TRUE(cv.SetValidity(v).ok());
  auto t = Table::Make(schema, {Column::FromInts(keys), cv,
                                Column::FromStrings(grps)});
  EXPECT_TRUE(t.ok());
  return t.ValueOrDie();
}

std::vector<std::string> IndexFiles(const std::string& dir) {
  std::vector<std::string> out;
  auto names = storage::ListDir(dir);
  EXPECT_TRUE(names.ok());
  for (const std::string& n : names.ValueOrDie()) {
    if (n.rfind("idx-", 0) == 0) out.push_back(dir + "/" + n);
  }
  return out;
}

std::string ExplainText(Database* db, const std::string& sql) {
  auto r = db->ExecuteSql("EXPLAIN " + sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::string out;
  const Table& t = r.ValueOrDie();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    out += t.At(i, 0).string_value();
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Segment format
// ---------------------------------------------------------------------------

TEST(SegmentTest, RoundTripByteIdenticalAllTypes) {
  const std::string dir = TestDir("seg_roundtrip");
  const Table original = MakeGnarlyTable();
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", original);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer.ValueOrDie().num_rows, 6u);

  auto read = storage::ReadSegment(dir + "/seg-0.mip");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // Byte identity through the v2 wire serializer: same schema, same values,
  // same validity, same NaN payload bits and -0.0 signs.
  EXPECT_EQ(TableBytes(original), TableBytes(read.ValueOrDie()));
}

TEST(SegmentTest, RoundTripLargeTableThroughCodecs) {
  const std::string dir = TestDir("seg_large");
  const Table original = MakeEventsTable(0, 8000);
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", original);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  auto read = storage::ReadSegment(dir + "/seg-0.mip");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(TableBytes(original), TableBytes(read.ValueOrDie()));
}

TEST(SegmentTest, ZoneMapsTrackRangesNullsAndNan) {
  const std::string dir = TestDir("seg_zones");
  const Table t = MakeGnarlyTable();
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", t);
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();
  ASSERT_EQ(f.columns.size(), 4u);

  const storage::ZoneMap& zi = f.columns[0].zone;
  EXPECT_EQ(zi.null_count, 1u);
  EXPECT_TRUE(zi.has_range);
  EXPECT_EQ(zi.min_i, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(zi.max_i, std::numeric_limits<int64_t>::max());

  const storage::ZoneMap& zd = f.columns[1].zone;
  EXPECT_EQ(zd.null_count, 1u);
  EXPECT_TRUE(zd.has_nan);   // row 1 (valid NaN) and row 5
  EXPECT_TRUE(zd.has_range);  // non-NaN values exist
  EXPECT_EQ(zd.min_d, -1e300);
  EXPECT_EQ(zd.max_d, 1.5);

  const storage::ZoneMap& zs = f.columns[3].zone;
  EXPECT_EQ(zs.null_count, 1u);
  EXPECT_EQ(zs.min_s, "");
  EXPECT_EQ(zs.max_s, "zeta");
}

TEST(SegmentTest, AllNullAndAllNanColumns) {
  const std::string dir = TestDir("seg_allnull");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({{"n", DataType::kFloat64}, {"x", DataType::kFloat64}});
  Column cn = Column::FromDoubles({0.0, 0.0});
  Bitmap v(2, false);
  ASSERT_TRUE(cn.SetValidity(v).ok());
  Column cx = Column::FromDoubles({nan, nan});
  auto t = Table::Make(schema, {cn, cx});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();
  EXPECT_EQ(f.columns[0].zone.null_count, 2u);
  EXPECT_FALSE(f.columns[0].zone.has_range);
  EXPECT_FALSE(f.columns[1].zone.has_range);  // NaN-only: no numeric range...
  EXPECT_TRUE(f.columns[1].zone.has_nan);     // ...but NaN presence recorded
}

TEST(SegmentTest, EveryFlippedByteIsRejected) {
  const std::string dir = TestDir("seg_flip");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteSegment(path, MakeGnarlyTable()).ok());
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();
  // Every byte of the file sits under a magic, a version check, or a CRC:
  // no single-byte corruption may survive a full read.
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0xFF;
    ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
    auto read = storage::ReadSegment(path);
    EXPECT_FALSE(read.ok()) << "flipped byte " << i << " went undetected";
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kIOError)
          << read.status().ToString();
    }
  }
}

TEST(SegmentTest, EveryTruncationIsRejected) {
  const std::string dir = TestDir("seg_trunc");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteSegment(path, MakeGnarlyTable()).ok());
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> bad(good.begin(), good.begin() + len);
    ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
    auto read = storage::ReadSegment(path);
    EXPECT_FALSE(read.ok()) << "truncation to " << len << " went undetected";
  }
}

TEST(SegmentTest, HostileCountsRejectedBeforeAllocation) {
  const std::string dir = TestDir("seg_hostile");
  // Hand-built file whose (CRC-valid) footer claims a row count beyond the
  // wire cap: the reader must fail on the cap check, not trust the count.
  BufferWriter footer;
  engine::PutVarint(&footer, engine::kMaxWireElements + 1);  // num_rows
  engine::PutVarint(&footer, 0);                             // num_cols
  BufferWriter file;
  file.WriteU32(storage::kSegmentMagic);
  file.WriteU8(storage::kSegmentVersion);
  file.AppendRaw(footer.bytes().data(), footer.bytes().size());
  file.WriteU32(static_cast<uint32_t>(footer.bytes().size()));
  file.WriteU32(Crc32(footer.bytes()));
  file.WriteU32(storage::kSegmentFooterMagic);
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteFileAtomic(path, file.bytes()).ok());
  auto read = storage::ReadSegmentFooter(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().message().find("cap"), std::string::npos)
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// Zone-map feasibility (engine comparison semantics)
// ---------------------------------------------------------------------------

storage::PruneConjunct Conj(const std::string& col, engine::BinaryOp op,
                            engine::Value lit) {
  storage::PruneConjunct c;
  c.column = col;
  c.op = op;
  c.literal = lit;
  return c;
}

TEST(SegmentPruneTest, NanRowsBlockEqLikePruningButNotLtGt) {
  const std::string dir = TestDir("prune_nan");
  // Segment: val in [10, 20] plus one NaN row.
  Schema schema({{"val", DataType::kFloat64}});
  auto t = Table::Make(
      schema, {Column::FromDoubles(
                  {10.0, 15.0, 20.0,
                   std::numeric_limits<double>::quiet_NaN()})});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/s.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();

  using engine::BinaryOp;
  using engine::Value;
  // The engine's comparison kernels yield cmp==0 for a NaN operand, so the
  // NaN row satisfies =, <=, >= against ANY literal: those ops must never
  // prune a NaN-bearing segment, even far outside [10, 20].
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kEq,
                                               Value::Double(999.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLe,
                                               Value::Double(-999.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kGe,
                                               Value::Double(999.0))}));
  // < and > are genuinely unsatisfiable by NaN rows, so the range decides.
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLt,
                                                Value::Double(10.0))}));
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kGt,
                                                Value::Double(20.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLt,
                                               Value::Double(10.5))}));
}

TEST(SegmentPruneTest, CleanRangesPruneAndAllNullPrunesEverything) {
  const std::string dir = TestDir("prune_range");
  Schema schema({{"id", DataType::kInt64}, {"n", DataType::kFloat64}});
  Column cn = Column::FromDoubles({0.0, 0.0, 0.0});
  Bitmap v(3, false);
  ASSERT_TRUE(cn.SetValidity(v).ok());
  auto t = Table::Make(schema, {Column::FromInts({100, 150, 200}), cn});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/s.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();

  using engine::BinaryOp;
  using engine::Value;
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kEq,
                                                 Value::Int(99))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kEq,
                                                Value::Int(100))}));
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kGt,
                                                 Value::Int(200))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kGe,
                                                Value::Int(200))}));
  // All-null column: no comparison ever matches NULL.
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("n", BinaryOp::kEq,
                                                 Value::Double(0.0))}));
  // Unknown column: ignored, stays scannable.
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("ghost", BinaryOp::kEq,
                                                Value::Int(1))}));
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, TornTailTruncatesToCommittedPrefix) {
  const std::string dir = TestDir("wal_torn");
  const std::string path = dir + "/wal-0.log";
  const Table batch = MakeGnarlyTable();
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  auto size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());

  // Tear the last record mid-payload: replay keeps exactly two.
  ASSERT_TRUE(storage::TruncateFile(path, size.ValueOrDie() - 5).ok());
  auto replay = storage::ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.ValueOrDie().torn);
  ASSERT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(TableBytes(replay.ValueOrDie().records[1].rows),
            TableBytes(batch));
}

TEST(WalTest, GarbageTailIsTornNotFatal) {
  const std::string dir = TestDir("wal_garbage");
  const std::string path = dir + "/wal-0.log";
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", MakeGnarlyTable()).ok());
  auto size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(storage::AppendFileSync(path, {0xDE, 0xAD, 0xBE, 0xEF, 0x01,
                                             0x02, 0x03, 0x04, 0x05}).ok());
  auto replay = storage::ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().torn);
  EXPECT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().valid_bytes, size.ValueOrDie());
}

TEST(WalTest, MissingFileIsEmptyReplay) {
  auto replay = storage::ReplayWal(TestDir("wal_missing") + "/wal-0.log");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().records.empty());
  EXPECT_FALSE(replay.ValueOrDie().torn);
}

// ---------------------------------------------------------------------------
// StorageEngine: ingest, flush, recovery
// ---------------------------------------------------------------------------

TEST(StoreTest, AppendScanSurvivesReopenViaWal) {
  const std::string dir = TestDir("store_wal_reopen");
  const Table batch = MakeEventsTable(0, 500);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->AppendRows("events", batch).ok());
    // Destructor deliberately does NOT flush: durability must come from
    // the WAL alone.
  }
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->SegmentCount("events").ValueOrDie(), 0u);
  ASSERT_EQ((*store)->MemtableRows("events").ValueOrDie(), 500u);
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(batch));
}

TEST(StoreTest, FlushSplitsIntoSegmentsScanOrderPreserved) {
  const std::string dir = TestDir("store_flush");
  StorageOptions options;
  options.target_segment_rows = 100;
  const Table all = MakeEventsTable(0, 450);
  {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok());
    // Two appends, one flush: 450 rows -> 5 segments (4x100 + 50).
    ASSERT_TRUE((*store)->AppendRows("events", all.Slice(0, 300)).ok());
    ASSERT_TRUE((*store)->AppendRows("events", all.Slice(300, 150)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->SegmentCount("events").ValueOrDie(), 5u);
    ASSERT_EQ((*store)->MemtableRows("events").ValueOrDie(), 0u);
    auto scan = (*store)->ScanTable("events", nullptr, nullptr);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
  }
  // Reopen: committed segments reload from the manifest, WAL is gone.
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
}

TEST(StoreTest, MemtableBudgetTriggersAutoFlush) {
  const std::string dir = TestDir("store_autoflush");
  StorageOptions options;
  options.memtable_budget_bytes = 1024;  // tiny: every append flushes
  options.target_segment_rows = 1000;
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 200)).ok());
  EXPECT_GE((*store)->SegmentCount("events").ValueOrDie(), 1u);
  EXPECT_EQ((*store)->MemtableRows("events").ValueOrDie(), 0u);
}

TEST(StoreTest, CrashRecoveryTornWalKeepsCommittedDropsUncommitted) {
  const std::string dir = TestDir("store_crash_torn");
  const Table committed = MakeEventsTable(0, 120);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", committed).ok());
  }
  // Simulate a crash mid-append: a torn half-record at the WAL tail.
  ASSERT_TRUE(storage::AppendFileSync(dir + "/wal-0.log",
                                      {0x40, 0x00, 0x00, 0x00, 0x99, 0x99,
                                       0x12, 0x34, 0x56}).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  // Committed rows intact, torn suffix absent — and the tail was truncated,
  // so the next append extends a clean log.
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(committed));
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(120, 30)).ok());
  EXPECT_EQ((*store)->ScanTable("events", nullptr, nullptr)
                .ValueOrDie()
                .num_rows(),
            150u);
}

TEST(StoreTest, CrashRecoverySweepsOrphanSegmentsAndStaleWals) {
  const std::string dir = TestDir("store_crash_orphan");
  const Table all = MakeEventsTable(0, 100);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", all).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // A flush that died after writing segments but before committing its
  // manifest leaves: an orphan segment, a stale previous-epoch WAL, and a
  // tmp file. Recovery must delete all three and keep the data intact.
  ASSERT_TRUE(storage::WriteFileAtomic(dir + "/seg-999.mip",
                                       {1, 2, 3, 4, 5}).ok());
  ASSERT_TRUE(storage::AppendFileSync(dir + "/wal-0.log", {9, 9, 9}).ok());
  ASSERT_TRUE(storage::AppendFileSync(dir + "/seg-7.mip.tmp", {1}).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(storage::FileExists(dir + "/seg-999.mip"));
  EXPECT_FALSE(storage::FileExists(dir + "/wal-0.log"));
  EXPECT_FALSE(storage::FileExists(dir + "/seg-7.mip.tmp"));
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
}

TEST(StoreTest, CorruptCommittedSegmentIsTypedIOError) {
  const std::string dir = TestDir("store_corrupt_seg");
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 50)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto names = storage::ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string seg;
  for (const std::string& n : names.ValueOrDie()) {
    if (n.rfind("seg-", 0) == 0) seg = dir + "/" + n;
  }
  ASSERT_FALSE(seg.empty());
  auto bytes = storage::ReadFileBytes(seg);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();

  // A flipped byte inside a column block: recovery only validates footers
  // (it never reads data blocks), so Open succeeds — but the scan hits the
  // column CRC and fails with a typed kIOError instead of decoding garbage.
  {
    std::vector<uint8_t> bad = good;
    bad[storage::kSegmentHeaderBytes + 2] ^= 0x01;
    ASSERT_TRUE(storage::WriteFileAtomic(seg, bad).ok());
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto scan = (*store)->ScanTable("events", nullptr, nullptr);
    ASSERT_FALSE(scan.ok());
    EXPECT_EQ(scan.status().code(), StatusCode::kIOError)
        << scan.status().ToString();
  }

  // A flipped byte in the footer region is caught already at Open.
  {
    std::vector<uint8_t> bad = good;
    bad[bad.size() - 6] ^= 0x01;  // inside the trailer
    ASSERT_TRUE(storage::WriteFileAtomic(seg, bad).ok());
    auto store = StorageEngine::Open(dir);
    ASSERT_FALSE(store.ok());
    EXPECT_EQ(store.status().code(), StatusCode::kIOError)
        << store.status().ToString();
  }
}

TEST(StoreTest, CorruptManifestFailsOpenWithIOError) {
  const std::string dir = TestDir("store_corrupt_manifest");
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 10)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto bytes = storage::ReadFileBytes(dir + "/MANIFEST");
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> bad = bytes.ValueOrDie();
  bad[bad.size() / 2] ^= 0xFF;
  ASSERT_TRUE(storage::WriteFileAtomic(dir + "/MANIFEST", bad).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

TEST(StoreTest, SchemaMismatchRejectedBeforeWal) {
  const std::string dir = TestDir("store_schema");
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 5)).ok());
  Schema other({{"x", DataType::kFloat64}});
  auto t = Table::Make(other, {Column::FromDoubles({1.0})});
  ASSERT_TRUE(t.ok());
  auto st = (*store)->AppendRows("events", t.ValueOrDie());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  // The rejected batch never reached the WAL: reopen replays cleanly.
  auto reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->MemtableRows("events").ValueOrDie(), 5u);
}

// ---------------------------------------------------------------------------
// Database integration: catalog, EXPLAIN, pruning parity
// ---------------------------------------------------------------------------

struct DiskDbFixture {
  std::unique_ptr<StorageEngine> store;
  std::unique_ptr<Database> db;

  /// events table: 800 rows across 8 id-disjoint segments.
  static DiskDbFixture Make(const std::string& name) {
    DiskDbFixture fx;
    const std::string dir = TestDir(name);
    StorageOptions options;
    options.target_segment_rows = 100;
    auto store = StorageEngine::Open(dir, options);
    EXPECT_TRUE(store.ok());
    fx.store = std::move(store.ValueOrDie());
    EXPECT_TRUE(fx.store->AppendRows("events", MakeEventsTable(0, 800)).ok());
    EXPECT_TRUE(fx.store->Flush().ok());
    fx.db = std::make_unique<Database>("disknode");
    EXPECT_TRUE(fx.db->AttachStorage(fx.store.get()).ok());
    return fx;
  }
};

TEST(DiskDatabaseTest, CatalogSeesDiskTable) {
  DiskDbFixture fx = DiskDbFixture::Make("db_catalog");
  EXPECT_TRUE(fx.db->HasTable("events"));
  auto schema = fx.db->GetSchema("events");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.ValueOrDie().num_fields(), 4u);
  auto t = fx.db->GetTable("events");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.ValueOrDie().num_rows(), 800u);
  // Disk tables cannot be dropped from SQL — the store owns their life.
  EXPECT_FALSE(fx.db->DropTable("events").ok());
}

TEST(DiskDatabaseTest, ExplainShowsPrunedSegments) {
  DiskDbFixture fx = DiskDbFixture::Make("db_explain");
  const std::string plan =
      ExplainText(fx.db.get(), "SELECT id FROM events WHERE id < 150");
  // 800 rows / 100-row segments, ids ascending: id < 150 touches segments
  // 0-1 and prunes the other six.
  EXPECT_NE(plan.find("disk"), std::string::npos) << plan;
  EXPECT_NE(plan.find("prune="), std::string::npos) << plan;
  EXPECT_NE(plan.find("segments: scanned=2 pruned=6 total=8"),
            std::string::npos)
      << plan;
}

TEST(DiskDatabaseTest, PruningNeverChangesResults) {
  DiskDbFixture fx = DiskDbFixture::Make("db_parity");
  // Reference: the same rows as a plain in-memory base table.
  Database mem("memnode");
  auto full = fx.store->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(mem.PutTable("events", full.ValueOrDie()).ok());

  // Predicate corpus: every comparison op crossed with literals below, at,
  // inside and above each column's range — plus AND/OR combinations, NULL
  // probes and aggregates. Results must match the memory engine row for
  // row whether pruning fires or not.
  std::vector<std::string> predicates;
  for (const std::string op : {"=", "<", "<=", ">", ">="}) {
    for (const std::string lit :
         {"-5", "0", "17", "399", "400", "799", "1000"}) {
      predicates.push_back("id " + op + " " + lit);
    }
    for (const std::string lit : {"-41.0", "-0.0", "0.0", "12.5", "85.0"}) {
      predicates.push_back("val " + op + " " + lit);
    }
    for (const std::string lit : {"'a'", "'cat_3'", "'zzz'"}) {
      predicates.push_back("cat " + op + " " + lit);
    }
    predicates.push_back("flag " + op + " 1");
  }
  predicates.push_back("id < 100 AND val >= 0.0");
  predicates.push_back("id >= 700 AND cat = 'cat_7'");
  predicates.push_back("id < 50 OR id > 750");
  predicates.push_back("val IS NULL");
  predicates.push_back("val IS NOT NULL AND id <= 10");

  ThreadPool pool(8);
  engine::ExecContext parallel{&pool, 64};  // tiny morsels: force fan-out
  for (const std::string& pred : predicates) {
    for (const std::string sql :
         {"SELECT id, val, cat, flag FROM events WHERE " + pred,
          "SELECT count(*) AS n, sum(val) AS s FROM events WHERE " + pred}) {
      auto want = mem.ExecuteSql(sql);
      ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
      for (const bool use_pool : {false, true}) {
        fx.db->set_exec_context(use_pool ? &parallel
                                         : &engine::ExecContext::Serial());
        auto got = fx.db->ExecuteSql(sql);
        ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
        EXPECT_EQ(got.ValueOrDie().ToString(100000),
                  want.ValueOrDie().ToString(100000))
            << sql << " (pool=" << use_pool << ")";
      }
    }
  }

  // Same corpus with the optimizer off: no prune hints at all, same rows.
  fx.db->set_exec_context(nullptr);
  fx.db->set_optimizer_enabled(false);
  for (const std::string& pred : predicates) {
    const std::string sql = "SELECT id FROM events WHERE " + pred;
    auto want = mem.ExecuteSql(sql);
    auto got = fx.db->ExecuteSql(sql);
    ASSERT_TRUE(want.ok() && got.ok()) << sql;
    EXPECT_EQ(got.ValueOrDie().ToString(100000),
              want.ValueOrDie().ToString(100000))
        << sql;
  }
}

TEST(DiskDatabaseTest, MemtableRowsAreNeverPruned) {
  DiskDbFixture fx = DiskDbFixture::Make("db_memtable");
  // Rows beyond every segment's zone range, sitting only in the memtable.
  ASSERT_TRUE(fx.db->IngestDisk("events", MakeEventsTable(5000, 10)).ok());
  auto r = fx.db->ExecuteSql(
      "SELECT count(*) AS n FROM events WHERE id >= 5000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().At(0, 0).int_value(), 10);
}

TEST(DiskDatabaseTest, IngestAndInsertBumpCatalogVersion) {
  DiskDbFixture fx = DiskDbFixture::Make("db_version");
  const uint64_t v0 = fx.db->catalog_version();
  ASSERT_TRUE(fx.db->IngestDisk("events", MakeEventsTable(800, 5)).ok());
  const uint64_t v1 = fx.db->catalog_version();
  EXPECT_GT(v1, v0);
  // SQL INSERT into a disk table routes through the store (WAL'd, durable)
  // and bumps the version again.
  auto st = fx.db->ExecuteSql(
      "INSERT INTO events VALUES (9000, 1.0, 'cat_x', 1)");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_GT(fx.db->catalog_version(), v1);
  auto n = fx.db->ExecuteSql(
      "SELECT count(*) AS n FROM events WHERE id = 9000");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.ValueOrDie().At(0, 0).int_value(), 1);
}

TEST(DiskDatabaseTest, ScanWithoutAttachedStorageFailsCleanly) {
  // A plan that names a disk table executed on a database whose storage
  // was never attached must produce a typed error, not a crash.
  Database db("nostorage");
  auto r = db.ExecuteSql("SELECT * FROM ghost_disk");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Typed error propagation (satellite: storage errors over the wire)
// ---------------------------------------------------------------------------

TEST(StorageErrorTest, IOErrorCodeSurvivesReplyFrame) {
  const std::string dir = TestDir("err_frame");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteFileAtomic(path, {1, 2, 3}).ok());
  auto read = storage::ReadSegment(path);
  ASSERT_FALSE(read.ok());
  ASSERT_EQ(read.status().code(), StatusCode::kIOError);

  // Round-trip the failure through the reply frame, as a worker would when
  // a fetch_table hits a bad disk: the typed code must survive so callers
  // can tell storage faults from planner errors.
  const std::vector<uint8_t> payload =
      net::EncodeReplyPayload(read.status(), {});
  auto decoded = net::DecodeReplyPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
  EXPECT_EQ(decoded.status().message(), read.status().message());
}

TEST(StorageErrorTest, MissingDataDirIsIOError) {
  auto footer = storage::ReadSegmentFooter("/nonexistent/nope.mip");
  ASSERT_FALSE(footer.ok());
  EXPECT_EQ(footer.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Ordered secondary indexes: probe parity, corruption hardening
// ---------------------------------------------------------------------------

/// The engine's comparison semantics the index must mirror: numerics
/// compared as doubles; NaN (cell or literal) satisfies =, <=, >= against
/// anything and fails <, >.
bool CmpMatches(engine::BinaryOp op, double v, double lit) {
  if (std::isnan(v) || std::isnan(lit)) {
    return op == engine::BinaryOp::kEq || op == engine::BinaryOp::kLe ||
           op == engine::BinaryOp::kGe;
  }
  switch (op) {
    case engine::BinaryOp::kEq: return v == lit;
    case engine::BinaryOp::kLt: return v < lit;
    case engine::BinaryOp::kLe: return v <= lit;
    case engine::BinaryOp::kGt: return v > lit;
    case engine::BinaryOp::kGe: return v >= lit;
    default: return false;
  }
}

bool CmpMatches(engine::BinaryOp op, const std::string& v,
                const std::string& lit) {
  switch (op) {
    case engine::BinaryOp::kEq: return v == lit;
    case engine::BinaryOp::kLt: return v < lit;
    case engine::BinaryOp::kLe: return v <= lit;
    case engine::BinaryOp::kGt: return v > lit;
    case engine::BinaryOp::kGe: return v >= lit;
    default: return false;
  }
}

constexpr engine::BinaryOp kCmpOps[] = {
    engine::BinaryOp::kEq, engine::BinaryOp::kLt, engine::BinaryOp::kLe,
    engine::BinaryOp::kGt, engine::BinaryOp::kGe};

TEST(IndexTest, IntProbeMatchesBruteForceAcrossOpsAndLiterals) {
  const std::string dir = TestDir("idx_int_probe");
  const std::vector<int64_t> values = {5,  -3, 7,    7,  0,
                                       42, 7,  9000, -3, 13};
  Column col = Column::FromInts(values);
  Bitmap valid(values.size(), true);
  valid.Set(4, false);  // the NULL row must never count as a candidate
  ASSERT_TRUE(col.SetValidity(valid).ok());
  const std::string path = dir + "/idx-0.mix";
  auto wrote = WriteIndex(path, "key", col);
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  auto footer = ReadIndexFooter(path);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer.ValueOrDie().num_entries, values.size() - 1);
  ASSERT_TRUE(VerifyIndex(path, footer.ValueOrDie()).ok());

  for (const engine::BinaryOp op : kCmpOps) {
    for (const int64_t lit : {-10, -3, 0, 7, 8, 42, 9001}) {
      const std::vector<PruneConjunct> conjuncts = {
          {"key", op, Value::Int(lit)}};
      const KeyInterval interval =
          BuildKeyInterval(DataType::kInt64, "key", conjuncts);
      ASSERT_TRUE(interval.restricts);
      auto probe = ProbeIndex(path, footer.ValueOrDie(), interval);
      ASSERT_TRUE(probe.ok()) << probe.status().ToString();
      uint64_t brute = 0;
      for (size_t i = 0; i < values.size(); ++i) {
        if (!col.IsValid(i)) continue;
        if (CmpMatches(op, static_cast<double>(values[i]),
                       static_cast<double>(lit))) {
          ++brute;
        }
      }
      EXPECT_EQ(probe.ValueOrDie().candidates, brute)
          << "op=" << static_cast<int>(op) << " lit=" << lit;
    }
  }
}

TEST(IndexTest, DoubleProbeCountsNanForEqLikeOnly) {
  const std::string dir = TestDir("idx_double_probe");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> values = {1.5, nan, -0.0, 3.25, nan, 100.0, 7.0};
  Column col = Column::FromDoubles(values);
  Bitmap valid(values.size(), true);
  valid.Set(6, false);  // NULL (canonical NaN placeholder) — excluded
  ASSERT_TRUE(col.SetValidity(valid).ok());
  const std::string path = dir + "/idx-0.mix";
  auto wrote = WriteIndex(path, "val", col);
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  auto footer = ReadIndexFooter(path);
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer.ValueOrDie().nan_count, 2u);  // valid NaN cells only

  for (const engine::BinaryOp op : kCmpOps) {
    for (const double lit : {-1.0, -0.0, 0.0, 2.0, 100.0, 200.0}) {
      const std::vector<PruneConjunct> conjuncts = {
          {"val", op, Value::Double(lit)}};
      const KeyInterval interval =
          BuildKeyInterval(DataType::kFloat64, "val", conjuncts);
      ASSERT_TRUE(interval.restricts);
      auto probe = ProbeIndex(path, footer.ValueOrDie(), interval);
      ASSERT_TRUE(probe.ok()) << probe.status().ToString();
      uint64_t brute = 0;
      for (size_t i = 0; i < values.size(); ++i) {
        if (col.IsValid(i) && CmpMatches(op, values[i], lit)) ++brute;
      }
      EXPECT_EQ(probe.ValueOrDie().candidates, brute)
          << "op=" << static_cast<int>(op) << " lit=" << lit;
    }
  }
}

TEST(IndexTest, StringProbeAndRangeConjunction) {
  const std::string dir = TestDir("idx_string_probe");
  Column col = Column::FromStrings({"b", "alpha", "", "zeta", "alpha", "m"});
  Bitmap valid(6, true);
  valid.Set(2, false);
  ASSERT_TRUE(col.SetValidity(valid).ok());
  const std::string path = dir + "/idx-0.mix";
  auto wrote = WriteIndex(path, "grp", col);
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  auto footer = ReadIndexFooter(path);
  ASSERT_TRUE(footer.ok());

  for (const engine::BinaryOp op : kCmpOps) {
    for (const std::string lit : {"", "alpha", "m", "zzz"}) {
      const std::vector<PruneConjunct> conjuncts = {
          {"grp", op, Value::String(lit)}};
      const KeyInterval interval =
          BuildKeyInterval(DataType::kString, "grp", conjuncts);
      auto probe = ProbeIndex(path, footer.ValueOrDie(), interval);
      ASSERT_TRUE(probe.ok()) << probe.status().ToString();
      uint64_t brute = 0;
      for (size_t i = 0; i < 6; ++i) {
        if (col.IsValid(i) && CmpMatches(op, col.StringAt(i), lit)) ++brute;
      }
      EXPECT_EQ(probe.ValueOrDie().candidates, brute);
    }
  }

  // Conjunction narrows to a half-open range: 'alpha' <= grp < 'm'.
  const std::vector<PruneConjunct> range = {
      {"grp", engine::BinaryOp::kGe, Value::String("alpha")},
      {"grp", engine::BinaryOp::kLt, Value::String("m")}};
  auto probe = ProbeIndex(path, footer.ValueOrDie(),
                          BuildKeyInterval(DataType::kString, "grp", range));
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe.ValueOrDie().candidates, 3u);  // "b", "alpha", "alpha"
}

TEST(IndexTest, ContradictionsAndUnusableConjuncts) {
  const std::string dir = TestDir("idx_interval_edges");
  Column col = Column::FromInts({1, 2, 3, 4, 5, 6, 7, 8});
  const std::string path = dir + "/idx-0.mix";
  ASSERT_TRUE(WriteIndex(path, "k", col).ok());
  auto footer = ReadIndexFooter(path);
  ASSERT_TRUE(footer.ok());

  // Contradictory bounds prove emptiness without reading any block.
  const std::vector<PruneConjunct> contradiction = {
      {"k", engine::BinaryOp::kGt, Value::Int(10)},
      {"k", engine::BinaryOp::kLt, Value::Int(5)}};
  const KeyInterval empty =
      BuildKeyInterval(DataType::kInt64, "k", contradiction);
  EXPECT_TRUE(empty.empty);
  auto probe = ProbeIndex(path, footer.ValueOrDie(), empty);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe.ValueOrDie().candidates, 0u);
  EXPECT_EQ(probe.ValueOrDie().blocks_read, 0u);

  // A NaN literal under < can match nothing (NaN fails < and >).
  const std::vector<PruneConjunct> nan_lt = {
      {"k", engine::BinaryOp::kLt,
       Value::Double(std::numeric_limits<double>::quiet_NaN())}};
  EXPECT_TRUE(BuildKeyInterval(DataType::kInt64, "k", nan_lt).empty);

  // A mixed-type conjunct (string literal on an int column) is ignored —
  // ignoring only widens, and alone it leaves nothing to restrict.
  const std::vector<PruneConjunct> mixed = {
      {"k", engine::BinaryOp::kEq, Value::String("five")}};
  EXPECT_FALSE(BuildKeyInterval(DataType::kInt64, "k", mixed).restricts);

  // Conjuncts naming other columns never restrict this one.
  const std::vector<PruneConjunct> other = {
      {"j", engine::BinaryOp::kEq, Value::Int(3)}};
  EXPECT_FALSE(BuildKeyInterval(DataType::kInt64, "k", other).restricts);
}

TEST(IndexTest, EveryFlippedByteAndEveryTruncationIsDetected) {
  const std::string dir = TestDir("idx_corrupt_file");
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 41; ++i) values.push_back((i * 29) % 41);
  const std::string path = dir + "/idx-0.mix";
  ASSERT_TRUE(WriteIndex(path, "k", Column::FromInts(values)).ok());
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();

  // Any single flipped bit lands in a region covered by a magic, a CRC, or
  // a validated bound — the full audit must reject every one of them.
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x01;
    ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
    auto footer = ReadIndexFooter(path);
    if (footer.ok()) {
      const Status audit = VerifyIndex(path, footer.ValueOrDie());
      ASSERT_FALSE(audit.ok()) << "undetected flip at byte " << pos;
      EXPECT_EQ(audit.code(), StatusCode::kIOError);
    } else {
      EXPECT_EQ(footer.status().code(), StatusCode::kIOError);
    }
  }

  // Every truncated prefix loses the trailer (or leaves one whose offsets
  // dangle): the footer read must fail typed, never crash or misread.
  for (size_t len = 0; len < good.size(); ++len) {
    ASSERT_TRUE(storage::WriteFileAtomic(
                    path, std::vector<uint8_t>(good.begin(),
                                               good.begin() + len))
                    .ok());
    auto footer = ReadIndexFooter(path);
    ASSERT_FALSE(footer.ok()) << "accepted truncation to " << len;
    EXPECT_EQ(footer.status().code(), StatusCode::kIOError);
  }

  ASSERT_TRUE(storage::WriteFileAtomic(path, good).ok());
  auto footer = ReadIndexFooter(path);
  ASSERT_TRUE(footer.ok());
  EXPECT_TRUE(VerifyIndex(path, footer.ValueOrDie()).ok());
}

// ---------------------------------------------------------------------------
// StorageEngine + indexes: boot builds, corruption falls back, never wrong
// ---------------------------------------------------------------------------

TEST(StoreIndexTest, FlushBuildsIndexesAndBootBuildsMissingOnes) {
  const std::string dir = TestDir("store_idx_boot");
  StorageOptions no_index;
  no_index.target_segment_rows = 50;
  no_index.auto_index = false;  // pre-index era: segments only
  const Table all = MakeKeyedTable(0, 250);
  std::vector<uint8_t> bytes0;
  {
    auto store = StorageEngine::Open(dir, no_index);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("t", all).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->SegmentCount("t").ValueOrDie(), 5u);
    EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 0u);
    bytes0 = TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                            .ValueOrDie());
  }
  // Reopen with indexing on: Open backfills every missing index and commits
  // one manifest — a pre-index data directory gains indexes on boot.
  StorageOptions indexed;
  indexed.target_segment_rows = 50;
  {
    auto store = StorageEngine::Open(dir, indexed);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 15u);  // 5 segs x 3 cols
    EXPECT_TRUE((*store)->VerifyIndexes().ok());
    EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                             .ValueOrDie()),
              bytes0);
  }
  // Idempotent: the next boot finds nothing to build.
  auto store = StorageEngine::Open(dir, indexed);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 15u);
  EXPECT_TRUE((*store)->VerifyIndexes().ok());
}

/// Shared harness for the index-corruption sweeps: a 3-segment store
/// indexed on `key` only, plus reference answers computed while healthy.
struct CorruptionFixture {
  std::string dir;
  StorageOptions options;
  std::string want_present, want_absent;
  int64_t present = 0, absent = 0;

  static CorruptionFixture Make(const std::string& name) {
    CorruptionFixture fx;
    fx.dir = TestDir(name);
    fx.options.target_segment_rows = 40;
    fx.options.auto_index = false;
    fx.options.index_columns = {"key"};
    const Table all = MakeKeyedTable(0, 120);
    fx.present = all.At(77, 0).int_value();
    fx.absent = 500000;
    for (bool hit = true; hit;) {
      hit = false;
      for (size_t i = 0; i < all.num_rows(); ++i) {
        if (all.At(i, 0).int_value() == fx.absent) hit = true;
      }
      if (hit) ++fx.absent;
    }
    auto store = StorageEngine::Open(fx.dir, fx.options);
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE((*store)->AppendRows("t", all).ok());
    EXPECT_TRUE((*store)->Flush().ok());
    EXPECT_EQ((*store)->SegmentCount("t").ValueOrDie(), 3u);
    EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 3u);
    EXPECT_TRUE((*store)->VerifyIndexes().ok());
    fx.want_present = fx.Query(store.ValueOrDie().get(), fx.present);
    fx.want_absent = fx.Query(store.ValueOrDie().get(), fx.absent);
    EXPECT_NE(fx.want_present, fx.want_absent);  // one row vs zero rows
    return fx;
  }

  /// Point query through the full stack (optimizer access-path choice,
  /// IndexScan executor, probe fallback) — the "never wrong" oracle.
  std::string Query(StorageEngine* store, int64_t key) const {
    Database db("probe");
    EXPECT_TRUE(db.AttachStorage(store).ok());
    auto r = db.ExecuteSql("SELECT key, val, grp FROM t WHERE key = " +
                           std::to_string(key));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.ValueOrDie().ToString(100000) : "";
  }

  /// Reopens the (possibly corrupted) directory and asserts: Open succeeds,
  /// both point queries still return exactly the healthy answers, and the
  /// explicit audit reports the damage as a typed kIOError.
  void CheckFallback(const std::string& context) const {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    EXPECT_EQ(Query(store.ValueOrDie().get(), present), want_present)
        << context;
    EXPECT_EQ(Query(store.ValueOrDie().get(), absent), want_absent)
        << context;
    const Status audit = (*store)->VerifyIndexes();
    ASSERT_FALSE(audit.ok()) << context;
    EXPECT_EQ(audit.code(), StatusCode::kIOError) << context;
  }
};

TEST(StoreIndexTest, EveryFlippedIndexByteFallsBackToScanNeverWrongRows) {
  CorruptionFixture fx = CorruptionFixture::Make("store_idx_flip");
  for (const std::string& path : IndexFiles(fx.dir)) {
    auto bytes = storage::ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    const std::vector<uint8_t> good = bytes.ValueOrDie();
    for (size_t pos = 0; pos < good.size(); ++pos) {
      std::vector<uint8_t> bad = good;
      bad[pos] ^= 0x01;
      ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
      fx.CheckFallback(path + " flip@" + std::to_string(pos));
    }
    ASSERT_TRUE(storage::WriteFileAtomic(path, good).ok());
  }
}

TEST(StoreIndexTest, EveryTruncatedIndexPrefixFallsBackToScan) {
  CorruptionFixture fx = CorruptionFixture::Make("store_idx_trunc");
  for (const std::string& path : IndexFiles(fx.dir)) {
    auto bytes = storage::ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    const std::vector<uint8_t> good = bytes.ValueOrDie();
    for (size_t len = 0; len < good.size(); len += 7) {  // every 7th prefix
      ASSERT_TRUE(storage::WriteFileAtomic(
                      path, std::vector<uint8_t>(good.begin(),
                                                 good.begin() + len))
                      .ok());
      fx.CheckFallback(path + " trunc@" + std::to_string(len));
    }
    ASSERT_TRUE(storage::WriteFileAtomic(path, good).ok());
  }
}

TEST(StoreIndexTest, MissingIndexFileFallsBackAndFailsVerify) {
  CorruptionFixture fx = CorruptionFixture::Make("store_idx_missing");
  const std::vector<std::string> files = IndexFiles(fx.dir);
  ASSERT_EQ(files.size(), 3u);
  ASSERT_TRUE(storage::RemoveFile(files[1]).ok());
  fx.CheckFallback("missing " + files[1]);
  // The two intact indexes still load; only the missing one is invalid.
  auto store = StorageEngine::Open(fx.dir, fx.options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 2u);
}

// ---------------------------------------------------------------------------
// Compaction: byte identity, crash recovery, background thread
// ---------------------------------------------------------------------------

TEST(CompactionTest, CompactPreservesScanBytesAcrossReopenAndRecompaction) {
  const std::string dir = TestDir("compact_bytes");
  StorageOptions options;
  options.target_segment_rows = 60;
  // Two appends of overlapping rows: duplicate keys, NULLs, NaNs — and the
  // cluster key (first column, `key`) is unsorted, so compaction genuinely
  // permutes rows and must restore their order on scan.
  std::vector<uint8_t> bytes0;
  {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(0, 300)).ok());
    ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(0, 40)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->SegmentCount("t").ValueOrDie(), 6u);
    bytes0 = TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                            .ValueOrDie());

    ASSERT_TRUE((*store)->Compact("t").ok());
    EXPECT_GE((*store)->Counters().compactions, 1u);
    EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                             .ValueOrDie()),
              bytes0);
    EXPECT_TRUE((*store)->VerifyIndexes().ok());

    // Re-compacting a compacted group (plus nothing new) is stable too.
    ASSERT_TRUE((*store)->Compact("t").ok());
    EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                             .ValueOrDie()),
              bytes0);
  }
  // The restored order is durable, not an artifact of in-memory state.
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                           .ValueOrDie()),
            bytes0);
  EXPECT_TRUE((*store)->VerifyIndexes().ok());

  // New ingest after compaction appends past the group; order still holds.
  ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(300, 25)).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  auto scan = (*store)->ScanTable("t", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().num_rows(), 365u);
}

TEST(CompactionTest, KillBetweenEveryStepRecoversExactBytes) {
  StorageOptions options;
  options.target_segment_rows = 40;
  const Table all = MakeKeyedTable(0, 150);
  const auto build = [&](const std::string& dir) {
    auto store = StorageEngine::Open(dir, options);
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE((*store)->AppendRows("t", all).ok());
    EXPECT_TRUE((*store)->Flush().ok());
    EXPECT_EQ((*store)->SegmentCount("t").ValueOrDie(), 4u);
    return std::move(store.ValueOrDie());
  };

  // Enumerate the checkpoint sequence on a throwaway directory.
  std::vector<std::string> steps;
  std::vector<uint8_t> bytes0;
  {
    auto store = build(TestDir("compact_kill_probe"));
    bytes0 = TableBytes(store->ScanTable("t", nullptr, nullptr)
                            .ValueOrDie());
    CompactionHooks hooks;
    hooks.checkpoint = [&steps](const std::string& step) {
      steps.push_back(step);
      return Status::OK();
    };
    ASSERT_TRUE(store->Compact("t", hooks).ok());
    EXPECT_EQ(TableBytes(store->ScanTable("t", nullptr, nullptr)
                             .ValueOrDie()),
              bytes0);
  }
  // begin + 4 x (segment + key/val/grp indexes) + pre/post-commit + done.
  ASSERT_EQ(steps.size(), 20u);

  // Crash at every step: the process dies with no cleanup whatsoever, and
  // the next Open must land on exactly the old or the new epoch — same
  // bytes either way — with every stray file swept.
  for (size_t k = 0; k < steps.size(); ++k) {
    const std::string dir = TestDir("compact_kill_" + std::to_string(k));
    {
      auto store = build(dir);
      size_t fired = 0;
      CompactionHooks hooks;
      hooks.checkpoint = [&fired, k](const std::string&) {
        return fired++ == k ? Status::IOError("simulated crash")
                            : Status::OK();
      };
      (void)store->Compact("t", hooks);
    }
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok())
        << "k=" << k << " (" << steps[k] << "): "
        << store.status().ToString();
    const std::string context = "crash at step " + steps[k];
    auto scan = (*store)->ScanTable("t", nullptr, nullptr);
    ASSERT_TRUE(scan.ok()) << context;
    EXPECT_EQ(TableBytes(scan.ValueOrDie()), bytes0) << context;
    EXPECT_TRUE((*store)->VerifyIndexes().ok()) << context;

    // Nothing dangles: on-disk segments/indexes are exactly the committed
    // ones, and no tmp files survive recovery.
    uint64_t seg_files = 0;
    auto names = storage::ListDir(dir);
    ASSERT_TRUE(names.ok());
    for (const std::string& n : names.ValueOrDie()) {
      EXPECT_EQ(n.find(".tmp"), std::string::npos) << context << ": " << n;
      if (n.rfind("seg-", 0) == 0) ++seg_files;
    }
    EXPECT_EQ(seg_files, (*store)->SegmentCount("t").ValueOrDie()) << context;
    EXPECT_EQ(IndexFiles(dir).size(),
              (*store)->IndexCount("t").ValueOrDie())
        << context;

    // And the recovered store keeps working: a full compaction now lands.
    ASSERT_TRUE((*store)->Compact("t").ok()) << context;
    EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                             .ValueOrDie()),
              bytes0)
        << context;
  }
}

TEST(CompactionTest, ReservedColumnNamesRejectedAtAppend) {
  const std::string dir = TestDir("compact_reserved");
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok());
  Schema schema({{"x", DataType::kInt64}, {"__mip_pos", DataType::kInt64}});
  auto t = Table::Make(
      schema, {Column::FromInts({1}), Column::FromInts({2})});
  ASSERT_TRUE(t.ok());
  auto st = (*store)->AppendRows("t", t.ValueOrDie());
  ASSERT_FALSE(st.ok());  // the hidden-column namespace is ours alone
  EXPECT_EQ((*store)->StorageTableNames().size(), 0u);
}

TEST(CompactionTest, BackgroundThreadCompactsAndPreservesBytes) {
  const std::string dir = TestDir("compact_background");
  StorageOptions options;
  options.target_segment_rows = 40;
  options.compact_min_segments = 2;
  options.background_compact_interval_ms = 5;
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(0, 160)).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  const std::vector<uint8_t> bytes0 =
      TableBytes((*store)->ScanTable("t", nullptr, nullptr).ValueOrDie());

  (*store)->StartBackgroundCompaction();
  (*store)->StartBackgroundCompaction();  // idempotent
  for (int i = 0; i < 1000 && (*store)->Counters().compactions == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*store)->Counters().compactions, 1u);
  EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                           .ValueOrDie()),
            bytes0);
  (*store)->StopBackgroundCompaction();
  (*store)->StopBackgroundCompaction();  // idempotent
}

// ---------------------------------------------------------------------------
// Access-path choice: EXPLAIN surface, byte parity, plan fingerprints
// ---------------------------------------------------------------------------

struct IndexDbFixture {
  std::unique_ptr<StorageEngine> store;
  std::unique_ptr<Database> db;
  int64_t present = 0;  // a key that exists (row 123's)

  /// 400 unsorted high-cardinality rows across 8 segments: zone maps prune
  /// nothing on `key`, indexes confine a point probe to one segment.
  static IndexDbFixture Make(const std::string& name) {
    IndexDbFixture fx;
    StorageOptions options;
    options.target_segment_rows = 50;
    auto store = StorageEngine::Open(TestDir(name), options);
    EXPECT_TRUE(store.ok());
    fx.store = std::move(store.ValueOrDie());
    const Table all = MakeKeyedTable(0, 400);
    fx.present = all.At(123, 0).int_value();
    EXPECT_TRUE(fx.store->AppendRows("t", all).ok());
    EXPECT_TRUE(fx.store->Flush().ok());
    EXPECT_EQ(fx.store->SegmentCount("t").ValueOrDie(), 8u);
    fx.db = std::make_unique<Database>("idxnode");
    EXPECT_TRUE(fx.db->AttachStorage(fx.store.get()).ok());
    return fx;
  }
};

TEST(IndexScanDatabaseTest, ExplainShowsIndexScanWithProbeCounts) {
  IndexDbFixture fx = IndexDbFixture::Make("db_idx_explain");
  const std::string sql = "SELECT key, val FROM t WHERE key = " +
                          std::to_string(fx.present);
  const std::string plan = ExplainText(fx.db.get(), sql);
  // The point query probes all 8 segments and decodes only the one holding
  // the key — strictly better than the zone path, so the optimizer flips
  // the scan to an IndexScan and says so.
  EXPECT_NE(plan.find("IndexScan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("index: probes=8"), std::string::npos) << plan;
  EXPECT_NE(plan.find("segments:"), std::string::npos) << plan;

  // Ablation: with the rule off the same query renders a plain zone Scan.
  fx.db->set_index_scan(false);
  const std::string zoned = ExplainText(fx.db.get(), sql);
  EXPECT_EQ(zoned.find("IndexScan"), std::string::npos) << zoned;
  fx.db->set_index_scan(true);

  // An unselective predicate must NOT flip: the index cannot beat zone maps
  // when every segment holds candidates.
  const std::string wide =
      ExplainText(fx.db.get(), "SELECT key FROM t WHERE key >= 0");
  EXPECT_EQ(wide.find("IndexScan"), std::string::npos) << wide;

  // MIP_INDEX_SCAN=0 flips the constructor default (the bench ablation).
  ::setenv("MIP_INDEX_SCAN", "0", 1);
  Database ablated("ablated");
  EXPECT_FALSE(ablated.index_scan());
  ::unsetenv("MIP_INDEX_SCAN");
  EXPECT_TRUE(Database("fresh").index_scan());
}

TEST(IndexScanDatabaseTest, IndexVsScanByteParityAcrossCorpusAndThreads) {
  IndexDbFixture fx = IndexDbFixture::Make("db_idx_parity");
  Database mem("memnode");
  auto full = fx.store->ScanTable("t", nullptr, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(mem.PutTable("t", full.ValueOrDie()).ok());

  const std::string present = std::to_string(fx.present);
  std::vector<std::string> predicates;
  for (const std::string op : {"=", "<", "<=", ">", ">="}) {
    for (const std::string lit :
         {std::string("-1"), std::string("0"), present,
          std::string("500000"), std::string("1000003")}) {
      predicates.push_back("key " + op + " " + lit);
    }
    for (const std::string lit : {"-1.0", "0.0", "31.25", "124.0"}) {
      predicates.push_back("val " + op + " " + lit);
    }
  }
  predicates.push_back("grp = 'g3'");
  predicates.push_back("key >= " + present + " AND key <= " + present);
  predicates.push_back("key > 100000 AND key < 100100");
  predicates.push_back("key < 50000 OR key > 950000");
  predicates.push_back("val IS NULL");
  predicates.push_back("val IS NOT NULL AND key <= " + present);

  ThreadPool pool(8);
  engine::ExecContext parallel{&pool, 64};  // tiny morsels: force fan-out
  for (const std::string& pred : predicates) {
    for (const std::string sql :
         {"SELECT key, val, grp FROM t WHERE " + pred,
          "SELECT count(*) AS n, sum(val) AS s FROM t WHERE " + pred}) {
      auto want = mem.ExecuteSql(sql);
      ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
      for (const bool use_index : {true, false}) {
        fx.db->set_index_scan(use_index);
        for (const bool use_pool : {false, true}) {
          fx.db->set_exec_context(use_pool ? &parallel
                                           : &engine::ExecContext::Serial());
          auto got = fx.db->ExecuteSql(sql);
          ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
          EXPECT_EQ(got.ValueOrDie().ToString(100000),
                    want.ValueOrDie().ToString(100000))
              << sql << " (index=" << use_index << " pool=" << use_pool
              << ")";
        }
      }
    }
  }
}

TEST(IndexScanDatabaseTest, FingerprintIgnoresAccessPathAndCompaction) {
  IndexDbFixture fx = IndexDbFixture::Make("db_idx_fingerprint");
  const std::string sql = "SELECT key, val FROM t WHERE key = " +
                          std::to_string(fx.present);
  auto plan_indexed = fx.db->TryPlanSelectSql(sql);
  ASSERT_TRUE(plan_indexed.ok());
  ASSERT_NE(plan_indexed.ValueOrDie(), nullptr);
  const uint64_t fp_indexed =
      engine::PlanFingerprint(*plan_indexed.ValueOrDie());

  // Same query with the access-path rule off: physically different plan
  // (Scan vs IndexScan), same fingerprint — flips between the two paths
  // must not shatter the gateway's result cache.
  fx.db->set_index_scan(false);
  auto plan_zoned = fx.db->TryPlanSelectSql(sql);
  ASSERT_TRUE(plan_zoned.ok());
  EXPECT_EQ(engine::PlanFingerprint(*plan_zoned.ValueOrDie()), fp_indexed);
  fx.db->set_index_scan(true);

  // Compaction reshapes segments (and thus probe/prune annotations) but the
  // canonical fingerprint — and the catalog version — stay put.
  const uint64_t version = fx.db->catalog_version();
  ASSERT_TRUE(fx.store->Compact("t").ok());
  EXPECT_EQ(fx.db->catalog_version(), version);
  auto plan_compacted = fx.db->TryPlanSelectSql(sql);
  ASSERT_TRUE(plan_compacted.ok());
  EXPECT_EQ(engine::PlanFingerprint(*plan_compacted.ValueOrDie()),
            fp_indexed);
}

// ---------------------------------------------------------------------------
// Storage counters (the gateway's "# storage" metrics section)
// ---------------------------------------------------------------------------

TEST(StorageCountersTest, CountersTrackFlushScanProbeCompactReplay) {
  const std::string dir = TestDir("counters");
  StorageOptions options;
  options.target_segment_rows = 50;
  {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok());
    const engine::StorageCounters zero = (*store)->Counters();
    EXPECT_EQ(zero.flushes, 0u);
    EXPECT_EQ(zero.wal_replays, 0u);
    ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(0, 250)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_EQ((*store)->Counters().flushes, 1u);
    ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(250, 10)).ok());
    // Unflushed rows stay in the WAL for the reopen below.
  }
  auto opened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(opened.ok());
  StorageEngine* store = opened.ValueOrDie().get();
  EXPECT_GE(store->Counters().wal_replays, 1u);

  // Previews are planning, not execution: they must not move the needle.
  const engine::ExprPtr filter =
      engine::Eq(engine::Col("key"), engine::LitInt(123456));
  auto preview = store->PreviewIndexScan("t", filter.get());
  ASSERT_TRUE(preview.ok()) << preview.status().ToString();
  EXPECT_EQ(preview.ValueOrDie().probes, 5u);
  EXPECT_EQ(store->Counters().index_probes, 0u);
  EXPECT_EQ(store->Counters().segments_scanned, 0u);

  // Executing the index path bumps probes; decoded/skipped segments split
  // between scanned and pruned.
  auto scan = store->IndexScanTable("t", filter.get(), nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  const engine::StorageCounters after = store->Counters();
  EXPECT_EQ(after.index_probes, 5u);
  EXPECT_EQ(after.segments_scanned + after.segments_pruned, 5u);

  ASSERT_TRUE(store->Flush().ok());
  ASSERT_TRUE(store->Compact("t").ok());
  EXPECT_GE(store->Counters().compactions, 1u);
}

// ---------------------------------------------------------------------------
// Manifest back-compat: version-1 directories load and gain indexes
// ---------------------------------------------------------------------------

TEST(ManifestCompatTest, V1ManifestLoadsAndGainsIndexesOnBoot) {
  const std::string dir = TestDir("manifest_v1");
  StorageOptions options;
  options.target_segment_rows = 40;
  std::vector<uint8_t> bytes0;
  {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("t", MakeKeyedTable(0, 120)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->IndexCount("t").ValueOrDie(), 9u);
    bytes0 = TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                            .ValueOrDie());
  }
  // Rewrite the MANIFEST in the PR-7 version-1 layout: no next_index_id,
  // no per-segment group or index list — exactly what a pre-index
  // deployment left behind.
  auto loaded = storage::LoadManifest(dir + "/MANIFEST");
  ASSERT_TRUE(loaded.ok());
  const storage::Manifest& m = loaded.ValueOrDie();
  BufferWriter w;
  w.WriteU32(storage::kManifestMagic);
  w.WriteU8(1);
  w.WriteU64(m.wal_id);
  w.WriteU64(m.next_segment_id);
  engine::PutVarint(&w, m.tables.size());
  for (const storage::ManifestTable& t : m.tables) {
    w.WriteString(t.name);
    engine::PutVarint(&w, t.schema.num_fields());
    for (const engine::Field& f : t.schema.fields()) {
      w.WriteString(f.name);
      w.WriteU8(static_cast<uint8_t>(f.type));
    }
    engine::PutVarint(&w, t.segments.size());
    for (const storage::ManifestSegment& s : t.segments) {
      engine::PutVarint(&w, s.id);
      engine::PutVarint(&w, s.rows);
    }
  }
  w.WriteU32(Crc32(w.bytes()));
  ASSERT_TRUE(storage::WriteFileAtomic(dir + "/MANIFEST", w.bytes()).ok());

  // Open: v1 parses, the now-unreferenced idx files are swept as orphans,
  // and the boot backfill immediately rebuilds every index.
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->IndexCount("t").ValueOrDie(), 9u);
  EXPECT_TRUE((*store)->VerifyIndexes().ok());
  EXPECT_EQ(TableBytes((*store)->ScanTable("t", nullptr, nullptr)
                           .ValueOrDie()),
            bytes0);
}

}  // namespace
}  // namespace mip
