// Disk-backed segment store: segment round-trip byte identity, zone-map
// pruning parity against the in-memory engine, LSM ingest + crash recovery
// (torn WAL tails, orphaned segments), hardened readers over corrupted
// files, EXPLAIN segment accounting, and typed kIOError propagation.

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/parallel.h"
#include "engine/database.h"
#include "engine/encoding.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "net/frame.h"
#include "storage/io.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "storage/store.h"
#include "storage/wal.h"

namespace mip {
namespace {

using engine::Bitmap;
using engine::Column;
using engine::DataType;
using engine::Database;
using engine::Field;
using engine::Schema;
using engine::Table;
using storage::SegmentFooter;
using storage::StorageEngine;
using storage::StorageOptions;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mip_storage_" + name;
  // Fresh directory per test: nuke leftovers from earlier runs.
  if (storage::FileExists(dir)) {
    auto names = storage::ListDir(dir);
    if (names.ok()) {
      for (const std::string& f : names.ValueOrDie()) {
        (void)storage::RemoveFile(dir + "/" + f);
      }
    }
  }
  EXPECT_TRUE(storage::EnsureDir(dir).ok());
  return dir;
}

std::vector<uint8_t> TableBytes(const Table& t) {
  BufferWriter w;
  engine::SerializeTable(t, &w);
  return w.bytes();
}

/// All four types; NULLs, NaN, -0.0, int64 extremes, empty strings. Null
/// slots hold the engine's canonical placeholders (0 / NaN / "") — the
/// invariant every engine path (Concat, Take, AppendRow) maintains.
Table MakeGnarlyTable() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kFloat64},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
  Column ci = Column::FromInts({std::numeric_limits<int64_t>::min(), 0, 0, 7,
                                std::numeric_limits<int64_t>::max(), 42});
  Bitmap vi(6, true);
  vi.Set(1, false);
  EXPECT_TRUE(ci.SetValidity(vi).ok());
  Column cd = Column::FromDoubles({-0.0, nan, 1.5, -1e300, nan, nan});
  Bitmap vd(6, true);
  vd.Set(4, false);
  EXPECT_TRUE(cd.SetValidity(vd).ok());
  Column cb = Column::FromBools({1, 0, 1, 1, 0, 0});
  Bitmap vb(6, true);
  vb.Set(5, false);
  EXPECT_TRUE(cb.SetValidity(vb).ok());
  Column cs = Column::FromStrings({"", "alpha", "", "zeta", "alpha", "m"});
  Bitmap vs(6, true);
  vs.Set(0, false);
  EXPECT_TRUE(cs.SetValidity(vs).ok());
  auto t = Table::Make(schema, {ci, cd, cb, cs});
  EXPECT_TRUE(t.ok());
  return t.ValueOrDie();
}

/// Larger typed table for codec + multi-segment coverage: `id` ascending
/// (so segments have disjoint id ranges), `val` noisy doubles with NaNs,
/// `cat` low-cardinality strings, `flag` bools.
Table MakeEventsTable(int64_t start, int64_t count) {
  std::vector<int64_t> ids;
  std::vector<double> vals;
  std::vector<std::string> cats;
  std::vector<uint8_t> flags;
  for (int64_t i = start; i < start + count; ++i) {
    ids.push_back(i);
    if (i % 97 == 3) {
      vals.push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (i % 101 == 5) {
      vals.push_back(-0.0);
    } else {
      vals.push_back(static_cast<double>((i * 37) % 1000) / 8.0 - 40.0);
    }
    cats.push_back("cat_" + std::to_string(i / 100));
    flags.push_back(static_cast<uint8_t>(i % 3 == 0));
  }
  Schema schema({{"id", DataType::kInt64},
                 {"val", DataType::kFloat64},
                 {"cat", DataType::kString},
                 {"flag", DataType::kBool}});
  Bitmap v(static_cast<size_t>(count), true);
  for (int64_t i = 0; i < count; ++i) {
    if ((start + i) % 113 == 7) {
      v.Set(static_cast<size_t>(i), false);
      // Canonical null placeholder, as every engine path maintains.
      vals[static_cast<size_t>(i)] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  Column cv = Column::FromDoubles(vals);
  EXPECT_TRUE(cv.SetValidity(v).ok());
  auto t = Table::Make(schema, {Column::FromInts(ids), cv,
                                Column::FromStrings(cats),
                                Column::FromBools(flags)});
  EXPECT_TRUE(t.ok());
  return t.ValueOrDie();
}

std::string ExplainText(Database* db, const std::string& sql) {
  auto r = db->ExecuteSql("EXPLAIN " + sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::string out;
  const Table& t = r.ValueOrDie();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    out += t.At(i, 0).string_value();
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Segment format
// ---------------------------------------------------------------------------

TEST(SegmentTest, RoundTripByteIdenticalAllTypes) {
  const std::string dir = TestDir("seg_roundtrip");
  const Table original = MakeGnarlyTable();
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", original);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer.ValueOrDie().num_rows, 6u);

  auto read = storage::ReadSegment(dir + "/seg-0.mip");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // Byte identity through the v2 wire serializer: same schema, same values,
  // same validity, same NaN payload bits and -0.0 signs.
  EXPECT_EQ(TableBytes(original), TableBytes(read.ValueOrDie()));
}

TEST(SegmentTest, RoundTripLargeTableThroughCodecs) {
  const std::string dir = TestDir("seg_large");
  const Table original = MakeEventsTable(0, 8000);
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", original);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  auto read = storage::ReadSegment(dir + "/seg-0.mip");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(TableBytes(original), TableBytes(read.ValueOrDie()));
}

TEST(SegmentTest, ZoneMapsTrackRangesNullsAndNan) {
  const std::string dir = TestDir("seg_zones");
  const Table t = MakeGnarlyTable();
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", t);
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();
  ASSERT_EQ(f.columns.size(), 4u);

  const storage::ZoneMap& zi = f.columns[0].zone;
  EXPECT_EQ(zi.null_count, 1u);
  EXPECT_TRUE(zi.has_range);
  EXPECT_EQ(zi.min_i, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(zi.max_i, std::numeric_limits<int64_t>::max());

  const storage::ZoneMap& zd = f.columns[1].zone;
  EXPECT_EQ(zd.null_count, 1u);
  EXPECT_TRUE(zd.has_nan);   // row 1 (valid NaN) and row 5
  EXPECT_TRUE(zd.has_range);  // non-NaN values exist
  EXPECT_EQ(zd.min_d, -1e300);
  EXPECT_EQ(zd.max_d, 1.5);

  const storage::ZoneMap& zs = f.columns[3].zone;
  EXPECT_EQ(zs.null_count, 1u);
  EXPECT_EQ(zs.min_s, "");
  EXPECT_EQ(zs.max_s, "zeta");
}

TEST(SegmentTest, AllNullAndAllNanColumns) {
  const std::string dir = TestDir("seg_allnull");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({{"n", DataType::kFloat64}, {"x", DataType::kFloat64}});
  Column cn = Column::FromDoubles({0.0, 0.0});
  Bitmap v(2, false);
  ASSERT_TRUE(cn.SetValidity(v).ok());
  Column cx = Column::FromDoubles({nan, nan});
  auto t = Table::Make(schema, {cn, cx});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/seg-0.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();
  EXPECT_EQ(f.columns[0].zone.null_count, 2u);
  EXPECT_FALSE(f.columns[0].zone.has_range);
  EXPECT_FALSE(f.columns[1].zone.has_range);  // NaN-only: no numeric range...
  EXPECT_TRUE(f.columns[1].zone.has_nan);     // ...but NaN presence recorded
}

TEST(SegmentTest, EveryFlippedByteIsRejected) {
  const std::string dir = TestDir("seg_flip");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteSegment(path, MakeGnarlyTable()).ok());
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();
  // Every byte of the file sits under a magic, a version check, or a CRC:
  // no single-byte corruption may survive a full read.
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0xFF;
    ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
    auto read = storage::ReadSegment(path);
    EXPECT_FALSE(read.ok()) << "flipped byte " << i << " went undetected";
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kIOError)
          << read.status().ToString();
    }
  }
}

TEST(SegmentTest, EveryTruncationIsRejected) {
  const std::string dir = TestDir("seg_trunc");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteSegment(path, MakeGnarlyTable()).ok());
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> bad(good.begin(), good.begin() + len);
    ASSERT_TRUE(storage::WriteFileAtomic(path, bad).ok());
    auto read = storage::ReadSegment(path);
    EXPECT_FALSE(read.ok()) << "truncation to " << len << " went undetected";
  }
}

TEST(SegmentTest, HostileCountsRejectedBeforeAllocation) {
  const std::string dir = TestDir("seg_hostile");
  // Hand-built file whose (CRC-valid) footer claims a row count beyond the
  // wire cap: the reader must fail on the cap check, not trust the count.
  BufferWriter footer;
  engine::PutVarint(&footer, engine::kMaxWireElements + 1);  // num_rows
  engine::PutVarint(&footer, 0);                             // num_cols
  BufferWriter file;
  file.WriteU32(storage::kSegmentMagic);
  file.WriteU8(storage::kSegmentVersion);
  file.AppendRaw(footer.bytes().data(), footer.bytes().size());
  file.WriteU32(static_cast<uint32_t>(footer.bytes().size()));
  file.WriteU32(Crc32(footer.bytes()));
  file.WriteU32(storage::kSegmentFooterMagic);
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteFileAtomic(path, file.bytes()).ok());
  auto read = storage::ReadSegmentFooter(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().message().find("cap"), std::string::npos)
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// Zone-map feasibility (engine comparison semantics)
// ---------------------------------------------------------------------------

storage::PruneConjunct Conj(const std::string& col, engine::BinaryOp op,
                            engine::Value lit) {
  storage::PruneConjunct c;
  c.column = col;
  c.op = op;
  c.literal = lit;
  return c;
}

TEST(SegmentPruneTest, NanRowsBlockEqLikePruningButNotLtGt) {
  const std::string dir = TestDir("prune_nan");
  // Segment: val in [10, 20] plus one NaN row.
  Schema schema({{"val", DataType::kFloat64}});
  auto t = Table::Make(
      schema, {Column::FromDoubles(
                  {10.0, 15.0, 20.0,
                   std::numeric_limits<double>::quiet_NaN()})});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/s.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();

  using engine::BinaryOp;
  using engine::Value;
  // The engine's comparison kernels yield cmp==0 for a NaN operand, so the
  // NaN row satisfies =, <=, >= against ANY literal: those ops must never
  // prune a NaN-bearing segment, even far outside [10, 20].
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kEq,
                                               Value::Double(999.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLe,
                                               Value::Double(-999.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kGe,
                                               Value::Double(999.0))}));
  // < and > are genuinely unsatisfiable by NaN rows, so the range decides.
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLt,
                                                Value::Double(10.0))}));
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kGt,
                                                Value::Double(20.0))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("val", BinaryOp::kLt,
                                               Value::Double(10.5))}));
}

TEST(SegmentPruneTest, CleanRangesPruneAndAllNullPrunesEverything) {
  const std::string dir = TestDir("prune_range");
  Schema schema({{"id", DataType::kInt64}, {"n", DataType::kFloat64}});
  Column cn = Column::FromDoubles({0.0, 0.0, 0.0});
  Bitmap v(3, false);
  ASSERT_TRUE(cn.SetValidity(v).ok());
  auto t = Table::Make(schema, {Column::FromInts({100, 150, 200}), cn});
  ASSERT_TRUE(t.ok());
  auto footer = storage::WriteSegment(dir + "/s.mip", t.ValueOrDie());
  ASSERT_TRUE(footer.ok());
  const SegmentFooter& f = footer.ValueOrDie();

  using engine::BinaryOp;
  using engine::Value;
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kEq,
                                                 Value::Int(99))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kEq,
                                                Value::Int(100))}));
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kGt,
                                                 Value::Int(200))}));
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("id", BinaryOp::kGe,
                                                Value::Int(200))}));
  // All-null column: no comparison ever matches NULL.
  EXPECT_FALSE(storage::SegmentCanMatch(f, {Conj("n", BinaryOp::kEq,
                                                 Value::Double(0.0))}));
  // Unknown column: ignored, stays scannable.
  EXPECT_TRUE(storage::SegmentCanMatch(f, {Conj("ghost", BinaryOp::kEq,
                                                Value::Int(1))}));
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, TornTailTruncatesToCommittedPrefix) {
  const std::string dir = TestDir("wal_torn");
  const std::string path = dir + "/wal-0.log";
  const Table batch = MakeGnarlyTable();
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", batch).ok());
  auto size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());

  // Tear the last record mid-payload: replay keeps exactly two.
  ASSERT_TRUE(storage::TruncateFile(path, size.ValueOrDie() - 5).ok());
  auto replay = storage::ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.ValueOrDie().torn);
  ASSERT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(TableBytes(replay.ValueOrDie().records[1].rows),
            TableBytes(batch));
}

TEST(WalTest, GarbageTailIsTornNotFatal) {
  const std::string dir = TestDir("wal_garbage");
  const std::string path = dir + "/wal-0.log";
  ASSERT_TRUE(storage::AppendWalRecord(path, "t", MakeGnarlyTable()).ok());
  auto size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(storage::AppendFileSync(path, {0xDE, 0xAD, 0xBE, 0xEF, 0x01,
                                             0x02, 0x03, 0x04, 0x05}).ok());
  auto replay = storage::ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().torn);
  EXPECT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().valid_bytes, size.ValueOrDie());
}

TEST(WalTest, MissingFileIsEmptyReplay) {
  auto replay = storage::ReplayWal(TestDir("wal_missing") + "/wal-0.log");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().records.empty());
  EXPECT_FALSE(replay.ValueOrDie().torn);
}

// ---------------------------------------------------------------------------
// StorageEngine: ingest, flush, recovery
// ---------------------------------------------------------------------------

TEST(StoreTest, AppendScanSurvivesReopenViaWal) {
  const std::string dir = TestDir("store_wal_reopen");
  const Table batch = MakeEventsTable(0, 500);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->AppendRows("events", batch).ok());
    // Destructor deliberately does NOT flush: durability must come from
    // the WAL alone.
  }
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->SegmentCount("events").ValueOrDie(), 0u);
  ASSERT_EQ((*store)->MemtableRows("events").ValueOrDie(), 500u);
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(batch));
}

TEST(StoreTest, FlushSplitsIntoSegmentsScanOrderPreserved) {
  const std::string dir = TestDir("store_flush");
  StorageOptions options;
  options.target_segment_rows = 100;
  const Table all = MakeEventsTable(0, 450);
  {
    auto store = StorageEngine::Open(dir, options);
    ASSERT_TRUE(store.ok());
    // Two appends, one flush: 450 rows -> 5 segments (4x100 + 50).
    ASSERT_TRUE((*store)->AppendRows("events", all.Slice(0, 300)).ok());
    ASSERT_TRUE((*store)->AppendRows("events", all.Slice(300, 150)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->SegmentCount("events").ValueOrDie(), 5u);
    ASSERT_EQ((*store)->MemtableRows("events").ValueOrDie(), 0u);
    auto scan = (*store)->ScanTable("events", nullptr, nullptr);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
  }
  // Reopen: committed segments reload from the manifest, WAL is gone.
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
}

TEST(StoreTest, MemtableBudgetTriggersAutoFlush) {
  const std::string dir = TestDir("store_autoflush");
  StorageOptions options;
  options.memtable_budget_bytes = 1024;  // tiny: every append flushes
  options.target_segment_rows = 1000;
  auto store = StorageEngine::Open(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 200)).ok());
  EXPECT_GE((*store)->SegmentCount("events").ValueOrDie(), 1u);
  EXPECT_EQ((*store)->MemtableRows("events").ValueOrDie(), 0u);
}

TEST(StoreTest, CrashRecoveryTornWalKeepsCommittedDropsUncommitted) {
  const std::string dir = TestDir("store_crash_torn");
  const Table committed = MakeEventsTable(0, 120);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", committed).ok());
  }
  // Simulate a crash mid-append: a torn half-record at the WAL tail.
  ASSERT_TRUE(storage::AppendFileSync(dir + "/wal-0.log",
                                      {0x40, 0x00, 0x00, 0x00, 0x99, 0x99,
                                       0x12, 0x34, 0x56}).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  // Committed rows intact, torn suffix absent — and the tail was truncated,
  // so the next append extends a clean log.
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(committed));
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(120, 30)).ok());
  EXPECT_EQ((*store)->ScanTable("events", nullptr, nullptr)
                .ValueOrDie()
                .num_rows(),
            150u);
}

TEST(StoreTest, CrashRecoverySweepsOrphanSegmentsAndStaleWals) {
  const std::string dir = TestDir("store_crash_orphan");
  const Table all = MakeEventsTable(0, 100);
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", all).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // A flush that died after writing segments but before committing its
  // manifest leaves: an orphan segment, a stale previous-epoch WAL, and a
  // tmp file. Recovery must delete all three and keep the data intact.
  ASSERT_TRUE(storage::WriteFileAtomic(dir + "/seg-999.mip",
                                       {1, 2, 3, 4, 5}).ok());
  ASSERT_TRUE(storage::AppendFileSync(dir + "/wal-0.log", {9, 9, 9}).ok());
  ASSERT_TRUE(storage::AppendFileSync(dir + "/seg-7.mip.tmp", {1}).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(storage::FileExists(dir + "/seg-999.mip"));
  EXPECT_FALSE(storage::FileExists(dir + "/wal-0.log"));
  EXPECT_FALSE(storage::FileExists(dir + "/seg-7.mip.tmp"));
  auto scan = (*store)->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(TableBytes(scan.ValueOrDie()), TableBytes(all));
}

TEST(StoreTest, CorruptCommittedSegmentIsTypedIOError) {
  const std::string dir = TestDir("store_corrupt_seg");
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 50)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto names = storage::ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string seg;
  for (const std::string& n : names.ValueOrDie()) {
    if (n.rfind("seg-", 0) == 0) seg = dir + "/" + n;
  }
  ASSERT_FALSE(seg.empty());
  auto bytes = storage::ReadFileBytes(seg);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> good = bytes.ValueOrDie();

  // A flipped byte inside a column block: recovery only validates footers
  // (it never reads data blocks), so Open succeeds — but the scan hits the
  // column CRC and fails with a typed kIOError instead of decoding garbage.
  {
    std::vector<uint8_t> bad = good;
    bad[storage::kSegmentHeaderBytes + 2] ^= 0x01;
    ASSERT_TRUE(storage::WriteFileAtomic(seg, bad).ok());
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto scan = (*store)->ScanTable("events", nullptr, nullptr);
    ASSERT_FALSE(scan.ok());
    EXPECT_EQ(scan.status().code(), StatusCode::kIOError)
        << scan.status().ToString();
  }

  // A flipped byte in the footer region is caught already at Open.
  {
    std::vector<uint8_t> bad = good;
    bad[bad.size() - 6] ^= 0x01;  // inside the trailer
    ASSERT_TRUE(storage::WriteFileAtomic(seg, bad).ok());
    auto store = StorageEngine::Open(dir);
    ASSERT_FALSE(store.ok());
    EXPECT_EQ(store.status().code(), StatusCode::kIOError)
        << store.status().ToString();
  }
}

TEST(StoreTest, CorruptManifestFailsOpenWithIOError) {
  const std::string dir = TestDir("store_corrupt_manifest");
  {
    auto store = StorageEngine::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 10)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto bytes = storage::ReadFileBytes(dir + "/MANIFEST");
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> bad = bytes.ValueOrDie();
  bad[bad.size() / 2] ^= 0xFF;
  ASSERT_TRUE(storage::WriteFileAtomic(dir + "/MANIFEST", bad).ok());
  auto store = StorageEngine::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

TEST(StoreTest, SchemaMismatchRejectedBeforeWal) {
  const std::string dir = TestDir("store_schema");
  auto store = StorageEngine::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRows("events", MakeEventsTable(0, 5)).ok());
  Schema other({{"x", DataType::kFloat64}});
  auto t = Table::Make(other, {Column::FromDoubles({1.0})});
  ASSERT_TRUE(t.ok());
  auto st = (*store)->AppendRows("events", t.ValueOrDie());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  // The rejected batch never reached the WAL: reopen replays cleanly.
  auto reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->MemtableRows("events").ValueOrDie(), 5u);
}

// ---------------------------------------------------------------------------
// Database integration: catalog, EXPLAIN, pruning parity
// ---------------------------------------------------------------------------

struct DiskDbFixture {
  std::unique_ptr<StorageEngine> store;
  std::unique_ptr<Database> db;

  /// events table: 800 rows across 8 id-disjoint segments.
  static DiskDbFixture Make(const std::string& name) {
    DiskDbFixture fx;
    const std::string dir = TestDir(name);
    StorageOptions options;
    options.target_segment_rows = 100;
    auto store = StorageEngine::Open(dir, options);
    EXPECT_TRUE(store.ok());
    fx.store = std::move(store.ValueOrDie());
    EXPECT_TRUE(fx.store->AppendRows("events", MakeEventsTable(0, 800)).ok());
    EXPECT_TRUE(fx.store->Flush().ok());
    fx.db = std::make_unique<Database>("disknode");
    EXPECT_TRUE(fx.db->AttachStorage(fx.store.get()).ok());
    return fx;
  }
};

TEST(DiskDatabaseTest, CatalogSeesDiskTable) {
  DiskDbFixture fx = DiskDbFixture::Make("db_catalog");
  EXPECT_TRUE(fx.db->HasTable("events"));
  auto schema = fx.db->GetSchema("events");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.ValueOrDie().num_fields(), 4u);
  auto t = fx.db->GetTable("events");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.ValueOrDie().num_rows(), 800u);
  // Disk tables cannot be dropped from SQL — the store owns their life.
  EXPECT_FALSE(fx.db->DropTable("events").ok());
}

TEST(DiskDatabaseTest, ExplainShowsPrunedSegments) {
  DiskDbFixture fx = DiskDbFixture::Make("db_explain");
  const std::string plan =
      ExplainText(fx.db.get(), "SELECT id FROM events WHERE id < 150");
  // 800 rows / 100-row segments, ids ascending: id < 150 touches segments
  // 0-1 and prunes the other six.
  EXPECT_NE(plan.find("disk"), std::string::npos) << plan;
  EXPECT_NE(plan.find("prune="), std::string::npos) << plan;
  EXPECT_NE(plan.find("segments: scanned=2 pruned=6 total=8"),
            std::string::npos)
      << plan;
}

TEST(DiskDatabaseTest, PruningNeverChangesResults) {
  DiskDbFixture fx = DiskDbFixture::Make("db_parity");
  // Reference: the same rows as a plain in-memory base table.
  Database mem("memnode");
  auto full = fx.store->ScanTable("events", nullptr, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(mem.PutTable("events", full.ValueOrDie()).ok());

  // Predicate corpus: every comparison op crossed with literals below, at,
  // inside and above each column's range — plus AND/OR combinations, NULL
  // probes and aggregates. Results must match the memory engine row for
  // row whether pruning fires or not.
  std::vector<std::string> predicates;
  for (const std::string op : {"=", "<", "<=", ">", ">="}) {
    for (const std::string lit :
         {"-5", "0", "17", "399", "400", "799", "1000"}) {
      predicates.push_back("id " + op + " " + lit);
    }
    for (const std::string lit : {"-41.0", "-0.0", "0.0", "12.5", "85.0"}) {
      predicates.push_back("val " + op + " " + lit);
    }
    for (const std::string lit : {"'a'", "'cat_3'", "'zzz'"}) {
      predicates.push_back("cat " + op + " " + lit);
    }
    predicates.push_back("flag " + op + " 1");
  }
  predicates.push_back("id < 100 AND val >= 0.0");
  predicates.push_back("id >= 700 AND cat = 'cat_7'");
  predicates.push_back("id < 50 OR id > 750");
  predicates.push_back("val IS NULL");
  predicates.push_back("val IS NOT NULL AND id <= 10");

  ThreadPool pool(8);
  engine::ExecContext parallel{&pool, 64};  // tiny morsels: force fan-out
  for (const std::string& pred : predicates) {
    for (const std::string sql :
         {"SELECT id, val, cat, flag FROM events WHERE " + pred,
          "SELECT count(*) AS n, sum(val) AS s FROM events WHERE " + pred}) {
      auto want = mem.ExecuteSql(sql);
      ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
      for (const bool use_pool : {false, true}) {
        fx.db->set_exec_context(use_pool ? &parallel
                                         : &engine::ExecContext::Serial());
        auto got = fx.db->ExecuteSql(sql);
        ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
        EXPECT_EQ(got.ValueOrDie().ToString(100000),
                  want.ValueOrDie().ToString(100000))
            << sql << " (pool=" << use_pool << ")";
      }
    }
  }

  // Same corpus with the optimizer off: no prune hints at all, same rows.
  fx.db->set_exec_context(nullptr);
  fx.db->set_optimizer_enabled(false);
  for (const std::string& pred : predicates) {
    const std::string sql = "SELECT id FROM events WHERE " + pred;
    auto want = mem.ExecuteSql(sql);
    auto got = fx.db->ExecuteSql(sql);
    ASSERT_TRUE(want.ok() && got.ok()) << sql;
    EXPECT_EQ(got.ValueOrDie().ToString(100000),
              want.ValueOrDie().ToString(100000))
        << sql;
  }
}

TEST(DiskDatabaseTest, MemtableRowsAreNeverPruned) {
  DiskDbFixture fx = DiskDbFixture::Make("db_memtable");
  // Rows beyond every segment's zone range, sitting only in the memtable.
  ASSERT_TRUE(fx.db->IngestDisk("events", MakeEventsTable(5000, 10)).ok());
  auto r = fx.db->ExecuteSql(
      "SELECT count(*) AS n FROM events WHERE id >= 5000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().At(0, 0).int_value(), 10);
}

TEST(DiskDatabaseTest, IngestAndInsertBumpCatalogVersion) {
  DiskDbFixture fx = DiskDbFixture::Make("db_version");
  const uint64_t v0 = fx.db->catalog_version();
  ASSERT_TRUE(fx.db->IngestDisk("events", MakeEventsTable(800, 5)).ok());
  const uint64_t v1 = fx.db->catalog_version();
  EXPECT_GT(v1, v0);
  // SQL INSERT into a disk table routes through the store (WAL'd, durable)
  // and bumps the version again.
  auto st = fx.db->ExecuteSql(
      "INSERT INTO events VALUES (9000, 1.0, 'cat_x', 1)");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_GT(fx.db->catalog_version(), v1);
  auto n = fx.db->ExecuteSql(
      "SELECT count(*) AS n FROM events WHERE id = 9000");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.ValueOrDie().At(0, 0).int_value(), 1);
}

TEST(DiskDatabaseTest, ScanWithoutAttachedStorageFailsCleanly) {
  // A plan that names a disk table executed on a database whose storage
  // was never attached must produce a typed error, not a crash.
  Database db("nostorage");
  auto r = db.ExecuteSql("SELECT * FROM ghost_disk");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Typed error propagation (satellite: storage errors over the wire)
// ---------------------------------------------------------------------------

TEST(StorageErrorTest, IOErrorCodeSurvivesReplyFrame) {
  const std::string dir = TestDir("err_frame");
  const std::string path = dir + "/seg-0.mip";
  ASSERT_TRUE(storage::WriteFileAtomic(path, {1, 2, 3}).ok());
  auto read = storage::ReadSegment(path);
  ASSERT_FALSE(read.ok());
  ASSERT_EQ(read.status().code(), StatusCode::kIOError);

  // Round-trip the failure through the reply frame, as a worker would when
  // a fetch_table hits a bad disk: the typed code must survive so callers
  // can tell storage faults from planner errors.
  const std::vector<uint8_t> payload =
      net::EncodeReplyPayload(read.status(), {});
  auto decoded = net::DecodeReplyPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
  EXPECT_EQ(decoded.status().message(), read.status().message());
}

TEST(StorageErrorTest, MissingDataDirIsIOError) {
  auto footer = storage::ReadSegmentFooter("/nonexistent/nope.mip");
  ASSERT_FALSE(footer.ok());
  EXPECT_EQ(footer.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mip
