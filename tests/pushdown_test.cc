// Merge-table aggregate pushdown: correctness (pushdown == pull for every
// decomposable aggregate, grouped and ungrouped) and the traffic win over
// remote links.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "engine/database.h"
#include "federation/master.h"

namespace mip::engine {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mip::Rng rng(77);
    for (const char* part : {"p1", "p2", "p3"}) {
      ASSERT_TRUE(db_.ExecuteSql(std::string("CREATE TABLE ") + part +
                                 " (g varchar, x double, k bigint)")
                      .ok());
      for (int i = 0; i < 50; ++i) {
        const char* g = i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c");
        char sql[128];
        std::snprintf(sql, sizeof(sql),
                      "INSERT INTO %s VALUES ('%s', %.6f, %d)", part, g,
                      rng.NextGaussian(), i % 7);
        ASSERT_TRUE(db_.ExecuteSql(sql).ok());
      }
    }
    ASSERT_TRUE(db_.ExecuteSql("CREATE MERGE TABLE m (p1, p2, p3)").ok());
  }

  // Runs the query with pushdown on and off and asserts identical results.
  void ExpectSame(const std::string& sql) {
    db_.set_aggregate_pushdown(true);
    Result<Table> pushed = db_.ExecuteSql(sql);
    ASSERT_TRUE(pushed.ok()) << sql << ": " << pushed.status().ToString();
    db_.set_aggregate_pushdown(false);
    Result<Table> pulled = db_.ExecuteSql(sql);
    ASSERT_TRUE(pulled.ok()) << sql;
    db_.set_aggregate_pushdown(true);

    const Table& a = pushed.ValueOrDie();
    const Table& b = pulled.ValueOrDie();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << sql;
    ASSERT_EQ(a.num_columns(), b.num_columns()) << sql;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      for (size_t c = 0; c < a.num_columns(); ++c) {
        const Value va = a.At(r, c);
        const Value vb = b.At(r, c);
        if (va.is_null() || vb.is_null()) {
          EXPECT_EQ(va.is_null(), vb.is_null()) << sql << " @" << r << "," << c;
          continue;
        }
        if (va.kind() == Value::Kind::kString) {
          EXPECT_EQ(va.string_value(), vb.string_value()) << sql;
        } else {
          EXPECT_NEAR(va.AsDouble(), vb.AsDouble(),
                      1e-9 * (1.0 + std::fabs(vb.AsDouble())))
              << sql << " @" << r << "," << c;
        }
      }
    }
  }

  Database db_{"pushdown"};
};

TEST_F(PushdownTest, UngroupedAggregates) {
  ExpectSame("SELECT count(*) AS n, sum(x) AS s, min(x) AS lo, "
             "max(x) AS hi FROM m");
  ExpectSame("SELECT avg(x) AS mean FROM m");
  ExpectSame("SELECT var_samp(x) AS v, stddev(x) AS sd FROM m");
  ExpectSame("SELECT count(x) AS n FROM m WHERE x > 0");
}

TEST_F(PushdownTest, GroupedAggregates) {
  ExpectSame("SELECT g, count(*) AS n, avg(x) AS mean FROM m GROUP BY g "
             "ORDER BY g");
  ExpectSame("SELECT k, sum(x) AS s, stddev(x) AS sd FROM m GROUP BY k "
             "ORDER BY k");
  ExpectSame("SELECT g, min(x) AS lo, max(x) AS hi FROM m "
             "WHERE k < 5 GROUP BY g ORDER BY g");
}

TEST_F(PushdownTest, HavingAndArithmeticOverAggregates) {
  ExpectSame("SELECT g, count(*) AS n FROM m GROUP BY g "
             "HAVING count(*) > 10 ORDER BY g");
  ExpectSame("SELECT g, sum(x) / count(x) AS manual_avg, avg(x) AS direct "
             "FROM m GROUP BY g ORDER BY g");
}

TEST_F(PushdownTest, CountDistinctFallsBackCorrectly) {
  // Not decomposable: must fall back to materialization and still be right.
  ExpectSame("SELECT count(distinct g) AS kinds FROM m");
  ExpectSame("SELECT g, count(distinct k) AS kk FROM m GROUP BY g "
             "ORDER BY g");
}

TEST_F(PushdownTest, NonMergeSourcesUnaffected) {
  ExpectSame("SELECT count(*) AS n, avg(x) AS mean FROM p1");
}


TEST_F(PushdownTest, ExpressionGroupKeysPushDown) {
  // GROUP BY on a computed expression must round-trip through the
  // generated partial-aggregate SQL.
  ExpectSame("SELECT k % 2, count(*) AS n, avg(x) AS m FROM m "
             "GROUP BY k % 2");
  ExpectSame("SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END, "
             "count(*) AS n FROM m "
             "GROUP BY CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END");
}

TEST_F(PushdownTest, NestedMergeTables) {
  // A merge of merges: pushdown recurses through the inner view.
  ASSERT_TRUE(db_.ExecuteSql("CREATE MERGE TABLE m12 (p1, p2)").ok());
  ASSERT_TRUE(db_.ExecuteSql("CREATE MERGE TABLE outer_m (m12, p3)").ok());
  db_.set_aggregate_pushdown(true);
  Table nested = *db_.ExecuteSql("SELECT count(*) AS n, sum(x) AS s "
                                 "FROM outer_m");
  Table direct = *db_.ExecuteSql("SELECT count(*) AS n, sum(x) AS s FROM m");
  EXPECT_EQ(nested.At(0, 0).int_value(), direct.At(0, 0).int_value());
  EXPECT_NEAR(nested.At(0, 1).AsDouble(), direct.At(0, 1).AsDouble(), 1e-9);
}

TEST(PushdownFederationTest, FallsBackWithoutQueryRunner) {
  // Remote parts but no remote query runner: pushdown computes partials by
  // fetching (correct, just not traffic-optimal).
  engine::Database local("master_like");
  engine::Database remote("worker_like");
  ASSERT_TRUE(remote.ExecuteSql("CREATE TABLE d (x double)").ok());
  ASSERT_TRUE(remote.ExecuteSql("INSERT INTO d VALUES (1), (2), (3)").ok());
  local.SetRemoteFetcher(
      [&remote](const std::string&, const std::string& name) {
        return remote.GetTable(name);
      });
  ASSERT_TRUE(
      local.ExecuteSql("CREATE REMOTE TABLE rd ON 'w' AS d").ok());
  ASSERT_TRUE(local.ExecuteSql("CREATE MERGE TABLE mv (rd)").ok());
  Table out = *local.ExecuteSql("SELECT sum(x) AS s FROM mv");
  EXPECT_NEAR(out.At(0, 0).AsDouble(), 6.0, 1e-12);
}

TEST(PushdownFederationTest, PushdownShrinksBusTraffic) {
  federation::MasterNode master;
  mip::Rng rng(99);
  for (const std::string id : {"w1", "w2"}) {
    ASSERT_TRUE(master.AddWorker(id).ok());
    Schema schema;
    ASSERT_TRUE(schema.AddField({"x", DataType::kFloat64}).ok());
    Table t = Table::Empty(schema);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(t.AppendRow({Value::Double(rng.NextGaussian())}).ok());
    }
    ASSERT_TRUE(master.LoadDataset(id, "d", std::move(t)).ok());
  }
  std::string view = *master.CreateFederatedView("d");
  const std::string sql =
      "SELECT count(*) AS n, sum(x) AS s FROM " + view;

  master.local_db().set_aggregate_pushdown(false);
  master.bus().ResetStats();
  Table pulled = *master.local_db().ExecuteSql(sql);
  const uint64_t pull_bytes = master.bus().stats().bytes;

  master.local_db().set_aggregate_pushdown(true);
  master.bus().ResetStats();
  Table pushed = *master.local_db().ExecuteSql(sql);
  const uint64_t push_bytes = master.bus().stats().bytes;

  EXPECT_EQ(pulled.At(0, 0).int_value(), 10000);
  EXPECT_EQ(pushed.At(0, 0).int_value(), 10000);
  EXPECT_NEAR(pulled.At(0, 1).AsDouble(), pushed.At(0, 1).AsDouble(), 1e-9);
  // The partial aggregate is tiny; the pulled relations are ~80 kB.
  EXPECT_GT(pull_bytes, 50u * push_bytes);
}

}  // namespace
}  // namespace mip::engine
