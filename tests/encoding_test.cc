// Round-trip property tests and mutation fuzz for the columnar wire codecs
// (engine/encoding.h) and the v2 table / transfer containers built on them.
//
// The contracts under test:
//   * every Encode/Decode pair is lossless, bit-exact for doubles;
//   * the encoder's measured-candidate selection never loses to raw by more
//     than the block header;
//   * the v2 containers are only committed when smaller than v1, so
//     serialized size never exceeds the raw (v1) size;
//   * every decoder survives truncation and corruption with a clean Status
//     (run under ASan/UBSan in CI).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "engine/encoding.h"
#include "engine/table.h"
#include "federation/transfer.h"
#include "stats/matrix.h"

namespace mip {
namespace {

using engine::Bitmap;
using engine::Codec;
using engine::DataType;
using engine::Schema;
using engine::Table;
using engine::Value;
using federation::TransferData;

// --------------------------------------------------------------------------
// Varint / zigzag primitives.

TEST(VarintTest, RoundTripsExtremes) {
  const uint64_t cases[] = {0ull,
                            1ull,
                            127ull,
                            128ull,
                            16383ull,
                            16384ull,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    BufferWriter w;
    engine::PutVarint(&w, v);
    EXPECT_EQ(w.size(), engine::VarintSize(v));
    BufferReader r(w.bytes().data(), w.size());
    auto got = engine::GetVarint(&r);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.ValueOrDie(), v);
    EXPECT_EQ(r.Remaining(), 0u);
  }
}

TEST(VarintTest, RejectsOverlongEncodings) {
  // Eleven continuation bytes can never be a valid u64 varint.
  std::vector<uint8_t> overlong(11, 0x80);
  BufferReader r(overlong.data(), overlong.size());
  EXPECT_FALSE(engine::GetVarint(&r).ok());

  // Ten bytes whose final byte carries more than the single remaining bit.
  std::vector<uint8_t> overflow(10, 0xFF);
  overflow[9] = 0x7F;
  BufferReader r2(overflow.data(), overflow.size());
  EXPECT_FALSE(engine::GetVarint(&r2).ok());
}

TEST(ZigZagTest, RoundTripsExtremes) {
  const int64_t cases[] = {0,
                           1,
                           -1,
                           63,
                           -64,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    EXPECT_EQ(engine::ZigZagDecode(engine::ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes of either sign map to small codes.
  EXPECT_EQ(engine::ZigZagEncode(0), 0ull);
  EXPECT_EQ(engine::ZigZagEncode(-1), 1ull);
  EXPECT_EQ(engine::ZigZagEncode(1), 2ull);
}

// --------------------------------------------------------------------------
// Per-codec round trips.

std::vector<int64_t> RoundTripInts(const std::vector<int64_t>& in,
                                   Codec* chosen = nullptr) {
  BufferWriter w;
  Codec c = engine::EncodeInts(in, &w);
  if (chosen != nullptr) *chosen = c;
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeInts(&r);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(r.Remaining(), 0u);
  return std::move(out).MoveValueUnsafe();
}

TEST(IntCodecTest, EmptyColumn) {
  EXPECT_TRUE(RoundTripInts({}).empty());
}

TEST(IntCodecTest, SequentialIntsChooseDelta) {
  std::vector<int64_t> in;
  for (int64_t i = 0; i < 4096; ++i) in.push_back(1000000 + i);
  Codec chosen = Codec::kRaw;
  EXPECT_EQ(RoundTripInts(in, &chosen), in);
  EXPECT_EQ(chosen, Codec::kDeltaVarint);
}

TEST(IntCodecTest, NegativeDeltasRoundTrip) {
  // Descending and sign-alternating sequences exercise the zigzag mapping.
  std::vector<int64_t> in;
  for (int64_t i = 0; i < 1000; ++i) {
    in.push_back((i % 2 == 0 ? 1 : -1) * (5000 - i));
  }
  EXPECT_EQ(RoundTripInts(in), in);
}

TEST(IntCodecTest, ExtremeValuesSurviveDeltaWraparound) {
  // INT64_MIN -> INT64_MAX deltas overflow int64 arithmetic; the encoder
  // must use wraparound u64 deltas (UBSan would flag signed overflow).
  const std::vector<int64_t> in = {std::numeric_limits<int64_t>::min(),
                                   std::numeric_limits<int64_t>::max(),
                                   std::numeric_limits<int64_t>::min(),
                                   0,
                                   -1,
                                   1};
  EXPECT_EQ(RoundTripInts(in), in);
}

TEST(IntCodecTest, RandomIntsFallBackToRawOrDeltaLosslessly) {
  Rng rng(0xC0DEC);
  std::vector<int64_t> in;
  for (int i = 0; i < 2000; ++i) {
    in.push_back(static_cast<int64_t>(rng.NextUint64()));
  }
  EXPECT_EQ(RoundTripInts(in), in);
}

std::vector<double> RoundTripDoubles(const std::vector<double>& in) {
  BufferWriter w;
  engine::EncodeDoubles(in, &w);
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeDoubles(&r);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(r.Remaining(), 0u);
  return std::move(out).MoveValueUnsafe();
}

TEST(DoubleCodecTest, BitExactSpecials) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> in = {0.0, -0.0, nan, -nan, inf, -inf,
                                  std::numeric_limits<double>::denorm_min(),
                                  std::numeric_limits<double>::max(), 1.25};
  std::vector<double> out = RoundTripDoubles(in);
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    uint64_t a, b;
    std::memcpy(&a, &in[i], 8);
    std::memcpy(&b, &out[i], 8);
    EXPECT_EQ(a, b) << "slot " << i << " not bit-identical";
  }
}

TEST(DoubleCodecTest, RepeatedValuesCompress) {
  std::vector<double> in(10000, 3.14159);
  BufferWriter w;
  Codec c = engine::EncodeDoubles(in, &w);
  EXPECT_EQ(c, Codec::kXorDouble);
  EXPECT_LT(w.size(), in.size() * sizeof(double) / 4);
  EXPECT_EQ(RoundTripDoubles(in), in);
}

TEST(DoubleCodecTest, EmptyColumn) {
  EXPECT_TRUE(RoundTripDoubles({}).empty());
}

std::vector<uint8_t> RoundTripBools(const std::vector<uint8_t>& in,
                                    Codec* chosen = nullptr) {
  BufferWriter w;
  Codec c = engine::EncodeBools(in, &w);
  if (chosen != nullptr) *chosen = c;
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeBools(&r);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(r.Remaining(), 0u);
  return std::move(out).MoveValueUnsafe();
}

TEST(BoolCodecTest, SingleRunRle) {
  std::vector<uint8_t> in(100000, 1);
  Codec chosen = Codec::kRaw;
  EXPECT_EQ(RoundTripBools(in, &chosen), in);
  EXPECT_EQ(chosen, Codec::kRle);

  BufferWriter w;
  engine::EncodeBools(in, &w);
  // One run: header + (value byte, varint run) — a handful of bytes.
  EXPECT_LT(w.size(), 16u);
}

TEST(BoolCodecTest, AlternatingBitsFallBackToRaw) {
  std::vector<uint8_t> in;
  for (int i = 0; i < 257; ++i) in.push_back(static_cast<uint8_t>(i & 1));
  Codec chosen = Codec::kRle;
  EXPECT_EQ(RoundTripBools(in, &chosen), in);
  EXPECT_EQ(chosen, Codec::kRaw);
}

TEST(BoolCodecTest, EmptyColumn) {
  EXPECT_TRUE(RoundTripBools({}).empty());
}

std::vector<std::string> RoundTripStrings(const std::vector<std::string>& in,
                                          Codec* chosen = nullptr) {
  BufferWriter w;
  Codec c = engine::EncodeStrings(in, &w);
  if (chosen != nullptr) *chosen = c;
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeStrings(&r);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(r.Remaining(), 0u);
  return std::move(out).MoveValueUnsafe();
}

TEST(StringCodecTest, LowCardinalityChoosesDict) {
  const std::vector<std::string> sites = {"athens", "paris", "madrid"};
  std::vector<std::string> in;
  for (int i = 0; i < 9000; ++i) in.push_back(sites[i % sites.size()]);
  Codec chosen = Codec::kRaw;
  EXPECT_EQ(RoundTripStrings(in, &chosen), in);
  EXPECT_EQ(chosen, Codec::kDict);

  BufferWriter w;
  engine::EncodeStrings(in, &w);
  size_t raw = 0;
  for (const auto& s : in) raw += 4 + s.size();
  EXPECT_LT(w.size() * 4, raw);  // at least 4x smaller on this shape
}

TEST(StringCodecTest, DictSpillsToRawPastMaxEntries) {
  // More distinct values than kDictMaxEntries: dictionary must spill and
  // the encoder fall back to raw, still losslessly.
  std::vector<std::string> in;
  in.reserve(engine::kDictMaxEntries + 100);
  for (size_t i = 0; i < engine::kDictMaxEntries + 100; ++i) {
    in.push_back("v" + std::to_string(i));
  }
  Codec chosen = Codec::kDict;
  EXPECT_EQ(RoundTripStrings(in, &chosen), in);
  EXPECT_EQ(chosen, Codec::kRaw);
}

TEST(StringCodecTest, EmptyAndEmptyStrings) {
  EXPECT_TRUE(RoundTripStrings({}).empty());
  const std::vector<std::string> in = {"", "", "x", ""};
  EXPECT_EQ(RoundTripStrings(in), in);
}

TEST(ValidityCodecTest, RoundTripsMixedBits) {
  Bitmap bm(1000, true);
  for (size_t i = 0; i < 1000; i += 7) bm.Set(i, false);
  BufferWriter w;
  engine::EncodeValidity(bm, &w);
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeValidity(&r);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Bitmap& got = out.ValueOrDie();
  ASSERT_EQ(got.length(), bm.length());
  for (size_t i = 0; i < bm.length(); ++i) {
    EXPECT_EQ(got.Get(i), bm.Get(i)) << "bit " << i;
  }
}

TEST(ValidityCodecTest, AllNullCompressesToOneRun) {
  Bitmap bm(50000, false);
  BufferWriter w;
  Codec c = engine::EncodeValidity(bm, &w);
  EXPECT_EQ(c, Codec::kRle);
  EXPECT_LT(w.size(), 16u);
  BufferReader r(w.bytes().data(), w.size());
  auto out = engine::DecodeValidity(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie().length(), 50000u);
  EXPECT_EQ(out.ValueOrDie().CountSet(), 0u);
}

// --------------------------------------------------------------------------
// Container-level: v2 table serialization.

Table MakeMixedTable(size_t rows, bool with_nulls) {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"site", DataType::kString}).ok());
  EXPECT_TRUE(schema.AddField({"visits", DataType::kInt64}).ok());
  EXPECT_TRUE(schema.AddField({"score", DataType::kFloat64}).ok());
  EXPECT_TRUE(schema.AddField({"flag", DataType::kBool}).ok());
  Table t = Table::Empty(schema);
  const std::vector<std::string> sites = {"athens", "paris", "madrid",
                                          "lyon"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    if (with_nulls && i % 11 == 0) {
      row = {Value::Null(), Value::Int(static_cast<int64_t>(i)),
             Value::Null(), Value::Bool(i % 2 == 0)};
    } else {
      row = {Value::String(sites[i % sites.size()]),
             Value::Int(static_cast<int64_t>(1000 + i)),
             Value::Double(0.25 * static_cast<double>(i % 17)),
             Value::Bool(i % 3 == 0)};
    }
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().field(c).name, b.schema().field(c).name);
    ASSERT_EQ(a.schema().field(c).type, b.schema().field(c).type);
    for (size_t i = 0; i < a.num_rows(); ++i) {
      EXPECT_EQ(a.column(c).IsValid(i), b.column(c).IsValid(i))
          << "col " << c << " row " << i;
      if (!a.column(c).IsValid(i)) continue;
      switch (a.schema().field(c).type) {
        case DataType::kInt64:
          EXPECT_EQ(a.column(c).IntAt(i), b.column(c).IntAt(i));
          break;
        case DataType::kFloat64: {
          uint64_t x, y;
          const double da = a.column(c).DoubleAt(i);
          const double db = b.column(c).DoubleAt(i);
          std::memcpy(&x, &da, 8);
          std::memcpy(&y, &db, 8);
          EXPECT_EQ(x, y) << "col " << c << " row " << i;
          break;
        }
        case DataType::kBool:
          EXPECT_EQ(a.column(c).BoolAt(i), b.column(c).BoolAt(i));
          break;
        case DataType::kString:
          EXPECT_EQ(a.column(c).StringAt(i), b.column(c).StringAt(i));
          break;
      }
    }
  }
}

TEST(TableWireV2Test, RoundTripsAndShrinks) {
  Table t = MakeMixedTable(5000, /*with_nulls=*/true);
  BufferWriter v2;
  engine::SerializeTable(t, &v2, engine::TableWireOptions{true});
  const size_t raw = engine::RawTableWireBytes(t);
  EXPECT_LT(v2.size(), raw / 2) << "expected >=2x reduction on this shape";

  BufferReader r(v2.bytes().data(), v2.size());
  auto back = engine::DeserializeTable(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(t, back.ValueOrDie());
}

TEST(TableWireV2Test, CodecsOffMatchesLegacyBytes) {
  Table t = MakeMixedTable(64, /*with_nulls=*/true);
  BufferWriter legacy;
  engine::SerializeTable(t, &legacy);
  BufferWriter off;
  engine::SerializeTable(t, &off, engine::TableWireOptions{false});
  EXPECT_EQ(legacy.bytes(), off.bytes());
  EXPECT_EQ(legacy.size(), engine::RawTableWireBytes(t));
}

TEST(TableWireV2Test, NeverLargerThanRawEvenWhenIncompressible) {
  // Random doubles do not compress; the measured fallback must emit v1.
  Rng rng(0xD0B1E);
  Schema schema;
  ASSERT_TRUE(schema.AddField({"x", DataType::kFloat64}).ok());
  Table t = Table::Empty(schema);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Double(rng.NextDouble() * 1e9)}).ok());
  }
  BufferWriter w;
  engine::SerializeTable(t, &w, engine::TableWireOptions{true});
  EXPECT_LE(w.size(), engine::RawTableWireBytes(t));
  BufferReader r(w.bytes().data(), w.size());
  auto back = engine::DeserializeTable(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(t, back.ValueOrDie());
}

TEST(TableWireV2Test, EmptyAndAllNullTables) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kInt64}).ok());
  ASSERT_TRUE(schema.AddField({"b", DataType::kString}).ok());
  Table empty = Table::Empty(schema);
  BufferWriter w;
  engine::SerializeTable(empty, &w, engine::TableWireOptions{true});
  BufferReader r(w.bytes().data(), w.size());
  auto back = engine::DeserializeTable(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().num_rows(), 0u);
  EXPECT_EQ(back.ValueOrDie().num_columns(), 2u);

  Table nulls = Table::Empty(schema);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(nulls.AppendRow({Value::Null(), Value::Null()}).ok());
  }
  BufferWriter w2;
  engine::SerializeTable(nulls, &w2, engine::TableWireOptions{true});
  BufferReader r2(w2.bytes().data(), w2.size());
  auto back2 = engine::DeserializeTable(&r2);
  ASSERT_TRUE(back2.ok()) << back2.status().ToString();
  ExpectTablesEqual(nulls, back2.ValueOrDie());
}

// --------------------------------------------------------------------------
// Container-level: v2 TransferData.

TransferData MakeRichTransfer() {
  TransferData t;
  t.PutString("algo", "linreg");
  t.PutStringList("datasets", {"cohort_a", "cohort_b"});
  t.PutScalar("n", 128.0);
  std::vector<double> weights(600, 0.125);
  weights[7] = -3.5;
  t.PutVector("weights", weights);
  auto m = stats::Matrix::FromFlat(2, 2, {1.0, 2.0, 3.0, 4.0});
  t.PutMatrix("xtx", m.ValueOrDie());
  t.PutTable("sample", MakeMixedTable(400, /*with_nulls=*/true));
  return t;
}

TEST(TransferWireV2Test, RoundTripsAndNeverExceedsRaw) {
  TransferData t = MakeRichTransfer();
  BufferWriter v1;
  t.Serialize(&v1);
  EXPECT_EQ(v1.size(), t.RawSerializedBytes());
  EXPECT_EQ(v1.size(), t.SerializedBytes());

  BufferWriter v2;
  t.Serialize(&v2, /*codecs=*/true);
  EXPECT_LE(v2.size(), v1.size());
  EXPECT_LT(v2.size(), v1.size());  // this payload is compressible

  BufferReader r(v2.bytes().data(), v2.size());
  auto back = TransferData::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const TransferData& b = back.ValueOrDie();
  EXPECT_EQ(b.GetString("algo").ValueOrDie(), "linreg");
  EXPECT_EQ(b.GetScalar("n").ValueOrDie(), 128.0);
  EXPECT_EQ(b.GetVector("weights").ValueOrDie(),
            t.GetVector("weights").ValueOrDie());
  ExpectTablesEqual(t.tables().at("sample"), b.tables().at("sample"));

  // Re-serializing the decoded transfer in v1 must be byte-identical to the
  // original v1 bytes: the codec path is lossless end to end.
  BufferWriter again;
  b.Serialize(&again);
  EXPECT_EQ(again.bytes(), v1.bytes());
}

TEST(TransferWireV2Test, TinyTransferFallsBackToV1) {
  // A single scalar cannot amortize the v2 magic; the measured container
  // fallback must emit v1 bytes, keeping wire <= raw unconditionally.
  TransferData t;
  t.PutScalar("count", 42.0);
  BufferWriter v1;
  t.Serialize(&v1);
  BufferWriter v2;
  t.Serialize(&v2, /*codecs=*/true);
  EXPECT_EQ(v1.bytes(), v2.bytes());
}

// --------------------------------------------------------------------------
// Mutation fuzz: the new decoders must survive arbitrary corruption with a
// clean Status (no crash, no over-read — ASan/UBSan enforce in CI).

template <typename DecodeFn>
void FuzzBlock(const std::vector<uint8_t>& good, uint64_t seed,
               DecodeFn decode) {
  ASSERT_FALSE(good.empty());
  for (size_t cut = 0; cut < good.size(); ++cut) {
    BufferReader r(good.data(), cut);
    decode(&r);
  }
  Rng rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
    bad[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    BufferReader r(bad.data(), bad.size());
    decode(&r);
  }
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> bad = good;
    for (int k = 0; k < 8; ++k) {
      const size_t pos = static_cast<size_t>(rng.NextBounded(bad.size()));
      bad[pos] = static_cast<uint8_t>(rng.NextBounded(256));
    }
    BufferReader r(bad.data(), bad.size());
    decode(&r);
  }
}

TEST(CodecFuzzTest, IntBlocksNeverCrash) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 300; ++i) vals.push_back(i * 13 - 700);
  BufferWriter w;
  engine::EncodeInts(vals, &w);
  FuzzBlock(w.bytes(), 0xA11CE,
            [](BufferReader* r) { (void)engine::DecodeInts(r); });
}

TEST(CodecFuzzTest, DoubleBlocksNeverCrash) {
  std::vector<double> vals;
  for (int i = 0; i < 300; ++i) vals.push_back(0.5 * i);
  BufferWriter w;
  engine::EncodeDoubles(vals, &w);
  FuzzBlock(w.bytes(), 0xB0B,
            [](BufferReader* r) { (void)engine::DecodeDoubles(r); });
}

TEST(CodecFuzzTest, BoolBlocksNeverCrash) {
  std::vector<uint8_t> vals(300, 1);
  for (int i = 100; i < 200; ++i) vals[i] = 0;
  BufferWriter w;
  engine::EncodeBools(vals, &w);
  FuzzBlock(w.bytes(), 0xCAFE,
            [](BufferReader* r) { (void)engine::DecodeBools(r); });
}

TEST(CodecFuzzTest, StringBlocksNeverCrash) {
  std::vector<std::string> vals;
  for (int i = 0; i < 300; ++i) vals.push_back(i % 2 ? "aa" : "bbbb");
  BufferWriter w;
  engine::EncodeStrings(vals, &w);
  FuzzBlock(w.bytes(), 0xD1C7,
            [](BufferReader* r) { (void)engine::DecodeStrings(r); });
}

TEST(CodecFuzzTest, ValidityBlocksNeverCrash) {
  Bitmap bm(300, true);
  for (size_t i = 0; i < 300; i += 3) bm.Set(i, false);
  BufferWriter w;
  engine::EncodeValidity(bm, &w);
  FuzzBlock(w.bytes(), 0xF1A6,
            [](BufferReader* r) { (void)engine::DecodeValidity(r); });
}

TEST(CodecFuzzTest, TableV2ContainerNeverCrashes) {
  Table t = MakeMixedTable(64, /*with_nulls=*/true);
  BufferWriter w;
  engine::SerializeTable(t, &w, engine::TableWireOptions{true});
  // This shape compresses, so the container really is v2 on the wire.
  ASSERT_LT(w.size(), engine::RawTableWireBytes(t));
  FuzzBlock(w.bytes(), 0x7AB2,
            [](BufferReader* r) { (void)engine::DeserializeTable(r); });
}

TEST(CodecFuzzTest, TransferV2ContainerNeverCrashes) {
  TransferData t = MakeRichTransfer();
  BufferWriter w;
  t.Serialize(&w, /*codecs=*/true);
  ASSERT_LT(w.size(), t.RawSerializedBytes());
  FuzzBlock(w.bytes(), 0x7F43,
            [](BufferReader* r) { (void)TransferData::Deserialize(r); });
}

}  // namespace
}  // namespace mip
