#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "engine/expr.h"
#include "engine/row_interpreter.h"
#include "engine/sql_parser.h"
#include "engine/table.h"
#include "engine/vector_program.h"
#include "engine/vectorized.h"

namespace mip::engine {
namespace {

// Builds a random numeric table (two double columns with nulls, one int
// column).
Table RandomTable(uint64_t seed, size_t rows) {
  mip::Rng rng(seed);
  Column a(DataType::kFloat64);
  Column b(DataType::kFloat64);
  Column k(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    if (rng.NextDouble() < 0.08) {
      a.AppendNull();
    } else {
      a.AppendDouble(rng.NextGaussian(0, 10));
    }
    if (rng.NextDouble() < 0.08) {
      b.AppendNull();
    } else {
      b.AppendDouble(rng.NextUniform(-5, 5));
    }
    k.AppendInt(static_cast<int64_t>(rng.NextBounded(7)));
  }
  Schema schema;
  EXPECT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  EXPECT_TRUE(schema.AddField({"b", DataType::kFloat64}).ok());
  EXPECT_TRUE(schema.AddField({"k", DataType::kInt64}).ok());
  return *Table::Make(schema, {a, b, k});
}

// Expressions covering arithmetic, comparisons, logic, math builtins and
// null handling — the surface all three execution engines must agree on.
const char* kExpressions[] = {
    "a + b",
    "a - 2 * b",
    "a * b + a / (b + 10)",
    "abs(a) + sqrt(abs(b))",
    "exp(b / 10) - 1",
    "a > b",
    "a + 1 <= b * 2",
    "(a > 0) and (b > 0)",
    "(a > 0) or (b > 0)",
    "not (a > b)",
    "a is null",
    "a is not null",
    "pow(a / 10, 2) + pow(b / 10, 2)",
    "-a",
    "(a > 0) and (a is not null)",
    "a / 0",
    "k + 1",
    "k * 2 - a",
    "floor(a) + ceil(b)",
    "sign(a) * round(b)",
};

class ExecutionEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExecutionEquivalence, RowVectorizedAndJitAgree) {
  const int expr_idx = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Table table = RandomTable(static_cast<uint64_t>(seed) * 7919 + 13, 500);

  ExprPtr expr = *ParseExpression(kExpressions[expr_idx]);
  ASSERT_TRUE(BindExpr(expr.get(), table.schema()).ok())
      << kExpressions[expr_idx];

  // Reference: row-at-a-time interpreter.
  std::vector<Value> reference(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    reference[r] = *EvalRow(*expr, table, r);
  }

  // Column-at-a-time.
  Column vectorized = *EvalVectorized(*expr, table);
  ASSERT_EQ(vectorized.length(), table.num_rows());

  // JIT-fused.
  VectorProgram program = *VectorProgram::Compile(*expr, table.schema());
  Column jit = *program.Execute(table);
  ASSERT_EQ(jit.length(), table.num_rows());

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& ref = reference[r];
    const Value vec = vectorized.ValueAt(r);
    const Value jv = jit.ValueAt(r);
    if (ref.is_null()) {
      EXPECT_TRUE(vec.is_null())
          << kExpressions[expr_idx] << " row " << r << " vectorized";
      EXPECT_TRUE(jv.is_null())
          << kExpressions[expr_idx] << " row " << r << " jit";
      continue;
    }
    ASSERT_FALSE(vec.is_null()) << kExpressions[expr_idx] << " row " << r;
    ASSERT_FALSE(jv.is_null()) << kExpressions[expr_idx] << " row " << r;
    const double rd = ref.AsDouble();
    if (std::isnan(rd)) {
      // NaN arithmetic results (e.g. fmod) may surface as NULL in the JIT
      // path; treat NaN/NULL as equivalent "undefined".
      continue;
    }
    EXPECT_NEAR(vec.AsDouble(), rd, 1e-9)
        << kExpressions[expr_idx] << " row " << r << " vectorized";
    EXPECT_NEAR(jv.AsDouble(), rd, 1e-9)
        << kExpressions[expr_idx] << " row " << r << " jit";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExprsAndSeeds, ExecutionEquivalence,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kExpressions))),
        ::testing::Range(0, 3)));

TEST(VectorProgramTest, CompileRejectsStrings) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", DataType::kString}).ok());
  ExprPtr expr = Col("s");
  ASSERT_TRUE(BindExpr(expr.get(), schema).ok());
  EXPECT_FALSE(VectorProgram::Compile(*expr, schema).ok());
}

TEST(VectorProgramTest, CompileRejectsUnknownCalls) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  ExprPtr expr = Call("coalesce", {Col("a"), LitDouble(0)});
  ASSERT_TRUE(BindExpr(expr.get(), schema).ok());
  EXPECT_FALSE(VectorProgram::Compile(*expr, schema).ok());
}

TEST(VectorProgramTest, RegisterReuseKeepsProgramSmall) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  // ((((a+1)+1)+1)+1): registers must be reused, not grow linearly.
  ExprPtr expr = Col("a");
  for (int i = 0; i < 16; ++i) expr = Add(expr, LitDouble(1));
  ASSERT_TRUE(BindExpr(expr.get(), schema).ok());
  VectorProgram p = *VectorProgram::Compile(*expr, schema);
  EXPECT_LE(p.num_registers(), 3);
  EXPECT_EQ(p.num_instructions(), 1u + 16u * 2u);
}

TEST(VectorProgramTest, DisassembleMentionsOps) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kFloat64}).ok());
  ExprPtr expr = Mul(Add(Col("a"), LitDouble(1)), Col("a"));
  ASSERT_TRUE(BindExpr(expr.get(), schema).ok());
  VectorProgram p = *VectorProgram::Compile(*expr, schema);
  const std::string listing = p.Disassemble();
  EXPECT_NE(listing.find("load_col"), std::string::npos);
  EXPECT_NE(listing.find("mul"), std::string::npos);
}

TEST(VectorProgramTest, HandlesTablesSmallerAndLargerThanBatch) {
  for (size_t rows : {1u, 7u, 2047u, 2048u, 2049u, 6000u}) {
    Table t = RandomTable(rows, rows);
    ExprPtr expr = *ParseExpression("a * 2 + b");
    ASSERT_TRUE(BindExpr(expr.get(), t.schema()).ok());
    VectorProgram p = *VectorProgram::Compile(*expr, t.schema());
    Column out = *p.Execute(t);
    ASSERT_EQ(out.length(), rows);
    Column ref = *EvalVectorized(*expr, t);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out.IsValid(r), ref.IsValid(r));
      if (out.IsValid(r)) {
        EXPECT_NEAR(out.AsDoubleAt(r), ref.AsDoubleAt(r), 1e-9);
      }
    }
  }
}

TEST(PredicateTest, SelectionVectorMatchesFilterSemantics) {
  Table t = RandomTable(99, 300);
  ExprPtr pred = *ParseExpression("a > 0 and b < 2");
  ASSERT_TRUE(BindExpr(pred.get(), t.schema()).ok());
  std::vector<int64_t> sel = *EvalPredicate(*pred, t);
  for (int64_t idx : sel) {
    const size_t r = static_cast<size_t>(idx);
    ASSERT_TRUE(t.column(0).IsValid(r));
    ASSERT_TRUE(t.column(1).IsValid(r));
    EXPECT_GT(t.column(0).DoubleAt(r), 0.0);
    EXPECT_LT(t.column(1).DoubleAt(r), 2.0);
  }
}


TEST(VectorProgramTest, ParallelAndBatchVariantsMatchSerial) {
  Table t = RandomTable(123, 50000);
  ExprPtr expr = *ParseExpression(
      "case when a > 0 then sqrt(a) * b else b / 2 end + k");
  ASSERT_TRUE(BindExpr(expr.get(), t.schema()).ok());
  VectorProgram p = *VectorProgram::Compile(*expr, t.schema());
  Column serial = *p.Execute(t);
  for (int threads : {2, 4, 8}) {
    mip::ThreadPool pool(threads);
    ExecContext parallel_ctx;
    parallel_ctx.pool = &pool;
    parallel_ctx.morsel_size = 8192;  // force several morsels over 50k rows
    for (size_t batch : {64u, 1024u, 2048u, 8192u}) {
      VectorProgram::ExecOptions options;
      options.exec = &parallel_ctx;
      options.batch_size = batch;
      Column out = *p.Execute(t, options);
      ASSERT_EQ(out.length(), serial.length());
      for (size_t r = 0; r < out.length(); ++r) {
        ASSERT_EQ(out.IsValid(r), serial.IsValid(r))
            << threads << "t/" << batch << "b row " << r;
        if (out.IsValid(r)) {
          ASSERT_DOUBLE_EQ(out.AsDoubleAt(r), serial.AsDoubleAt(r))
              << threads << "t/" << batch << "b row " << r;
        }
      }
    }
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  mip::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100000);
  pool.ParallelFor(hits.size(), 1024, [&hits](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  // Degenerate cases.
  pool.ParallelFor(0, 4, [](size_t, size_t) { FAIL(); });
  int whole_calls = 0;
  pool.ParallelFor(10, 0, [&whole_calls](size_t b, size_t e) {
    ++whole_calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(whole_calls, 1);  // grain 0 => one inline chunk
  whole_calls = 0;
  pool.ParallelFor(10, 16, [&whole_calls](size_t b, size_t e) {
    ++whole_calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(whole_calls, 1);  // grain >= n runs inline
}

TEST(ParallelForTest, PropagatesBodyException) {
  mip::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100000, 64,
                       [](size_t b, size_t) {
                         if (b >= 50000) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> chunks{0};
  pool.ParallelFor(1000, 10, [&chunks](size_t, size_t) { ++chunks; });
  EXPECT_EQ(chunks.load(), 100);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // Every task of a 2-thread pool runs a nested ParallelFor on the same
  // pool; caller participation guarantees progress even with zero free
  // pool threads.
  mip::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, 1, [&pool, &total](size_t, size_t) {
    pool.ParallelFor(1000, 10, [&total](size_t b, size_t e) {
      total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(total.load(), 8000);
}
}  // namespace
}  // namespace mip::engine
