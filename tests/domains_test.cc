// The paper's non-dementia pathologies: epilepsy (intracerebral EEG
// features) and traumatic brain injury, each with its own CDE catalog and
// synthetic cohort, analyzed federated end to end.

#include <gtest/gtest.h>

#include "algorithms/anova.h"
#include "algorithms/calibration_belt.h"
#include "algorithms/decision_tree.h"
#include "algorithms/logistic_regression.h"
#include "data/synthetic.h"
#include "etl/cde.h"
#include "federation/master.h"

namespace mip {
namespace {

using engine::Table;
using federation::FederationSession;
using federation::MasterNode;

TEST(EpilepsyDomainTest, CatalogResolvesIeegAliases) {
  const etl::CdeCatalog catalog = etl::EpilepsyCatalog();
  EXPECT_EQ(catalog.domain(), "epilepsy");
  ASSERT_NE(catalog.Resolve("spike_rate"), nullptr);
  EXPECT_EQ(catalog.Resolve("spike_rate")->name, "ieeg_spike_rate");
  EXPECT_EQ(catalog.Resolve("engel")->name, "engel_class");
  const etl::CdeVariable* engel = *catalog.GetVariable("engel_class");
  EXPECT_EQ(engel->enumeration.size(), 4u);
}

TEST(EpilepsyDomainTest, CohortHarmonizesCleanly) {
  Table cohort = *data::GenerateEpilepsyCohort(500, 7);
  etl::HarmonizationReport report;
  Table clean = *etl::Harmonize(cohort, etl::EpilepsyCatalog(), &report);
  EXPECT_EQ(report.rows_in, 500);
  EXPECT_EQ(report.rows_out, 500);
  EXPECT_EQ(report.cells_nulled_out_of_range, 0);
  EXPECT_EQ(report.cells_nulled_bad_enum, 0);
}

TEST(EpilepsyDomainTest, FederatedAnalysisFindsSurgicalPredictors) {
  MasterNode master;
  for (int s = 0; s < 3; ++s) {
    const std::string id = "epi_center_" + std::to_string(s);
    ASSERT_TRUE(master.AddWorker(id).ok());
    ASSERT_TRUE(master.LoadDataset(
                         id, "epilepsy",
                         *data::GenerateEpilepsyCohort(600, 100 + s))
                    .ok());
  }

  // HFO rate differs across Engel outcome classes (ANOVA).
  algorithms::AnovaOneWaySpec anova;
  anova.datasets = {"epilepsy"};
  anova.outcome = "ieeg_hfo_rate";
  anova.factor = "engel_class";
  FederationSession s1 = *master.StartSession({"epilepsy"});
  algorithms::AnovaOneWayResult hfo = *RunAnovaOneWay(&s1, anova);
  EXPECT_LT(hfo.p_value, 1e-6);

  // Seizure freedom (Engel I) predicted by iEEG features.
  algorithms::LogisticRegressionSpec logreg;
  logreg.datasets = {"epilepsy"};
  logreg.covariates = {"ieeg_hfo_rate", "seizure_frequency"};
  logreg.target = "engel_class";
  logreg.positive_class = "I";
  FederationSession s2 = *master.StartSession({"epilepsy"});
  algorithms::LogisticRegressionResult fit =
      *RunLogisticRegression(&s2, logreg);
  EXPECT_TRUE(fit.converged);
  EXPECT_GT(fit.coefficients[1].estimate, 0.0);  // HFO raises Engel-I odds
  EXPECT_LT(fit.coefficients[1].p_value, 1e-3);

  // ID3 on the lesional flag.
  algorithms::Id3Spec id3;
  id3.datasets = {"epilepsy"};
  id3.features = {"mri_lesional"};
  id3.target = "engel_class";
  id3.max_depth = 1;
  FederationSession s3 = *master.StartSession({"epilepsy"});
  auto tree = RunId3(&s3, id3);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree.ValueOrDie().root->is_leaf);
}

TEST(TbiDomainTest, CatalogAndCohort) {
  const etl::CdeCatalog catalog = etl::TbiCatalog();
  EXPECT_EQ(catalog.Resolve("gcs")->name, "gcs_total");
  Table cohort = *data::GenerateTbiCohort(800, 3);
  etl::HarmonizationReport report;
  Table clean = *etl::Harmonize(cohort, catalog, &report);
  EXPECT_EQ(report.rows_out, 800);
  // GCS stays in its CDE range by construction.
  EXPECT_EQ(report.cells_nulled_out_of_range, 0);
}

TEST(TbiDomainTest, CalibrationBeltOnImpactLikeModel) {
  MasterNode master;
  ASSERT_TRUE(master.AddWorker("icu_a").ok());
  ASSERT_TRUE(master.AddWorker("icu_b").ok());
  ASSERT_TRUE(master.LoadDataset("icu_a", "tbi",
                                 *data::GenerateTbiCohort(2500, 11, 0.0))
                  .ok());
  ASSERT_TRUE(master.LoadDataset("icu_b", "tbi",
                                 *data::GenerateTbiCohort(2500, 12, 0.0))
                  .ok());
  algorithms::CalibrationBeltSpec spec;
  spec.datasets = {"tbi"};
  spec.probability_variable = "predicted_mortality";
  spec.outcome_variable = "mortality_6m";
  FederationSession s1 = *master.StartSession({"tbi"});
  algorithms::CalibrationBeltResult good = *RunCalibrationBelt(&s1, spec);
  EXPECT_TRUE(good.covers_diagonal_95);

  // A drifted model (e.g. applied to a new era of care) gets flagged.
  ASSERT_TRUE(master.AddWorker("icu_c").ok());
  ASSERT_TRUE(master.LoadDataset("icu_c", "tbi_drift",
                                 *data::GenerateTbiCohort(4000, 13, 0.9))
                  .ok());
  spec.datasets = {"tbi_drift"};
  FederationSession s2 = *master.StartSession({"tbi_drift"});
  algorithms::CalibrationBeltResult drifted = *RunCalibrationBelt(&s2, spec);
  EXPECT_FALSE(drifted.covers_diagonal_95);
}

TEST(TbiDomainTest, MortalityRisesWithSeverity) {
  Table cohort = *data::GenerateTbiCohort(6000, 21);
  const int gcs = cohort.schema().FieldIndex("gcs_total");
  const int died = cohort.schema().FieldIndex("mortality_6m");
  double dead_low = 0, n_low = 0, dead_high = 0, n_high = 0;
  for (size_t r = 0; r < cohort.num_rows(); ++r) {
    if (cohort.At(r, gcs).AsDouble() <= 6) {
      dead_low += cohort.At(r, died).AsDouble();
      n_low += 1;
    } else if (cohort.At(r, gcs).AsDouble() >= 13) {
      dead_high += cohort.At(r, died).AsDouble();
      n_high += 1;
    }
  }
  ASSERT_GT(n_low, 100);
  ASSERT_GT(n_high, 100);
  EXPECT_GT(dead_low / n_low, 2.0 * dead_high / n_high);
}

}  // namespace
}  // namespace mip
