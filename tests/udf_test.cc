#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "udf/udf.h"

namespace mip::udf {
namespace {

using engine::DataType;
using engine::Database;
using engine::Field;
using engine::Schema;
using engine::Table;
using engine::Value;

class UdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE v (x double, y double)").ok());
    ASSERT_TRUE(db_.ExecuteSql(
        "INSERT INTO v VALUES (1, 10), (2, 20), (3, 30), (4, 40)").ok());
  }

  Schema InputSchema() {
    Schema s;
    EXPECT_TRUE(s.AddField({"x", DataType::kFloat64}).ok());
    EXPECT_TRUE(s.AddField({"y", DataType::kFloat64}).ok());
    return s;
  }

  UdfDefinition ZScoreDefinition() {
    // The canonical MIP-style UDF: standardize x, then summarize.
    UdfDefinition def;
    def.name = "zscore_sum";
    def.input_schema = InputSchema();
    def.steps = {
        {UdfStep::Kind::kElementwise, "scaled", "x * 2 + y / 10", "", "", ""},
        {UdfStep::Kind::kReduce, "total", "", "sum", "scaled", ""},
        {UdfStep::Kind::kReduce, "n", "", "count", "scaled", ""},
    };
    def.outputs = {"total", "n"};
    return def;
  }

  Database db_{"udf_test"};
};

TEST_F(UdfTest, ValidationCatchesBadPrograms) {
  UdfGenerator generator(&db_);
  UdfDefinition def = ZScoreDefinition();
  def.name = "";
  EXPECT_FALSE(generator.Generate(def).ok());

  def = ZScoreDefinition();
  def.outputs = {"nonexistent"};
  EXPECT_FALSE(generator.Generate(def).ok());

  def = ZScoreDefinition();
  def.steps[1].arg = "nope";
  EXPECT_FALSE(generator.Generate(def).ok());

  def = ZScoreDefinition();
  def.steps[1].agg = "median";  // unsupported reduce
  EXPECT_FALSE(generator.Generate(def).ok());

  def = ZScoreDefinition();
  def.steps[0].name = "x";  // collides with an input column
  EXPECT_FALSE(generator.Generate(def).ok());
}

TEST_F(UdfTest, ExecuteMatchesHandComputation) {
  UdfGenerator generator(&db_);
  Table out = *generator.Execute(ZScoreDefinition(), "v",
                                 UdfExecutionMode::kJitFused);
  ASSERT_EQ(out.num_rows(), 1u);
  // scaled = (2x + y/10): 3, 6, 9, 12 -> total 30, n 4.
  EXPECT_NEAR(out.At(0, 0).AsDouble(), 30.0, 1e-9);
  EXPECT_EQ(out.At(0, 1).AsDouble(), 4.0);
}

TEST_F(UdfTest, AllExecutionModesAgree) {
  UdfGenerator generator(&db_);
  const UdfDefinition def = ZScoreDefinition();
  Table row = *generator.Execute(def, "v", UdfExecutionMode::kRowInterpreter);
  Table vec = *generator.Execute(def, "v", UdfExecutionMode::kVectorized);
  Table jit = *generator.Execute(def, "v", UdfExecutionMode::kJitFused);
  EXPECT_NEAR(row.At(0, 0).AsDouble(), vec.At(0, 0).AsDouble(), 1e-9);
  EXPECT_NEAR(vec.At(0, 0).AsDouble(), jit.At(0, 0).AsDouble(), 1e-9);
}

TEST_F(UdfTest, GenerateProducesSingleSelectSql) {
  UdfGenerator generator(&db_);
  GeneratedUdf gen = *generator.Generate(ZScoreDefinition());
  EXPECT_TRUE(gen.single_select);
  ASSERT_EQ(gen.sql.size(), 1u);
  // The declarative rendering must inline the elementwise step into the
  // aggregate (UDF-to-SQL translation).
  EXPECT_NE(gen.sql[0].find("sum("), std::string::npos);
  EXPECT_NE(gen.sql[0].find("FROM $input"), std::string::npos);
  EXPECT_GT(gen.jit_instructions, 0u);
}

TEST_F(UdfTest, GeneratedSqlIsSemanticallyEqual) {
  UdfGenerator generator(&db_);
  GeneratedUdf gen = *generator.Generate(ZScoreDefinition());
  // Execute the generated declarative SQL directly against the engine and
  // compare with the procedural pipeline's result.
  std::string sql = gen.sql[0];
  const size_t pos = sql.find("$input");
  ASSERT_NE(pos, std::string::npos);
  sql.replace(pos, 6, "v");
  Table declarative = *db_.ExecuteSql(sql);
  Table procedural = *generator.Execute(ZScoreDefinition(), "v",
                                        UdfExecutionMode::kJitFused);
  EXPECT_NEAR(declarative.At(0, 0).AsDouble(),
              procedural.At(0, 0).AsDouble(), 1e-9);
}

TEST_F(UdfTest, RegisteredTableFunctionCallableFromSql) {
  UdfGenerator generator(&db_);
  ASSERT_TRUE(generator.Generate(ZScoreDefinition()).ok());
  Table out = *db_.ExecuteSql("SELECT total / n AS mean_scaled FROM "
                              "zscore_sum('v')");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_NEAR(out.At(0, 0).AsDouble(), 7.5, 1e-9);
  // Wrong argument type is a clean error.
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM zscore_sum(42)").ok());
}

TEST_F(UdfTest, LoopbackQueryFeedsScalarIntoPipeline) {
  // The loopback reads the global mean of x via SQL mid-UDF, then centers.
  UdfDefinition def;
  def.name = "centered";
  def.input_schema = InputSchema();
  def.steps = {
      {UdfStep::Kind::kLoopback, "mu", "", "", "",
       "SELECT avg(x) AS mu FROM v"},
      {UdfStep::Kind::kElementwise, "centered_x", "x - mu", "", "", ""},
      {UdfStep::Kind::kReduce, "ss", "", "sum", "centered_x", ""},
  };
  def.outputs = {"ss"};
  UdfGenerator generator(&db_);
  Table out = *generator.Execute(def, "v", UdfExecutionMode::kJitFused);
  // Sum of centered values is 0.
  EXPECT_NEAR(out.At(0, 0).AsDouble(), 0.0, 1e-9);
  // Loopback programs cannot fold into a single SELECT.
  GeneratedUdf gen = *generator.Generate(def);
  EXPECT_FALSE(gen.single_select);
  EXPECT_GT(gen.sql.size(), 1u);
}

TEST_F(UdfTest, RelationOutputs) {
  UdfDefinition def;
  def.name = "derived_cols";
  def.input_schema = InputSchema();
  def.steps = {
      {UdfStep::Kind::kElementwise, "ratio", "y / x", "", "", ""},
  };
  def.outputs = {"x", "ratio"};
  UdfGenerator generator(&db_);
  Table out = *generator.Execute(def, "v", UdfExecutionMode::kVectorized);
  ASSERT_EQ(out.num_rows(), 4u);
  EXPECT_NEAR(out.At(2, 1).AsDouble(), 10.0, 1e-9);
}

TEST_F(UdfTest, MissingInputColumnIsTypeError) {
  UdfDefinition def = ZScoreDefinition();
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE w (x double)").ok());
  ASSERT_TRUE(db_.ExecuteSql("INSERT INTO w VALUES (1)").ok());
  UdfGenerator generator(&db_);
  Result<Table> out = generator.Execute(def, "w",
                                        UdfExecutionMode::kJitFused);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
}

TEST_F(UdfTest, ScalarUdfUsableInExpressions) {
  ASSERT_TRUE(RegisterScalarUdf(
                  &db_, "relu", 1, DataType::kFloat64,
                  [](const std::vector<Value>& args) {
                    if (args[0].is_null()) return Value::Null();
                    return Value::Double(std::max(0.0, args[0].AsDouble()));
                  })
                  .ok());
  Table out = *db_.ExecuteSql(
      "SELECT x, relu(x - 2.5) AS r FROM v ORDER BY x");
  EXPECT_EQ(out.At(0, 1).AsDouble(), 0.0);
  EXPECT_EQ(out.At(3, 1).AsDouble(), 1.5);
  // Registering the same name twice fails.
  EXPECT_FALSE(RegisterScalarUdf(&db_, "relu", 1, DataType::kFloat64,
                                 [](const std::vector<Value>&) {
                                   return Value::Null();
                                 })
                   .ok());
}

}  // namespace
}  // namespace mip::udf
