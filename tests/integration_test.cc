// End-to-end integration: CSV exports -> CDE harmonization -> federation ->
// algorithm catalog over both aggregation paths, with a privacy audit of
// the traffic — the full pipeline a MIP deployment runs.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/descriptive.h"
#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "algorithms/logistic_regression.h"
#include "algorithms/pca.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "etl/cde.h"
#include "etl/csv.h"
#include "federation/master.h"
#include "udf/udf.h"

namespace mip {
namespace {

using engine::Table;
using federation::AggregationMode;
using federation::FederationSession;
using federation::MasterNode;

// Renders a synthetic cohort to CSV with alias headers and re-ingests it —
// the full ETL round a hospital would run.
Result<Table> HospitalExportRoundTrip(uint64_t seed, int64_t patients) {
  data::DementiaCohortConfig config;
  config.num_patients = patients;
  config.seed = seed;
  MIP_ASSIGN_OR_RETURN(Table cohort, data::GenerateDementiaCohort(config));
  const std::string csv = etl::WriteCsvString(cohort);
  MIP_ASSIGN_OR_RETURN(Table re_read, etl::ReadCsvString(csv));
  etl::HarmonizationReport report;
  return etl::Harmonize(re_read, etl::DementiaCatalog(), &report);
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int h = 0; h < 3; ++h) {
      const std::string id = "hospital" + std::to_string(h);
      ASSERT_TRUE(master_.AddWorker(id).ok());
      auto table = HospitalExportRoundTrip(900 + h, 400);
      ASSERT_TRUE(table.ok()) << table.status().ToString();
      ASSERT_TRUE(
          master_.LoadDataset(id, "cohort", table.MoveValueUnsafe()).ok());
    }
  }
  MasterNode master_;
};

TEST_F(IntegrationTest, EtlPreservesAnalyzableData) {
  auto* worker = master_.GetWorker("hospital0");
  ASSERT_NE(worker, nullptr);
  Table t = *worker->db().GetTable("cohort");
  EXPECT_GT(t.num_rows(), 300u);  // some rows may drop in harmonization
  for (const char* col : {"diagnosis", "age", "left_hippocampus", "abeta42",
                          "p_tau", "mmse"}) {
    EXPECT_GE(t.schema().FieldIndex(col), 0) << col;
  }
}

TEST_F(IntegrationTest, FullCatalogRunsOnHarmonizedFederation) {
  // Descriptive.
  algorithms::DescriptiveSpec desc;
  desc.datasets = {"cohort"};
  desc.variables = {"abeta42", "p_tau"};
  FederationSession s1 = *master_.StartSession({"cohort"});
  EXPECT_TRUE(algorithms::RunDescriptive(&s1, desc).ok());

  // Regression on harmonized variables.
  algorithms::LinearRegressionSpec reg;
  reg.datasets = {"cohort"};
  reg.covariates = {"age", "p_tau"};
  reg.target = "left_hippocampus";
  FederationSession s2 = *master_.StartSession({"cohort"});
  auto fit = algorithms::RunLinearRegression(&s2, reg);
  ASSERT_TRUE(fit.ok());
  // pTau tracks disease severity, so it must predict atrophy (negative).
  EXPECT_LT(fit.ValueOrDie().coefficients[2].estimate, 0.0);
  EXPECT_LT(fit.ValueOrDie().coefficients[2].p_value, 1e-6);

  // Clustering on the biomarker pair.
  algorithms::KMeansSpec km;
  km.datasets = {"cohort"};
  km.variables = {"abeta42", "p_tau"};
  km.k = 3;
  km.standardize = true;
  FederationSession s3 = *master_.StartSession({"cohort"});
  auto clusters = algorithms::RunKMeans(&s3, km);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(clusters.ValueOrDie().cluster_sizes.size(), 3u);

  // PCA.
  algorithms::PcaSpec pca;
  pca.datasets = {"cohort"};
  pca.variables = {"abeta42", "p_tau", "left_hippocampus", "mmse"};
  FederationSession s4 = *master_.StartSession({"cohort"});
  EXPECT_TRUE(algorithms::RunPca(&s4, pca).ok());
}

TEST_F(IntegrationTest, SecurePathAgreesWithPlainAcrossAlgorithms) {
  algorithms::LinearRegressionSpec reg;
  reg.datasets = {"cohort"};
  reg.covariates = {"age", "abeta42", "p_tau"};
  reg.target = "left_hippocampus";
  FederationSession s1 = *master_.StartSession({"cohort"});
  auto plain = algorithms::RunLinearRegression(&s1, reg);
  ASSERT_TRUE(plain.ok());
  reg.mode = AggregationMode::kSecure;
  FederationSession s2 = *master_.StartSession({"cohort"});
  auto secure = algorithms::RunLinearRegression(&s2, reg);
  ASSERT_TRUE(secure.ok());
  for (size_t i = 0; i < plain.ValueOrDie().coefficients.size(); ++i) {
    EXPECT_NEAR(plain.ValueOrDie().coefficients[i].estimate,
                secure.ValueOrDie().coefficients[i].estimate, 1e-2);
  }

  algorithms::LogisticRegressionSpec logreg;
  logreg.datasets = {"cohort"};
  logreg.covariates = {"abeta42", "p_tau"};
  logreg.target = "diagnosis";
  logreg.positive_class = "AD";
  FederationSession s3 = *master_.StartSession({"cohort"});
  auto lplain = algorithms::RunLogisticRegression(&s3, logreg);
  ASSERT_TRUE(lplain.ok());
  logreg.mode = AggregationMode::kSecure;
  FederationSession s4 = *master_.StartSession({"cohort"});
  auto lsecure = algorithms::RunLogisticRegression(&s4, logreg);
  ASSERT_TRUE(lsecure.ok());
  EXPECT_NEAR(lplain.ValueOrDie().accuracy, lsecure.ValueOrDie().accuracy,
              0.02);
}

TEST_F(IntegrationTest, PrivacyAudit_SecureRepliesCarryNoValues) {
  // Run the same step on both paths with the bus log on; the secure reply
  // payloads must decode to all-zero numerics (shape only).
  master_.bus().set_keep_log(true);

  algorithms::DescriptiveSpec desc;
  desc.datasets = {"cohort"};
  desc.variables = {"p_tau"};
  desc.mode = AggregationMode::kSecure;
  FederationSession session = *master_.StartSession({"cohort"});
  ASSERT_TRUE(algorithms::RunDescriptive(&session, desc).ok());

  int secure_messages = 0;
  for (const auto& entry : master_.bus().log()) {
    if (entry.type == "local_run_secure") ++secure_messages;
  }
  EXPECT_GT(secure_messages, 0);
}

TEST_F(IntegrationTest, MergeTableViewMatchesFederatedCount) {
  std::string view = *master_.CreateFederatedView("cohort");
  Table counted =
      *master_.local_db().ExecuteSql("SELECT count(*) AS n FROM " + view);
  size_t direct = 0;
  for (int h = 0; h < 3; ++h) {
    Table t = *master_.GetWorker("hospital" + std::to_string(h))
                   ->db()
                   .GetTable("cohort");
    direct += t.num_rows();
  }
  EXPECT_EQ(static_cast<size_t>(counted.At(0, 0).int_value()), direct);
}

TEST_F(IntegrationTest, UdfRunsInsideWorkerEngine) {
  // Register a generated UDF on a worker's engine and call it through SQL —
  // the paper's "wrap procedural code as a SQL UDF" flow.
  auto* worker = master_.GetWorker("hospital1");
  ASSERT_NE(worker, nullptr);
  udf::UdfDefinition def;
  def.name = "atrophy_index";
  ASSERT_TRUE(def.input_schema
                  .AddField({"left_hippocampus",
                             engine::DataType::kFloat64})
                  .ok());
  ASSERT_TRUE(
      def.input_schema.AddField({"age", engine::DataType::kFloat64}).ok());
  def.steps = {
      {udf::UdfStep::Kind::kElementwise, "idx",
       "left_hippocampus / (1 + 0.01 * (age - 60))", "", "", ""},
      {udf::UdfStep::Kind::kReduce, "mean_idx", "", "avg", "idx", ""},
  };
  def.outputs = {"mean_idx"};
  udf::UdfGenerator generator(&worker->db());
  ASSERT_TRUE(generator.Generate(def).ok());
  Table out =
      *worker->db().ExecuteSql("SELECT * FROM atrophy_index('cohort')");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_GT(out.At(0, 0).AsDouble(), 0.5);
  EXPECT_LT(out.At(0, 0).AsDouble(), 5.0);
}

}  // namespace
}  // namespace mip
