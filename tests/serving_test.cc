// Concurrency battery for the epoll serving path (net/server.h behind
// TcpTransport): many clients hammering one server must produce replies
// byte-identical to a serial run, and adversarial byte streams — partial
// frames, mid-request disconnects, corrupt CRCs, oversized lengths,
// connection floods — must never wedge the loop or leak connections.

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace mip {
namespace {

using net::Envelope;
using net::FrameDecoder;
using net::Socket;
using net::TcpTransport;
using net::TcpTransportOptions;

/// The deterministic service under test: reply = payload reversed. Any
/// cross-talk between connections or frames produces a mismatch.
std::vector<uint8_t> Reversed(const std::vector<uint8_t>& in) {
  return std::vector<uint8_t>(in.rbegin(), in.rend());
}

Status RegisterReverser(TcpTransport* server) {
  return server->RegisterEndpoint(
      "svc", [](const Envelope& envelope) -> Result<std::vector<uint8_t>> {
        return Reversed(envelope.payload);
      });
}

std::vector<uint8_t> Payload(int i, size_t pad = 0) {
  const std::string text = "request_" + std::to_string(i);
  std::vector<uint8_t> out(text.begin(), text.end());
  out.resize(out.size() + pad, static_cast<uint8_t>(i & 0xFF));
  return out;
}

/// A framed request as raw wire bytes, for byte-level client control.
std::vector<uint8_t> RequestFrame(const std::vector<uint8_t>& payload,
                                  const std::string& to = "svc",
                                  const std::string& type = "echo",
                                  uint8_t version = net::kFrameVersion) {
  Envelope envelope{"raw_client", to, type, "", payload};
  BufferWriter writer;
  net::EncodeFrame(net::EncodeEnvelopePayload(envelope), &writer, version);
  return writer.TakeBytes();
}

/// Reads one framed reply off `sock` and unwraps the embedded status.
Result<std::vector<uint8_t>> ReadReply(Socket* sock, FrameDecoder* decoder,
                                       double timeout_ms = 5000.0) {
  std::vector<uint8_t> payload;
  for (;;) {
    MIP_ASSIGN_OR_RETURN(bool got, decoder->Next(&payload));
    if (got) return net::DecodeReplyPayload(payload);
    uint8_t buf[4096];
    MIP_ASSIGN_OR_RETURN(size_t n, sock->RecvSome(buf, sizeof(buf),
                                                  timeout_ms));
    decoder->Feed(buf, n);
  }
}

Result<Socket> Dial(int port) {
  return Socket::ConnectTcp("127.0.0.1", port, 2000.0);
}

TEST(ServingTest, ConcurrentRepliesByteIdenticalToSerial) {
  TcpTransport server;
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  constexpr int kRequests = 40;
  // Serial baseline through a normal client transport.
  std::vector<std::vector<uint8_t>> expected(kRequests);
  {
    TcpTransport client;
    client.AddPeer("svc", "127.0.0.1", server.port());
    for (int i = 0; i < kRequests; ++i) {
      auto reply = client.Send(
          Envelope{"serial", "svc", "echo", "", Payload(i, /*pad=*/64)});
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      expected[i] = reply.ValueOrDie();
      ASSERT_EQ(expected[i], Reversed(Payload(i, 64)));
    }
    client.Shutdown();
  }

  // Concurrent: 8 threads x 40 requests through one shared client transport
  // (each in-flight Send uses its own pooled connection).
  constexpr int kThreads = 8;
  TcpTransport client;
  client.AddPeer("svc", "127.0.0.1", server.port());
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        auto reply = client.Send(Envelope{"tenant_" + std::to_string(t),
                                          "svc", "echo", "",
                                          Payload(i, /*pad=*/64)});
        if (!reply.ok()) {
          failures.fetch_add(1);
        } else if (reply.ValueOrDie() != expected[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = server.server_stats();
  EXPECT_GE(stats.frames_served,
            static_cast<uint64_t>(kRequests * (kThreads + 1)));
  EXPECT_EQ(stats.dropped_corrupt, 0u);
  EXPECT_EQ(stats.evicted_deadline, 0u);
  client.Shutdown();
  server.Shutdown();
}

TEST(ServingTest, PipelinedRequestsAnswerInOrder) {
  TcpTransport server;
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  auto sock = Dial(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  Socket conn = sock.MoveValueUnsafe();

  // Fire 16 requests back-to-back in a single write, then read the replies:
  // they must come back complete and in request order.
  constexpr int kPipelined = 16;
  BufferWriter burst;
  for (int i = 0; i < kPipelined; ++i) {
    const auto frame = RequestFrame(Payload(i));
    burst.AppendRaw(frame.data(), frame.size());
  }
  const std::vector<uint8_t> bytes = burst.TakeBytes();
  ASSERT_TRUE(conn.SendAll(bytes.data(), bytes.size(), 2000.0).ok());

  FrameDecoder decoder;
  for (int i = 0; i < kPipelined; ++i) {
    auto reply = ReadReply(&conn, &decoder);
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    EXPECT_EQ(reply.ValueOrDie(), Reversed(Payload(i))) << "reply " << i;
  }
  server.Shutdown();
}

TEST(ServingTest, InterleavedPartialFramesAcrossConnections) {
  TcpTransport server;
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  // Two connections drip their frames in alternating small chunks; each
  // decoder state must stay per-connection.
  auto a = Dial(server.port());
  auto b = Dial(server.port());
  ASSERT_TRUE(a.ok() && b.ok());
  Socket conn_a = a.MoveValueUnsafe();
  Socket conn_b = b.MoveValueUnsafe();

  const std::vector<uint8_t> frame_a = RequestFrame(Payload(1, 200));
  const std::vector<uint8_t> frame_b = RequestFrame(Payload(2, 200));
  size_t pos_a = 0, pos_b = 0;
  constexpr size_t kChunk = 7;
  while (pos_a < frame_a.size() || pos_b < frame_b.size()) {
    if (pos_a < frame_a.size()) {
      const size_t n = std::min(kChunk, frame_a.size() - pos_a);
      ASSERT_TRUE(conn_a.SendAll(frame_a.data() + pos_a, n, 2000.0).ok());
      pos_a += n;
    }
    if (pos_b < frame_b.size()) {
      const size_t n = std::min(kChunk, frame_b.size() - pos_b);
      ASSERT_TRUE(conn_b.SendAll(frame_b.data() + pos_b, n, 2000.0).ok());
      pos_b += n;
    }
  }

  FrameDecoder dec_a, dec_b;
  auto reply_a = ReadReply(&conn_a, &dec_a);
  auto reply_b = ReadReply(&conn_b, &dec_b);
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  ASSERT_TRUE(reply_b.ok()) << reply_b.status().ToString();
  EXPECT_EQ(reply_a.ValueOrDie(), Reversed(Payload(1, 200)));
  EXPECT_EQ(reply_b.ValueOrDie(), Reversed(Payload(2, 200)));
  server.Shutdown();
}

TEST(ServingTest, MidRequestDisconnectLeavesServerHealthy) {
  TcpTransport server;
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  // A dozen clients die mid-frame: header only, half the payload, or a
  // single byte. None of this may wedge the loop or leak a connection.
  for (int round = 0; round < 12; ++round) {
    auto sock = Dial(server.port());
    ASSERT_TRUE(sock.ok());
    Socket conn = sock.MoveValueUnsafe();
    const std::vector<uint8_t> frame = RequestFrame(Payload(round, 500));
    const size_t cut = 1 + (frame.size() * (round % 3 + 1)) / 5;
    ASSERT_TRUE(conn.SendAll(frame.data(), std::min(cut, frame.size() - 1),
                             2000.0)
                    .ok());
    conn.Close();  // abrupt disconnect with a frame in flight
  }

  // The server still answers a healthy request...
  auto sock = Dial(server.port());
  ASSERT_TRUE(sock.ok());
  Socket conn = sock.MoveValueUnsafe();
  const std::vector<uint8_t> frame = RequestFrame(Payload(99));
  ASSERT_TRUE(conn.SendAll(frame.data(), frame.size(), 2000.0).ok());
  FrameDecoder decoder;
  auto reply = ReadReply(&conn, &decoder);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.ValueOrDie(), Reversed(Payload(99)));
  conn.Close();

  // ... and the dead connections drain: active drops back to zero once the
  // loop has processed the hangups.
  for (int i = 0; i < 100 && server.server_stats().active > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.server_stats().active, 0u);
  server.Shutdown();
}

TEST(ServingTest, CorruptCrcDropsConnectionNotServer) {
  TcpTransport server;
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());
  const uint64_t corrupt_before = server.server_stats().dropped_corrupt;

  auto sock = Dial(server.port());
  ASSERT_TRUE(sock.ok());
  Socket conn = sock.MoveValueUnsafe();
  std::vector<uint8_t> frame = RequestFrame(Payload(7, 100));
  frame[net::kFrameHeaderBytes - 1] ^= 0xFF;  // flip a CRC byte
  ASSERT_TRUE(conn.SendAll(frame.data(), frame.size(), 2000.0).ok());

  // The stream is unusable: the server must close it (we read EOF, not junk).
  uint8_t buf[64];
  auto n = conn.RecvSome(buf, sizeof(buf), 5000.0);
  EXPECT_FALSE(n.ok());
  conn.Close();

  // Exactly a connection died — the server keeps serving.
  for (int i = 0; i < 100 &&
                  server.server_stats().dropped_corrupt == corrupt_before;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(server.server_stats().dropped_corrupt, corrupt_before);

  auto again = Dial(server.port());
  ASSERT_TRUE(again.ok());
  Socket healthy = again.MoveValueUnsafe();
  const std::vector<uint8_t> ok_frame = RequestFrame(Payload(8));
  ASSERT_TRUE(healthy.SendAll(ok_frame.data(), ok_frame.size(), 2000.0).ok());
  FrameDecoder decoder;
  auto reply = ReadReply(&healthy, &decoder);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.ValueOrDie(), Reversed(Payload(8)));
  server.Shutdown();
}

TEST(ServingTest, OversizedFrameIsRejectedCleanly) {
  TcpTransportOptions options;
  options.max_frame_payload = 1024;  // tiny ceiling for the test
  TcpTransport server(options);
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  auto sock = Dial(server.port());
  ASSERT_TRUE(sock.ok());
  Socket conn = sock.MoveValueUnsafe();
  // Hand-craft a header whose length field far exceeds the ceiling; the
  // server must drop the connection on the header alone, before any
  // allocation of the advertised size.
  BufferWriter writer;
  writer.WriteU32(net::kFrameMagic);
  writer.WriteU8(net::kFrameVersion);
  writer.WriteU32(64u << 20);  // claims 64 MiB
  writer.WriteU32(0);          // CRC irrelevant: length check fires first
  const std::vector<uint8_t> header = writer.TakeBytes();
  ASSERT_TRUE(conn.SendAll(header.data(), header.size(), 2000.0).ok());
  uint8_t buf[64];
  EXPECT_FALSE(conn.RecvSome(buf, sizeof(buf), 5000.0).ok());  // EOF
  conn.Close();

  // Within-limit requests still served.
  auto again = Dial(server.port());
  ASSERT_TRUE(again.ok());
  Socket healthy = again.MoveValueUnsafe();
  const std::vector<uint8_t> ok_frame = RequestFrame(Payload(3));
  ASSERT_TRUE(healthy.SendAll(ok_frame.data(), ok_frame.size(), 2000.0).ok());
  FrameDecoder decoder;
  auto reply = ReadReply(&healthy, &decoder);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(server.server_stats().dropped_corrupt, 0u);
  server.Shutdown();
}

TEST(ServingTest, ConnectionFloodBeyondCapIsShedNotServed) {
  TcpTransportOptions options;
  options.max_connections = 2;
  TcpTransport server(options);
  ASSERT_TRUE(RegisterReverser(&server).ok());
  ASSERT_TRUE(server.Listen(0).ok());

  auto a = Dial(server.port());
  auto b = Dial(server.port());
  ASSERT_TRUE(a.ok() && b.ok());
  Socket conn_a = a.MoveValueUnsafe();
  Socket conn_b = b.MoveValueUnsafe();
  // Make sure both are registered with the loop before flooding.
  const std::vector<uint8_t> frame = RequestFrame(Payload(0));
  ASSERT_TRUE(conn_a.SendAll(frame.data(), frame.size(), 2000.0).ok());
  FrameDecoder dec_a;
  ASSERT_TRUE(ReadReply(&conn_a, &dec_a).ok());

  // The third connection is accepted then immediately shed: the client
  // observes EOF, the server counts the rejection, and the two admitted
  // connections keep working.
  auto c = Dial(server.port());
  ASSERT_TRUE(c.ok());
  Socket conn_c = c.MoveValueUnsafe();
  uint8_t buf[16];
  EXPECT_FALSE(conn_c.RecvSome(buf, sizeof(buf), 5000.0).ok());
  EXPECT_GT(server.server_stats().rejected_overload, 0u);

  ASSERT_TRUE(conn_b.SendAll(frame.data(), frame.size(), 2000.0).ok());
  FrameDecoder dec_b;
  auto reply = ReadReply(&conn_b, &dec_b);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.ValueOrDie(), Reversed(Payload(0)));
  server.Shutdown();
}

}  // namespace
}  // namespace mip
