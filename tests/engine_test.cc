#include <gtest/gtest.h>

#include <cmath>

#include "engine/bitmap.h"
#include "engine/column.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/table.h"
#include "engine/value.h"

namespace mip::engine {
namespace {

TEST(ValueTest, KindsAndCoercions) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_EQ(Value::Double(2.5).AsInt(), 2);
  EXPECT_EQ(Value::Bool(true).AsDouble(), 1.0);
  EXPECT_TRUE(std::isnan(Value::Null().AsDouble()));
  EXPECT_FALSE(Value::Null().AsBool());
  EXPECT_TRUE(Value::String("x").AsBool());
  EXPECT_FALSE(Value::String("").AsBool());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToSqlString(), "'hi'");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(ValueTest, Equality) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_TRUE(Value::String("a").Equals(Value::String("a")));
}

TEST(BitmapTest, SetGetCount) {
  Bitmap bm(130, true);
  EXPECT_EQ(bm.CountSet(), 130u);
  EXPECT_TRUE(bm.AllSet());
  bm.Set(0, false);
  bm.Set(64, false);
  bm.Set(129, false);
  EXPECT_EQ(bm.CountSet(), 127u);
  EXPECT_FALSE(bm.Get(64));
  EXPECT_TRUE(bm.Get(65));
}

TEST(BitmapTest, AppendAndAnd) {
  Bitmap a;
  Bitmap b;
  for (int i = 0; i < 70; ++i) {
    a.Append(i % 2 == 0);
    b.Append(i % 3 == 0);
  }
  Bitmap c = Bitmap::And(a, b);
  for (int i = 0; i < 70; ++i) {
    EXPECT_EQ(c.Get(i), i % 6 == 0) << i;
  }
}

TEST(ColumnTest, TypedAppendAndAccess) {
  Column c(DataType::kFloat64);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendDouble(-2.0);
  EXPECT_EQ(c.length(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_FALSE(c.IsValid(1));
  EXPECT_EQ(c.DoubleAt(0), 1.5);
  EXPECT_TRUE(std::isnan(c.AsDoubleAt(1)));
  EXPECT_TRUE(c.ValueAt(1).is_null());
}

TEST(ColumnTest, NoValidityUntilFirstNull) {
  Column c(DataType::kInt64);
  c.AppendInt(1);
  c.AppendInt(2);
  EXPECT_FALSE(c.has_validity());
  c.AppendNull();
  EXPECT_TRUE(c.has_validity());
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_FALSE(c.IsValid(2));
}

TEST(ColumnTest, TakeAndSlice) {
  Column c = Column::FromInts({10, 20, 30, 40});
  Column t = c.Take({3, 1});
  EXPECT_EQ(t.length(), 2u);
  EXPECT_EQ(t.IntAt(0), 40);
  EXPECT_EQ(t.IntAt(1), 20);
  Column s = c.Slice(1, 2);
  EXPECT_EQ(s.IntAt(0), 20);
  EXPECT_EQ(s.IntAt(1), 30);
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.AppendValue(Value::Int(1)).ok());
  EXPECT_TRUE(c.AppendValue(Value::Double(2.9)).ok());  // truncates
  EXPECT_EQ(c.IntAt(1), 2);
  EXPECT_FALSE(c.AppendValue(Value::String("x")).ok());
}

TEST(ColumnTest, NonNullDoubles) {
  Column c(DataType::kFloat64);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  EXPECT_EQ(c.NonNullDoubles(), (std::vector<double>{1.0, 3.0}));
}

Table MakeTestTable() {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"id", DataType::kInt64}).ok());
  EXPECT_TRUE(schema.AddField({"value", DataType::kFloat64}).ok());
  EXPECT_TRUE(schema.AddField({"group", DataType::kString}).ok());
  Table t = Table::Empty(schema);
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Double(10), Value::String("a")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(2), Value::Double(20), Value::String("b")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(3), Value::Null(), Value::String("a")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(4), Value::Double(40), Value::String("b")}).ok());
  return t;
}

TEST(TableTest, SchemaLookup) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.schema().FieldIndex("VALUE"), 1);  // case-insensitive
  EXPECT_EQ(t.schema().FieldIndex("nope"), -1);
  EXPECT_TRUE(t.ColumnByName("group").ok());
  EXPECT_FALSE(t.ColumnByName("nope").ok());
}

TEST(TableTest, MakeValidation) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", DataType::kInt64}).ok());
  EXPECT_FALSE(Table::Make(schema, {}).ok());  // column count mismatch
  EXPECT_FALSE(
      Table::Make(schema, {Column(DataType::kFloat64)}).ok());  // type
  EXPECT_TRUE(Table::Make(schema, {Column::FromInts({1, 2})}).ok());
}

TEST(TableTest, DuplicateFieldRejected) {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"x", DataType::kInt64}).ok());
  EXPECT_FALSE(schema.AddField({"X", DataType::kFloat64}).ok());
}

TEST(TableTest, ConcatChecksSchema) {
  Table a = MakeTestTable();
  Table b = MakeTestTable();
  Table c = *Table::Concat({a, b});
  EXPECT_EQ(c.num_rows(), 8u);
  Schema other;
  ASSERT_TRUE(other.AddField({"id", DataType::kFloat64}).ok());
  Table bad = Table::Empty(other);
  EXPECT_FALSE(Table::Concat({a, bad}).ok());
}

TEST(TableTest, SerializationRoundTrip) {
  Table t = MakeTestTable();
  BufferWriter w;
  SerializeTable(t, &w);
  BufferReader r(w.bytes());
  Table back = *DeserializeTable(&r);
  ASSERT_EQ(back.num_rows(), t.num_rows());
  ASSERT_EQ(back.num_columns(), t.num_columns());
  for (size_t row = 0; row < t.num_rows(); ++row) {
    for (size_t col = 0; col < t.num_columns(); ++col) {
      EXPECT_TRUE(back.At(row, col).Equals(t.At(row, col)))
          << "row " << row << " col " << col;
    }
  }
}

TEST(ExprTest, BindResolvesTypes) {
  Table t = MakeTestTable();
  ExprPtr e = Add(Col("id"), Col("value"));
  ASSERT_TRUE(BindExpr(e.get(), t.schema()).ok());
  EXPECT_EQ(e->result_type, DataType::kFloat64);

  ExprPtr cmp = Gt(Col("value"), LitDouble(15.0));
  ASSERT_TRUE(BindExpr(cmp.get(), t.schema()).ok());
  EXPECT_EQ(cmp->result_type, DataType::kBool);

  ExprPtr ints = Mul(Col("id"), LitInt(2));
  ASSERT_TRUE(BindExpr(ints.get(), t.schema()).ok());
  EXPECT_EQ(ints->result_type, DataType::kInt64);
}

TEST(ExprTest, BindErrors) {
  Table t = MakeTestTable();
  ExprPtr unknown = Col("missing");
  EXPECT_FALSE(BindExpr(unknown.get(), t.schema()).ok());
  ExprPtr bad_arith = Add(Col("group"), LitInt(1));
  EXPECT_FALSE(BindExpr(bad_arith.get(), t.schema()).ok());
  ExprPtr bad_cmp = Eq(Col("group"), LitInt(1));
  EXPECT_FALSE(BindExpr(bad_cmp.get(), t.schema()).ok());
  ExprPtr bad_fn = Call("nosuchfn", {Col("id")});
  EXPECT_FALSE(BindExpr(bad_fn.get(), t.schema()).ok());
  ExprPtr bad_arity = Call("sqrt", {Col("id"), Col("id")});
  EXPECT_FALSE(BindExpr(bad_arity.get(), t.schema()).ok());
}

TEST(ExprTest, ToStringCanonicalForm) {
  ExprPtr e = Add(Col("A"), Mul(LitInt(2), Col("b")));
  EXPECT_EQ(e->ToString(), "(a + (2 * b))");
  EXPECT_TRUE(Aggregate(AggFunc::kSum, Col("x"))->ContainsAggregate());
  EXPECT_FALSE(e->ContainsAggregate());
}

TEST(OperatorsTest, FilterKeepsTrueRows) {
  Table t = MakeTestTable();
  ExprPtr pred = Gt(Col("value"), LitDouble(15.0));
  ASSERT_TRUE(BindExpr(pred.get(), t.schema()).ok());
  Table out = *Filter(t, *pred);
  // Row with NULL value is dropped (NULL predicate is not true).
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.At(0, 0).int_value(), 2);
  EXPECT_EQ(out.At(1, 0).int_value(), 4);
}

TEST(OperatorsTest, ProjectComputesExpressions) {
  Table t = MakeTestTable();
  ExprPtr doubled = Mul(Col("value"), LitDouble(2.0));
  ASSERT_TRUE(BindExpr(doubled.get(), t.schema()).ok());
  Table out = *Project(t, {doubled}, {"twice"});
  EXPECT_EQ(out.schema().field(0).name, "twice");
  EXPECT_EQ(out.At(0, 0).AsDouble(), 20.0);
  EXPECT_TRUE(out.At(2, 0).is_null());  // NULL propagates
}

TEST(OperatorsTest, AggregateAllIgnoresNulls) {
  Table t = MakeTestTable();
  AggregateSpec count_spec{AggFunc::kCount, Col("value"), "cnt"};
  AggregateSpec sum_spec{AggFunc::kSum, Col("value"), "total"};
  AggregateSpec star{AggFunc::kCountStar, nullptr, "rows"};
  ASSERT_TRUE(BindExpr(count_spec.arg.get(), t.schema()).ok());
  ASSERT_TRUE(BindExpr(sum_spec.arg.get(), t.schema()).ok());
  Table out = *AggregateAll(t, {count_spec, sum_spec, star});
  EXPECT_EQ(out.At(0, 0).int_value(), 3);   // count skips NULL
  EXPECT_EQ(out.At(0, 1).AsDouble(), 70.0);
  EXPECT_EQ(out.At(0, 2).int_value(), 4);   // count(*) counts all rows
}

TEST(OperatorsTest, GroupByAggregate) {
  Table t = MakeTestTable();
  ExprPtr key = Col("group");
  ASSERT_TRUE(BindExpr(key.get(), t.schema()).ok());
  AggregateSpec avg_spec{AggFunc::kAvg, Col("value"), "mean_v"};
  ASSERT_TRUE(BindExpr(avg_spec.arg.get(), t.schema()).ok());
  Table out = *GroupByAggregate(t, {key}, {"grp"}, {avg_spec});
  ASSERT_EQ(out.num_rows(), 2u);
  // Groups appear in first-seen order: a then b.
  EXPECT_EQ(out.At(0, 0).string_value(), "a");
  EXPECT_EQ(out.At(0, 1).AsDouble(), 10.0);  // NULL skipped
  EXPECT_EQ(out.At(1, 0).string_value(), "b");
  EXPECT_EQ(out.At(1, 1).AsDouble(), 30.0);
}

TEST(OperatorsTest, MinMaxVarStddev) {
  Table t = MakeTestTable();
  AggregateSpec min_spec{AggFunc::kMin, Col("value"), "lo"};
  AggregateSpec max_spec{AggFunc::kMax, Col("value"), "hi"};
  AggregateSpec var_spec{AggFunc::kVarSamp, Col("value"), "var"};
  AggregateSpec sd_spec{AggFunc::kStddevSamp, Col("value"), "sd"};
  for (auto* s : {&min_spec, &max_spec, &var_spec, &sd_spec}) {
    ASSERT_TRUE(BindExpr(s->arg.get(), t.schema()).ok());
  }
  Table out = *AggregateAll(t, {min_spec, max_spec, var_spec, sd_spec});
  EXPECT_EQ(out.At(0, 0).AsDouble(), 10.0);
  EXPECT_EQ(out.At(0, 1).AsDouble(), 40.0);
  EXPECT_NEAR(out.At(0, 2).AsDouble(), 233.3333333, 1e-6);
  EXPECT_NEAR(out.At(0, 3).AsDouble(), std::sqrt(233.3333333), 1e-6);
}

TEST(OperatorsTest, SortByWithNullsLast) {
  Table t = MakeTestTable();
  Table out = *SortBy(t, {"value"}, {false});  // descending
  EXPECT_EQ(out.At(0, 1).AsDouble(), 40.0);
  EXPECT_EQ(out.At(1, 1).AsDouble(), 20.0);
  EXPECT_EQ(out.At(2, 1).AsDouble(), 10.0);
  EXPECT_TRUE(out.At(3, 1).is_null());  // NULL last regardless of direction
}

TEST(OperatorsTest, HashJoinInnerAndLeft) {
  Table left = MakeTestTable();
  Schema rs;
  ASSERT_TRUE(rs.AddField({"gid", DataType::kString}).ok());
  ASSERT_TRUE(rs.AddField({"label", DataType::kString}).ok());
  Table right = Table::Empty(rs);
  ASSERT_TRUE(right.AppendRow({Value::String("a"), Value::String("alpha")}).ok());

  Table inner = *HashJoin(left, right, "group", "gid", JoinType::kInner);
  EXPECT_EQ(inner.num_rows(), 2u);  // two "a" rows
  EXPECT_EQ(inner.At(0, 4).string_value(), "alpha");

  Table louter = *HashJoin(left, right, "group", "gid", JoinType::kLeft);
  EXPECT_EQ(louter.num_rows(), 4u);
  // "b" rows have NULL right side.
  bool found_null = false;
  for (size_t r = 0; r < louter.num_rows(); ++r) {
    if (louter.At(r, 2).string_value() == "b") {
      EXPECT_TRUE(louter.At(r, 4).is_null());
      found_null = true;
    }
  }
  EXPECT_TRUE(found_null);
}

TEST(OperatorsTest, LimitAndOffset) {
  Table t = MakeTestTable();
  EXPECT_EQ(Limit(t, 2).num_rows(), 2u);
  EXPECT_EQ(Limit(t, 10).num_rows(), 4u);
  Table page = Limit(t, 2, 3);
  EXPECT_EQ(page.num_rows(), 1u);
  EXPECT_EQ(page.At(0, 0).int_value(), 4);
}

}  // namespace
}  // namespace mip::engine
