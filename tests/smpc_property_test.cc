// Parameterized protocol sweeps: both schemes x cluster sizes x thresholds
// x random payloads — the SMPC engine must open the exact plaintext
// aggregate under every legal configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "smpc/cluster.h"
#include "smpc/field.h"
#include "smpc/shamir.h"
#include "smpc/spdz.h"

namespace mip::smpc {
namespace {

// (scheme, num_nodes, threshold, seed)
using SweepParam = std::tuple<SmpcScheme, int, int, int>;

class ClusterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusterSweep, SumOpensPlaintextAggregate) {
  const auto [scheme, nodes, threshold, seed] = GetParam();
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = nodes;
  config.threshold = threshold;
  config.seed = 0xABC0 + static_cast<uint64_t>(seed);
  SmpcCluster cluster(config);

  Rng rng(1000 + seed);
  const size_t n = 1 + rng.NextBounded(50);
  const int contributions = 2 + static_cast<int>(rng.NextBounded(5));
  std::vector<double> truth(n, 0.0);
  for (int c = 0; c < contributions; ++c) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.NextUniform(-1e4, 1e4);
      truth[i] += v[i];
    }
    ASSERT_TRUE(cluster.ImportShares("sweep", v).ok());
  }
  ASSERT_TRUE(cluster.Compute("sweep", SmpcOp::kSum).ok());
  const std::vector<double> opened = *cluster.GetResult("sweep");
  ASSERT_EQ(opened.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(opened[i], truth[i],
                1e-4 * (1.0 + std::fabs(truth[i]) * 1e-6))
        << "element " << i;
  }
}

TEST_P(ClusterSweep, MinMaxPickTheRightElements) {
  const auto [scheme, nodes, threshold, seed] = GetParam();
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = nodes;
  config.threshold = threshold;
  SmpcCluster cluster(config);

  Rng rng(2000 + seed);
  const size_t n = 1 + rng.NextBounded(10);
  const int contributions = 2 + static_cast<int>(rng.NextBounded(3));
  std::vector<double> lo(n, 1e18), hi(n, -1e18);
  for (int c = 0; c < contributions; ++c) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.NextUniform(-500, 500);
      lo[i] = std::min(lo[i], v[i]);
      hi[i] = std::max(hi[i], v[i]);
    }
    ASSERT_TRUE(cluster.ImportShares("mn", v).ok());
    ASSERT_TRUE(cluster.ImportShares("mx", v).ok());
  }
  ASSERT_TRUE(cluster.Compute("mn", SmpcOp::kMin).ok());
  ASSERT_TRUE(cluster.Compute("mx", SmpcOp::kMax).ok());
  const std::vector<double> mins = *cluster.GetResult("mn");
  const std::vector<double> maxs = *cluster.GetResult("mx");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mins[i], lo[i], 1e-4) << i;
    EXPECT_NEAR(maxs[i], hi[i], 1e-4) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullThreshold, ClusterSweep,
    ::testing::Combine(::testing::Values(SmpcScheme::kFullThreshold),
                       ::testing::Values(2, 3, 5, 7),
                       ::testing::Values(1),  // ignored for FT
                       ::testing::Range(0, 3)));

INSTANTIATE_TEST_SUITE_P(
    Shamir, ClusterSweep,
    ::testing::Values(
        // (n, t) pairs with 2t < n so products/comparisons stay legal.
        SweepParam{SmpcScheme::kShamir, 3, 1, 0},
        SweepParam{SmpcScheme::kShamir, 4, 1, 1},
        SweepParam{SmpcScheme::kShamir, 5, 2, 2},
        SweepParam{SmpcScheme::kShamir, 7, 3, 3},
        SweepParam{SmpcScheme::kShamir, 9, 4, 4}));

// Shamir privacy structure: any t shares of a secret are uniformly
// distributed (tested distributionally: the first share of fixed secrets
// should cover the field broadly rather than cluster).
TEST(ShamirDistributionTest, SharesOfFixedSecretSpreadOverField) {
  ShamirScheme scheme(2, 5);
  Rng rng(99);
  int below_half = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    std::vector<uint64_t> shares = scheme.Share(42, &rng);
    if (shares[0] < Field::kPrime / 2) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / trials, 0.5, 0.05);
}

// SPDZ linearity under public constants, swept over party counts.
class SpdzParties : public ::testing::TestWithParam<int> {};

TEST_P(SpdzParties, AffineCombinationOpensCorrectly) {
  const int parties = GetParam();
  SpdzDealer dealer(parties, 55);
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const uint64_t x = rng.NextBounded(1u << 30);
    const uint64_t y = rng.NextBounded(1u << 30);
    const uint64_t c = rng.NextBounded(1u << 20);
    std::vector<SpdzShare> xs = dealer.ShareValue(x);
    std::vector<SpdzShare> ys = dealer.ShareValue(y);
    std::vector<SpdzShare> zs(static_cast<size_t>(parties));
    for (int p = 0; p < parties; ++p) {
      zs[static_cast<size_t>(p)] = Spdz::Add(
          Spdz::MulPublic(xs[static_cast<size_t>(p)], 3),
          Spdz::Sub(ys[static_cast<size_t>(p)],
                    Spdz::MulPublic(ys[static_cast<size_t>(p)], 2)));
      zs[static_cast<size_t>(p)] = Spdz::AddPublic(
          zs[static_cast<size_t>(p)], c, p, dealer.alpha_shares()[p]);
    }
    // 3x + (y - 2y) + c = 3x - y + c.
    const uint64_t expected =
        Field::Add(Field::Sub(Field::Mul(3, x), y), c);
    EXPECT_EQ(*Spdz::Open(zs, dealer.alpha_shares()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, SpdzParties,
                         ::testing::Values(2, 3, 4, 6, 9));

}  // namespace
}  // namespace mip::smpc
