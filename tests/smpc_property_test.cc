// Parameterized protocol sweeps: both schemes x cluster sizes x thresholds
// x random payloads — the SMPC engine must open the exact plaintext
// aggregate under every legal configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/parallel.h"
#include "common/rng.h"
#include "smpc/cluster.h"
#include "smpc/field.h"
#include "smpc/field_vec.h"
#include "smpc/shamir.h"
#include "smpc/spdz.h"

namespace mip::smpc {
namespace {

// (scheme, num_nodes, threshold, seed)
using SweepParam = std::tuple<SmpcScheme, int, int, int>;

class ClusterSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusterSweep, SumOpensPlaintextAggregate) {
  const auto [scheme, nodes, threshold, seed] = GetParam();
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = nodes;
  config.threshold = threshold;
  config.seed = 0xABC0 + static_cast<uint64_t>(seed);
  SmpcCluster cluster(config);

  Rng rng(1000 + seed);
  const size_t n = 1 + rng.NextBounded(50);
  const int contributions = 2 + static_cast<int>(rng.NextBounded(5));
  std::vector<double> truth(n, 0.0);
  for (int c = 0; c < contributions; ++c) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.NextUniform(-1e4, 1e4);
      truth[i] += v[i];
    }
    ASSERT_TRUE(cluster.ImportShares("sweep", v).ok());
  }
  ASSERT_TRUE(cluster.Compute("sweep", SmpcOp::kSum).ok());
  const std::vector<double> opened = *cluster.GetResult("sweep");
  ASSERT_EQ(opened.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(opened[i], truth[i],
                1e-4 * (1.0 + std::fabs(truth[i]) * 1e-6))
        << "element " << i;
  }
}

TEST_P(ClusterSweep, MinMaxPickTheRightElements) {
  const auto [scheme, nodes, threshold, seed] = GetParam();
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = nodes;
  config.threshold = threshold;
  SmpcCluster cluster(config);

  Rng rng(2000 + seed);
  const size_t n = 1 + rng.NextBounded(10);
  const int contributions = 2 + static_cast<int>(rng.NextBounded(3));
  std::vector<double> lo(n, 1e18), hi(n, -1e18);
  for (int c = 0; c < contributions; ++c) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.NextUniform(-500, 500);
      lo[i] = std::min(lo[i], v[i]);
      hi[i] = std::max(hi[i], v[i]);
    }
    ASSERT_TRUE(cluster.ImportShares("mn", v).ok());
    ASSERT_TRUE(cluster.ImportShares("mx", v).ok());
  }
  ASSERT_TRUE(cluster.Compute("mn", SmpcOp::kMin).ok());
  ASSERT_TRUE(cluster.Compute("mx", SmpcOp::kMax).ok());
  const std::vector<double> mins = *cluster.GetResult("mn");
  const std::vector<double> maxs = *cluster.GetResult("mx");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mins[i], lo[i], 1e-4) << i;
    EXPECT_NEAR(maxs[i], hi[i], 1e-4) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullThreshold, ClusterSweep,
    ::testing::Combine(::testing::Values(SmpcScheme::kFullThreshold),
                       ::testing::Values(2, 3, 5, 7),
                       ::testing::Values(1),  // ignored for FT
                       ::testing::Range(0, 3)));

INSTANTIATE_TEST_SUITE_P(
    Shamir, ClusterSweep,
    ::testing::Values(
        // (n, t) pairs with 2t < n so products/comparisons stay legal.
        SweepParam{SmpcScheme::kShamir, 3, 1, 0},
        SweepParam{SmpcScheme::kShamir, 4, 1, 1},
        SweepParam{SmpcScheme::kShamir, 5, 2, 2},
        SweepParam{SmpcScheme::kShamir, 7, 3, 3},
        SweepParam{SmpcScheme::kShamir, 9, 4, 4}));

// Shamir privacy structure: any t shares of a secret are uniformly
// distributed (tested distributionally: the first share of fixed secrets
// should cover the field broadly rather than cluster).
TEST(ShamirDistributionTest, SharesOfFixedSecretSpreadOverField) {
  ShamirScheme scheme(2, 5);
  Rng rng(99);
  int below_half = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    std::vector<uint64_t> shares = scheme.Share(42, &rng);
    if (shares[0] < Field::kPrime / 2) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / trials, 0.5, 0.05);
}

// SPDZ linearity under public constants, swept over party counts.
class SpdzParties : public ::testing::TestWithParam<int> {};

TEST_P(SpdzParties, AffineCombinationOpensCorrectly) {
  const int parties = GetParam();
  SpdzDealer dealer(parties, 55);
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const uint64_t x = rng.NextBounded(1u << 30);
    const uint64_t y = rng.NextBounded(1u << 30);
    const uint64_t c = rng.NextBounded(1u << 20);
    std::vector<SpdzShare> xs = dealer.ShareValue(x);
    std::vector<SpdzShare> ys = dealer.ShareValue(y);
    std::vector<SpdzShare> zs(static_cast<size_t>(parties));
    for (int p = 0; p < parties; ++p) {
      zs[static_cast<size_t>(p)] = Spdz::Add(
          Spdz::MulPublic(xs[static_cast<size_t>(p)], 3),
          Spdz::Sub(ys[static_cast<size_t>(p)],
                    Spdz::MulPublic(ys[static_cast<size_t>(p)], 2)));
      zs[static_cast<size_t>(p)] = Spdz::AddPublic(
          zs[static_cast<size_t>(p)], c, p, dealer.alpha_shares()[p]);
    }
    // 3x + (y - 2y) + c = 3x - y + c.
    const uint64_t expected =
        Field::Add(Field::Sub(Field::Mul(3, x), y), c);
    EXPECT_EQ(*Spdz::Open(zs, dealer.alpha_shares()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, SpdzParties,
                         ::testing::Values(2, 3, 4, 6, 9));

// ---------------------------------------------------------------------------
// Batched-kernel parity battery: every field_vec kernel must be bit-identical
// to the scalar Field:: loop it replaces, across random spans, boundary
// values, and all sizes 0..257 (covers empty, sub-SIMD-width, unaligned
// tails, and multi-register spans).
// ---------------------------------------------------------------------------

constexpr uint64_t kP = Field::kPrime;

std::vector<uint64_t> TestSpan(size_t n, uint64_t salt) {
  // Random field elements with the boundary cases (0, p-1, p, 2^61, ~0)
  // planted at deterministic positions.
  Rng rng(0xFEED0000 + salt);
  std::vector<uint64_t> v(n);
  const uint64_t boundary[] = {0, kP - 1, kP, 1ull << 61, ~0ull};
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i % 7 == 3) ? boundary[(i / 7) % 5] : Field::Random(&rng);
  }
  return v;
}

TEST(FieldVecParity, AllKernelsMatchScalarLoopsForSizes0To257) {
  for (size_t n = 0; n <= 257; ++n) {
    const std::vector<uint64_t> a = TestSpan(n, n);
    const std::vector<uint64_t> b = TestSpan(n, n + 1000);
    const uint64_t c = 0x123456789ABCDEFull % kP;
    const uint64_t x = 7;

    std::vector<uint64_t> got(n), want(n);

    field_vec::ReduceVec(a.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Reduce(a[i]);
    ASSERT_EQ(got, want) << "ReduceVec n=" << n;

    field_vec::AddVec(a.data(), b.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Add(a[i], b[i]);
    ASSERT_EQ(got, want) << "AddVec n=" << n;

    field_vec::SubVec(a.data(), b.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Sub(a[i], b[i]);
    ASSERT_EQ(got, want) << "SubVec n=" << n;

    field_vec::MulVec(a.data(), b.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Mul(a[i], b[i]);
    ASSERT_EQ(got, want) << "MulVec n=" << n;

    field_vec::MulScalarVec(c, a.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Mul(c, a[i]);
    ASSERT_EQ(got, want) << "MulScalarVec n=" << n;

    field_vec::AddScalarVec(c, a.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) want[i] = Field::Add(a[i], c);
    ASSERT_EQ(got, want) << "AddScalarVec n=" << n;

    got = TestSpan(n, n + 2000);
    want = got;
    field_vec::MulAccumVec(a.data(), b.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) {
      want[i] = Field::Add(want[i], Field::Mul(a[i], b[i]));
    }
    ASSERT_EQ(got, want) << "MulAccumVec n=" << n;

    got = TestSpan(n, n + 3000);
    want = got;
    field_vec::MulScalarAccumVec(c, a.data(), n, got.data());
    for (size_t i = 0; i < n; ++i) {
      want[i] = Field::Add(want[i], Field::Mul(c, a[i]));
    }
    ASSERT_EQ(got, want) << "MulScalarAccumVec n=" << n;

    got = TestSpan(n, n + 4000);
    want = got;
    field_vec::HornerStepVec(got.data(), x, a.data(), n);
    for (size_t i = 0; i < n; ++i) {
      want[i] = Field::Add(Field::Mul(want[i], x), a[i]);
    }
    ASSERT_EQ(got, want) << "HornerStepVec n=" << n;

    uint64_t s = 0;
    for (size_t i = 0; i < n; ++i) s = Field::Add(s, Field::Reduce(a[i]));
    std::vector<uint64_t> reduced(n);
    field_vec::ReduceVec(a.data(), n, reduced.data());
    ASSERT_EQ(field_vec::SumVec(reduced.data(), n), s) << "SumVec n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Bulk rejection sampling: RandomVec must pin the exact scalar stream —
// the same values AND the same Rng state afterwards.
// ---------------------------------------------------------------------------

TEST(RandomVecDeterminism, MatchesScalarStreamAndState) {
  for (const size_t n : {0ul, 1ul, 7ul, 256ul, 257ul, 5000ul}) {
    Rng scalar_rng(0xD00D + n);
    Rng batch_rng(0xD00D + n);
    std::vector<uint64_t> want(n);
    for (auto& v : want) v = Field::Random(&scalar_rng);
    std::vector<uint64_t> got(n);
    Field::RandomVec(got.data(), n, &batch_rng);
    EXPECT_EQ(got, want) << "n=" << n;
    // State parity: the next draws must agree too.
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(batch_rng.NextUint64(), scalar_rng.NextUint64());
    }
  }
}

TEST(RandomVecDeterminism, AcceptFieldWordsCompactsRejectionsInOrder) {
  // The mask keeps the low 61 bits; a word whose low 61 bits are all ones
  // masks to p itself and must be rejected (probability 2^-61 in the wild,
  // so we craft it).
  const uint64_t all_ones_61 = (1ull << 61) - 1;  // == kPrime
  const uint64_t raw[] = {5, all_ones_61, 7, ~0ull, (1ull << 61) | 12, 9};
  uint64_t out[6] = {};
  const size_t kept = Field::AcceptFieldWords(raw, 6, out);
  ASSERT_EQ(kept, 4u);  // two all-ones words rejected
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out[2], 12u);  // masked to low 61 bits
  EXPECT_EQ(out[3], 9u);
  // In-place aliasing (the RandomVec compaction mode).
  uint64_t inplace[] = {5, all_ones_61, 7, ~0ull, (1ull << 61) | 12, 9};
  EXPECT_EQ(Field::AcceptFieldWords(inplace, 6, inplace), 4u);
  EXPECT_EQ(inplace[0], 5u);
  EXPECT_EQ(inplace[3], 9u);
}

// ---------------------------------------------------------------------------
// Dealer batch parity: batched sharing / triple generation must emit the
// bit-identical shares the scalar path emits for the same seed, and leave
// the dealer in the same state.
// ---------------------------------------------------------------------------

void ExpectMatrixEq(const SpdzMatrix& got, const SpdzMatrix& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t p = 0; p < got.size(); ++p) {
    EXPECT_EQ(got[p].values, want[p].values) << what << " values party " << p;
    EXPECT_EQ(got[p].macs, want[p].macs) << what << " macs party " << p;
  }
}

TEST(SpdzBatchParity, ShareVectorBatchMatchesScalar) {
  for (const int parties : {1, 2, 3, 7}) {
    for (const size_t n : {0ul, 1ul, 13ul, 300ul}) {
      SpdzDealer scalar(parties, 42);
      SpdzDealer batch(parties, 42);
      Rng vals(99);
      std::vector<uint64_t> xs(n);
      for (auto& x : xs) x = Field::Random(&vals);
      const SpdzMatrix want = ToMatrix(scalar.ShareVector(xs));
      const SpdzMatrix got = batch.ShareVectorBatch(xs);
      ExpectMatrixEq(got, want, "share");
      // Dealer state parity: the next triple from each must agree.
      const auto t1 = scalar.MakeTriple();
      const auto t2 = batch.MakeTriple();
      for (int p = 0; p < parties; ++p) {
        EXPECT_EQ(t1[static_cast<size_t>(p)].a.value,
                  t2[static_cast<size_t>(p)].a.value);
        EXPECT_EQ(t1[static_cast<size_t>(p)].c.mac,
                  t2[static_cast<size_t>(p)].c.mac);
      }
    }
  }
}

TEST(SpdzBatchParity, MakeTriplesMatchesRepeatedMakeTriple) {
  for (const int parties : {2, 3, 5}) {
    SpdzDealer scalar(parties, 77);
    SpdzDealer batch(parties, 77);
    const size_t count = 64;
    std::vector<std::vector<SpdzTriple>> want;
    for (size_t i = 0; i < count; ++i) want.push_back(scalar.MakeTriple());
    const SpdzTripleBlock got = batch.MakeTriples(count);
    ASSERT_EQ(got.size(), count);
    for (size_t t = 0; t < count; ++t) {
      for (size_t p = 0; p < static_cast<size_t>(parties); ++p) {
        EXPECT_EQ(got.a[p].values[t], want[t][p].a.value);
        EXPECT_EQ(got.a[p].macs[t], want[t][p].a.mac);
        EXPECT_EQ(got.b[p].values[t], want[t][p].b.value);
        EXPECT_EQ(got.b[p].macs[t], want[t][p].b.mac);
        EXPECT_EQ(got.c[p].values[t], want[t][p].c.value);
        EXPECT_EQ(got.c[p].macs[t], want[t][p].c.mac);
      }
    }
  }
}

TEST(SpdzBatchParity, TakeTriplesMatchesRepeatedTakeTriple) {
  // Pool partially covers the demand: the block must pop LIFO first, then
  // batch-generate the tail exactly as on-demand TakeTriple would.
  SpdzDealer scalar(3, 123);
  SpdzDealer batch(3, 123);
  scalar.PrecomputeTriplesScalar(10);
  batch.PrecomputeTriples(10);
  const size_t want_count = 25;
  std::vector<std::vector<SpdzTriple>> want;
  for (size_t i = 0; i < want_count; ++i) want.push_back(scalar.TakeTriple());
  const SpdzTripleBlock got = batch.TakeTriples(want_count);
  ASSERT_EQ(got.size(), want_count);
  EXPECT_EQ(batch.triples_generated_online(), 15u);
  EXPECT_EQ(batch.pool_size(), 0u);
  for (size_t t = 0; t < want_count; ++t) {
    for (size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(got.a[p].values[t], want[t][p].a.value) << t;
      EXPECT_EQ(got.b[p].macs[t], want[t][p].b.mac) << t;
      EXPECT_EQ(got.c[p].values[t], want[t][p].c.value) << t;
    }
  }
}

TEST(SpdzBatchParity, OpenVecAndMultiplyVecMatchScalar) {
  SpdzDealer dealer(4, 314);
  const size_t n = 100;
  Rng vals(314);
  std::vector<uint64_t> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = Field::Random(&vals);
    ys[i] = Field::Random(&vals);
  }
  const SpdzMatrix xm = dealer.ShareVectorBatch(xs);
  const SpdzMatrix ym = dealer.ShareVectorBatch(ys);

  // OpenVec == per-element Open.
  std::vector<uint64_t> opened;
  ASSERT_TRUE(Spdz::OpenVec(xm, dealer.alpha_shares(), {}, &opened).ok());
  ASSERT_EQ(opened.size(), n);
  for (size_t e = 0; e < n; ++e) {
    std::vector<SpdzShare> shares(xm.size());
    for (size_t p = 0; p < xm.size(); ++p) {
      shares[p] = {xm[p].values[e], xm[p].macs[e]};
    }
    EXPECT_EQ(opened[e], *Spdz::Open(shares, dealer.alpha_shares())) << e;
  }

  // MultiplyVec == per-element Multiply with the matching triple.
  const SpdzTripleBlock triples = dealer.MakeTriples(n);
  SpdzMatrix z;
  ASSERT_TRUE(Spdz::MultiplyVec(xm, ym, triples, dealer.alpha_shares(), {},
                                &z).ok());
  for (size_t e = 0; e < n; ++e) {
    std::vector<SpdzShare> xe(xm.size()), ye(xm.size());
    std::vector<SpdzTriple> triple(xm.size());
    for (size_t p = 0; p < xm.size(); ++p) {
      xe[p] = {xm[p].values[e], xm[p].macs[e]};
      ye[p] = {ym[p].values[e], ym[p].macs[e]};
      triple[p] = {{triples.a[p].values[e], triples.a[p].macs[e]},
                   {triples.b[p].values[e], triples.b[p].macs[e]},
                   {triples.c[p].values[e], triples.c[p].macs[e]}};
    }
    const auto want = *Spdz::Multiply(xe, ye, triple, dealer.alpha_shares());
    for (size_t p = 0; p < xm.size(); ++p) {
      EXPECT_EQ(z[p].values[e], want[p].value) << "e=" << e << " p=" << p;
      EXPECT_EQ(z[p].macs[e], want[p].mac) << "e=" << e << " p=" << p;
    }
  }
}

TEST(SpdzBatchParity, OpenVecAbortsOnTamperedLimb) {
  SpdzDealer dealer(3, 2718);
  std::vector<uint64_t> xs = {11, 22, 33, 44};
  SpdzMatrix m = dealer.ShareVectorBatch(xs);
  std::vector<uint64_t> opened;
  ASSERT_TRUE(Spdz::OpenVec(m, dealer.alpha_shares(), {}, &opened).ok());
  m[1].values[2] = Field::Add(m[1].values[2], 1);  // flip one limb
  const Status st = Spdz::OpenVec(m, dealer.alpha_shares(), {}, &opened);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kSecurityError);
}

// ---------------------------------------------------------------------------
// Shamir batch parity.
// ---------------------------------------------------------------------------

TEST(ShamirBatchParity, ShareVectorBatchMatchesScalar) {
  for (const auto& [nodes, t] : std::vector<std::pair<int, int>>{
           {3, 1}, {5, 2}, {7, 3}, {4, 0}}) {
    ShamirScheme scheme(t, nodes);
    for (const size_t n : {0ul, 1ul, 9ul, 250ul}) {
      Rng scalar_rng(500 + n);
      Rng batch_rng(500 + n);
      Rng vals(600 + n);
      std::vector<uint64_t> secrets(n);
      for (auto& s : secrets) s = Field::Random(&vals);
      const auto want = scheme.ShareVector(secrets, &scalar_rng);
      const auto got = scheme.ShareVectorBatch(secrets, &batch_rng);
      EXPECT_EQ(got, want) << "nodes=" << nodes << " t=" << t << " n=" << n;
      EXPECT_EQ(batch_rng.NextUint64(), scalar_rng.NextUint64());
    }
  }
}

TEST(ShamirBatchParity, MultiplyReshareBatchAndReconstructMatchScalar) {
  ShamirScheme scheme(2, 5);
  const size_t n = 60;
  Rng share_rng(808);
  Rng vals(809);
  std::vector<uint64_t> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = Field::Random(&vals);
    ys[i] = Field::Random(&vals);
  }
  const auto xm = scheme.ShareVector(xs, &share_rng);
  const auto ym = scheme.ShareVector(ys, &share_rng);
  Rng scalar_rng(77);
  Rng batch_rng(77);
  const auto want = *scheme.MultiplyReshare(xm, ym, &scalar_rng);
  const auto got = *scheme.MultiplyReshareBatch(xm, ym, &batch_rng);
  EXPECT_EQ(got, want);
  EXPECT_EQ(batch_rng.NextUint64(), scalar_rng.NextUint64());
  EXPECT_EQ(*scheme.ReconstructVectorBatch(got),
            *scheme.ReconstructVector(want));
}

// ---------------------------------------------------------------------------
// Cluster-level parity: batched vs scalar mode must produce bit-identical
// opened results for the same seed, at 1 and 8 threads. The vectors are
// larger than one morsel grain so the 8-thread run genuinely chunks.
// ---------------------------------------------------------------------------

std::vector<double> RunCluster(SmpcScheme scheme, SmpcOp op, bool batched,
                               ThreadPool* pool, size_t n,
                               int contributions) {
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = 3;
  config.threshold = 1;
  config.use_batched_kernels = batched;
  config.pool = pool;
  SmpcCluster cluster(config);
  if (scheme == SmpcScheme::kFullThreshold && op == SmpcOp::kProduct) {
    cluster.PrecomputeTriples(n * static_cast<size_t>(contributions));
  }
  Rng rng(4242);
  for (int c = 0; c < contributions; ++c) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.NextUniform(-100.0, 100.0);
    EXPECT_TRUE(cluster.ImportShares("job", v).ok());
  }
  EXPECT_TRUE(cluster.Compute("job", op).ok());
  return *cluster.GetResult("job");
}

using ParityParam = std::tuple<SmpcScheme, SmpcOp>;
class ClusterModeParity : public ::testing::TestWithParam<ParityParam> {};

TEST_P(ClusterModeParity, BatchedEqualsScalarAt1And8Threads) {
  const auto [scheme, op] = GetParam();
  // kSum exercises the >grain morsel split; the multiplication-heavy ops
  // use a smaller n to keep the scalar reference fast.
  const size_t n = op == SmpcOp::kSum ? 40000 : 96;
  const int contributions = 3;
  const std::vector<double> scalar =
      RunCluster(scheme, op, /*batched=*/false, nullptr, n, contributions);
  const std::vector<double> batched1 =
      RunCluster(scheme, op, /*batched=*/true, nullptr, n, contributions);
  ThreadPool pool(8);
  const std::vector<double> batched8 =
      RunCluster(scheme, op, /*batched=*/true, &pool, n, contributions);
  // Bit-identical, not approximately equal: the batched kernels reproduce
  // the scalar limbs exactly, so the decoded doubles match bit for bit.
  ASSERT_EQ(batched1.size(), scalar.size());
  ASSERT_EQ(batched8.size(), scalar.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(batched1[i], scalar[i]) << "1-thread element " << i;
    EXPECT_EQ(batched8[i], scalar[i]) << "8-thread element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndOps, ClusterModeParity,
    ::testing::Values(ParityParam{SmpcScheme::kFullThreshold, SmpcOp::kSum},
                      ParityParam{SmpcScheme::kFullThreshold,
                                  SmpcOp::kProduct},
                      ParityParam{SmpcScheme::kFullThreshold, SmpcOp::kMin},
                      ParityParam{SmpcScheme::kFullThreshold, SmpcOp::kMax},
                      ParityParam{SmpcScheme::kShamir, SmpcOp::kSum},
                      ParityParam{SmpcScheme::kShamir, SmpcOp::kProduct},
                      ParityParam{SmpcScheme::kShamir, SmpcOp::kMin},
                      ParityParam{SmpcScheme::kShamir, SmpcOp::kUnion}));

TEST(ClusterBatchedTamper, BatchedMacCheckStillAborts) {
  SmpcConfig config;
  config.scheme = SmpcScheme::kFullThreshold;
  config.use_batched_kernels = true;
  SmpcCluster cluster(config);
  std::vector<double> v = {1.5, -2.25, 3.0, 4.75};
  ASSERT_TRUE(cluster.ImportShares("t", v).ok());
  ASSERT_TRUE(cluster.ImportShares("t", v).ok());
  // Flip one limb of one node's share of one element.
  ASSERT_TRUE(cluster.TamperWithShare(1, "t", 0, 2, 99).ok());
  const Status st = cluster.Compute("t", SmpcOp::kSum);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kSecurityError);
}

}  // namespace
}  // namespace mip::smpc
