// mip_gateway: the multi-tenant SQL serving front end as its own OS process.
//
// Dials a set of mip_worker daemons, builds a federated merge view over
// their shared dataset on the Master's local engine, and serves "run_sql" /
// "metrics" requests from many concurrent clients through a
// federation::Gateway (admission control, per-tenant quotas, result cache).
//
//   ./build/tools/mip_gateway --port=0 --dataset=linreg \
//       --worker=hospital_0:127.0.0.1:9101 --worker=hospital_1:127.0.0.1:9102
//
// On success it prints one line to stdout:
//
//   MIP_GATEWAY READY id=<id> port=<port> view=<merge table or local>
//
// and then serves until stdin reaches EOF (same lifetime contract as
// mip_worker: the parent owns the pipe). With no --worker flags the gateway
// serves the Master's local engine alone — useful for single-node smoke
// tests.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "federation/gateway.h"
#include "federation/master.h"
#include "net/tcp_transport.h"
#include "serve_until_eof.h"
#include "storage/store.h"

namespace {

using mip::Status;

struct WorkerAddr {
  std::string id;
  std::string host;
  int port = 0;
};

struct GatewayFlags {
  std::string id = "gateway";
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  std::string dataset = "linreg";
  std::vector<WorkerAddr> workers;
  size_t max_in_flight = 64;
  size_t per_tenant = 16;
  size_t cache_capacity = 128;
  bool cache_enabled = true;
  int serve_threads = 4;
  double read_deadline_ms = 0.0;
  int wire_version = mip::net::kFrameVersion;
  /// When set, attaches a disk-backed segment store under this directory
  /// to the Master's local engine: its tables become queryable (and
  /// INSERT-able) alongside the federated view, and survive restarts.
  std::string data_dir;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Status ParseWorker(const std::string& spec, WorkerAddr* out) {
  const size_t c1 = spec.find(':');
  const size_t c2 = spec.rfind(':');
  if (c1 == std::string::npos || c2 == c1) {
    return Status::InvalidArgument("--worker wants id:host:port, got '" +
                                   spec + "'");
  }
  out->id = spec.substr(0, c1);
  out->host = spec.substr(c1 + 1, c2 - c1 - 1);
  out->port = std::atoi(spec.substr(c2 + 1).c_str());
  if (out->id.empty() || out->host.empty() || out->port <= 0) {
    return Status::InvalidArgument("--worker wants id:host:port, got '" +
                                   spec + "'");
  }
  return Status::OK();
}

Status ParseFlags(int argc, char** argv, GatewayFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "id", &v)) {
      flags->id = v;
    } else if (ParseFlag(arg, "host", &v)) {
      flags->host = v;
    } else if (ParseFlag(arg, "port", &v)) {
      flags->port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "dataset", &v)) {
      flags->dataset = v;
    } else if (ParseFlag(arg, "worker", &v)) {
      WorkerAddr w;
      MIP_RETURN_NOT_OK(ParseWorker(v, &w));
      flags->workers.push_back(w);
    } else if (ParseFlag(arg, "max-in-flight", &v)) {
      flags->max_in_flight = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "per-tenant", &v)) {
      flags->per_tenant = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "cache-capacity", &v)) {
      flags->cache_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--no-cache") {
      flags->cache_enabled = false;
    } else if (ParseFlag(arg, "serve-threads", &v)) {
      flags->serve_threads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "read-deadline-ms", &v)) {
      flags->read_deadline_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "wire-version", &v)) {
      flags->wire_version = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "data-dir", &v)) {
      flags->data_dir = v;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (flags->wire_version < mip::net::kFrameVersionMin ||
      flags->wire_version > mip::net::kFrameVersion) {
    return Status::InvalidArgument("--wire-version must be between " +
                                   std::to_string(mip::net::kFrameVersionMin) +
                                   " and " +
                                   std::to_string(mip::net::kFrameVersion));
  }
  return Status::OK();
}

Status Run(const GatewayFlags& flags) {
  // One transport plays both roles: server for the tenants dialing us,
  // client for the Master's remote-table traffic toward the workers.
  mip::net::TcpTransportOptions options;
  options.bind_host = flags.host;
  options.wire_version = static_cast<uint8_t>(flags.wire_version);
  options.serve_threads = flags.serve_threads;
  options.read_deadline_ms = flags.read_deadline_ms;
  mip::net::TcpTransport transport(options);
  MIP_RETURN_NOT_OK(transport.Listen(flags.port));

  mip::federation::MasterNode master;
  master.set_transport(&transport);
  for (const WorkerAddr& w : flags.workers) {
    transport.AddPeer(w.id, w.host, w.port);
    MIP_RETURN_NOT_OK(master.AddRemoteWorker(w.id, {flags.dataset}));
  }
  std::string view = "local";
  if (!flags.workers.empty()) {
    MIP_ASSIGN_OR_RETURN(view, master.CreateFederatedView(flags.dataset));
  }

  std::unique_ptr<mip::storage::StorageEngine> store;
  if (!flags.data_dir.empty()) {
    // Open builds any ordered index the manifest is missing, so even a
    // pre-index data directory boots fully indexed; the background thread
    // then keeps flush segments folded into sorted compaction groups.
    MIP_ASSIGN_OR_RETURN(store,
                         mip::storage::StorageEngine::Open(flags.data_dir));
    MIP_RETURN_NOT_OK(master.local_db().AttachStorage(store.get()));
    store->StartBackgroundCompaction();
  }

  mip::federation::GatewayOptions gw_options;
  gw_options.node_id = flags.id;
  gw_options.max_in_flight = flags.max_in_flight;
  gw_options.per_tenant_in_flight = flags.per_tenant;
  gw_options.cache_capacity = flags.cache_capacity;
  gw_options.cache_enabled = flags.cache_enabled;
  mip::federation::Gateway gateway(&master.local_db(), gw_options);
  gateway.set_link_source(&transport);
  gateway.set_smpc_source(&master.smpc());
  MIP_RETURN_NOT_OK(gateway.Attach(&transport));

  std::printf("MIP_GATEWAY READY id=%s port=%d view=%s\n", flags.id.c_str(),
              transport.port(), view.c_str());
  std::fflush(stdout);

  mip::tools::InstallBenignSignalHandler();
  mip::tools::ServeUntilStdinEof();
  transport.Shutdown();
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  GatewayFlags flags;
  Status st = ParseFlags(argc, argv, &flags);
  if (st.ok()) st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "mip_gateway failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
