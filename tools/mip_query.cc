// mip_query: load-generating SQL client for a mip_gateway (or mip_worker).
//
// Sends "run_sql" envelopes over TCP and prints every result table as
// deterministic text, in request order regardless of --concurrency — so the
// CI smoke can diff a 50-way concurrent run byte-for-byte against a serial
// one.
//
//   ./build/tools/mip_query --port=9100 --sql="SELECT * FROM t" --repeat=3
//   printf 'SELECT 1\nSELECT 2\n' | ./build/tools/mip_query --port=9100
//
// Each request prints a "== <sql>" header followed by the table (all rows).
// A typed BUSY reply (kResourceExhausted) is retried with exponential
// backoff up to --busy-retries — the cooperative client behavior the
// gateway's load shedding is designed for. --metrics fetches the gateway's
// metrics text instead of running SQL.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/status.h"
#include "engine/table.h"
#include "net/tcp_transport.h"

namespace {

using mip::Result;
using mip::Status;

struct QueryFlags {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string to = "gateway";  ///< endpoint id (use the worker id for workers)
  std::string tenant = "client";
  std::vector<std::string> sqls;
  int repeat = 1;       ///< repetitions of the whole SQL list
  int concurrency = 1;  ///< worker threads issuing requests
  int busy_retries = 8;
  double timeout_ms = 30000.0;
  int wire_version = mip::net::kFrameVersion;
  bool metrics = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Status ParseFlags(int argc, char** argv, QueryFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "host", &v)) {
      flags->host = v;
    } else if (ParseFlag(arg, "port", &v)) {
      flags->port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "to", &v)) {
      flags->to = v;
    } else if (ParseFlag(arg, "tenant", &v)) {
      flags->tenant = v;
    } else if (ParseFlag(arg, "sql", &v)) {
      flags->sqls.push_back(v);
    } else if (ParseFlag(arg, "repeat", &v)) {
      flags->repeat = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "concurrency", &v)) {
      flags->concurrency = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "busy-retries", &v)) {
      flags->busy_retries = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "timeout-ms", &v)) {
      flags->timeout_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "wire-version", &v)) {
      flags->wire_version = std::atoi(v.c_str());
    } else if (arg == "--metrics") {
      flags->metrics = true;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (flags->port <= 0) {
    return Status::InvalidArgument("--port is required");
  }
  if (flags->repeat < 1 || flags->concurrency < 1) {
    return Status::InvalidArgument("--repeat/--concurrency must be >= 1");
  }
  return Status::OK();
}

// One request with cooperative backoff on typed BUSY replies.
Result<std::string> RunOne(mip::net::TcpTransport* transport,
                           const QueryFlags& flags, const std::string& sql) {
  double backoff_ms = 1.0;
  for (int attempt = 0;; ++attempt) {
    mip::BufferWriter writer;
    writer.WriteString(sql);
    mip::net::Envelope envelope{flags.tenant, flags.to, "run_sql", "",
                                writer.TakeBytes()};
    envelope.deadline_ms = flags.timeout_ms;
    Result<std::vector<uint8_t>> reply = transport->Send(std::move(envelope));
    if (!reply.ok() &&
        reply.status().code() == mip::StatusCode::kResourceExhausted &&
        attempt < flags.busy_retries) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms));
      backoff_ms *= 2.0;
      continue;
    }
    MIP_RETURN_NOT_OK(reply.status());
    mip::BufferReader reader(reply.ValueOrDie());
    MIP_ASSIGN_OR_RETURN(mip::engine::Table table,
                         mip::engine::DeserializeTable(&reader));
    return table.ToString(table.num_rows() + 1);
  }
}

Status Run(const QueryFlags& flags) {
  mip::net::TcpTransportOptions options;
  options.wire_version = static_cast<uint8_t>(flags.wire_version);
  options.io_timeout_ms = flags.timeout_ms;
  // Client only: no Listen(). Concurrent sends open distinct connections.
  options.max_idle_per_peer = static_cast<size_t>(flags.concurrency);
  mip::net::TcpTransport transport(options);
  transport.AddPeer(flags.to, flags.host, flags.port);

  if (flags.metrics) {
    mip::net::Envelope envelope{flags.tenant, flags.to, "metrics", "", {}};
    envelope.deadline_ms = flags.timeout_ms;
    MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                         transport.Send(std::move(envelope)));
    std::fwrite(reply.data(), 1, reply.size(), stdout);
    return Status::OK();
  }

  std::vector<std::string> sqls = flags.sqls;
  if (sqls.empty()) {
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sqls.push_back(line);
    }
  }
  if (sqls.empty()) {
    return Status::InvalidArgument("no SQL: pass --sql=... or pipe lines in");
  }

  std::vector<std::string> requests;
  requests.reserve(sqls.size() * static_cast<size_t>(flags.repeat));
  for (int r = 0; r < flags.repeat; ++r) {
    for (const std::string& sql : sqls) requests.push_back(sql);
  }

  // Issue concurrently, print in request order: output is a pure function
  // of the request list, never of scheduling.
  std::vector<std::string> outputs(requests.size());
  std::vector<Status> statuses(requests.size(), Status::OK());
  {
    mip::ThreadPool pool(flags.concurrency);
    pool.ParallelFor(requests.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        Result<std::string> text = RunOne(&transport, flags, requests[i]);
        if (text.ok()) {
          outputs[i] = text.MoveValueUnsafe();
        } else {
          statuses[i] = text.status();
        }
      }
    });
  }

  Status first_error = Status::OK();
  for (size_t i = 0; i < requests.size(); ++i) {
    std::printf("== %s\n", requests[i].c_str());
    if (statuses[i].ok()) {
      std::fputs(outputs[i].c_str(), stdout);
    } else {
      std::printf("ERROR %s\n", statuses[i].ToString().c_str());
      if (first_error.ok()) first_error = statuses[i];
    }
  }
  std::fflush(stdout);
  return first_error;
}

}  // namespace

int main(int argc, char** argv) {
  QueryFlags flags;
  Status st = ParseFlags(argc, argv, &flags);
  if (st.ok()) st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "mip_query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
