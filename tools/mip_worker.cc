// mip_worker: a MIP federation Worker running as its own OS process.
//
// Binds a TCP transport, registers the portable local computation steps and
// serves "local_run" / "fetch_table" / "run_sql" requests from a remote
// Master. The paper's deployment runs Master, Workers and the SMPC front end
// as separate services; this daemon is that Worker service.
//
//   ./build/tools/mip_worker --id=hospital_0 --port=0 --dataset=linreg
//       --rows=200 --seed=11 --weights=1.5,-2.0,0.8 [--wire-version=1]
//
// On success it prints one line to stdout:
//
//   MIP_WORKER READY id=<id> port=<port>
//
// and then serves until stdin reaches EOF (so a parent process — or a shell
// pipe — owns its lifetime: closing the pipe stops the worker cleanly).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "federation/worker.h"
#include "federation/worker_steps.h"
#include "net/tcp_transport.h"
#include "serve_until_eof.h"
#include "storage/store.h"

namespace {

using mip::Status;

struct WorkerFlags {
  std::string id = "worker";
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  std::string dataset = "linreg";
  size_t rows = 200;
  uint64_t seed = 1;
  std::vector<double> weights = {1.5, -2.0, 0.8};
  double noise = 0.1;
  /// Protocol version to advertise (net/frame.h). Setting 1 emulates a
  /// pre-codec build: replies stay fixed-width even to codec-capable
  /// Masters — the knob for mixed-cohort interop testing.
  int wire_version = mip::net::kFrameVersion;
  /// Evict connections stuck mid-frame after this budget (0 = never).
  double read_deadline_ms = 0.0;
  /// When set, the dataset lives in a disk-backed segment store under this
  /// directory instead of RAM: first boot ingests the synthetic table and
  /// flushes it to segments; every restart serves those same bytes back,
  /// regardless of --seed/--rows (which only shape the first ingest).
  std::string data_dir;
};

std::vector<double> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atof(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Status ParseFlags(int argc, char** argv, WorkerFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "id", &v)) {
      flags->id = v;
    } else if (ParseFlag(arg, "host", &v)) {
      flags->host = v;
    } else if (ParseFlag(arg, "port", &v)) {
      flags->port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "dataset", &v)) {
      flags->dataset = v;
    } else if (ParseFlag(arg, "rows", &v)) {
      flags->rows = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "seed", &v)) {
      flags->seed = static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "weights", &v)) {
      flags->weights = ParseDoubleList(v);
    } else if (ParseFlag(arg, "noise", &v)) {
      flags->noise = std::atof(v.c_str());
    } else if (ParseFlag(arg, "wire-version", &v)) {
      flags->wire_version = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "read-deadline-ms", &v)) {
      flags->read_deadline_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "data-dir", &v)) {
      flags->data_dir = v;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (flags->weights.empty()) {
    return Status::InvalidArgument("--weights must name at least one feature");
  }
  if (flags->wire_version < mip::net::kFrameVersionMin ||
      flags->wire_version > mip::net::kFrameVersion) {
    return Status::InvalidArgument("--wire-version must be between " +
                                   std::to_string(mip::net::kFrameVersionMin) +
                                   " and " +
                                   std::to_string(mip::net::kFrameVersion));
  }
  return Status::OK();
}

Status Run(const WorkerFlags& flags) {
  auto functions = std::make_shared<mip::federation::LocalFunctionRegistry>();
  MIP_RETURN_NOT_OK(mip::federation::RegisterPortableSteps(functions.get()));

  mip::federation::WorkerNode worker(flags.id, functions, flags.seed);
  std::unique_ptr<mip::storage::StorageEngine> store;
  if (!flags.data_dir.empty()) {
    MIP_ASSIGN_OR_RETURN(store,
                         mip::storage::StorageEngine::Open(flags.data_dir));
    bool have_dataset = false;
    for (const std::string& name : store->StorageTableNames()) {
      if (name == mip::ToLower(flags.dataset)) have_dataset = true;
    }
    if (!have_dataset) {
      // First boot: seed the store, flush to segments so restarts serve
      // the identical persisted bytes.
      MIP_RETURN_NOT_OK(store->AppendRows(
          flags.dataset,
          mip::federation::MakeSyntheticLinregTable(flags.seed, flags.rows,
                                                    flags.weights,
                                                    flags.noise)));
      MIP_RETURN_NOT_OK(store->Flush());
    }
    MIP_RETURN_NOT_OK(worker.AttachDiskStorage(store.get()));
    // Open already rebuilt any missing ordered index; from here the
    // background thread folds small flush segments into sorted groups.
    store->StartBackgroundCompaction();
  } else {
    MIP_RETURN_NOT_OK(worker.LoadDataset(
        flags.dataset,
        mip::federation::MakeSyntheticLinregTable(flags.seed, flags.rows,
                                                  flags.weights,
                                                  flags.noise)));
  }

  mip::net::TcpTransportOptions options;
  options.bind_host = flags.host;
  options.wire_version = static_cast<uint8_t>(flags.wire_version);
  options.read_deadline_ms = flags.read_deadline_ms;
  mip::net::TcpTransport transport(options);
  MIP_RETURN_NOT_OK(transport.Listen(flags.port));
  MIP_RETURN_NOT_OK(worker.AttachToBus(&transport));

  std::printf("MIP_WORKER READY id=%s port=%d\n", flags.id.c_str(),
              transport.port());
  std::fflush(stdout);

  // Serve until the parent closes our stdin (or sends "quit"); transient
  // signals must not take the daemon down (see serve_until_eof.h).
  mip::tools::InstallBenignSignalHandler();
  mip::tools::ServeUntilStdinEof();
  transport.Shutdown();
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  WorkerFlags flags;
  Status st = ParseFlags(argc, argv, &flags);
  if (st.ok()) st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "mip_worker failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
