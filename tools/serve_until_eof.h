#ifndef MIP_TOOLS_SERVE_UNTIL_EOF_H_
#define MIP_TOOLS_SERVE_UNTIL_EOF_H_

// Shared daemon lifetime control for mip_worker / mip_gateway: block until
// the parent closes our stdin (or writes a "quit" line), then return so the
// caller can shut its transport down cleanly.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace mip::tools {

// Installs a no-op SIGUSR1 handler WITHOUT SA_RESTART. Supervisors poke
// long-running services with signals (health probes, log rotation); the
// default disposition would kill the daemon, and SA_RESTART would hide the
// EINTR path from ServeUntilStdinEof's retry logic.
inline void InstallBenignSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately not SA_RESTART
  sigaction(SIGUSR1, &sa, nullptr);
}

// Blocks until stdin reaches true EOF or a line starting with "quit"
// arrives. A signal interrupting the blocking read makes fgets return null
// with EINTR and *without* EOF; retrying there (instead of treating it as
// EOF) is what keeps a stray signal from silently stopping the daemon.
inline void ServeUntilStdinEof() {
  char buf[256];
  for (;;) {
    errno = 0;
    if (std::fgets(buf, sizeof(buf), stdin) == nullptr) {
      if (std::ferror(stdin) && errno == EINTR) {
        std::clearerr(stdin);
        continue;
      }
      return;  // true EOF (or unrecoverable error): the parent is gone
    }
    if (std::strncmp(buf, "quit", 4) == 0) return;
  }
}

}  // namespace mip::tools

#endif  // MIP_TOOLS_SERVE_UNTIL_EOF_H_
