#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# job over the concurrency-sensitive federation suites. Run from anywhere;
# builds land in <repo>/build and <repo>/build-tsan.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== TSan: federation concurrency + robustness =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DMIP_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target federation_concurrency_test robustness_test federation_test
# TSAN_OPTIONS makes any reported race fail the job.
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$ROOT/build-tsan" \
  --output-on-failure -j "$JOBS" \
  -R '(federation_concurrency_test|robustness_test|federation_test)'

echo "== OK =="
