#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, a ThreadSanitizer job over
# the concurrency-sensitive federation suites, an AddressSanitizer job over
# the network/deserialization suites (the mutation-fuzz tests are only as
# strong as the memory checking they run under), and a localhost
# multi-process smoke test of the mip_worker daemon. Run from anywhere;
# builds land in <repo>/build, <repo>/build-tsan and <repo>/build-asan.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== TSan: federation concurrency + robustness + net + engine morsels =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DMIP_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target federation_concurrency_test robustness_test federation_test \
           net_transport_test engine_parallel_test encoding_test
# TSAN_OPTIONS makes any reported race fail the job. Suites are selected by
# label (= binary name); --no-tests=error guards against a silent no-op.
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$ROOT/build-tsan" \
  --output-on-failure -j "$JOBS" --no-tests=error \
  -L '^(federation_concurrency_test|robustness_test|federation_test|net_transport_test|engine_parallel_test|encoding_test)$'

echo "== ASan+UBSan: net framing / deserialization / codec hardening =="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DMIP_SANITIZE=address
cmake --build "$ROOT/build-asan" -j "$JOBS" \
  --target net_transport_test net_process_test robustness_test \
           encoding_test plan_test mip_worker
ASAN_OPTIONS="halt_on_error=1" ctest --test-dir "$ROOT/build-asan" \
  --output-on-failure -j "$JOBS" --no-tests=error \
  -L '^(net_transport_test|net_process_test|robustness_test|encoding_test|plan_test)$'

echo "== determinism: MIP_THREADS=1 vs MIP_THREADS=8 output diff =="
# Morsel-driven execution must be byte-identical at any thread count (see
# DESIGN.md "Intra-worker parallelism"). Diff the full stdout of the
# deterministic end-to-end examples between a serial and a parallel run;
# any float divergence in the engine, algorithms, or federation fails CI.
# (engine_tour is excluded: it prints wall-clock timings.)
for example in quickstart epilepsy_study; do
  MIP_THREADS=1 "$ROOT/build/examples/$example" > /tmp/mip_det_t1.txt
  MIP_THREADS=8 "$ROOT/build/examples/$example" > /tmp/mip_det_t8.txt
  diff -u /tmp/mip_det_t1.txt /tmp/mip_det_t8.txt || {
    echo "$example output differs between MIP_THREADS=1 and 8"; exit 1;
  }
  echo "$example: identical output at 1 and 8 threads"
done

echo "== determinism: MIP_OPTIMIZER=1 vs MIP_OPTIMIZER=0 output diff =="
# Every optimizer rule except the merge-aggregate decomposition is bit-exact
# (see DESIGN.md "Query planning & optimization"), and these examples do not
# run merge-aggregate SQL, so their full stdout must be byte-identical with
# the plan optimizer disabled. Any divergence means a rewrite rule changed
# row order, grouping order, or float arithmetic order.
for example in quickstart epilepsy_study; do
  MIP_OPTIMIZER=1 "$ROOT/build/examples/$example" > /tmp/mip_opt_on.txt
  MIP_OPTIMIZER=0 "$ROOT/build/examples/$example" > /tmp/mip_opt_off.txt
  diff -u /tmp/mip_opt_on.txt /tmp/mip_opt_off.txt || {
    echo "$example output differs between MIP_OPTIMIZER=1 and 0"; exit 1;
  }
  echo "$example: identical output with optimizer on and off"
done

echo "== smoke: E15 scan-pushdown benchmark (BENCH_plan.json) =="
# Doubles as an acceptance gate: >= 5x fewer wire bytes for a ~1%-selective
# filter over a federated merge view, with byte-identical results.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_plan
(cd "$ROOT" && "$ROOT/build/bench/bench_plan")
[[ -s "$ROOT/BENCH_plan.json" ]] || { echo "BENCH_plan.json missing"; exit 1; }

echo "== smoke: E14 wire-bytes benchmark (BENCH_net.json) =="
# The codec benchmark doubles as an acceptance gate: >= 2x fewer bytes on a
# dictionary-friendly table transfer, and the measured fallback keeping a
# pure-double vector within 5% of (and never above) the raw layout.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_net
(cd "$ROOT" && "$ROOT/build/bench/bench_net")
[[ -s "$ROOT/BENCH_net.json" ]] || { echo "BENCH_net.json missing"; exit 1; }

echo "== smoke: mip_worker daemon over localhost =="
# The daemon must come up, print its READY line with a real port, and exit
# cleanly when its stdin closes.
READY="$(echo quit | "$ROOT/build/tools/mip_worker" --id=smoke --port=0 \
  --dataset=linreg --rows=32 --seed=7 --weights=1.0,-1.0)"
echo "$READY"
[[ "$READY" == MIP_WORKER\ READY\ id=smoke\ port=* ]] || {
  echo "mip_worker READY line malformed"; exit 1;
}

echo "== OK =="
