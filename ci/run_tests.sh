#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, a ThreadSanitizer job over
# the concurrency-sensitive federation suites, an AddressSanitizer job over
# the network/deserialization suites (the mutation-fuzz tests are only as
# strong as the memory checking they run under), and a localhost
# multi-process smoke test of the mip_worker daemon. Run from anywhere;
# builds land in <repo>/build, <repo>/build-tsan and <repo>/build-asan.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== TSan: federation concurrency + robustness + net + engine morsels =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DMIP_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target federation_concurrency_test robustness_test federation_test \
           net_transport_test engine_parallel_test encoding_test \
           serving_test result_cache_test storage_test join_test \
           smpc_test smpc_property_test
# TSAN_OPTIONS makes any reported race fail the job. Suites are selected by
# label (= binary name); --no-tests=error guards against a silent no-op.
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$ROOT/build-tsan" \
  --output-on-failure -j "$JOBS" --no-tests=error \
  -L '^(federation_concurrency_test|robustness_test|federation_test|net_transport_test|engine_parallel_test|encoding_test|serving_test|result_cache_test|storage_test|join_test|smpc_test|smpc_property_test)$'

echo "== ASan+UBSan: net framing / deserialization / codec hardening =="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DMIP_SANITIZE=address
cmake --build "$ROOT/build-asan" -j "$JOBS" \
  --target net_transport_test net_process_test robustness_test \
           encoding_test plan_test serving_test result_cache_test \
           storage_test join_test smpc_test smpc_property_test mip_worker
ASAN_OPTIONS="halt_on_error=1" ctest --test-dir "$ROOT/build-asan" \
  --output-on-failure -j "$JOBS" --no-tests=error \
  -L '^(net_transport_test|net_process_test|robustness_test|encoding_test|plan_test|serving_test|result_cache_test|storage_test|join_test|smpc_test|smpc_property_test)$'

echo "== determinism: MIP_THREADS=1 vs MIP_THREADS=8 output diff =="
# Morsel-driven execution must be byte-identical at any thread count (see
# DESIGN.md "Intra-worker parallelism"). Diff the full stdout of the
# deterministic end-to-end examples between a serial and a parallel run;
# any float divergence in the engine, algorithms, or federation fails CI.
# (engine_tour is excluded: it prints wall-clock timings.)
for example in quickstart epilepsy_study; do
  MIP_THREADS=1 "$ROOT/build/examples/$example" > /tmp/mip_det_t1.txt
  MIP_THREADS=8 "$ROOT/build/examples/$example" > /tmp/mip_det_t8.txt
  diff -u /tmp/mip_det_t1.txt /tmp/mip_det_t8.txt || {
    echo "$example output differs between MIP_THREADS=1 and 8"; exit 1;
  }
  echo "$example: identical output at 1 and 8 threads"
done

echo "== determinism: MIP_OPTIMIZER=1 vs MIP_OPTIMIZER=0 output diff =="
# Every optimizer rule except the merge-aggregate decomposition is bit-exact
# (see DESIGN.md "Query planning & optimization"), and these examples do not
# run merge-aggregate SQL, so their full stdout must be byte-identical with
# the plan optimizer disabled. Any divergence means a rewrite rule changed
# row order, grouping order, or float arithmetic order.
for example in quickstart epilepsy_study; do
  MIP_OPTIMIZER=1 "$ROOT/build/examples/$example" > /tmp/mip_opt_on.txt
  MIP_OPTIMIZER=0 "$ROOT/build/examples/$example" > /tmp/mip_opt_off.txt
  diff -u /tmp/mip_opt_on.txt /tmp/mip_opt_off.txt || {
    echo "$example output differs between MIP_OPTIMIZER=1 and 0"; exit 1;
  }
  echo "$example: identical output with optimizer on and off"
done

echo "== determinism: MIP_COST_MODEL=1 vs MIP_COST_MODEL=0 output diff =="
# The cost model only flips the *physical* join strategy (broadcast vs
# collect); both strategies are byte-identical by construction, so the
# ablation must not change a single output byte of the examples.
for example in quickstart epilepsy_study; do
  MIP_COST_MODEL=1 "$ROOT/build/examples/$example" > /tmp/mip_cm_on.txt
  MIP_COST_MODEL=0 "$ROOT/build/examples/$example" > /tmp/mip_cm_off.txt
  diff -u /tmp/mip_cm_on.txt /tmp/mip_cm_off.txt || {
    echo "$example output differs between MIP_COST_MODEL=1 and 0"; exit 1;
  }
  echo "$example: identical output with cost model on and off"
done

echo "== smoke: E15/E19 plan benchmarks (BENCH_plan.json) =="
# Doubles as an acceptance gate. E15: >= 5x fewer wire bytes for a
# ~1%-selective filter over a federated merge view, byte-identical results.
# E19: broadcast and collect byte-identical at every cohort size, the cost
# model flipping broadcast -> collect exactly once across the sweep, and
# broadcast shipping >= 5x fewer bytes on the smallest cohort.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_plan
(cd "$ROOT" && "$ROOT/build/bench/bench_plan")
[[ -s "$ROOT/BENCH_plan.json" ]] || { echo "BENCH_plan.json missing"; exit 1; }
python3 - "$ROOT/BENCH_plan.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["identical_results"] is True, "E15 pushdown changed results"
assert doc["wire_ratio"] >= 5.0, \
    f"E15 pushdown wire reduction {doc['wire_ratio']}x below 5x floor"
e19 = doc["e19"]
assert all(p["identical"] for p in e19["sweep"]), \
    "E19 broadcast and collect results diverged"
assert e19["sweep"][0]["chosen"] == "broadcast", \
    "E19 cost model did not pick broadcast for the smallest cohort"
assert e19["sweep"][-1]["chosen"] == "collect", \
    "E19 cost model did not pick collect for the largest cohort"
assert e19["flips"] <= 1, \
    f"E19 strategy flipped {e19['flips']} times across the sweep (want 1)"
assert e19["small_cohort_wire_ratio"] >= 5.0, \
    f"E19 broadcast wire win {e19['small_cohort_wire_ratio']}x below 5x floor"
assert doc["pass"] is True, "bench_plan acceptance gates failed"
PYEOF

echo "== smoke: E14 wire-bytes benchmark (BENCH_net.json) =="
# The codec benchmark doubles as an acceptance gate: >= 2x fewer bytes on a
# dictionary-friendly table transfer, and the measured fallback keeping a
# pure-double vector within 5% of (and never above) the raw layout.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_net
(cd "$ROOT" && "$ROOT/build/bench/bench_net")
[[ -s "$ROOT/BENCH_net.json" ]] || { echo "BENCH_net.json missing"; exit 1; }

echo "== smoke: E16 gateway serving benchmark (BENCH_serving.json) =="
# Acceptance gate: cached p50 >= 10x faster than cold, byte-identical
# replies, with QPS and p50/p99/p999 recorded for the report.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_serving
(cd "$ROOT" && "$ROOT/build/bench/bench_serving")
[[ -s "$ROOT/BENCH_serving.json" ]] || {
  echo "BENCH_serving.json missing"; exit 1;
}

echo "== smoke: E17/E18 disk segment store benchmark (BENCH_storage.json) =="
# Acceptance gates: E17 — zone-map pruning skips >= 75% of segments on a
# selective scan, >= 2x faster at p50, results identical to the unpruned
# scan. E18 — on an unsorted high-cardinality key (zone maps useless), the
# IndexScan access path answers a point query >= 10x faster at p50 than the
# zone-map-only ablation, with byte-identical results across access path,
# thread count, and compaction, and the choice visible in EXPLAIN.
cmake --build "$ROOT/build" -j "$JOBS" --target bench_storage
(cd "$ROOT" && "$ROOT/build/bench/bench_storage")
[[ -s "$ROOT/BENCH_storage.json" ]] || {
  echo "BENCH_storage.json missing"; exit 1;
}
python3 - "$ROOT/BENCH_storage.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["results_identical"] is True, "E17 pruned scan changed results"
assert doc["e18_results_identical"] is True, \
    "E18 index path / thread count / compaction changed result bytes"
assert doc["e18_explain_shows_index_scan"] is True, \
    "EXPLAIN no longer surfaces the IndexScan access path"
assert doc["e18_point_speedup"] >= 10.0, \
    f"index point-query speedup {doc['e18_point_speedup']}x below 10x floor"
assert doc["pass"] is True, "bench_storage acceptance gates failed"
PYEOF

echo "== smoke: E4/E9 SMPC benchmarks (BENCH_smpc.json) =="
# bench_smpc_schemes sweeps FT-vs-Shamir and the 10/50/100-site secure sum
# (per-site cost must stay sublinear in site count) and writes
# BENCH_smpc.json; the smoke fails on JSON parse errors. bench_spdz_offline
# prints the machine-parsed "SPDZ_OFFLINE ... speedup=..." line for the
# batched-dealer ablation; >= 2x is the portable floor asserted here (the
# full >= 5x target needs a second core for the pipelined dealer — see
# EXPERIMENTS.md E9).
cmake --build "$ROOT/build" -j "$JOBS" --target bench_smpc_schemes bench_spdz_offline
(cd "$ROOT" && "$ROOT/build/bench/bench_smpc_schemes")
[[ -s "$ROOT/BENCH_smpc.json" ]] || { echo "BENCH_smpc.json missing"; exit 1; }
python3 -m json.tool "$ROOT/BENCH_smpc.json" > /dev/null || {
  echo "BENCH_smpc.json is not valid JSON"; exit 1;
}
python3 - "$ROOT/BENCH_smpc.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["sublinear"] is True, "per-site cost grew superlinearly with sites"
assert doc["spdz_offline"]["speedup"] > 1.0, "batched dealer slower than scalar"
PYEOF
SPDZ_LINE="$("$ROOT/build/bench/bench_spdz_offline" | grep '^SPDZ_OFFLINE ')"
echo "$SPDZ_LINE"
SPEEDUP="$(sed -n 's/.*speedup=\([0-9.]*\).*/\1/p' <<< "$SPDZ_LINE")"
[[ -n "$SPEEDUP" ]] || { echo "SPDZ_OFFLINE line unparseable"; exit 1; }
python3 -c "import sys; sys.exit(0 if float('$SPEEDUP') >= 2.0 else 1)" || {
  echo "batched triple dealer speedup $SPEEDUP below 2x floor"; exit 1;
}

echo "== smoke: mip_worker daemon over localhost =="
# The daemon must come up, print its READY line with a real port, and exit
# cleanly when its stdin closes.
READY="$(echo quit | "$ROOT/build/tools/mip_worker" --id=smoke --port=0 \
  --dataset=linreg --rows=32 --seed=7 --weights=1.0,-1.0)"
echo "$READY"
[[ "$READY" == MIP_WORKER\ READY\ id=smoke\ port=* ]] || {
  echo "mip_worker READY line malformed"; exit 1;
}

echo "== smoke: gateway + 2 workers, 50 concurrent clients vs serial =="
# The full serving stack as separate OS processes: two mip_worker daemons,
# one mip_gateway federating them, and a mip_query loadgen. A 50-way
# concurrent run must produce byte-identical output to a serial run of the
# same request list (the acceptance criterion for the epoll serving path).
cmake --build "$ROOT/build" -j "$JOBS" --target mip_worker mip_gateway mip_query
SMOKE_DIR="$(mktemp -d)"
# Each daemon's lifetime is owned by its stdin FIFO: the shell holds the
# write end on an fd and closing it is a clean EOF shutdown (also exercising
# the EINTR-hardened stdin loop end-to-end).
cleanup_gateway_smoke() {
  exec 5>&- 6>&- 7>&- 8>&- 9>&- 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup_gateway_smoke EXIT
mkfifo "$SMOKE_DIR/w0.in" "$SMOKE_DIR/w1.in" "$SMOKE_DIR/gw.in"
"$ROOT/build/tools/mip_worker" --id=hospital_0 --port=0 --dataset=linreg \
  --rows=80 --seed=21 < "$SMOKE_DIR/w0.in" > "$SMOKE_DIR/w0.log" &
exec 7> "$SMOKE_DIR/w0.in"
"$ROOT/build/tools/mip_worker" --id=hospital_1 --port=0 --dataset=linreg \
  --rows=80 --seed=22 < "$SMOKE_DIR/w1.in" > "$SMOKE_DIR/w1.log" &
exec 8> "$SMOKE_DIR/w1.in"
for log in w0.log w1.log; do
  for _ in $(seq 100); do
    grep -q READY "$SMOKE_DIR/$log" 2>/dev/null && break; sleep 0.1;
  done
  grep -q READY "$SMOKE_DIR/$log" || { echo "$log: worker not READY"; exit 1; }
done
W0_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/w0.log")"
W1_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/w1.log")"
"$ROOT/build/tools/mip_gateway" --port=0 --dataset=linreg \
  --worker="hospital_0:127.0.0.1:$W0_PORT" \
  --worker="hospital_1:127.0.0.1:$W1_PORT" \
  < "$SMOKE_DIR/gw.in" > "$SMOKE_DIR/gw.log" &
exec 9> "$SMOKE_DIR/gw.in"
for _ in $(seq 100); do
  grep -q READY "$SMOKE_DIR/gw.log" 2>/dev/null && break; sleep 0.1;
done
grep -q READY "$SMOKE_DIR/gw.log" || { echo "gateway not READY"; exit 1; }
GW_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/gw.log")"
printf '%s\n' \
  "SELECT count(*) AS n FROM linreg_federated" \
  "SELECT avg(y) AS m FROM linreg_federated" \
  "SELECT min(x0) AS lo, max(x0) AS hi FROM linreg_federated" \
  > "$SMOKE_DIR/queries.sql"
"$ROOT/build/tools/mip_query" --port="$GW_PORT" --repeat=20 --concurrency=1 \
  < "$SMOKE_DIR/queries.sql" > "$SMOKE_DIR/serial.txt"
"$ROOT/build/tools/mip_query" --port="$GW_PORT" --repeat=20 --concurrency=50 \
  --tenant=loadgen < "$SMOKE_DIR/queries.sql" > "$SMOKE_DIR/concurrent.txt"
diff -u "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/concurrent.txt" || {
  echo "concurrent gateway output differs from serial"; exit 1;
}
"$ROOT/build/tools/mip_query" --port="$GW_PORT" --metrics \
  | grep -q "cache_hits" || { echo "gateway metrics missing"; exit 1; }
echo "gateway smoke: 50-way concurrent output identical to serial"

echo "== smoke: persistence — ingest via --data-dir, restart, byte-diff =="
# First boot of a --data-dir worker ingests the synthetic dataset through the
# WAL'd storage engine and flushes it to disk segments. The restart uses a
# DIFFERENT --seed and --rows: if the answers still match byte-for-byte, the
# daemon is serving the persisted segments, not regenerating data.
mkfifo "$SMOKE_DIR/pw_a.in" "$SMOKE_DIR/pg_a.in" \
       "$SMOKE_DIR/pw_b.in" "$SMOKE_DIR/pg_b.in"
"$ROOT/build/tools/mip_worker" --id=persist --port=0 --dataset=linreg \
  --rows=64 --seed=21 --data-dir="$SMOKE_DIR/datadir" \
  < "$SMOKE_DIR/pw_a.in" > "$SMOKE_DIR/pw_a.log" &
PW_PID=$!
exec 5> "$SMOKE_DIR/pw_a.in"
for _ in $(seq 100); do
  grep -q READY "$SMOKE_DIR/pw_a.log" 2>/dev/null && break; sleep 0.1;
done
grep -q READY "$SMOKE_DIR/pw_a.log" || { echo "persist worker not READY"; exit 1; }
PW_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/pw_a.log")"
"$ROOT/build/tools/mip_gateway" --port=0 --dataset=linreg \
  --worker="persist:127.0.0.1:$PW_PORT" \
  < "$SMOKE_DIR/pg_a.in" > "$SMOKE_DIR/pg_a.log" &
PG_PID=$!
exec 6> "$SMOKE_DIR/pg_a.in"
for _ in $(seq 100); do
  grep -q READY "$SMOKE_DIR/pg_a.log" 2>/dev/null && break; sleep 0.1;
done
grep -q READY "$SMOKE_DIR/pg_a.log" || { echo "persist gateway not READY"; exit 1; }
PG_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/pg_a.log")"
printf '%s\n' \
  "SELECT count(*) AS n FROM linreg_federated" \
  "SELECT avg(y) AS m, sum(x0) AS s FROM linreg_federated" \
  "SELECT min(x1) AS lo, max(x1) AS hi FROM linreg_federated" \
  > "$SMOKE_DIR/persist_queries.sql"
"$ROOT/build/tools/mip_query" --port="$PG_PORT" --repeat=3 --concurrency=1 \
  < "$SMOKE_DIR/persist_queries.sql" > "$SMOKE_DIR/persist_before.txt"
# Clean shutdown (stdin EOF), then restart against the same data directory.
exec 5>&- 6>&-
wait "$PW_PID" "$PG_PID" 2>/dev/null || true
"$ROOT/build/tools/mip_worker" --id=persist --port=0 --dataset=linreg \
  --rows=999 --seed=99 --data-dir="$SMOKE_DIR/datadir" \
  < "$SMOKE_DIR/pw_b.in" > "$SMOKE_DIR/pw_b.log" &
PW_PID=$!
exec 5> "$SMOKE_DIR/pw_b.in"
for _ in $(seq 100); do
  grep -q READY "$SMOKE_DIR/pw_b.log" 2>/dev/null && break; sleep 0.1;
done
grep -q READY "$SMOKE_DIR/pw_b.log" || { echo "restarted worker not READY"; exit 1; }
PW_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/pw_b.log")"
"$ROOT/build/tools/mip_gateway" --port=0 --dataset=linreg \
  --worker="persist:127.0.0.1:$PW_PORT" \
  < "$SMOKE_DIR/pg_b.in" > "$SMOKE_DIR/pg_b.log" &
PG_PID=$!
exec 6> "$SMOKE_DIR/pg_b.in"
for _ in $(seq 100); do
  grep -q READY "$SMOKE_DIR/pg_b.log" 2>/dev/null && break; sleep 0.1;
done
grep -q READY "$SMOKE_DIR/pg_b.log" || { echo "restarted gateway not READY"; exit 1; }
PG_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$SMOKE_DIR/pg_b.log")"
"$ROOT/build/tools/mip_query" --port="$PG_PORT" --repeat=3 --concurrency=1 \
  < "$SMOKE_DIR/persist_queries.sql" > "$SMOKE_DIR/persist_after.txt"
diff -u "$SMOKE_DIR/persist_before.txt" "$SMOKE_DIR/persist_after.txt" || {
  echo "restarted --data-dir worker output differs (data regenerated?)"; exit 1;
}
exec 5>&- 6>&-
wait "$PW_PID" "$PG_PID" 2>/dev/null || true
echo "persistence smoke: restart with different seed served identical bytes"

echo "== OK =="
