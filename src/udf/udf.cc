#include "udf/udf.h"

#include <functional>
#include <set>

#include "common/string_util.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/row_interpreter.h"
#include "engine/sql_parser.h"
#include "engine/vectorized.h"

namespace mip::udf {

namespace {

using engine::Column;
using engine::DataType;
using engine::Expr;
using engine::ExprPtr;
using engine::Field;
using engine::Schema;
using engine::Table;
using engine::Value;

// Replaces column references that name scalar results with literals.
void SubstituteScalars(Expr* expr, const std::map<std::string, Value>& scalars) {
  if (expr->kind == engine::ExprKind::kColumnRef) {
    auto it = scalars.find(ToLower(expr->column_name));
    if (it != scalars.end()) {
      expr->kind = engine::ExprKind::kLiteral;
      expr->literal = it->second;
      expr->column_name.clear();
    }
    return;
  }
  for (auto& a : expr->args) SubstituteScalars(a.get(), scalars);
}

// Inlines previous elementwise step expressions into `expr_text` so a
// pipeline folds into one SELECT (textual SQL generation).
Result<std::string> InlineExpr(
    const std::string& expr_text,
    const std::map<std::string, std::string>& definitions) {
  MIP_ASSIGN_OR_RETURN(ExprPtr parsed, engine::ParseExpression(expr_text));
  ExprPtr copy = engine::CloneExpr(*parsed);
  std::function<void(Expr*)> rewrite = [&](Expr* node) {
    if (node->kind == engine::ExprKind::kColumnRef) {
      auto it = definitions.find(ToLower(node->column_name));
      if (it != definitions.end()) {
        node->column_name = "(" + it->second + ")";
      }
      return;
    }
    for (auto& a : node->args) rewrite(a.get());
  };
  rewrite(copy.get());
  return copy->ToString();
}

}  // namespace

Status UdfGenerator::Validate(const UdfDefinition& def) const {
  if (def.name.empty()) return Status::InvalidArgument("UDF needs a name");
  if (def.outputs.empty()) {
    return Status::InvalidArgument("UDF '" + def.name + "' has no outputs");
  }
  std::set<std::string> names;
  for (const Field& f : def.input_schema.fields()) {
    names.insert(ToLower(f.name));
  }
  for (const UdfStep& step : def.steps) {
    if (step.name.empty()) {
      return Status::InvalidArgument("every UDF step needs a result name");
    }
    if (!names.insert(ToLower(step.name)).second) {
      return Status::AlreadyExists("duplicate step name '" + step.name + "'");
    }
    switch (step.kind) {
      case UdfStep::Kind::kElementwise:
        if (step.expr.empty()) {
          return Status::InvalidArgument("elementwise step '" + step.name +
                                         "' has no expression");
        }
        break;
      case UdfStep::Kind::kReduce: {
        static const std::set<std::string> kAggs = {
            "sum", "avg", "min", "max", "count", "var_samp", "stddev_samp"};
        if (kAggs.count(ToLower(step.agg)) == 0) {
          return Status::InvalidArgument("unknown reduce '" + step.agg + "'");
        }
        if (names.count(ToLower(step.arg)) == 0) {
          return Status::NotFound("reduce argument '" + step.arg +
                                  "' is not defined before step '" +
                                  step.name + "'");
        }
        break;
      }
      case UdfStep::Kind::kLoopback:
        if (step.loopback.empty()) {
          return Status::InvalidArgument("loopback step '" + step.name +
                                         "' has no SQL");
        }
        break;
    }
  }
  for (const std::string& out : def.outputs) {
    if (names.count(ToLower(out)) == 0) {
      return Status::NotFound("output '" + out + "' is not produced");
    }
  }
  return Status::OK();
}

Result<engine::Table> UdfGenerator::Execute(const UdfDefinition& def,
                                            const std::string& input_table,
                                            UdfExecutionMode mode) {
  MIP_RETURN_NOT_OK(Validate(def));
  // UDF programs inherit the database's execution context, so elementwise
  // and reduce steps run morsel-parallel like any other query.
  const engine::ExecContext* exec = db_->exec_context();
  MIP_ASSIGN_OR_RETURN(Table input, db_->GetTable(input_table));
  for (const Field& f : def.input_schema.fields()) {
    if (input.schema().FieldIndex(f.name) < 0) {
      return Status::TypeError("input table '" + input_table +
                               "' lacks required column '" + f.name + "'");
    }
  }

  // Environment: named vectors (as a growing table) + named scalars.
  Schema env_schema;
  std::vector<Column> env_columns;
  for (const Field& f : def.input_schema.fields()) {
    MIP_ASSIGN_OR_RETURN(const Column* col, input.ColumnByName(f.name));
    MIP_RETURN_NOT_OK(env_schema.AddField(Field{ToLower(f.name), col->type()}));
    env_columns.push_back(*col);
  }
  std::map<std::string, Value> scalars;

  for (const UdfStep& step : def.steps) {
    switch (step.kind) {
      case UdfStep::Kind::kElementwise: {
        MIP_ASSIGN_OR_RETURN(ExprPtr expr,
                             engine::ParseExpression(step.expr));
        SubstituteScalars(expr.get(), scalars);
        MIP_ASSIGN_OR_RETURN(
            Table env, Table::Make(env_schema, env_columns));
        MIP_RETURN_NOT_OK(
            engine::BindExpr(expr.get(), env.schema(), db_->functions()));
        Column result(expr->result_type);
        switch (mode) {
          case UdfExecutionMode::kRowInterpreter: {
            for (size_t r = 0; r < env.num_rows(); ++r) {
              MIP_ASSIGN_OR_RETURN(
                  Value v, engine::EvalRow(*expr, env, r, db_->functions()));
              MIP_RETURN_NOT_OK(result.AppendValue(v));
            }
            break;
          }
          case UdfExecutionMode::kVectorized: {
            MIP_ASSIGN_OR_RETURN(
                result,
                engine::EvalVectorized(*expr, env, db_->functions(), exec));
            break;
          }
          case UdfExecutionMode::kJitFused: {
            Result<engine::VectorProgram> program =
                engine::VectorProgram::Compile(*expr, env.schema());
            if (program.ok()) {
              engine::VectorProgram::ExecOptions options;
              options.exec = exec;
              MIP_ASSIGN_OR_RETURN(
                  result, program.ValueOrDie().Execute(env, options));
            } else {
              // Graceful fallback for non-compilable expressions.
              MIP_ASSIGN_OR_RETURN(
                  result,
                  engine::EvalVectorized(*expr, env, db_->functions(), exec));
            }
            break;
          }
        }
        MIP_RETURN_NOT_OK(env_schema.AddField(
            Field{ToLower(step.name), result.type()}));
        env_columns.push_back(std::move(result));
        break;
      }
      case UdfStep::Kind::kReduce: {
        MIP_ASSIGN_OR_RETURN(Table env, Table::Make(env_schema, env_columns));
        engine::AggregateSpec spec;
        const std::string agg = ToLower(step.agg);
        if (agg == "sum") spec.func = engine::AggFunc::kSum;
        else if (agg == "avg") spec.func = engine::AggFunc::kAvg;
        else if (agg == "min") spec.func = engine::AggFunc::kMin;
        else if (agg == "max") spec.func = engine::AggFunc::kMax;
        else if (agg == "count") spec.func = engine::AggFunc::kCount;
        else if (agg == "var_samp") spec.func = engine::AggFunc::kVarSamp;
        else spec.func = engine::AggFunc::kStddevSamp;
        spec.arg = engine::Col(step.arg);
        MIP_RETURN_NOT_OK(engine::BindExpr(spec.arg.get(), env.schema(),
                                           db_->functions()));
        spec.output_name = step.name;
        MIP_ASSIGN_OR_RETURN(
            Table agg_out,
            engine::AggregateAll(env, {spec}, db_->functions(), exec));
        scalars[ToLower(step.name)] = agg_out.At(0, 0);
        break;
      }
      case UdfStep::Kind::kLoopback: {
        MIP_ASSIGN_OR_RETURN(Table lb, db_->ExecuteSql(step.loopback));
        if (lb.num_columns() == 0 || lb.num_rows() == 0) {
          return Status::ExecutionError("loopback query for step '" +
                                        step.name + "' returned no data");
        }
        if (lb.num_rows() == 1) {
          scalars[ToLower(step.name)] = lb.At(0, 0);
        } else {
          MIP_RETURN_NOT_OK(env_schema.AddField(
              Field{ToLower(step.name), lb.column(0).type()}));
          env_columns.push_back(lb.column(0));
        }
        break;
      }
    }
  }

  // Assemble outputs.
  Schema out_schema;
  std::vector<Column> out_columns;
  bool all_scalar = true;
  for (const std::string& out : def.outputs) {
    if (scalars.count(ToLower(out)) == 0) all_scalar = false;
  }
  for (const std::string& out : def.outputs) {
    const std::string key = ToLower(out);
    auto sit = scalars.find(key);
    if (sit != scalars.end()) {
      DataType type = DataType::kFloat64;
      if (sit->second.kind() == Value::Kind::kInt) type = DataType::kInt64;
      if (sit->second.kind() == Value::Kind::kString) {
        type = DataType::kString;
      }
      Column col(type);
      if (all_scalar) {
        MIP_RETURN_NOT_OK(col.AppendValue(sit->second));
      } else {
        // Broadcast the scalar along the relation outputs.
        const size_t rows = env_columns.empty() ? 1 : env_columns[0].length();
        for (size_t r = 0; r < rows; ++r) {
          MIP_RETURN_NOT_OK(col.AppendValue(sit->second));
        }
      }
      MIP_RETURN_NOT_OK(out_schema.AddField(Field{key, type}));
      out_columns.push_back(std::move(col));
      continue;
    }
    const int idx = env_schema.FieldIndex(key);
    if (idx < 0) return Status::NotFound("output '" + out + "' missing");
    MIP_RETURN_NOT_OK(
        out_schema.AddField(Field{key, env_columns[idx].type()}));
    out_columns.push_back(env_columns[static_cast<size_t>(idx)]);
  }
  return Table::Make(std::move(out_schema), std::move(out_columns));
}

Result<GeneratedUdf> UdfGenerator::Generate(const UdfDefinition& def,
                                            UdfExecutionMode mode) {
  MIP_RETURN_NOT_OK(Validate(def));

  GeneratedUdf out;
  out.name = def.name;

  // --- Declarative SQL rendering --------------------------------------
  // Pure elementwise / trailing-reduce pipelines fold into one SELECT by
  // inlining step expressions.
  bool single = true;
  std::map<std::string, std::string> inline_defs;
  std::map<std::string, std::string> reduce_defs;  // name -> agg(expr)
  for (const UdfStep& step : def.steps) {
    if (step.kind == UdfStep::Kind::kElementwise) {
      // An elementwise step that references a reduce result cannot fold.
      MIP_ASSIGN_OR_RETURN(ExprPtr parsed,
                           engine::ParseExpression(step.expr));
      bool uses_reduce = false;
      std::function<void(const Expr&)> scan = [&](const Expr& e) {
        if (e.kind == engine::ExprKind::kColumnRef &&
            reduce_defs.count(ToLower(e.column_name)) > 0) {
          uses_reduce = true;
        }
        for (const auto& a : e.args) scan(*a);
      };
      scan(*parsed);
      if (uses_reduce) {
        single = false;
        break;
      }
      MIP_ASSIGN_OR_RETURN(std::string inlined,
                           InlineExpr(step.expr, inline_defs));
      inline_defs[ToLower(step.name)] = inlined;
    } else if (step.kind == UdfStep::Kind::kReduce) {
      std::string arg_sql = ToLower(step.arg);
      auto it = inline_defs.find(arg_sql);
      if (it != inline_defs.end()) arg_sql = it->second;
      reduce_defs[ToLower(step.name)] =
          ToLower(step.agg) + "(" + arg_sql + ")";
    } else {
      single = false;
      break;
    }
  }
  if (single) {
    std::string select = "SELECT ";
    bool first = true;
    for (const std::string& o : def.outputs) {
      if (!first) select += ", ";
      first = false;
      const std::string key = ToLower(o);
      if (reduce_defs.count(key) > 0) {
        select += reduce_defs[key] + " AS " + key;
      } else if (inline_defs.count(key) > 0) {
        select += inline_defs[key] + " AS " + key;
      } else {
        select += key;
      }
    }
    select += " FROM $input";
    out.sql.push_back(select);
    out.single_select = true;
  } else {
    // Multi-statement rendering: one statement per stage.
    for (const UdfStep& step : def.steps) {
      switch (step.kind) {
        case UdfStep::Kind::kElementwise:
          out.sql.push_back("SELECT " + step.expr + " AS " + step.name +
                            " FROM $env");
          break;
        case UdfStep::Kind::kReduce:
          out.sql.push_back("SELECT " + step.agg + "(" + step.arg + ") AS " +
                            step.name + " FROM $env");
          break;
        case UdfStep::Kind::kLoopback:
          out.sql.push_back(step.loopback);
          break;
      }
    }
  }

  // --- Count fused instructions (JIT lowering metric) -----------------
  {
    Schema env_schema = def.input_schema;
    for (const UdfStep& step : def.steps) {
      if (step.kind != UdfStep::Kind::kElementwise) continue;
      Result<ExprPtr> parsed = engine::ParseExpression(step.expr);
      if (!parsed.ok()) continue;
      ExprPtr expr = parsed.MoveValueUnsafe();
      // Scalars unknown at generation time: bind as double columns.
      Schema bind_schema = env_schema;
      if (engine::BindExpr(expr.get(), bind_schema, db_->functions()).ok()) {
        Result<engine::VectorProgram> program =
            engine::VectorProgram::Compile(*expr, bind_schema);
        if (program.ok()) {
          out.jit_instructions += program.ValueOrDie().num_instructions();
        }
        (void)env_schema.AddField(
            Field{ToLower(step.name), expr->result_type});
      }
    }
  }

  // --- Registration ----------------------------------------------------
  // The closure captures the database, not the (possibly short-lived)
  // generator object.
  UdfDefinition def_copy = def;
  engine::Database* db = db_;
  engine::FunctionRegistry::TableFunction fn;
  fn.name = def.name;
  fn.fn = [db, def_copy, mode](const std::vector<Value>& args)
      -> Result<Table> {
    if (args.size() != 1 || args[0].kind() != Value::Kind::kString) {
      return Status::InvalidArgument(
          "UDF '" + def_copy.name +
          "' expects one string argument: the input table name");
    }
    UdfGenerator generator(db);
    return generator.Execute(def_copy, args[0].string_value(), mode);
  };
  MIP_RETURN_NOT_OK(db_->functions()->RegisterTable(std::move(fn)));
  return out;
}

Status RegisterScalarUdf(
    engine::Database* db, const std::string& name, int arity,
    engine::DataType result_type,
    std::function<engine::Value(const std::vector<engine::Value>&)> fn) {
  engine::FunctionRegistry::ScalarFunction f;
  f.name = name;
  f.arity = arity;
  f.result_type = result_type;
  f.fn = std::move(fn);
  return db->functions()->RegisterScalar(std::move(f));
}

}  // namespace mip::udf
