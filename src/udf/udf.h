#ifndef MIP_UDF_UDF_H_
#define MIP_UDF_UDF_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/table.h"
#include "engine/vector_program.h"

namespace mip::udf {

/// Execution strategy for the lowered UDF pipeline — the three engine modes
/// experiment E6/E10 compare.
enum class UdfExecutionMode {
  kRowInterpreter,  ///< tuple-at-a-time tree walking (baseline)
  kVectorized,      ///< column-at-a-time with full-size intermediates
  kJitFused,        ///< compiled batch-pipelined vector programs
};

/// \brief One step of a procedural UDF program (the IR that stands in for
/// the Python function body MIP's UDFGenerator consumes).
struct UdfStep {
  enum class Kind {
    /// result = elementwise SQL expression over input columns, previous
    /// elementwise results and scalar results.
    kElementwise,
    /// result = aggregate(vector) — one of sum/avg/min/max/count/
    /// var_samp/stddev_samp.
    kReduce,
    /// result = first column of a loopback SQL query executed against the
    /// hosting database ("SQL loopback queries, which enable executing SQL
    /// in a Python UDF").
    kLoopback,
  };
  Kind kind = Kind::kElementwise;
  std::string name;      ///< result name (must be unique in the program)
  std::string expr;      ///< kElementwise: SQL expression text
  std::string agg;       ///< kReduce: aggregate function name
  std::string arg;       ///< kReduce: name of the vector to reduce
  std::string loopback;  ///< kLoopback: SQL text
};

/// \brief A typed UDF definition: the "decorator" (typed input/output
/// declaration) plus the procedural body.
struct UdfDefinition {
  std::string name;
  /// Input relation columns the UDF reads (the typed wrapper).
  engine::Schema input_schema;
  std::vector<UdfStep> steps;
  /// Names (input columns or step results) exported as the UDF's output
  /// relation. All-scalar outputs produce a single row.
  std::vector<std::string> outputs;
};

/// \brief What generation produced: the declarative SQL rendering and the
/// registered table-function name.
struct GeneratedUdf {
  std::string name;
  /// Semantically equivalent SQL. Single-SELECT when the program is a pure
  /// elementwise/reduce pipeline over the input; otherwise a multi-statement
  /// rendering (one statement per stage).
  std::vector<std::string> sql;
  /// True when the whole program folded into one declarative SELECT.
  bool single_select = false;
  /// Number of fused vector-program instructions across elementwise steps.
  size_t jit_instructions = 0;
};

/// \brief The UDFGenerator: JIT-translates procedural UDF programs into
/// declarative SQL + fused vectorized kernels and registers them with a
/// Database so SQL can call them (`SELECT * FROM my_udf('table_name')`).
///
/// No action is required from the algorithm developer beyond the typed
/// definition — validation, lowering, SQL generation and registration are
/// automatic, mirroring the paper's UDFGenerator.
class UdfGenerator {
 public:
  explicit UdfGenerator(engine::Database* db) : db_(db) {}

  /// Validates, lowers and registers `def`. The registered table function
  /// takes one string argument: the name of the input table.
  Result<GeneratedUdf> Generate(const UdfDefinition& def,
                                UdfExecutionMode mode =
                                    UdfExecutionMode::kJitFused);

  /// Executes a definition directly against a named table without
  /// registering it (used by benchmarks to compare execution modes).
  Result<engine::Table> Execute(const UdfDefinition& def,
                                const std::string& input_table,
                                UdfExecutionMode mode);

 private:
  Status Validate(const UdfDefinition& def) const;

  engine::Database* db_;
};

/// Registers a plain scalar C++ function as a SQL-callable UDF.
Status RegisterScalarUdf(engine::Database* db, const std::string& name,
                         int arity, engine::DataType result_type,
                         std::function<engine::Value(
                             const std::vector<engine::Value>&)> fn);

}  // namespace mip::udf

#endif  // MIP_UDF_UDF_H_
