#include "data/synthetic.h"

#include <cmath>

#include "common/rng.h"

namespace mip::data {

namespace {

using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;
using engine::Value;

Value MaybeMissing(double v, double missing_rate, Rng* rng) {
  if (rng->NextDouble() < missing_rate) return Value::Null();
  return Value::Double(v);
}

}  // namespace

Result<Table> GenerateDementiaCohort(const DementiaCohortConfig& config) {
  Rng rng(config.seed);
  Schema schema;
  MIP_RETURN_NOT_OK(schema.AddField(Field{"subject_id", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"diagnosis", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"age", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"sex", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"mmse", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"left_hippocampus", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"right_hippocampus", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"left_entorhinal_area", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"lateral_ventricles", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"abeta42", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"p_tau", DataType::kFloat64}));
  if (config.with_survival) {
    MIP_RETURN_NOT_OK(
        schema.AddField(Field{"followup_months", DataType::kFloat64}));
    MIP_RETURN_NOT_OK(schema.AddField(Field{"event", DataType::kFloat64}));
  }
  Table table = Table::Empty(std::move(schema));

  for (int64_t i = 0; i < config.num_patients; ++i) {
    const double u = rng.NextDouble();
    // 0 = CN, 1 = MCI, 2 = AD — the per-class shifts below follow the
    // well-replicated ordering the case study visualizes.
    int dx = 2;
    std::string dx_name = "AD";
    if (u < config.frac_cn) {
      dx = 0;
      dx_name = "CN";
    } else if (u < config.frac_cn + config.frac_mci) {
      dx = 1;
      dx_name = "MCI";
    }
    const double severity = static_cast<double>(dx);  // 0, 1, 2

    const double age = std::min(95.0, std::max(55.0,
        rng.NextGaussian(68.0 + 3.0 * severity, 7.0)));
    const bool male = rng.NextDouble() < 0.47;
    const double mmse = std::min(
        30.0, std::max(2.0, rng.NextGaussian(28.5 - 4.5 * severity, 2.0)));

    // Volumes: atrophy with severity and age; shared subject-level factor
    // couples left/right hippocampus.
    const double subject_factor = rng.NextGaussian(0.0, 0.15);
    const double age_effect = -0.012 * (age - 68.0);
    const double hippo_mean = 3.2 - 0.45 * severity + age_effect;
    const double lh = std::max(0.8, hippo_mean + subject_factor +
                                        rng.NextGaussian(0.0, 0.12) +
                                        config.site_volume_bias);
    const double rh = std::max(0.8, hippo_mean + 0.05 + subject_factor +
                                        rng.NextGaussian(0.0, 0.12) +
                                        config.site_volume_bias);
    const double ent = std::max(
        0.3, 1.9 - 0.35 * severity + 0.5 * age_effect +
                 rng.NextGaussian(0.0, 0.18) + config.site_volume_bias);
    const double vent = std::max(
        4.0, 22.0 + 9.0 * severity - 2.5 * age_effect +
                 rng.NextGaussian(0.0, 6.0));

    // CSF biomarkers: the Abeta42 / pTau cluster structure (low Abeta42 +
    // high pTau in AD).
    const double abeta = std::max(
        120.0, rng.NextGaussian(1050.0 - 260.0 * severity, 140.0));
    const double ptau = std::max(
        6.0, rng.NextGaussian(18.0 + 14.0 * severity, 6.0));

    std::vector<Value> row;
    row.push_back(Value::String("subj_" + std::to_string(config.seed % 997) +
                                "_" + std::to_string(i)));
    row.push_back(Value::String(dx_name));
    row.push_back(Value::Double(age));
    row.push_back(Value::String(male ? "M" : "F"));
    row.push_back(MaybeMissing(mmse, config.missing_rate, &rng));
    row.push_back(MaybeMissing(lh, config.missing_rate, &rng));
    row.push_back(MaybeMissing(rh, config.missing_rate, &rng));
    row.push_back(MaybeMissing(ent, config.missing_rate, &rng));
    row.push_back(MaybeMissing(vent, config.missing_rate, &rng));
    row.push_back(MaybeMissing(abeta, config.missing_rate, &rng));
    row.push_back(MaybeMissing(ptau, config.missing_rate, &rng));
    if (config.with_survival) {
      // Time to conversion/death: exponential with rate rising in severity;
      // administrative censoring at 60 months.
      const double rate = 0.006 * std::exp(0.9 * severity);
      const double t = rng.NextExponential(rate);
      const double censor_t = 60.0;
      const bool event = t <= censor_t;
      row.push_back(Value::Double(std::min(t, censor_t)));
      row.push_back(Value::Double(event ? 1.0 : 0.0));
    }
    MIP_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<Table> GeneratePpmiCohort(int64_t num_patients, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  MIP_RETURN_NOT_OK(schema.AddField(Field{"subject_id", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"diagnosis", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"age", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"updrs_total", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"datscan_putamen", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"datscan_caudate", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"left_entorhinal_area", DataType::kFloat64}));
  Table table = Table::Empty(std::move(schema));
  for (int64_t i = 0; i < num_patients; ++i) {
    const bool pd = rng.NextDouble() < 0.65;
    const double age = std::min(90.0, std::max(35.0,
        rng.NextGaussian(pd ? 63.0 : 60.0, 9.0)));
    const double updrs =
        std::max(0.0, rng.NextGaussian(pd ? 32.0 : 4.0, pd ? 12.0 : 3.0));
    const double putamen =
        std::max(0.3, rng.NextGaussian(pd ? 0.85 : 2.1, 0.3));
    const double caudate =
        std::max(0.4, rng.NextGaussian(pd ? 1.9 : 2.9, 0.4));
    const double ent =
        std::max(0.4, rng.NextGaussian(1.7, 0.22) - 0.01 * (age - 60.0));
    MIP_RETURN_NOT_OK(table.AppendRow(
        {Value::String("ppmi_" + std::to_string(i)),
         Value::String(pd ? "PD" : "HC"), Value::Double(age),
         Value::Double(updrs), Value::Double(putamen), Value::Double(caudate),
         Value::Double(ent)}));
  }
  return table;
}

Result<Table> GenerateRiskCohort(int64_t num_patients, uint64_t seed,
                                 double miscalibration) {
  Rng rng(seed);
  Schema schema;
  MIP_RETURN_NOT_OK(schema.AddField(Field{"subject_id", DataType::kString}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"predicted_prob", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"outcome", DataType::kFloat64}));
  Table table = Table::Empty(std::move(schema));
  for (int64_t i = 0; i < num_patients; ++i) {
    // Latent severity -> predicted probability via a logistic model.
    const double z = rng.NextGaussian(-1.0, 1.3);
    const double predicted = 1.0 / (1.0 + std::exp(-z));
    // True probability deviates by the miscalibration parameter (shift on
    // the logit scale proportional to z).
    const double true_logit = z * (1.0 + miscalibration);
    const double p_true = 1.0 / (1.0 + std::exp(-true_logit));
    const double outcome = rng.NextDouble() < p_true ? 1.0 : 0.0;
    MIP_RETURN_NOT_OK(table.AppendRow({Value::String("r_" + std::to_string(i)),
                                       Value::Double(predicted),
                                       Value::Double(outcome)}));
  }
  return table;
}

Result<Table> GenerateEpilepsyCohort(int64_t num_patients, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  MIP_RETURN_NOT_OK(schema.AddField(Field{"subject_id", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"age", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"age_at_onset", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"seizure_frequency", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"ieeg_spike_rate", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"ieeg_hfo_rate", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"mri_lesional", DataType::kString}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"engel_class", DataType::kString}));
  Table table = Table::Empty(std::move(schema));
  for (int64_t i = 0; i < num_patients; ++i) {
    const double age = std::min(75.0, std::max(8.0,
        rng.NextGaussian(34.0, 12.0)));
    const double onset = std::min(
        age, std::max(0.5, rng.NextGaussian(age - 14.0, 8.0)));
    const bool lesional = rng.NextDouble() < 0.55;
    // Focal epilepsies: lesional cases show higher, more localized HFO
    // rates; non-lesional cases more diffuse spiking.
    const double hfo = std::max(
        0.0, rng.NextGaussian(lesional ? 28.0 : 12.0, 8.0));
    const double spikes = std::max(
        0.5, rng.NextGaussian(lesional ? 18.0 : 26.0, 9.0));
    const double freq = std::max(
        0.2, rng.NextGamma(2.0, lesional ? 3.0 : 5.0));
    // Surgical outcome: lesional + high HFO concentration -> Engel I.
    const double z = (lesional ? 1.2 : -0.4) + 0.04 * (hfo - 20.0) -
                     0.015 * (freq - 8.0) + rng.NextGaussian(0, 0.8);
    const char* engel = z > 0.8 ? "I" : (z > 0.0 ? "II"
                                                 : (z > -0.8 ? "III" : "IV"));
    MIP_RETURN_NOT_OK(table.AppendRow(
        {Value::String("epi_" + std::to_string(i)), Value::Double(age),
         Value::Double(onset), Value::Double(freq), Value::Double(spikes),
         Value::Double(hfo), Value::String(lesional ? "yes" : "no"),
         Value::String(engel)}));
  }
  return table;
}

Result<Table> GenerateTbiCohort(int64_t num_patients, uint64_t seed,
                                double model_miscalibration) {
  Rng rng(seed);
  Schema schema;
  MIP_RETURN_NOT_OK(schema.AddField(Field{"subject_id", DataType::kString}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"age", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"gcs_total", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(schema.AddField(Field{"pupils", DataType::kString}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"predicted_mortality", DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      schema.AddField(Field{"mortality_6m", DataType::kFloat64}));
  Table table = Table::Empty(std::move(schema));
  for (int64_t i = 0; i < num_patients; ++i) {
    const double age = std::min(95.0, std::max(16.0,
        rng.NextGaussian(45.0, 19.0)));
    const double gcs = std::min(15.0, std::max(3.0,
        std::round(rng.NextGaussian(9.0, 3.5))));
    const double pupil_draw = rng.NextDouble();
    const char* pupils =
        pupil_draw < 0.7 ? "both" : (pupil_draw < 0.88 ? "one" : "none");
    // IMPACT-like linear predictor of 6-month mortality.
    const double lp = -1.0 + 0.035 * (age - 45.0) - 0.25 * (gcs - 9.0) +
                      (pupils[0] == 'o' ? 0.9 : (pupils[0] == 'n' ? 1.8
                                                                  : 0.0));
    const double p_true = 1.0 / (1.0 + std::exp(-lp));
    const double outcome = rng.NextDouble() < p_true ? 1.0 : 0.0;
    // The "model" predicts from the same predictor, optionally
    // miscalibrated on the logit scale.
    const double p_model =
        1.0 / (1.0 + std::exp(-lp * (1.0 + model_miscalibration)));
    MIP_RETURN_NOT_OK(table.AppendRow(
        {Value::String("tbi_" + std::to_string(i)), Value::Double(age),
         Value::Double(gcs), Value::String(pupils), Value::Double(p_model),
         Value::Double(outcome)}));
  }
  return table;
}

std::vector<AlzheimerSite> AlzheimerCaseStudySites() {
  return {
      {"brescia", "edsd_brescia", 1960},
      {"lausanne", "edsd_lausanne", 1032},
      {"lille", "edsd_lille", 1103},
      {"adni_node", "adni", 1066},
  };
}

Status SetupAlzheimerFederation(federation::MasterNode* master,
                                uint64_t seed) {
  const std::vector<AlzheimerSite> sites = AlzheimerCaseStudySites();
  for (size_t s = 0; s < sites.size(); ++s) {
    MIP_RETURN_NOT_OK(master->AddWorker(sites[s].worker_id).status());
    DementiaCohortConfig config;
    config.num_patients = sites[s].patients;
    config.seed = seed + 1000 * s;
    // Mild per-site scanner bias, the kind harmonization cannot remove.
    config.site_volume_bias = 0.03 * (static_cast<double>(s) - 1.5);
    MIP_ASSIGN_OR_RETURN(Table cohort, GenerateDementiaCohort(config));
    MIP_RETURN_NOT_OK(master->LoadDataset(sites[s].worker_id,
                                          sites[s].dataset,
                                          std::move(cohort)));
  }
  return Status::OK();
}

}  // namespace mip::data
