#ifndef MIP_DATA_SYNTHETIC_H_
#define MIP_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "federation/master.h"

namespace mip::data {

/// \brief Generator for dementia cohorts shaped like the datasets of the
/// paper's Alzheimer's case study (EDSD / ADNI / hospital memory clinics).
///
/// Real clinical records are GDPR-gated; these cohorts reproduce the
/// distributional structure the case study analyses: diagnosis-dependent
/// brain-volume repartition (hippocampus / entorhinal atrophy and
/// ventricular enlargement in AD), the Abeta42 / pTau biomarker clusters,
/// and a linear age/diagnosis signal in the volumes. Each site can carry a
/// site effect (scanner bias) and a missingness rate.
struct DementiaCohortConfig {
  int64_t num_patients = 1000;
  uint64_t seed = 42;
  /// Mixture weights for CN / MCI / AD.
  double frac_cn = 0.35;
  double frac_mci = 0.35;
  /// Additive site bias on volumes (cm3), simulating scanner differences.
  double site_volume_bias = 0.0;
  /// Probability that any one biomarker/volume cell is missing.
  double missing_rate = 0.05;
  /// When true the cohort also carries survival columns
  /// (followup_months, event) for Kaplan-Meier.
  bool with_survival = true;
};

/// Columns: subject_id, diagnosis (CN/MCI/AD), age, sex, mmse,
/// left_hippocampus, right_hippocampus, left_entorhinal_area,
/// lateral_ventricles, abeta42, p_tau [, followup_months, event].
Result<engine::Table> GenerateDementiaCohort(const DementiaCohortConfig& config);

/// \brief PPMI-like Parkinson's cohort: diagnosis (PD/HC), age, updrs_total,
/// datscan_putamen, datscan_caudate, left_entorhinal_area (the dashboard's
/// PPMI panel includes it).
Result<engine::Table> GeneratePpmiCohort(int64_t num_patients, uint64_t seed);

/// \brief Cohort for the Calibration Belt: a severity score, a predicted
/// mortality probability produced by a (mis)calibrated model, and the
/// observed outcome. `miscalibration` of 0 means perfectly calibrated;
/// positive values inflate predictions at high risk.
Result<engine::Table> GenerateRiskCohort(int64_t num_patients, uint64_t seed,
                                         double miscalibration);

/// \brief Epilepsy surgery cohort with iEEG features: seizure frequency,
/// spike/HFO rates, lesional status and Engel outcome. Good surgical
/// outcomes (Engel I) correlate with lesional MRI and focal (high) HFO
/// rates — the structure a federated CART/logistic analysis should find.
Result<engine::Table> GenerateEpilepsyCohort(int64_t num_patients,
                                             uint64_t seed);

/// \brief TBI cohort: GCS, pupils and age drive true 6-month mortality; a
/// predicted-mortality column comes from an IMPACT-like logistic model so
/// the Calibration Belt has something clinically shaped to assess.
Result<engine::Table> GenerateTbiCohort(int64_t num_patients, uint64_t seed,
                                        double model_miscalibration = 0.0);

/// \brief One hospital of the paper's federated Alzheimer's analysis.
struct AlzheimerSite {
  std::string worker_id;
  std::string dataset;
  int64_t patients;
};

/// The four sites of the case study (Brescia 1960, Lausanne 1032,
/// Lille 1103, ADNI 1066).
std::vector<AlzheimerSite> AlzheimerCaseStudySites();

/// Builds the full case-study federation: creates one Worker per site and
/// loads its synthetic cohort (site-specific seed and scanner bias).
Status SetupAlzheimerFederation(federation::MasterNode* master,
                                uint64_t seed = 2024);

}  // namespace mip::data

#endif  // MIP_DATA_SYNTHETIC_H_
