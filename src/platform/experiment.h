#ifndef MIP_PLATFORM_EXPERIMENT_H_
#define MIP_PLATFORM_EXPERIMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::platform {

/// \brief What the UI's "Create Experiment" screen submits: an algorithm
/// from the available-algorithms panel, the dataset selection, the variable
/// model and the algorithm parameters (paper Figure 3, right-hand panels).
struct ExperimentSpec {
  std::string algorithm;  ///< registry name, e.g. "linear_regression"
  std::vector<std::string> datasets;
  /// Scalar/string parameters ("k" = "3", "target" = "y", ...).
  std::map<std::string, std::string> params;
  /// List parameters ("variables", "covariates", "levels", ...).
  std::map<std::string, std::vector<std::string>> list_params;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
  /// Dispatch/failure policy for the experiment's session. Scalar params
  /// "fanout.min_workers", "fanout.max_attempts", "fanout.max_concurrency",
  /// "fanout.worker_timeout_ms" and "fanout.retry_backoff_ms" override the
  /// corresponding fields (the UI submits them as plain form values).
  federation::FanoutPolicy fanout;

  /// The fanout policy with any "fanout.*" params applied.
  federation::FanoutPolicy ResolvedFanout() const;

  // -- typed accessors with defaults -------------------------------------
  std::string GetParam(const std::string& key,
                       const std::string& default_value = "") const;
  double GetNumericParam(const std::string& key, double default_value) const;
  std::vector<std::string> GetListParam(const std::string& key) const;
  /// Error if the (list) parameter is absent/empty.
  Result<std::string> RequireParam(const std::string& key) const;
  Result<std::vector<std::string>> RequireListParam(
      const std::string& key) const;
};

/// Lifecycle of a submitted experiment (the dashboard shows "Your
/// experiment is currently running" until results arrive).
enum class ExperimentStatus { kPending, kRunning, kCompleted, kFailed };

const char* ExperimentStatusName(ExperimentStatus status);

/// \brief One entry of "My Experiments".
struct ExperimentRecord {
  std::string id;
  ExperimentSpec spec;
  ExperimentStatus status = ExperimentStatus::kPending;
  std::string result;  ///< rendered result text when completed
  std::string error;   ///< failure reason when failed
  double runtime_ms = 0.0;
  /// Per-worker totals over the whole experiment (attempts, wall time,
  /// final status) — the dashboard's per-hospital timing panel.
  std::vector<federation::WorkerRunReport> worker_reports;
  /// Hospitals the quorum policy excluded, and the session datasets that
  /// lost a replica as a result.
  std::vector<std::string> excluded_workers;
  std::vector<std::string> excluded_datasets;
};

/// \brief Maps algorithm names to runnable entry points. MIP registers its
/// built-in catalog (RegisterBuiltinAlgorithms); deployments can add their
/// own.
class AlgorithmRegistry {
 public:
  /// Runs the algorithm over an open session and renders its result.
  using Runner = std::function<Result<std::string>(
      federation::FederationSession*, const ExperimentSpec&)>;

  Status Register(const std::string& name, Runner runner);
  bool Has(const std::string& name) const;
  Result<const Runner*> Find(const std::string& name) const;
  /// The "Available Algorithms" panel.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Runner> runners_;
};

/// Registers the full built-in catalog (descriptive, pearson, t-tests,
/// ANOVAs, regressions + CV, k-means, PCA, naive bayes + CV, ID3, CART,
/// Kaplan-Meier, calibration belt, histogram).
Status RegisterBuiltinAlgorithms(AlgorithmRegistry* registry);

/// \brief The experiment front end: submission, status tracking and the
/// "My Experiments" history, on top of a MasterNode.
class ExperimentManager {
 public:
  explicit ExperimentManager(federation::MasterNode* master);

  AlgorithmRegistry* registry() { return &registry_; }

  /// Validates and executes the experiment (synchronously in this
  /// in-process build; status transitions and the async retrieval-by-id
  /// surface mirror the deployed platform). Returns the experiment id.
  Result<std::string> Submit(const ExperimentSpec& spec);

  Result<ExperimentRecord> Get(const std::string& experiment_id) const;
  /// All experiments, newest last.
  std::vector<ExperimentRecord> List() const;

  /// \brief The dashboard's "Workflow" tab: a named sequence of experiment
  /// steps run in order (MIP composes algorithm runs into workflows).
  struct WorkflowSpec {
    std::string name;
    std::vector<ExperimentSpec> steps;
    /// When true (default) a failed step aborts the remaining steps.
    bool stop_on_failure = true;
  };

  /// Runs every step and returns their records (in order). A failed step
  /// never fails the workflow call itself — inspect the records.
  Result<std::vector<ExperimentRecord>> RunWorkflow(const WorkflowSpec& spec);

 private:
  federation::MasterNode* master_;
  AlgorithmRegistry registry_;
  std::vector<ExperimentRecord> records_;
  int64_t counter_ = 0;
};

/// \brief The "Data Catalogue" tab: which datasets exist, where they live,
/// their harmonized schema and caseload. Built from the federation's
/// catalog by asking each worker for aggregate metadata only.
class DataCatalogue {
 public:
  struct DatasetInfo {
    std::string name;
    std::vector<std::string> workers;
    int64_t total_rows = 0;
    std::vector<engine::Field> schema;
  };

  static Result<DataCatalogue> Build(federation::MasterNode* master);

  const std::vector<DatasetInfo>& datasets() const { return datasets_; }
  Result<const DatasetInfo*> Find(const std::string& dataset) const;
  std::string ToString() const;

 private:
  std::vector<DatasetInfo> datasets_;
};

}  // namespace mip::platform

#endif  // MIP_PLATFORM_EXPERIMENT_H_
