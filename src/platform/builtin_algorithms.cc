#include "algorithms/anova.h"
#include "algorithms/calibration_belt.h"
#include "algorithms/decision_tree.h"
#include "algorithms/descriptive.h"
#include "algorithms/histogram.h"
#include "algorithms/kaplan_meier.h"
#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "algorithms/logistic_regression.h"
#include "algorithms/naive_bayes.h"
#include "algorithms/pca.h"
#include "algorithms/pearson.h"
#include "algorithms/ttest.h"
#include "platform/experiment.h"

namespace mip::platform {

namespace {

using federation::FederationSession;

// Parameter plumbing shared by the regression-style runners.
template <typename Spec>
void FillCommon(Spec* spec, const ExperimentSpec& e) {
  spec->datasets = e.datasets;
  spec->mode = e.mode;
}

}  // namespace

Status RegisterBuiltinAlgorithms(AlgorithmRegistry* registry) {
  MIP_RETURN_NOT_OK(registry->Register(
      "descriptive",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::DescriptiveSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variables, e.RequireListParam("variables"));
        MIP_ASSIGN_OR_RETURN(auto r, RunDescriptive(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "histogram",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::HistogramSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variable, e.RequireParam("variable"));
        spec.bins = static_cast<int>(e.GetNumericParam("bins", 10));
        spec.nominal = e.GetParam("nominal") == "true";
        spec.levels = e.GetListParam("levels");
        spec.privacy_threshold =
            static_cast<int64_t>(e.GetNumericParam("privacy_threshold", 10));
        MIP_ASSIGN_OR_RETURN(auto r, RunHistogram(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "pearson_correlation",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::PearsonSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variables, e.RequireListParam("variables"));
        MIP_ASSIGN_OR_RETURN(auto r, RunPearson(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "ttest_onesample",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::TTestOneSampleSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variable, e.RequireParam("variable"));
        spec.mu0 = e.GetNumericParam("mu0", 0.0);
        MIP_ASSIGN_OR_RETURN(auto r, RunTTestOneSample(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "ttest_independent",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::TTestIndependentSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variable, e.RequireParam("variable"));
        MIP_ASSIGN_OR_RETURN(spec.group_variable,
                             e.RequireParam("group_variable"));
        MIP_ASSIGN_OR_RETURN(spec.group_a, e.RequireParam("group_a"));
        MIP_ASSIGN_OR_RETURN(spec.group_b, e.RequireParam("group_b"));
        spec.pooled = e.GetParam("pooled") == "true";
        MIP_ASSIGN_OR_RETURN(auto r, RunTTestIndependent(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "ttest_paired",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::TTestPairedSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variable_a, e.RequireParam("variable_a"));
        MIP_ASSIGN_OR_RETURN(spec.variable_b, e.RequireParam("variable_b"));
        MIP_ASSIGN_OR_RETURN(auto r, RunTTestPaired(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "anova_oneway",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::AnovaOneWaySpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.outcome, e.RequireParam("outcome"));
        MIP_ASSIGN_OR_RETURN(spec.factor, e.RequireParam("factor"));
        spec.levels = e.GetListParam("levels");
        MIP_ASSIGN_OR_RETURN(auto r, RunAnovaOneWay(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "anova_twoway",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::AnovaTwoWaySpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.outcome, e.RequireParam("outcome"));
        MIP_ASSIGN_OR_RETURN(spec.factor_a, e.RequireParam("factor_a"));
        MIP_ASSIGN_OR_RETURN(spec.factor_b, e.RequireParam("factor_b"));
        MIP_ASSIGN_OR_RETURN(spec.levels_a, e.RequireListParam("levels_a"));
        MIP_ASSIGN_OR_RETURN(spec.levels_b, e.RequireListParam("levels_b"));
        MIP_ASSIGN_OR_RETURN(auto r, RunAnovaTwoWay(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "linear_regression",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::LinearRegressionSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.covariates,
                             e.RequireListParam("covariates"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        spec.intercept = e.GetParam("intercept", "true") != "false";
        MIP_ASSIGN_OR_RETURN(auto r, RunLinearRegression(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "linear_regression_cv",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::LinearRegressionSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.covariates,
                             e.RequireListParam("covariates"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        const int folds = static_cast<int>(e.GetNumericParam("folds", 5));
        MIP_ASSIGN_OR_RETURN(auto r, RunLinearRegressionCv(s, spec, folds));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "logistic_regression",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::LogisticRegressionSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.covariates,
                             e.RequireListParam("covariates"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        spec.positive_class = e.GetParam("positive_class");
        MIP_ASSIGN_OR_RETURN(auto r, RunLogisticRegression(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "logistic_regression_cv",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::LogisticRegressionSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.covariates,
                             e.RequireListParam("covariates"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        spec.positive_class = e.GetParam("positive_class");
        const int folds = static_cast<int>(e.GetNumericParam("folds", 5));
        MIP_ASSIGN_OR_RETURN(auto r, RunLogisticRegressionCv(s, spec, folds));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "kmeans",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::KMeansSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variables, e.RequireListParam("variables"));
        spec.k = static_cast<int>(e.GetNumericParam("k", 3));
        spec.max_iterations =
            static_cast<int>(e.GetNumericParam("iterations_max_number", 100));
        spec.standardize = e.GetParam("standardize") == "true";
        spec.seed = static_cast<uint64_t>(e.GetNumericParam("seed", 0xC1));
        MIP_ASSIGN_OR_RETURN(auto r, RunKMeans(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "pca",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::PcaSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.variables, e.RequireListParam("variables"));
        spec.scale = e.GetParam("scale", "true") != "false";
        MIP_ASSIGN_OR_RETURN(auto r, RunPca(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "naive_bayes",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::NaiveBayesSpec spec;
        FillCommon(&spec, e);
        spec.numeric_features = e.GetListParam("numeric_features");
        spec.categorical_features = e.GetListParam("categorical_features");
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        MIP_ASSIGN_OR_RETURN(auto r, RunNaiveBayes(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "naive_bayes_cv",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::NaiveBayesSpec spec;
        FillCommon(&spec, e);
        spec.numeric_features = e.GetListParam("numeric_features");
        spec.categorical_features = e.GetListParam("categorical_features");
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        const int folds = static_cast<int>(e.GetNumericParam("folds", 4));
        MIP_ASSIGN_OR_RETURN(auto r, RunNaiveBayesCv(s, spec, folds));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "id3",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::Id3Spec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.features, e.RequireListParam("features"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        spec.max_depth = static_cast<int>(e.GetNumericParam("max_depth", 4));
        MIP_ASSIGN_OR_RETURN(auto r, RunId3(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "cart",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::CartSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.features, e.RequireListParam("features"));
        MIP_ASSIGN_OR_RETURN(spec.target, e.RequireParam("target"));
        spec.max_depth = static_cast<int>(e.GetNumericParam("max_depth", 4));
        MIP_ASSIGN_OR_RETURN(auto r, RunCart(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "kaplan_meier",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::KaplanMeierSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.time_variable,
                             e.RequireParam("time_variable"));
        MIP_ASSIGN_OR_RETURN(spec.event_variable,
                             e.RequireParam("event_variable"));
        spec.group_variable = e.GetParam("group_variable");
        MIP_ASSIGN_OR_RETURN(auto r, RunKaplanMeier(s, spec));
        return r.ToString();
      }));

  MIP_RETURN_NOT_OK(registry->Register(
      "calibration_belt",
      [](FederationSession* s, const ExperimentSpec& e) -> Result<std::string> {
        algorithms::CalibrationBeltSpec spec;
        FillCommon(&spec, e);
        MIP_ASSIGN_OR_RETURN(spec.probability_variable,
                             e.RequireParam("probability_variable"));
        MIP_ASSIGN_OR_RETURN(spec.outcome_variable,
                             e.RequireParam("outcome_variable"));
        spec.max_degree =
            static_cast<int>(e.GetNumericParam("max_degree", 3));
        MIP_ASSIGN_OR_RETURN(auto r, RunCalibrationBelt(s, spec));
        return r.ToString();
      }));

  return Status::OK();
}

}  // namespace mip::platform
