#include "platform/experiment.h"

#include <cstdlib>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace mip::platform {

std::string ExperimentSpec::GetParam(const std::string& key,
                                     const std::string& default_value) const {
  auto it = params.find(key);
  return it == params.end() ? default_value : it->second;
}

double ExperimentSpec::GetNumericParam(const std::string& key,
                                       double default_value) const {
  auto it = params.find(key);
  if (it == params.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? default_value : v;
}

std::vector<std::string> ExperimentSpec::GetListParam(
    const std::string& key) const {
  auto it = list_params.find(key);
  return it == list_params.end() ? std::vector<std::string>{} : it->second;
}

Result<std::string> ExperimentSpec::RequireParam(const std::string& key) const {
  auto it = params.find(key);
  if (it == params.end() || it->second.empty()) {
    return Status::InvalidArgument("experiment parameter '" + key +
                                   "' is required");
  }
  return it->second;
}

federation::FanoutPolicy ExperimentSpec::ResolvedFanout() const {
  federation::FanoutPolicy policy = fanout;
  policy.min_workers = static_cast<size_t>(GetNumericParam(
      "fanout.min_workers", static_cast<double>(policy.min_workers)));
  policy.max_attempts = static_cast<int>(
      GetNumericParam("fanout.max_attempts", policy.max_attempts));
  policy.max_concurrency = static_cast<int>(
      GetNumericParam("fanout.max_concurrency", policy.max_concurrency));
  policy.worker_timeout_ms =
      GetNumericParam("fanout.worker_timeout_ms", policy.worker_timeout_ms);
  policy.retry_backoff_ms =
      GetNumericParam("fanout.retry_backoff_ms", policy.retry_backoff_ms);
  return policy;
}

Result<std::vector<std::string>> ExperimentSpec::RequireListParam(
    const std::string& key) const {
  auto it = list_params.find(key);
  if (it == list_params.end() || it->second.empty()) {
    return Status::InvalidArgument("experiment list parameter '" + key +
                                   "' is required");
  }
  return it->second;
}

const char* ExperimentStatusName(ExperimentStatus status) {
  switch (status) {
    case ExperimentStatus::kPending:
      return "pending";
    case ExperimentStatus::kRunning:
      return "running";
    case ExperimentStatus::kCompleted:
      return "completed";
    case ExperimentStatus::kFailed:
      return "failed";
  }
  return "?";
}

Status AlgorithmRegistry::Register(const std::string& name, Runner runner) {
  const std::string key = ToLower(name);
  if (runners_.count(key) > 0) {
    return Status::AlreadyExists("algorithm '" + name +
                                 "' already registered");
  }
  runners_.emplace(key, std::move(runner));
  return Status::OK();
}

bool AlgorithmRegistry::Has(const std::string& name) const {
  return runners_.count(ToLower(name)) > 0;
}

Result<const AlgorithmRegistry::Runner*> AlgorithmRegistry::Find(
    const std::string& name) const {
  auto it = runners_.find(ToLower(name));
  if (it == runners_.end()) {
    return Status::NotFound("no algorithm named '" + name +
                            "' in the registry");
  }
  return &it->second;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(runners_.size());
  for (const auto& [k, v] : runners_) names.push_back(k);
  return names;
}

ExperimentManager::ExperimentManager(federation::MasterNode* master)
    : master_(master) {
  (void)RegisterBuiltinAlgorithms(&registry_);
}

Result<std::string> ExperimentManager::Submit(const ExperimentSpec& spec) {
  MIP_ASSIGN_OR_RETURN(const AlgorithmRegistry::Runner* runner,
                       registry_.Find(spec.algorithm));
  ExperimentRecord record;
  record.id = "exp-" + std::to_string(++counter_);
  record.spec = spec;
  record.status = ExperimentStatus::kRunning;

  Stopwatch sw;
  Result<federation::FederationSession> session =
      master_->StartSession(spec.datasets);
  if (!session.ok()) {
    record.status = ExperimentStatus::kFailed;
    record.error = session.status().ToString();
    record.runtime_ms = sw.ElapsedMillis();
    records_.push_back(record);
    return record.id;
  }
  session.ValueOrDie().set_fanout_policy(spec.ResolvedFanout());
  Result<std::string> result = (*runner)(&session.ValueOrDie(), spec);
  record.runtime_ms = sw.ElapsedMillis();
  record.worker_reports = session.ValueOrDie().CumulativeReports();
  record.excluded_workers = session.ValueOrDie().excluded_workers();
  record.excluded_datasets = session.ValueOrDie().ExcludedDatasets();
  if (result.ok()) {
    record.status = ExperimentStatus::kCompleted;
    record.result = result.ValueOrDie();
  } else {
    record.status = ExperimentStatus::kFailed;
    record.error = result.status().ToString();
  }
  records_.push_back(std::move(record));
  return records_.back().id;
}

Result<ExperimentRecord> ExperimentManager::Get(
    const std::string& experiment_id) const {
  for (const ExperimentRecord& r : records_) {
    if (r.id == experiment_id) return r;
  }
  return Status::NotFound("no experiment '" + experiment_id + "'");
}

std::vector<ExperimentRecord> ExperimentManager::List() const {
  return records_;
}

Result<std::vector<ExperimentRecord>> ExperimentManager::RunWorkflow(
    const WorkflowSpec& spec) {
  if (spec.steps.empty()) {
    return Status::InvalidArgument("workflow '" + spec.name +
                                   "' has no steps");
  }
  // Validate every algorithm name up front so a typo in step 5 does not
  // burn steps 1-4.
  for (const ExperimentSpec& step : spec.steps) {
    MIP_RETURN_NOT_OK(registry_.Find(step.algorithm).status());
  }
  std::vector<ExperimentRecord> records;
  for (const ExperimentSpec& step : spec.steps) {
    MIP_ASSIGN_OR_RETURN(std::string id, Submit(step));
    MIP_ASSIGN_OR_RETURN(ExperimentRecord record, Get(id));
    const bool failed = record.status == ExperimentStatus::kFailed;
    records.push_back(std::move(record));
    if (failed && spec.stop_on_failure) break;
  }
  return records;
}

Result<DataCatalogue> DataCatalogue::Build(federation::MasterNode* master) {
  DataCatalogue catalogue;
  std::map<std::string, DatasetInfo> by_name;
  const std::vector<std::string> workers = master->WorkersWithDatasets({});
  for (const std::string& wid : workers) {
    federation::WorkerNode* worker = master->GetWorker(wid);
    if (worker == nullptr) continue;
    for (const std::string& dataset : worker->datasets()) {
      DatasetInfo& info = by_name[dataset];
      info.name = dataset;
      info.workers.push_back(wid);
      MIP_ASSIGN_OR_RETURN(engine::Table table, worker->db().GetTable(dataset));
      info.total_rows += static_cast<int64_t>(table.num_rows());
      if (info.schema.empty()) info.schema = table.schema().fields();
    }
  }
  for (auto& [name, info] : by_name) {
    catalogue.datasets_.push_back(std::move(info));
  }
  return catalogue;
}

Result<const DataCatalogue::DatasetInfo*> DataCatalogue::Find(
    const std::string& dataset) const {
  for (const DatasetInfo& info : datasets_) {
    if (EqualsIgnoreCase(info.name, dataset)) return &info;
  }
  return Status::NotFound("dataset '" + dataset + "' not in the catalogue");
}

std::string DataCatalogue::ToString() const {
  std::string out = "Data Catalogue\n";
  for (const DatasetInfo& info : datasets_) {
    out += "  " + info.name + ": " + std::to_string(info.total_rows) +
           " rows across " + std::to_string(info.workers.size()) +
           " site(s) [" + Join(info.workers, ", ") + "], variables:";
    for (const engine::Field& f : info.schema) {
      out += " " + f.name;
    }
    out += "\n";
  }
  return out;
}

}  // namespace mip::platform
