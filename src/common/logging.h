#ifndef MIP_COMMON_LOGGING_H_
#define MIP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mip {

/// \brief Severity levels for the MIP logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// The global minimum level defaults to kWarning so tests and benchmarks stay
/// quiet; examples raise it to kInfo to narrate the federation rounds.
class Logger {
 public:
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// RAII line builder: streams into a buffer, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mip

#define MIP_LOG(level)                                                  \
  ::mip::internal::LogMessage(::mip::LogLevel::k##level, __FILE__, __LINE__)

#endif  // MIP_COMMON_LOGGING_H_
