#include "common/status.h"

namespace mip {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kSecurityError:
      return "Security error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mip
