#ifndef MIP_COMMON_STOPWATCH_H_
#define MIP_COMMON_STOPWATCH_H_

#include <chrono>

namespace mip {

/// \brief Monotonic wall-clock timer used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction / last Reset.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mip

#endif  // MIP_COMMON_STOPWATCH_H_
