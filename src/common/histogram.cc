#include "common/histogram.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace mip {

namespace {

constexpr int32_t kZeroBucket = std::numeric_limits<int32_t>::min();

/// Bucket index for a positive value: decade exponent * 90 plus the linear
/// sub-bucket within the decade (mantissa in [1, 10) -> 90 buckets of 0.1).
int32_t BucketFor(double v) {
  if (v < 1e-9) return kZeroBucket;
  const int32_t exp = static_cast<int32_t>(std::floor(std::log10(v)));
  double mantissa = v / std::pow(10.0, exp);
  // Guard the log10/pow seam: mantissa must land in [1, 10).
  if (mantissa < 1.0) mantissa = 1.0;
  if (mantissa >= 10.0) mantissa = std::nextafter(10.0, 0.0);
  const int32_t sub = static_cast<int32_t>((mantissa - 1.0) * 10.0);
  return exp * 90 + (sub < 89 ? sub : 89);
}

/// Lower bound of a bucket (inverse of BucketFor).
double BucketLow(int32_t b) {
  if (b == kZeroBucket) return 0.0;
  // Floor-divide toward -inf so negative exponents map back correctly.
  int32_t exp = b / 90;
  int32_t sub = b % 90;
  if (sub < 0) {
    exp -= 1;
    sub += 90;
  }
  return (1.0 + sub * 0.1) * std::pow(10.0, exp);
}

double BucketHigh(int32_t b) {
  if (b == kZeroBucket) return 1e-9;
  int32_t exp = b / 90;
  int32_t sub = b % 90;
  if (sub < 0) {
    exp -= 1;
    sub += 90;
  }
  return (1.0 + (sub + 1) * 0.1) * std::pow(10.0, exp);
}

}  // namespace

void LatencyHistogram::Record(double value) {
  if (!std::isfinite(value) || value < 0.0) value = 0.0;
  buckets_[BucketFor(value)] += 1;
  count_ += 1;
  sum_ += value;
  if (value > max_) max_ = value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (const auto& [bucket, n] : other.buckets_) buckets_[bucket] += n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk buckets in value order.
  const double rank = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets_) {
    if (static_cast<double>(seen + n) >= rank) {
      const double lo = BucketLow(bucket);
      const double hi = BucketHigh(bucket);
      const double into = rank - static_cast<double>(seen);
      const double frac = n > 0 ? into / static_cast<double>(n) : 0.0;
      const double v = lo + (hi - lo) * frac;
      // Never report beyond the true maximum (the top bucket overshoots it).
      return v < max_ ? v : max_;
    }
    seen += n;
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p99=%.3f p999=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), Mean(),
                Quantile(0.50), Quantile(0.99), Quantile(0.999), max_);
  return buf;
}

void LatencyHistogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

}  // namespace mip
