#ifndef MIP_COMMON_RNG_H_
#define MIP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mip {

/// \brief Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64).
///
/// Every stochastic component in MIP (synthetic cohorts, secret-share
/// randomness in simulation mode, DP noise, k-means initialization) draws
/// from an explicitly seeded Rng so that experiments are reproducible
/// run-to-run. The generator is NOT cryptographically secure; the SMPC
/// module documents where a deployment would substitute a CSPRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC0FFEE1234ABCDEFull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Fills `out[0..n)` with the next n values of the stream — identical to
  /// calling NextUint64() n times, but the generator state stays in
  /// registers for the whole block, which is what makes bulk secret-share
  /// sampling cheap (see smpc::Field::RandomVec).
  void FillUint64(uint64_t* out, size_t n);

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// Gaussian with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Laplace(0, scale) via inverse CDF.
  double NextLaplace(double scale);

  /// Exponential with the given rate (lambda).
  double NextExponential(double rate);

  /// Gamma(shape, scale) via Marsaglia-Tsang (shape >= 0 supported; shape < 1
  /// handled by boosting).
  double NextGamma(double shape, double scale);

  /// Returns an integer in [0, n) for categorical sampling with the given
  /// (unnormalized, non-negative) weights.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent, deterministically derived child stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mip

#endif  // MIP_COMMON_RNG_H_
