#ifndef MIP_COMMON_HISTOGRAM_H_
#define MIP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>

namespace mip {

/// \brief Log-linear latency histogram in the circllhist style: each decade
/// [10^e, 10^(e+1)) is split into 90 linear buckets of width 10^e, so every
/// recorded value lands in a bucket whose bounds agree with it to two
/// significant digits. Quantile error is therefore bounded at ~1.1% of the
/// value regardless of magnitude — microseconds and minutes coexist in one
/// histogram with no configuration.
///
/// This is the observability primitive behind the serving layer's
/// p50/p99/p999 surfaces (per tenant on the gateway, per link on the
/// transports). Not internally synchronized: owners record under their own
/// stats lock, exactly like the NetworkStats counters next to it.
class LatencyHistogram {
 public:
  /// Records one sample (milliseconds by convention, but the scale is
  /// caller-defined). Non-finite and negative samples are clamped to 0.
  void Record(double value);

  /// Merges another histogram into this one (per-link -> totals rollup).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double max_seen() const { return max_; }

  /// Quantile in [0, 1] by linear interpolation inside the target bucket.
  /// Returns 0 when empty. Quantile(0.5) = p50, Quantile(0.999) = p999.
  double Quantile(double q) const;

  /// One-line summary: "n=... mean=... p50=... p99=... p999=... max=..."
  /// (fixed decimals, stable for goldens and /metrics-style text output).
  std::string Summary() const;

  void Reset();

 private:
  /// Key = exponent * 90 + (mantissa bucket 0..89); values < 1e-9 share the
  /// zero bucket keyed INT32_MIN.
  std::map<int32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mip

#endif  // MIP_COMMON_HISTOGRAM_H_
