#ifndef MIP_COMMON_STRING_UTIL_H_
#define MIP_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace mip {

/// Splits `s` on `delim`; adjacent delimiters produce empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// ASCII lower-casing (SQL keywords, identifiers).
std::string ToLower(const std::string& s);

/// ASCII upper-casing.
std::string ToUpper(const std::string& s);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

}  // namespace mip

#endif  // MIP_COMMON_STRING_UTIL_H_
