#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mip {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Rng::FillUint64(uint64_t* out, size_t n) {
  uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  for (size_t i = 0; i < n; ++i) {
    out[i] = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLaplace(double scale) {
  const double u = NextDouble() - 0.5;
  const double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::NextExponential(double rate) {
  double u = 0.0;
  while (u == 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

double Rng::NextGamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = NextDouble();
    return NextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = NextBounded(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace mip
