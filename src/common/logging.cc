#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mip {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to reduce noise.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() { Logger::Log(level_, stream_.str()); }

}  // namespace internal
}  // namespace mip
