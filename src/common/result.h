#ifndef MIP_COMMON_RESULT_H_
#define MIP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mip {

/// \brief Either a value of type T or a non-ok Status.
///
/// The canonical usage is
///
///   Result<Table> r = MakeTable(...);
///   MIP_ASSIGN_OR_RETURN(Table t, MakeTable(...));
///
/// Accessing the value of a failed Result is a programming error and aborts
/// in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be ok.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(repr_).ok());
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status (OK if the result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out of the result (result must be ok).
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace mip

/// Evaluates `rexpr` (a Result<T>); on failure returns its Status, otherwise
/// binds the value to `lhs`.
#define MIP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).MoveValueUnsafe()

#define MIP_ASSIGN_OR_RETURN(lhs, rexpr) \
  MIP_ASSIGN_OR_RETURN_IMPL(MIP_CONCAT(_mip_result_, __LINE__), lhs, rexpr)

#endif  // MIP_COMMON_RESULT_H_
