#ifndef MIP_COMMON_PARALLEL_H_
#define MIP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace mip {

/// \brief Number of hardware threads (>= 1).
int HardwareThreads();

/// \brief Runs `body(begin, end)` over `num_threads` contiguous slices of
/// [0, n). With num_threads <= 1 (or n small) the body runs inline on the
/// calling thread. Slices are disjoint, so bodies may write to disjoint
/// ranges of shared output without synchronization.
///
/// This is the engine's parallelization primitive (one of the paper's
/// claimed in-engine features); callers own any reduction across slices.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t begin, size_t end)>& body);

}  // namespace mip

#endif  // MIP_COMMON_PARALLEL_H_
