#ifndef MIP_COMMON_PARALLEL_H_
#define MIP_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mip {

/// \brief Number of hardware threads (>= 1).
int HardwareThreads();

/// \brief A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Used by the federation Master to fan local-run requests out to many
/// Workers concurrently (tasks there mostly wait on simulated network
/// latency, so the pool may be larger than the core count) and by the
/// engine's morsel dispatch (ParallelFor). Tasks submitted through Submit()
/// must be independent: a task must never block on another task that could
/// still be queued behind it, or the pool can deadlock. ParallelFor() is
/// exempt from that rule — the caller participates in the work, so it makes
/// progress even when every pool thread is busy, and it is therefore safe to
/// call from inside a pool task (nested parallelism).
///
/// The destructor drains the queue (every submitted task runs) and joins
/// all threads.
class ThreadPool {
 public:
  /// `num_threads <= 0` uses HardwareThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task. Tasks run in submission order, `size()` at a time.
  void Submit(std::function<void()> task);

  /// Runs `body(begin, end)` over [0, n) split into chunks of `grain`
  /// elements (the last chunk may be short; grain 0 means one chunk).
  /// Chunks are claimed from a shared atomic counter by up to size() pool
  /// threads *and the calling thread*, so the call makes progress even when
  /// the pool is saturated and never deadlocks when nested. Returns after
  /// every chunk has run. If any body invocation throws, the first captured
  /// exception is rethrown here after all claimed chunks finish; remaining
  /// unclaimed chunks are skipped.
  ///
  /// Chunk boundaries depend only on (n, grain) — never on thread count —
  /// so per-chunk partial results merged in chunk order give deterministic,
  /// bit-identical reductions at any parallelism (the engine's morsel
  /// determinism guarantee rests on this).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t begin, size_t end)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mip

#endif  // MIP_COMMON_PARALLEL_H_
