#ifndef MIP_COMMON_PARALLEL_H_
#define MIP_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mip {

/// \brief Number of hardware threads (>= 1).
int HardwareThreads();

/// \brief A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Used by the federation Master to fan local-run requests out to many
/// Workers concurrently (tasks there mostly wait on simulated network
/// latency, so the pool may be larger than the core count). Submitted tasks
/// must be independent: a task must never block on another task that could
/// still be queued behind it, or the pool can deadlock.
///
/// The destructor drains the queue (every submitted task runs) and joins
/// all threads.
class ThreadPool {
 public:
  /// `num_threads <= 0` uses HardwareThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task. Tasks run in submission order, `size()` at a time.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Runs `body(begin, end)` over `num_threads` contiguous slices of
/// [0, n). With num_threads <= 1 (or n small) the body runs inline on the
/// calling thread. Slices are disjoint, so bodies may write to disjoint
/// ranges of shared output without synchronization.
///
/// This is the engine's parallelization primitive (one of the paper's
/// claimed in-engine features); callers own any reduction across slices.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t begin, size_t end)>& body);

}  // namespace mip

#endif  // MIP_COMMON_PARALLEL_H_
