#ifndef MIP_COMMON_STATUS_H_
#define MIP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mip {

/// \brief Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kParseError,
  kExecutionError,
  kSecurityError,
  kIOError,
  kNotImplemented,
  kInternal,
  /// A (simulated) remote peer is unreachable, timed out, or a federated
  /// session fell below its quorum. Transient by nature: the federation
  /// layer treats this code (and kIOError) as retryable.
  kUnavailable,
  /// The node is up but refusing work right now: admission control shed the
  /// request (gateway BUSY) or a quota was exceeded. Retryable after
  /// client-side backoff, but unlike kUnavailable the federation fan-out
  /// does NOT auto-retry it — hammering an overloaded node makes it worse.
  kResourceExhausted,
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid argument").
const char* StatusCodeName(StatusCode code);

/// \brief Result status of a fallible operation.
///
/// MIP never throws exceptions across public API boundaries; every fallible
/// operation returns a Status (or a Result<T>, see result.h). The idiom
/// follows Apache Arrow / RocksDB:
///
///   MIP_RETURN_NOT_OK(DoThing());
///
/// An ok status carries no allocation.
class Status {
 public:
  /// Constructs an ok status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status SecurityError(std::string msg) {
    return Status(StatusCode::kSecurityError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace mip

/// Propagates a non-ok Status to the caller.
#define MIP_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::mip::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define MIP_CONCAT_IMPL(x, y) x##y
#define MIP_CONCAT(x, y) MIP_CONCAT_IMPL(x, y)

#endif  // MIP_COMMON_STATUS_H_
