#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace mip {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : HardwareThreads();
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t threads = static_cast<size_t>(std::max(1, num_threads));
  // Below ~4k elements thread startup dominates any win.
  if (threads == 1 || n < 4096) {
    body(0, n);
    return;
  }
  const size_t used = std::min(threads, n);
  const size_t chunk = (n + used - 1) / used;
  std::vector<std::thread> pool;
  pool.reserve(used);
  for (size_t t = 0; t < used; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace mip
