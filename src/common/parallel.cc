#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace mip {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t threads = static_cast<size_t>(std::max(1, num_threads));
  // Below ~4k elements thread startup dominates any win.
  if (threads == 1 || n < 4096) {
    body(0, n);
    return;
  }
  const size_t used = std::min(threads, n);
  const size_t chunk = (n + used - 1) / used;
  std::vector<std::thread> pool;
  pool.reserve(used);
  for (size_t t = 0; t < used; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace mip
