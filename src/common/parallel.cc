#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

namespace mip {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : HardwareThreads();
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Helper tasks hold it by shared_ptr:
/// a helper dequeued after the call already returned finds every chunk
/// claimed and exits without touching the (by then dead) body reference.
struct ParallelForState {
  size_t n = 0;
  size_t grain = 0;
  size_t chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;

  /// Claims and runs chunks until none are left. Every claimed chunk counts
  /// toward `done` even when it is skipped after a failure, so the waiter's
  /// `done == chunks` condition is reached exactly once.
  void Drain() {
    for (;;) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          const size_t begin = c * grain;
          (*body)(begin, std::min(n, begin + grain));
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (error == nullptr) error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mu);  // pairs with the waiter
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0 || grain >= n || size() <= 1) {
    body(0, n);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->chunks = (n + grain - 1) / grain;
  state->body = &body;

  const size_t helpers =
      std::min(state->chunks - 1, static_cast<size_t>(size()));
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();  // the caller participates: progress needs no pool thread

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace mip
