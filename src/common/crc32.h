#ifndef MIP_COMMON_CRC32_H_
#define MIP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mip {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the integrity
/// check shared by the network frame layer and the on-disk storage formats
/// (segments, WAL records, manifest). Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t n);

inline uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace mip

#endif  // MIP_COMMON_CRC32_H_
