#ifndef MIP_COMMON_BYTES_H_
#define MIP_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mip {

/// \brief Append-only binary buffer used to serialize every payload that
/// crosses a federation link (Worker <-> Master <-> SMPC cluster).
///
/// All integers are encoded little-endian fixed-width; strings and blobs are
/// length-prefixed with a uint32. The byte counts reported by the federation
/// cost model are exactly the sizes produced here.
class BufferWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }

  /// Length-prefixed raw blob (the framing layer's payload primitive).
  void WriteBytes(const std::vector<uint8_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size());
  }

  void WriteDoubleVector(const std::vector<double>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(double));
  }

  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  void WriteI64Vector(const std::vector<int64_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(int64_t));
  }

  /// Appends raw bytes verbatim.
  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Grows capacity to hold `n` more bytes beyond the current size, so a
  /// serializer that knows its output size up front (SerializeTable does)
  /// pays one allocation instead of a reallocation per column.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Sequential reader over a byte span produced by BufferWriter.
///
/// All reads are bounds-checked and return Status on truncated input, so a
/// malformed message from a (simulated) remote peer can never corrupt memory.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    MIP_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    MIP_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    MIP_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> ReadI64() {
    int64_t v = 0;
    MIP_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> ReadDouble() {
    double v = 0.0;
    MIP_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<bool> ReadBool() {
    MIP_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    return v != 0;
  }

  Result<std::string> ReadString() {
    MIP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > Remaining()) return TruncatedError();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Result<std::vector<uint8_t>> ReadBytes() {
    MIP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > Remaining()) return TruncatedError();
    std::vector<uint8_t> v(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return v;
  }

  Result<std::vector<double>> ReadDoubleVector() {
    MIP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (static_cast<size_t>(n) * sizeof(double) > Remaining()) {
      return TruncatedError();
    }
    std::vector<double> v(n);
    if (n > 0) MIP_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(double)));
    return v;
  }

  Result<std::vector<uint64_t>> ReadU64Vector() {
    MIP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (static_cast<size_t>(n) * sizeof(uint64_t) > Remaining()) {
      return TruncatedError();
    }
    std::vector<uint64_t> v(n);
    if (n > 0) MIP_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(uint64_t)));
    return v;
  }

  Result<std::vector<int64_t>> ReadI64Vector() {
    MIP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (static_cast<size_t>(n) * sizeof(int64_t) > Remaining()) {
      return TruncatedError();
    }
    std::vector<int64_t> v(n);
    if (n > 0) MIP_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(int64_t)));
    return v;
  }

  /// Reads exactly `n` raw bytes (no length prefix) — for payloads whose
  /// length was established by other means (e.g. a varint prefix).
  Status ReadRawBytes(void* out, size_t n) { return ReadRaw(out, n); }

  /// Reads a u32 without consuming it — format sniffing (e.g. telling a
  /// magic-tagged compressed table apart from the legacy layout).
  Result<uint32_t> PeekU32() const {
    if (sizeof(uint32_t) > Remaining()) return TruncatedError();
    uint32_t v = 0;
    std::memcpy(&v, data_ + pos_, sizeof(v));
    return v;
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (n > Remaining()) return TruncatedError();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  static Status TruncatedError() {
    return Status::IOError("truncated buffer while deserializing");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mip

#endif  // MIP_COMMON_BYTES_H_
