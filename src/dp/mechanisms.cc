#include "dp/mechanisms.h"

#include <cmath>

namespace mip::dp {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), scale_(sensitivity / epsilon) {}

double LaplaceMechanism::Apply(double value, Rng* rng) const {
  return value + rng->NextLaplace(scale_);
}

std::vector<double> LaplaceMechanism::ApplyVector(
    const std::vector<double>& values, Rng* rng) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Apply(values[i], rng);
  return out;
}

GaussianMechanism::GaussianMechanism(double epsilon, double delta,
                                     double sensitivity)
    : epsilon_(epsilon),
      delta_(delta),
      sigma_(sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) /
             epsilon) {}

double GaussianMechanism::Apply(double value, Rng* rng) const {
  return value + rng->NextGaussian(0.0, sigma_);
}

std::vector<double> GaussianMechanism::ApplyVector(
    const std::vector<double>& values, Rng* rng) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Apply(values[i], rng);
  return out;
}

std::vector<double> ClipL2(const std::vector<double>& v, double bound) {
  double norm_sq = 0.0;
  for (double x : v) norm_sq += x * x;
  const double norm = std::sqrt(norm_sq);
  if (norm <= bound || norm == 0.0) return v;
  std::vector<double> out(v.size());
  const double f = bound / norm;
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * f;
  return out;
}

void PrivacyAccountant::Spend(double epsilon, double delta) {
  events_.push_back({epsilon, delta});
}

double PrivacyAccountant::TotalEpsilonBasic() const {
  double total = 0.0;
  for (const Event& e : events_) total += e.epsilon;
  return total;
}

double PrivacyAccountant::TotalDeltaBasic() const {
  double total = 0.0;
  for (const Event& e : events_) total += e.delta;
  return total;
}

double PrivacyAccountant::TotalEpsilonAdvanced(double delta_prime) const {
  if (events_.empty()) return 0.0;
  const double eps = events_[0].epsilon;
  for (const Event& e : events_) {
    if (e.epsilon != eps) return TotalEpsilonBasic();
  }
  const double k = static_cast<double>(events_.size());
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

}  // namespace mip::dp
