#ifndef MIP_DP_MECHANISMS_H_
#define MIP_DP_MECHANISMS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace mip::dp {

/// \brief Laplace mechanism: for a query with L1 sensitivity `sensitivity`,
/// adding Laplace(sensitivity / epsilon) noise gives epsilon-DP.
class LaplaceMechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity);

  double epsilon() const { return epsilon_; }
  double scale() const { return scale_; }

  /// Releases value + Laplace noise.
  double Apply(double value, Rng* rng) const;

  /// Releases each coordinate with independent noise (sensitivity must be
  /// the L1 sensitivity of the whole vector).
  std::vector<double> ApplyVector(const std::vector<double>& values,
                                  Rng* rng) const;

 private:
  double epsilon_;
  double scale_;
};

/// \brief Gaussian mechanism: for L2 sensitivity `sensitivity`, noise with
/// sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon gives
/// (epsilon, delta)-DP (classic analysis, epsilon <= 1).
class GaussianMechanism {
 public:
  GaussianMechanism(double epsilon, double delta, double sensitivity);

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }
  double sigma() const { return sigma_; }

  double Apply(double value, Rng* rng) const;
  std::vector<double> ApplyVector(const std::vector<double>& values,
                                  Rng* rng) const;

 private:
  double epsilon_;
  double delta_;
  double sigma_;
};

/// \brief Clips a vector to L2 norm at most `bound` (gradient clipping for
/// DP federated training); returns the clipped vector.
std::vector<double> ClipL2(const std::vector<double>& v, double bound);

/// \brief Tracks cumulative privacy loss over a sequence of mechanism
/// applications on the same data (per-Worker accountant).
///
/// Supports basic composition (sum of epsilons / deltas) and the advanced
/// composition bound of Dwork-Rothblum-Vadhan for k-fold composition of
/// (eps, delta) mechanisms.
class PrivacyAccountant {
 public:
  /// Records one (epsilon, delta) release.
  void Spend(double epsilon, double delta = 0.0);

  int64_t num_releases() const { return static_cast<int64_t>(events_.size()); }

  /// Basic composition: (sum eps, sum delta).
  double TotalEpsilonBasic() const;
  double TotalDeltaBasic() const;

  /// Advanced composition total epsilon at slack `delta_prime` when all
  /// releases used the same epsilon (heterogeneous releases fall back to
  /// basic). eps_total = eps*sqrt(2k ln(1/d')) + k*eps*(e^eps - 1).
  double TotalEpsilonAdvanced(double delta_prime) const;

  /// True once basic-composition epsilon exceeds `budget`.
  bool ExceedsBudget(double budget) const {
    return TotalEpsilonBasic() > budget;
  }

 private:
  struct Event {
    double epsilon;
    double delta;
  };
  std::vector<Event> events_;
};

}  // namespace mip::dp

#endif  // MIP_DP_MECHANISMS_H_
