#ifndef MIP_STATS_SUMMARY_H_
#define MIP_STATS_SUMMARY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mip::stats {

/// \brief Mergeable univariate summary accumulator.
///
/// Implements the classic federated pattern: each Worker folds its local rows
/// into a SummaryAccumulator, ships the (constant-size) state to the Master,
/// and the Master Merge()s the states. The merged state reproduces exactly
/// the moments the pooled data would give (Chan et al. parallel variance).
class SummaryAccumulator {
 public:
  /// Folds one observation; NaN counts as missing (NA).
  void Add(double x);

  /// Folds a missing value explicitly.
  void AddMissing() { ++na_; }

  /// Merges another accumulator's state into this one.
  void Merge(const SummaryAccumulator& other);

  int64_t count() const { return n_; }
  int64_t na_count() const { return na_; }
  /// count + na (total rows seen).
  int64_t total() const { return n_ + na_; }
  double mean() const { return n_ > 0 ? mean_ : std::numeric_limits<double>::quiet_NaN(); }
  /// Sample variance (n - 1 denominator).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double standard_error() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Serialization to a flat vector [n, na, mean, m2, min, max] — this is the
  /// aggregate MIP ships through SMPC (all entries are sums/extrema, which
  /// the SMPC engine supports natively).
  std::vector<double> ToVector() const;
  static SummaryAccumulator FromVector(const std::vector<double>& v);

 private:
  int64_t n_ = 0;
  int64_t na_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Exact quantiles of a sample (linear interpolation, type-7 like
/// NumPy default). `q` in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> values, double q);

/// \brief The row set of the MIP dashboard's "Descriptive Analysis" panel
/// for a single variable in a single dataset (Figure 3).
struct DescriptiveRow {
  std::string variable;
  std::string dataset;
  int64_t datapoints = 0;  ///< non-missing count
  int64_t na = 0;          ///< missing count
  double se = 0.0;         ///< standard error of the mean
  double mean = 0.0;
  double min = 0.0;
  double q1 = 0.0;
  double q2 = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

}  // namespace mip::stats

#endif  // MIP_STATS_SUMMARY_H_
