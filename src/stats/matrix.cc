#include "stats/matrix.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace mip::stats {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Result<Matrix> Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::TypeError("matmul dimension mismatch: (" +
                             std::to_string(rows_) + "x" +
                             std::to_string(cols_) + ") * (" +
                             std::to_string(other.rows_) + "x" +
                             std::to_string(other.cols_) + ")");
  }
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for cache friendliness on row-major storage.
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double* orow = out.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Result<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::TypeError("matrix add dimension mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Result<Matrix> Matrix::Sub(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::TypeError("matrix sub dimension mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Status Matrix::AddInPlace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::TypeError("matrix add-in-place dimension mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return Status::OK();
}

std::vector<double> Matrix::Column(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

Result<Matrix> Matrix::FromFlat(size_t rows, size_t cols,
                                std::vector<double> flat) {
  if (flat.size() != rows * cols) {
    return Status::TypeError("flat size does not match matrix shape");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != x.size()) {
    return Status::TypeError("matvec dimension mismatch");
  }
  std::vector<double> out(a.rows(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row(r);
    double s = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) s += arow[c] * x[c];
    out[r] = s;
  }
  return out;
}

}  // namespace mip::stats
