#ifndef MIP_STATS_DISTRIBUTIONS_H_
#define MIP_STATS_DISTRIBUTIONS_H_

namespace mip::stats {

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF.
double NormalCdf(double x);

/// Normal CDF with location/scale.
double NormalCdf(double x, double mean, double stddev);

/// Student-t CDF with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Two-sided p-value for a t statistic.
double StudentTTwoSidedP(double t, double df);

/// Student-t quantile (inverse CDF) via bisection on the CDF.
double StudentTQuantile(double p, double df);

/// Chi-squared CDF with `df` degrees of freedom.
double ChiSquaredCdf(double x, double df);

/// Upper-tail chi-squared p-value.
double ChiSquaredSf(double x, double df);

/// F-distribution CDF with (d1, d2) degrees of freedom.
double FCdf(double x, double d1, double d2);

/// Upper-tail F p-value (ANOVA, regression overall test).
double FSf(double x, double d1, double d2);

}  // namespace mip::stats

#endif  // MIP_STATS_DISTRIBUTIONS_H_
