#include "stats/linalg.h"

#include <cmath>

namespace mip::stats {

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::TypeError("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::ExecutionError(
          "matrix is not positive definite (pivot " + std::to_string(j) +
          " = " + std::to_string(diag) + ")");
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

namespace {

// Solves L y = b (forward) then L' x = y (backward).
std::vector<double> CholeskySolveWithFactor(const Matrix& l,
                                            const std::vector<double>& b) {
  const size_t n = l.rows();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

}  // namespace

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return Status::TypeError("SolveSpd dimension mismatch");
  }
  MIP_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  return CholeskySolveWithFactor(l, b);
}

Result<Matrix> SolveSpdMulti(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::TypeError("SolveSpdMulti dimension mismatch");
  }
  MIP_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    std::vector<double> col = b.Column(c);
    std::vector<double> sol = CholeskySolveWithFactor(l, col);
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

Result<Matrix> InverseSpd(const Matrix& a) {
  return SolveSpdMulti(a, Matrix::Identity(a.rows()));
}

Result<std::vector<double>> SolveGeneral(Matrix a, std::vector<double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::TypeError("SolveGeneral dimension mismatch");
  }
  const size_t n = a.rows();
  std::vector<size_t> piv(n);
  for (size_t i = 0; i < n; ++i) piv[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t best = col;
    double best_abs = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best_abs) {
        best = r;
        best_abs = std::fabs(a(r, col));
      }
    }
    if (best_abs < 1e-300) {
      return Status::ExecutionError("singular matrix in SolveGeneral");
    }
    if (best != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(best, c));
      std::swap(b[col], b[best]);
    }
    const double pivot = a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / pivot;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

Result<EigenResult> EigenSymmetric(const Matrix& a_in, int max_sweeps) {
  if (a_in.rows() != a_in.cols()) {
    return Status::TypeError("EigenSymmetric requires a square matrix");
  }
  const size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult out;
  out.eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) out.eigenvalues[i] = a(i, i);
  // Sort eigenvalues descending, permute eigenvector columns accordingly.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t i = 0; i < n; ++i) {
    size_t best = i;
    for (size_t j = i + 1; j < n; ++j) {
      if (out.eigenvalues[order[j]] > out.eigenvalues[order[best]]) best = j;
    }
    std::swap(order[i], order[best]);
  }
  EigenResult sorted;
  sorted.eigenvalues.resize(n);
  sorted.eigenvectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    sorted.eigenvalues[i] = out.eigenvalues[order[i]];
    for (size_t r = 0; r < n; ++r) sorted.eigenvectors(r, i) = v(r, order[i]);
  }
  return sorted;
}

Result<double> DeterminantSpd(const Matrix& a) {
  MIP_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  double det = 1.0;
  for (size_t i = 0; i < a.rows(); ++i) det *= l(i, i) * l(i, i);
  return det;
}

}  // namespace mip::stats
