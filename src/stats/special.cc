#include "stats/special.h"

#include <cmath>
#include <limits>

namespace mip::stats {

namespace {
constexpr double kEps = 1e-15;
constexpr int kMaxIter = 500;
}  // namespace

double LogGamma(double x) { return std::lgamma(x); }

double RegularizedGammaP(double a, double x) {
  if (x < 0.0 || a <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < kMaxIter; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * kEps) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  const double q = std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
  return 1.0 - q;
}

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes
// style modified Lentz).
double BetaContinuedFraction(double x, double a, double b) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedBeta(double x, double a, double b) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double Erf(double x) { return std::erf(x); }

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the normal CDF error.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace mip::stats
