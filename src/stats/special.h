#ifndef MIP_STATS_SPECIAL_H_
#define MIP_STATS_SPECIAL_H_

namespace mip::stats {

/// \brief Log of the Gamma function (Lanczos approximation, |err| < 1e-13).
double LogGamma(double x);

/// \brief Regularized lower incomplete gamma P(a, x).
///
/// Series expansion for x < a + 1, continued fraction otherwise. Drives the
/// chi-squared CDF.
double RegularizedGammaP(double a, double x);

/// \brief Regularized incomplete beta I_x(a, b) via Lentz continued fraction.
///
/// Drives the Student-t and F CDFs used for regression / ANOVA / t-test
/// p-values.
double RegularizedBeta(double x, double a, double b);

/// \brief Error function (from std, exposed here for symmetry).
double Erf(double x);

/// \brief Inverse of the standard normal CDF (Acklam's rational
/// approximation, refined by one Halley step; |err| < 1e-12).
double NormalQuantile(double p);

}  // namespace mip::stats

#endif  // MIP_STATS_SPECIAL_H_
