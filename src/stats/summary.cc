#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace mip::stats {

void SummaryAccumulator::Add(double x) {
  if (std::isnan(x)) {
    ++na_;
    return;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryAccumulator::Merge(const SummaryAccumulator& other) {
  na_ += other.na_;
  if (other.n_ == 0) return;
  if (n_ == 0) {
    n_ = other.n_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    min_ = other.min_;
    max_ = other.max_;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_tot = na + nb;
  mean_ += delta * nb / n_tot;
  m2_ += other.m2_ + delta * delta * na * nb / n_tot;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryAccumulator::variance() const {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  return m2_ / static_cast<double>(n_ - 1);
}

double SummaryAccumulator::stddev() const { return std::sqrt(variance()); }

double SummaryAccumulator::standard_error() const {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  return stddev() / std::sqrt(static_cast<double>(n_));
}

std::vector<double> SummaryAccumulator::ToVector() const {
  return {static_cast<double>(n_), static_cast<double>(na_), mean_, m2_,
          min_,                    max_};
}

SummaryAccumulator SummaryAccumulator::FromVector(
    const std::vector<double>& v) {
  SummaryAccumulator acc;
  if (v.size() != 6) return acc;
  acc.n_ = static_cast<int64_t>(v[0]);
  acc.na_ = static_cast<int64_t>(v[1]);
  acc.mean_ = v[2];
  acc.m2_ = v[3];
  acc.min_ = v[4];
  acc.max_ = v[5];
  return acc;
}

double Quantile(std::vector<double> values, double q) {
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double x) { return std::isnan(x); }),
               values.end());
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace mip::stats
