#ifndef MIP_STATS_MATRIX_H_
#define MIP_STATS_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace mip::stats {

/// \brief Dense row-major matrix of doubles.
///
/// This is the numeric workhorse under the federated algorithms: Gram
/// matrices (X'X), covariance matrices, Hessians. It is intentionally simple
/// — contiguous storage, no expression templates — because all heavy lifting
/// in MIP happens inside the vectorized engine; the matrices that reach the
/// Master node are small aggregates (p x p for p features).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  Matrix Transpose() const;

  /// Matrix product this * other. Dimension mismatch is a TypeError.
  Result<Matrix> MatMul(const Matrix& other) const;

  /// this + other (elementwise).
  Result<Matrix> Add(const Matrix& other) const;

  /// this - other (elementwise).
  Result<Matrix> Sub(const Matrix& other) const;

  /// Scales every element by s.
  Matrix Scale(double s) const;

  /// Adds `other` into this matrix in place. Dimension mismatch is an error.
  Status AddInPlace(const Matrix& other);

  /// Column c as a vector.
  std::vector<double> Column(size_t c) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute elementwise difference against `other` (inf if shapes
  /// differ).
  double MaxAbsDiff(const Matrix& other) const;

  /// Serializes to/from flat vectors (used by the federation transfer layer).
  std::vector<double> Flatten() const { return data_; }
  static Result<Matrix> FromFlat(size_t rows, size_t cols,
                                 std::vector<double> flat);

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Matrix-vector product A*x.
Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x);

}  // namespace mip::stats

#endif  // MIP_STATS_MATRIX_H_
