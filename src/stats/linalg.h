#ifndef MIP_STATS_LINALG_H_
#define MIP_STATS_LINALG_H_

#include <vector>

#include "common/result.h"
#include "stats/matrix.h"

namespace mip::stats {

/// \brief Cholesky factorization A = L L' of a symmetric positive-definite
/// matrix. Returns the lower-triangular factor L. Fails with ExecutionError
/// if A is not (numerically) positive definite.
Result<Matrix> Cholesky(const Matrix& a);

/// \brief Solves A x = b for symmetric positive-definite A via Cholesky.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// \brief Solves A X = B (multiple right-hand sides) for SPD A.
Result<Matrix> SolveSpdMulti(const Matrix& a, const Matrix& b);

/// \brief Inverse of an SPD matrix via Cholesky. Used for regression
/// covariance (standard errors).
Result<Matrix> InverseSpd(const Matrix& a);

/// \brief Solves a general square system A x = b with partial-pivot LU.
Result<std::vector<double>> SolveGeneral(Matrix a, std::vector<double> b);

/// \brief Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// Returns eigenvalues (descending) and the matrix whose COLUMNS are the
/// corresponding orthonormal eigenvectors. This powers federated PCA: the
/// Master eigendecomposes the securely aggregated covariance matrix.
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};
Result<EigenResult> EigenSymmetric(const Matrix& a, int max_sweeps = 64);

/// \brief Determinant of an SPD matrix via Cholesky (product of L diag^2).
Result<double> DeterminantSpd(const Matrix& a);

}  // namespace mip::stats

#endif  // MIP_STATS_LINALG_H_
