#include "stats/distributions.h"

#include <cmath>

#include "stats/special.h"

namespace mip::stats {

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalCdf(double x, double mean, double stddev) {
  return NormalCdf((x - mean) / stddev);
}

double StudentTCdf(double t, double df) {
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedBeta(x, df / 2.0, 0.5);
  return t > 0 ? 1.0 - p : p;
}

double StudentTTwoSidedP(double t, double df) {
  const double x = df / (df + t * t);
  return RegularizedBeta(x, df / 2.0, 0.5);
}

double StudentTQuantile(double p, double df) {
  if (p <= 0.0) return -1e308;
  if (p >= 1.0) return 1e308;
  double lo = -1e3, hi = 1e3;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double ChiSquaredCdf(double x, double df) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double ChiSquaredSf(double x, double df) { return 1.0 - ChiSquaredCdf(x, df); }

double FCdf(double x, double d1, double d2) {
  if (x <= 0.0) return 0.0;
  const double z = d1 * x / (d1 * x + d2);
  return RegularizedBeta(z, d1 / 2.0, d2 / 2.0);
}

double FSf(double x, double d1, double d2) { return 1.0 - FCdf(x, d1, d2); }

}  // namespace mip::stats
