#ifndef MIP_SMPC_WIRE_H_
#define MIP_SMPC_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mip::smpc::wire {

/// \brief Columnar wire format for share distribution.
///
/// A share matrix used to ship as per-value envelopes; at 100 sites that is
/// the dominant cost of secure import. Instead each node's limb column
/// (values, MACs, Shamir evaluations) is cut into fixed-size blocks and
/// every block is a self-describing engine/encoding int64 column — the
/// encoder races raw against delta-varint per block, so uniformly random
/// share limbs ship raw (8 B/limb + header) while structured plaintext
/// columns compress. Fixed-size blocks are what lets a sender stream block
/// k+1 while block k is in flight (the "pipelined distribution" in
/// DESIGN.md); the byte totals here are what the cluster's cost model
/// accounts.
///
/// Layout: varint element count, then ceil(n / block_elems) encoded blocks.

/// Default block granularity (elements per block).
inline constexpr size_t kDefaultBlockElems = 4096;

/// Encodes limbs[0..n) as columnar blocks. `block_elems` == 0 means one
/// block for the whole column.
std::vector<uint8_t> EncodeLimbBlocks(const uint64_t* limbs, size_t n,
                                      size_t block_elems = kDefaultBlockElems);

/// Bounds-checked inverse of EncodeLimbBlocks.
Result<std::vector<uint64_t>> DecodeLimbBlocks(
    const std::vector<uint8_t>& bytes);

/// Encoded size of the column without retaining the bytes — used by the
/// cluster to account measured (not estimated) transfer sizes.
size_t MeasureLimbBlocks(const uint64_t* limbs, size_t n,
                         size_t block_elems = kDefaultBlockElems);

}  // namespace mip::smpc::wire

#endif  // MIP_SMPC_WIRE_H_
