#include "smpc/cluster.h"

#include <cmath>
#include <sstream>

#include "common/stopwatch.h"
#include "net/transport.h"
#include "smpc/field.h"
#include "smpc/wire.h"

namespace mip::smpc {

double SmpcCostStats::SimulatedNetworkSeconds(const SmpcConfig& config) const {
  // One protocol round = one latency-bound message exchange; the formula
  // itself lives in net (shared with the federation link model).
  return net::SimulatedLinkSeconds(rounds, bytes_transferred,
                                   config.round_latency_ms,
                                   config.bandwidth_mbps);
}

SmpcCluster::SmpcCluster(SmpcConfig config)
    : config_(config),
      rng_(config.seed),
      codec_(config.frac_bits),
      dealer_(config.num_nodes, config.seed ^ 0xD15EA5E0FF1CE000ull),
      shamir_(config.threshold, config.num_nodes) {}

void SmpcCluster::PrecomputeTriples(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  if (config_.use_batched_kernels) {
    dealer_.PrecomputeTriples(count, Exec());
  } else {
    dealer_.PrecomputeTriplesScalar(count);
  }
  const double ms = sw.ElapsedMillis();
  stats_.offline_seconds += ms / 1e3;
  stats_.triple_ms.Record(ms);
}

void SmpcCluster::AccountTransfer(uint64_t bytes, uint64_t rounds) {
  stats_.bytes_transferred += bytes;
  stats_.rounds += rounds;
}

uint64_t SmpcCluster::MeasureFtWire(const SpdzMatrix& m) {
  uint64_t bytes = 0;
  const size_t block = config_.wire_block_elems;
  for (const SpdzVec& node : m) {
    bytes += wire::MeasureLimbBlocks(node.values.data(), node.size(), block);
    bytes += wire::MeasureLimbBlocks(node.macs.data(), node.size(), block);
    const size_t per_col =
        block == 0 ? 1 : (node.size() + block - 1) / block;
    stats_.wire_blocks += 2 * per_col;
  }
  return bytes;
}

uint64_t SmpcCluster::MeasureShamirWire(
    const std::vector<std::vector<uint64_t>>& m) {
  uint64_t bytes = 0;
  const size_t block = config_.wire_block_elems;
  for (const std::vector<uint64_t>& node : m) {
    bytes += wire::MeasureLimbBlocks(node.data(), node.size(), block);
    stats_.wire_blocks += block == 0 ? 1 : (node.size() + block - 1) / block;
  }
  return bytes;
}

Status SmpcCluster::ImportShares(const std::string& job_id,
                                 const std::vector<double>& values) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> encoded,
                       codec_.EncodeVector(values));
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    // Authenticated sharing per the active-security import mechanism:
    // every node receives a value-limb column plus a MAC-limb column,
    // shipped as columnar wire blocks.
    SpdzMatrix m = config_.use_batched_kernels
                       ? dealer_.ShareVectorBatch(encoded, Exec())
                       : ToMatrix(dealer_.ShareVector(encoded));
    AccountTransfer(MeasureFtWire(m), 1);
    ft_jobs_[job_id].contributions.push_back(std::move(m));
  } else {
    auto shares = config_.use_batched_kernels
                      ? shamir_.ShareVectorBatch(encoded, &rng_, Exec())
                      : shamir_.ShareVector(encoded, &rng_);
    AccountTransfer(MeasureShamirWire(shares), 1);
    shamir_jobs_[job_id].contributions.push_back(std::move(shares));
  }
  const double ms = sw.ElapsedMillis();
  stats_.online_seconds += ms / 1e3;
  stats_.share_ms.Record(ms);
  return Status::OK();
}

size_t SmpcCluster::NumContributions(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    auto it = ft_jobs_.find(job_id);
    return it == ft_jobs_.end() ? 0 : it->second.contributions.size();
  }
  auto it = shamir_jobs_.find(job_id);
  return it == shamir_jobs_.end() ? 0 : it->second.contributions.size();
}

Status SmpcCluster::Compute(const std::string& job_id, SmpcOp op,
                            const NoiseSpec& noise) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  Status st = config_.scheme == SmpcScheme::kFullThreshold
                  ? ComputeFt(job_id, op, noise)
                  : ComputeShamir(job_id, op, noise);
  const double ms = sw.ElapsedMillis();
  stats_.online_seconds += ms / 1e3;
  stats_.online_ms.Record(ms);
  return st;
}

Result<std::vector<double>> SmpcCluster::GetResult(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(job_id);
  if (it == results_.end()) {
    return Status::NotFound("no finished SMPC computation for job '" +
                            job_id + "'");
  }
  return it->second;
}

Status SmpcCluster::TamperWithShare(int node, const std::string& job_id,
                                    size_t contribution, size_t index,
                                    uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= config_.num_nodes) {
    return Status::InvalidArgument("bad node index");
  }
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    auto it = ft_jobs_.find(job_id);
    if (it == ft_jobs_.end() ||
        contribution >= it->second.contributions.size()) {
      return Status::NotFound("no such contribution");
    }
    SpdzVec& share =
        it->second.contributions[contribution][static_cast<size_t>(node)];
    if (index >= share.size()) return Status::OutOfRange("bad element index");
    share.values[index] = Field::Add(share.values[index], delta);
    return Status::OK();
  }
  auto it = shamir_jobs_.find(job_id);
  if (it == shamir_jobs_.end() ||
      contribution >= it->second.contributions.size()) {
    return Status::NotFound("no such contribution");
  }
  auto& share =
      it->second.contributions[contribution][static_cast<size_t>(node)];
  if (index >= share.size()) return Status::OutOfRange("bad element index");
  share[index] = Field::Add(share[index], delta);
  return Status::OK();
}

namespace {

double DecodeWithScalePower(uint64_t v, double scale, int power) {
  double mag;
  double sign = 1.0;
  if (v > Field::kPrime / 2) {
    mag = static_cast<double>(Field::kPrime - v);
    sign = -1.0;
  } else {
    mag = static_cast<double>(v);
  }
  return sign * mag / std::pow(scale, power);
}

// Scalar-path accessors into the SoA share storage.
std::vector<SpdzShare> ElemShares(const SpdzMatrix& m, size_t e) {
  std::vector<SpdzShare> out(m.size());
  for (size_t p = 0; p < m.size(); ++p) {
    out[p] = {m[p].values[e], m[p].macs[e]};
  }
  return out;
}

void SetElem(SpdzMatrix* m, size_t e, const std::vector<SpdzShare>& s) {
  for (size_t p = 0; p < m->size(); ++p) {
    (*m)[p].values[e] = s[p].value;
    (*m)[p].macs[e] = s[p].mac;
  }
}

}  // namespace

Result<SpdzMatrix> SmpcCluster::MinMaxFt(const SpdzMatrix& x,
                                         const SpdzMatrix& y, bool want_min) {
  const size_t nodes = x.size();
  const size_t n = x[0].size();
  SpdzMatrix out(nodes);
  for (auto& v : out) v.resize(n);
  for (size_t e = 0; e < n; ++e) {
    // d = x - y, blinded with a shared positive random r; only sign(d) is
    // revealed, which IS the protocol output for a min/max query.
    std::vector<SpdzShare> xe = ElemShares(x, e);
    std::vector<SpdzShare> ye = ElemShares(y, e);
    std::vector<SpdzShare> d(nodes);
    for (size_t p = 0; p < nodes; ++p) d[p] = Spdz::Sub(xe[p], ye[p]);
    std::vector<SpdzShare> r = dealer_.SharePositiveRandom(18);
    std::vector<SpdzTriple> triple = dealer_.TakeTriple();
    ++stats_.triples_consumed;
    MIP_ASSIGN_OR_RETURN(
        std::vector<SpdzShare> z,
        Spdz::Multiply(d, r, triple, dealer_.alpha_shares()));
    stats_.field_mults += 4 * nodes;
    MIP_ASSIGN_OR_RETURN(uint64_t opened,
                         Spdz::Open(z, dealer_.alpha_shares()));
    AccountTransfer(nodes * 8 * 3, 2);  // eps, delta, z openings
    const bool x_less = opened > Field::kPrime / 2;  // d < 0
    const bool pick_x = want_min ? x_less : !x_less;
    const std::vector<SpdzShare>& chosen = pick_x ? xe : ye;
    SetElem(&out, e, chosen);
  }
  return out;
}

Result<SpdzMatrix> SmpcCluster::MinMaxFtVec(const SpdzMatrix& x,
                                            const SpdzMatrix& y,
                                            bool want_min) {
  const size_t nodes = x.size();
  const size_t n = x[0].size();
  const VecExec exec = Exec();
  SpdzMatrix d(nodes);
  for (size_t p = 0; p < nodes; ++p) {
    d[p].resize(n);
    field_vec::SubVec(x[p].values.data(), y[p].values.data(), n,
                      d[p].values.data());
    field_vec::SubVec(x[p].macs.data(), y[p].macs.data(), n,
                      d[p].macs.data());
  }
  SpdzMatrix r = dealer_.SharePositiveRandomVec(18, n, exec);
  SpdzTripleBlock triples = dealer_.TakeTriples(n, exec);
  stats_.triples_consumed += n;
  SpdzMatrix z;
  MIP_RETURN_NOT_OK(
      Spdz::MultiplyVec(d, r, triples, dealer_.alpha_shares(), exec, &z));
  stats_.field_mults += 4 * nodes * n;
  std::vector<uint64_t> opened;
  MIP_RETURN_NOT_OK(Spdz::OpenVec(z, dealer_.alpha_shares(), exec, &opened));
  // All blinded differences open in one exchange: two rounds per
  // contribution instead of two per element — the pipelining win.
  AccountTransfer(nodes * 8 * 3 * n, 2);
  SpdzMatrix out(nodes);
  for (auto& v : out) v.resize(n);
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    for (size_t e = b; e < end; ++e) {
      const bool x_less = opened[e] > Field::kPrime / 2;  // d < 0
      const bool pick_x = want_min ? x_less : !x_less;
      const SpdzMatrix& chosen = pick_x ? x : y;
      for (size_t p = 0; p < nodes; ++p) {
        out[p].values[e] = chosen[p].values[e];
        out[p].macs[e] = chosen[p].macs[e];
      }
    }
  });
  return out;
}

Status SmpcCluster::ComputeFt(const std::string& job_id, SmpcOp op,
                              const NoiseSpec& noise) {
  auto it = ft_jobs_.find(job_id);
  if (it == ft_jobs_.end() || it->second.contributions.empty()) {
    return Status::NotFound("no imported shares for job '" + job_id + "'");
  }
  const auto& contributions = it->second.contributions;
  const size_t nodes = static_cast<size_t>(config_.num_nodes);
  const size_t n = contributions[0][0].size();
  for (const auto& c : contributions) {
    if (c[0].size() != n && op != SmpcOp::kUnion) {
      return Status::InvalidArgument(
          "contribution vector lengths differ for elementwise op");
    }
  }
  const bool batched = config_.use_batched_kernels;
  const VecExec exec = Exec();

  SpdzMatrix acc;
  int scale_power = 1;

  switch (op) {
    case SmpcOp::kSum: {
      acc.assign(nodes, SpdzVec{});
      for (auto& v : acc) v.resize(n);
      for (const SpdzMatrix& contrib : contributions) {
        if (batched) {
          ParallelSpan(n, exec, [&](size_t b, size_t end) {
            const size_t len = end - b;
            for (size_t p = 0; p < nodes; ++p) {
              field_vec::AddVec(acc[p].values.data() + b,
                                contrib[p].values.data() + b, len,
                                acc[p].values.data() + b);
              field_vec::AddVec(acc[p].macs.data() + b,
                                contrib[p].macs.data() + b, len,
                                acc[p].macs.data() + b);
            }
          });
        } else {
          for (size_t p = 0; p < nodes; ++p) {
            for (size_t e = 0; e < n; ++e) {
              acc[p].values[e] =
                  Field::Add(acc[p].values[e], contrib[p].values[e]);
              acc[p].macs[e] = Field::Add(acc[p].macs[e], contrib[p].macs[e]);
            }
          }
        }
      }
      break;
    }
    case SmpcOp::kProduct: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        if (batched) {
          SpdzTripleBlock triples = dealer_.TakeTriples(n, exec);
          stats_.triples_consumed += n;
          SpdzMatrix z;
          MIP_RETURN_NOT_OK(Spdz::MultiplyVec(acc, contributions[c], triples,
                                              dealer_.alpha_shares(), exec,
                                              &z));
          stats_.field_mults += 4 * nodes * n;
          acc = std::move(z);
        } else {
          for (size_t e = 0; e < n; ++e) {
            std::vector<SpdzShare> xe = ElemShares(acc, e);
            std::vector<SpdzShare> ye = ElemShares(contributions[c], e);
            std::vector<SpdzTriple> triple = dealer_.TakeTriple();
            ++stats_.triples_consumed;
            MIP_ASSIGN_OR_RETURN(
                std::vector<SpdzShare> z,
                Spdz::Multiply(xe, ye, triple, dealer_.alpha_shares()));
            stats_.field_mults += 4 * nodes;
            SetElem(&acc, e, z);
          }
        }
        AccountTransfer(nodes * 8 * 2 * n, 1);
        ++scale_power;
      }
      break;
    }
    case SmpcOp::kMin:
    case SmpcOp::kMax: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        if (batched) {
          MIP_ASSIGN_OR_RETURN(
              acc, MinMaxFtVec(acc, contributions[c], op == SmpcOp::kMin));
        } else {
          MIP_ASSIGN_OR_RETURN(
              acc, MinMaxFt(acc, contributions[c], op == SmpcOp::kMin));
        }
      }
      break;
    }
    case SmpcOp::kUnion: {
      size_t total = 0;
      for (const auto& contrib : contributions) total += contrib[0].size();
      acc.assign(nodes, SpdzVec{});
      for (size_t p = 0; p < nodes; ++p) {
        acc[p].values.reserve(total);
        acc[p].macs.reserve(total);
        for (const auto& contrib : contributions) {
          acc[p].values.insert(acc[p].values.end(),
                               contrib[p].values.begin(),
                               contrib[p].values.end());
          acc[p].macs.insert(acc[p].macs.end(), contrib[p].macs.begin(),
                             contrib[p].macs.end());
        }
      }
      break;
    }
  }

  // In-protocol DP noise: each node samples its partial noise, gets it
  // authenticated-shared, and the sharings are added before opening. Only
  // meaningful for the (linear) sum aggregate.
  if (noise.kind != NoiseSpec::Kind::kNone && op == SmpcOp::kSum) {
    const size_t n_out = acc[0].size();
    for (int k = 0; k < config_.num_nodes; ++k) {
      std::vector<double> partial(n_out);
      for (double& v : partial) {
        v = SamplePartialNoise(noise, config_.num_nodes, &rng_);
      }
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> enc,
                           codec_.EncodeVector(partial));
      SpdzMatrix noise_shares = batched
                                    ? dealer_.ShareVectorBatch(enc, exec)
                                    : ToMatrix(dealer_.ShareVector(enc));
      for (size_t p = 0; p < nodes; ++p) {
        if (batched) {
          field_vec::AddVec(acc[p].values.data(),
                            noise_shares[p].values.data(), n_out,
                            acc[p].values.data());
          field_vec::AddVec(acc[p].macs.data(), noise_shares[p].macs.data(),
                            n_out, acc[p].macs.data());
        } else {
          for (size_t e = 0; e < n_out; ++e) {
            acc[p].values[e] =
                Field::Add(acc[p].values[e], noise_shares[p].values[e]);
            acc[p].macs[e] =
                Field::Add(acc[p].macs[e], noise_shares[p].macs[e]);
          }
        }
      }
    }
    AccountTransfer(static_cast<uint64_t>(nodes) * nodes * acc[0].size() * 16,
                    1);
  }

  // Open towards the Master with the MAC check (abort on tamper). Each node
  // broadcasts its value+MAC columns, measured on the columnar wire.
  Stopwatch rec_sw;
  const size_t n_out = acc[0].size();
  std::vector<double> result(n_out);
  if (batched) {
    std::vector<uint64_t> opened;
    MIP_RETURN_NOT_OK(
        Spdz::OpenVec(acc, dealer_.alpha_shares(), exec, &opened));
    for (size_t e = 0; e < n_out; ++e) {
      result[e] = DecodeWithScalePower(opened[e], codec_.scale(), scale_power);
    }
  } else {
    for (size_t e = 0; e < n_out; ++e) {
      MIP_ASSIGN_OR_RETURN(
          uint64_t opened,
          Spdz::Open(ElemShares(acc, e), dealer_.alpha_shares()));
      result[e] = DecodeWithScalePower(opened, codec_.scale(), scale_power);
    }
  }
  // One round to reveal + one commit/open round for the MAC check.
  AccountTransfer(MeasureFtWire(acc), 2);
  stats_.field_mults += nodes * n_out;  // sigma computations
  stats_.reconstruct_ms.Record(rec_sw.ElapsedMillis());

  results_[job_id] = std::move(result);
  return Status::OK();
}

Status SmpcCluster::ComputeShamir(const std::string& job_id, SmpcOp op,
                                  const NoiseSpec& noise) {
  auto it = shamir_jobs_.find(job_id);
  if (it == shamir_jobs_.end() || it->second.contributions.empty()) {
    return Status::NotFound("no imported shares for job '" + job_id + "'");
  }
  const auto& contributions = it->second.contributions;
  const size_t nodes = static_cast<size_t>(config_.num_nodes);
  const size_t n = contributions[0][0].size();
  const bool batched = config_.use_batched_kernels;
  const VecExec exec = Exec();

  std::vector<std::vector<uint64_t>> acc;
  int scale_power = 1;

  switch (op) {
    case SmpcOp::kSum: {
      acc.assign(nodes, std::vector<uint64_t>(n, 0));
      for (const auto& contrib : contributions) {
        if (batched) {
          ParallelSpan(n, exec, [&](size_t b, size_t end) {
            const size_t len = end - b;
            for (size_t p = 0; p < nodes; ++p) {
              field_vec::AddVec(acc[p].data() + b, contrib[p].data() + b, len,
                                acc[p].data() + b);
            }
          });
        } else {
          for (size_t p = 0; p < nodes; ++p) {
            for (size_t e = 0; e < n; ++e) {
              acc[p][e] = Field::Add(acc[p][e], contrib[p][e]);
            }
          }
        }
      }
      break;
    }
    case SmpcOp::kProduct: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        if (batched) {
          MIP_ASSIGN_OR_RETURN(acc, shamir_.MultiplyReshareBatch(
                                        acc, contributions[c], &rng_, exec));
        } else {
          MIP_ASSIGN_OR_RETURN(
              acc, shamir_.MultiplyReshare(acc, contributions[c], &rng_));
        }
        stats_.field_mults += nodes * nodes * n;
        AccountTransfer(static_cast<uint64_t>(nodes) * nodes * n * 8, 1);
        ++scale_power;
      }
      break;
    }
    case SmpcOp::kMin:
    case SmpcOp::kMax: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        const auto& other = contributions[c];
        if (batched) {
          // Batched blinded-sign comparison: all elements' differences are
          // blinded and opened in one exchange (2 rounds per contribution).
          std::vector<std::vector<uint64_t>> d(nodes,
                                               std::vector<uint64_t>(n));
          for (size_t p = 0; p < nodes; ++p) {
            field_vec::SubVec(acc[p].data(), other[p].data(), n, d[p].data());
          }
          std::vector<uint64_t> rs(n);
          for (uint64_t& r : rs) r = 1 + rng_.NextBounded((1ull << 18) - 1);
          auto r_shares = shamir_.ShareVectorBatch(rs, &rng_, exec);
          MIP_ASSIGN_OR_RETURN(auto z, shamir_.MultiplyReshareBatch(
                                           d, r_shares, &rng_, exec));
          MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> opened,
                               shamir_.ReconstructVectorBatch(z, exec));
          AccountTransfer(nodes * 8 * 2 * n, 2);
          std::vector<std::vector<uint64_t>> next(nodes,
                                                  std::vector<uint64_t>(n));
          for (size_t e = 0; e < n; ++e) {
            const bool x_less = opened[e] > Field::kPrime / 2;
            const bool pick_x = (op == SmpcOp::kMin) ? x_less : !x_less;
            for (size_t p = 0; p < nodes; ++p) {
              next[p][e] = pick_x ? acc[p][e] : other[p][e];
            }
          }
          acc = std::move(next);
        } else {
          std::vector<std::vector<uint64_t>> next(nodes,
                                                  std::vector<uint64_t>(n));
          for (size_t e = 0; e < n; ++e) {
            // Blinded-sign comparison, honest-but-curious variant.
            std::vector<std::vector<uint64_t>> d(nodes,
                                                 std::vector<uint64_t>(1));
            for (size_t p = 0; p < nodes; ++p) {
              d[p][0] = Field::Sub(acc[p][e], other[p][e]);
            }
            const uint64_t r = 1 + rng_.NextBounded((1ull << 18) - 1);
            std::vector<uint64_t> r_shares = shamir_.Share(r, &rng_);
            std::vector<std::vector<uint64_t>> rs(nodes,
                                                  std::vector<uint64_t>(1));
            for (size_t p = 0; p < nodes; ++p) rs[p][0] = r_shares[p];
            MIP_ASSIGN_OR_RETURN(auto z,
                                 shamir_.MultiplyReshare(d, rs, &rng_));
            MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> opened,
                                 shamir_.ReconstructVector(z));
            AccountTransfer(nodes * 8 * 2, 2);
            const bool x_less = opened[0] > Field::kPrime / 2;
            const bool pick_x = (op == SmpcOp::kMin) ? x_less : !x_less;
            for (size_t p = 0; p < nodes; ++p) {
              next[p][e] = pick_x ? acc[p][e] : other[p][e];
            }
          }
          acc = std::move(next);
        }
      }
      break;
    }
    case SmpcOp::kUnion: {
      size_t total = 0;
      for (const auto& contrib : contributions) total += contrib[0].size();
      acc.assign(nodes, std::vector<uint64_t>());
      for (size_t p = 0; p < nodes; ++p) {
        acc[p].reserve(total);
        for (const auto& contrib : contributions) {
          acc[p].insert(acc[p].end(), contrib[p].begin(), contrib[p].end());
        }
      }
      break;
    }
  }

  if (noise.kind != NoiseSpec::Kind::kNone && op == SmpcOp::kSum) {
    const size_t n_out = acc[0].size();
    for (int k = 0; k < config_.num_nodes; ++k) {
      std::vector<double> partial(n_out);
      for (double& v : partial) {
        v = SamplePartialNoise(noise, config_.num_nodes, &rng_);
      }
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> enc,
                           codec_.EncodeVector(partial));
      auto noise_shares = batched ? shamir_.ShareVectorBatch(enc, &rng_, exec)
                                  : shamir_.ShareVector(enc, &rng_);
      for (size_t p = 0; p < nodes; ++p) {
        if (batched) {
          field_vec::AddVec(acc[p].data(), noise_shares[p].data(), n_out,
                            acc[p].data());
        } else {
          for (size_t e = 0; e < n_out; ++e) {
            acc[p][e] = Field::Add(acc[p][e], noise_shares[p][e]);
          }
        }
      }
    }
    AccountTransfer(static_cast<uint64_t>(nodes) * nodes * acc[0].size() * 8,
                    1);
  }

  Stopwatch rec_sw;
  std::vector<uint64_t> opened;
  if (batched) {
    MIP_ASSIGN_OR_RETURN(opened, shamir_.ReconstructVectorBatch(acc, exec));
  } else {
    MIP_ASSIGN_OR_RETURN(opened, shamir_.ReconstructVector(acc));
  }
  stats_.field_mults += nodes * acc[0].size();  // Lagrange recombination
  AccountTransfer(MeasureShamirWire(acc), 1);
  stats_.reconstruct_ms.Record(rec_sw.ElapsedMillis());

  std::vector<double> result(opened.size());
  for (size_t e = 0; e < opened.size(); ++e) {
    result[e] = DecodeWithScalePower(opened[e], codec_.scale(), scale_power);
  }
  results_[job_id] = std::move(result);
  return Status::OK();
}

std::string SmpcCluster::MetricsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "smpc_scheme "
     << (config_.scheme == SmpcScheme::kFullThreshold ? "full_threshold"
                                                      : "shamir")
     << "\n";
  os << "smpc_nodes " << config_.num_nodes << "\n";
  os << "smpc_batched_kernels " << (config_.use_batched_kernels ? 1 : 0)
     << "\n";
  os << "smpc_bytes_transferred " << stats_.bytes_transferred << "\n";
  os << "smpc_rounds " << stats_.rounds << "\n";
  os << "smpc_field_mults " << stats_.field_mults << "\n";
  os << "smpc_triples_consumed " << stats_.triples_consumed << "\n";
  os << "smpc_wire_blocks " << stats_.wire_blocks << "\n";
  os << "smpc_share_ms " << stats_.share_ms.Summary() << "\n";
  os << "smpc_triple_ms " << stats_.triple_ms.Summary() << "\n";
  os << "smpc_online_ms " << stats_.online_ms.Summary() << "\n";
  os << "smpc_reconstruct_ms " << stats_.reconstruct_ms.Summary() << "\n";
  return os.str();
}

}  // namespace mip::smpc
