#include "smpc/cluster.h"

#include <cmath>

#include "common/stopwatch.h"
#include "net/transport.h"
#include "smpc/field.h"

namespace mip::smpc {

double SmpcCostStats::SimulatedNetworkSeconds(const SmpcConfig& config) const {
  // One protocol round = one latency-bound message exchange; the formula
  // itself lives in net (shared with the federation link model).
  return net::SimulatedLinkSeconds(rounds, bytes_transferred,
                                   config.round_latency_ms,
                                   config.bandwidth_mbps);
}

SmpcCluster::SmpcCluster(SmpcConfig config)
    : config_(config),
      rng_(config.seed),
      codec_(config.frac_bits),
      dealer_(config.num_nodes, config.seed ^ 0xD15EA5E0FF1CE000ull),
      shamir_(config.threshold, config.num_nodes) {}

void SmpcCluster::PrecomputeTriples(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  dealer_.PrecomputeTriples(count);
  stats_.offline_seconds += sw.ElapsedSeconds();
}

void SmpcCluster::AccountTransfer(uint64_t bytes, uint64_t rounds) {
  stats_.bytes_transferred += bytes;
  stats_.rounds += rounds;
}

Status SmpcCluster::ImportShares(const std::string& job_id,
                                 const std::vector<double>& values) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> encoded,
                       codec_.EncodeVector(values));
  const uint64_t n = static_cast<uint64_t>(values.size());
  const uint64_t nodes = static_cast<uint64_t>(config_.num_nodes);
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    // Authenticated sharing per the active-security import mechanism:
    // every node receives a value share plus a MAC share (16 bytes/element).
    ft_jobs_[job_id].contributions.push_back(dealer_.ShareVector(encoded));
    AccountTransfer(nodes * n * 16, 1);
  } else {
    shamir_jobs_[job_id].contributions.push_back(
        shamir_.ShareVector(encoded, &rng_));
    AccountTransfer(nodes * n * 8, 1);
  }
  stats_.online_seconds += sw.ElapsedSeconds();
  return Status::OK();
}

size_t SmpcCluster::NumContributions(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    auto it = ft_jobs_.find(job_id);
    return it == ft_jobs_.end() ? 0 : it->second.contributions.size();
  }
  auto it = shamir_jobs_.find(job_id);
  return it == shamir_jobs_.end() ? 0 : it->second.contributions.size();
}

Status SmpcCluster::Compute(const std::string& job_id, SmpcOp op,
                            const NoiseSpec& noise) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  Status st = config_.scheme == SmpcScheme::kFullThreshold
                  ? ComputeFt(job_id, op, noise)
                  : ComputeShamir(job_id, op, noise);
  stats_.online_seconds += sw.ElapsedSeconds();
  return st;
}

Result<std::vector<double>> SmpcCluster::GetResult(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(job_id);
  if (it == results_.end()) {
    return Status::NotFound("no finished SMPC computation for job '" +
                            job_id + "'");
  }
  return it->second;
}

Status SmpcCluster::TamperWithShare(int node, const std::string& job_id,
                                    size_t contribution, size_t index,
                                    uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= config_.num_nodes) {
    return Status::InvalidArgument("bad node index");
  }
  if (config_.scheme == SmpcScheme::kFullThreshold) {
    auto it = ft_jobs_.find(job_id);
    if (it == ft_jobs_.end() ||
        contribution >= it->second.contributions.size()) {
      return Status::NotFound("no such contribution");
    }
    auto& share = it->second
                      .contributions[contribution][static_cast<size_t>(node)];
    if (index >= share.size()) return Status::OutOfRange("bad element index");
    share[index].value = Field::Add(share[index].value, delta);
    return Status::OK();
  }
  auto it = shamir_jobs_.find(job_id);
  if (it == shamir_jobs_.end() ||
      contribution >= it->second.contributions.size()) {
    return Status::NotFound("no such contribution");
  }
  auto& share =
      it->second.contributions[contribution][static_cast<size_t>(node)];
  if (index >= share.size()) return Status::OutOfRange("bad element index");
  share[index] = Field::Add(share[index], delta);
  return Status::OK();
}

namespace {

double DecodeWithScalePower(uint64_t v, double scale, int power) {
  double mag;
  double sign = 1.0;
  if (v > Field::kPrime / 2) {
    mag = static_cast<double>(Field::kPrime - v);
    sign = -1.0;
  } else {
    mag = static_cast<double>(v);
  }
  return sign * mag / std::pow(scale, power);
}

}  // namespace

Result<SpdzSharedVector> SmpcCluster::MinMaxFt(const SpdzSharedVector& x,
                                               const SpdzSharedVector& y,
                                               bool want_min) {
  const size_t nodes = x.size();
  const size_t n = x[0].size();
  SpdzSharedVector out(nodes, std::vector<SpdzShare>(n));
  for (size_t e = 0; e < n; ++e) {
    // d = x - y, blinded with a shared positive random r; only sign(d) is
    // revealed, which IS the protocol output for a min/max query.
    std::vector<SpdzShare> d(nodes);
    std::vector<SpdzShare> xe(nodes);
    std::vector<SpdzShare> ye(nodes);
    for (size_t p = 0; p < nodes; ++p) {
      xe[p] = x[p][e];
      ye[p] = y[p][e];
      d[p] = Spdz::Sub(x[p][e], y[p][e]);
    }
    std::vector<SpdzShare> r = dealer_.SharePositiveRandom(18);
    std::vector<SpdzTriple> triple = dealer_.TakeTriple();
    ++stats_.triples_consumed;
    MIP_ASSIGN_OR_RETURN(
        std::vector<SpdzShare> z,
        Spdz::Multiply(d, r, triple, dealer_.alpha_shares()));
    stats_.field_mults += 4 * nodes;
    MIP_ASSIGN_OR_RETURN(uint64_t opened,
                         Spdz::Open(z, dealer_.alpha_shares()));
    AccountTransfer(nodes * 8 * 3, 2);  // eps, delta, z openings
    const bool x_less = opened > Field::kPrime / 2;  // d < 0
    const bool pick_x = want_min ? x_less : !x_less;
    for (size_t p = 0; p < nodes; ++p) out[p][e] = pick_x ? xe[p] : ye[p];
  }
  return out;
}

Status SmpcCluster::ComputeFt(const std::string& job_id, SmpcOp op,
                              const NoiseSpec& noise) {
  auto it = ft_jobs_.find(job_id);
  if (it == ft_jobs_.end() || it->second.contributions.empty()) {
    return Status::NotFound("no imported shares for job '" + job_id + "'");
  }
  const auto& contributions = it->second.contributions;
  const size_t nodes = static_cast<size_t>(config_.num_nodes);
  const size_t n = contributions[0][0].size();
  for (const auto& c : contributions) {
    if (c[0].size() != n && op != SmpcOp::kUnion) {
      return Status::InvalidArgument(
          "contribution vector lengths differ for elementwise op");
    }
  }

  SpdzSharedVector acc;
  int scale_power = 1;

  switch (op) {
    case SmpcOp::kSum: {
      acc.assign(nodes, std::vector<SpdzShare>(n, SpdzShare{}));
      for (const auto& contrib : contributions) {
        for (size_t p = 0; p < nodes; ++p) {
          for (size_t e = 0; e < n; ++e) {
            acc[p][e] = Spdz::Add(acc[p][e], contrib[p][e]);
          }
        }
      }
      break;
    }
    case SmpcOp::kProduct: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        for (size_t e = 0; e < n; ++e) {
          std::vector<SpdzShare> xe(nodes);
          std::vector<SpdzShare> ye(nodes);
          for (size_t p = 0; p < nodes; ++p) {
            xe[p] = acc[p][e];
            ye[p] = contributions[c][p][e];
          }
          std::vector<SpdzTriple> triple = dealer_.TakeTriple();
          ++stats_.triples_consumed;
          MIP_ASSIGN_OR_RETURN(
              std::vector<SpdzShare> z,
              Spdz::Multiply(xe, ye, triple, dealer_.alpha_shares()));
          stats_.field_mults += 4 * nodes;
          for (size_t p = 0; p < nodes; ++p) acc[p][e] = z[p];
        }
        AccountTransfer(nodes * 8 * 2 * n, 1);
        ++scale_power;
      }
      break;
    }
    case SmpcOp::kMin:
    case SmpcOp::kMax: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        MIP_ASSIGN_OR_RETURN(
            acc, MinMaxFt(acc, contributions[c], op == SmpcOp::kMin));
      }
      break;
    }
    case SmpcOp::kUnion: {
      size_t total = 0;
      for (const auto& contrib : contributions) total += contrib[0].size();
      acc.assign(nodes, std::vector<SpdzShare>());
      for (size_t p = 0; p < nodes; ++p) {
        acc[p].reserve(total);
        for (const auto& contrib : contributions) {
          acc[p].insert(acc[p].end(), contrib[p].begin(), contrib[p].end());
        }
      }
      break;
    }
  }

  // In-protocol DP noise: each node samples its partial noise, gets it
  // authenticated-shared, and the sharings are added before opening. Only
  // meaningful for the (linear) sum aggregate.
  if (noise.kind != NoiseSpec::Kind::kNone && op == SmpcOp::kSum) {
    const size_t n_out = acc[0].size();
    for (int k = 0; k < config_.num_nodes; ++k) {
      std::vector<double> partial(n_out);
      for (double& v : partial) {
        v = SamplePartialNoise(noise, config_.num_nodes, &rng_);
      }
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> enc,
                           codec_.EncodeVector(partial));
      SpdzSharedVector noise_shares = dealer_.ShareVector(enc);
      for (size_t p = 0; p < nodes; ++p) {
        for (size_t e = 0; e < n_out; ++e) {
          acc[p][e] = Spdz::Add(acc[p][e], noise_shares[p][e]);
        }
      }
    }
    AccountTransfer(static_cast<uint64_t>(nodes) * nodes * n_out * 16, 1);
  }

  // Open towards the Master with the MAC check (abort on tamper).
  const size_t n_out = acc[0].size();
  std::vector<double> result(n_out);
  for (size_t e = 0; e < n_out; ++e) {
    std::vector<SpdzShare> shares(nodes);
    for (size_t p = 0; p < nodes; ++p) shares[p] = acc[p][e];
    MIP_ASSIGN_OR_RETURN(uint64_t opened,
                         Spdz::Open(shares, dealer_.alpha_shares()));
    result[e] = DecodeWithScalePower(opened, codec_.scale(), scale_power);
  }
  // One round to reveal + one commit/open round for the MAC check.
  AccountTransfer(static_cast<uint64_t>(nodes) * n_out * 16, 2);
  stats_.field_mults += nodes * n_out;  // sigma computations

  results_[job_id] = std::move(result);
  return Status::OK();
}

Status SmpcCluster::ComputeShamir(const std::string& job_id, SmpcOp op,
                                  const NoiseSpec& noise) {
  auto it = shamir_jobs_.find(job_id);
  if (it == shamir_jobs_.end() || it->second.contributions.empty()) {
    return Status::NotFound("no imported shares for job '" + job_id + "'");
  }
  const auto& contributions = it->second.contributions;
  const size_t nodes = static_cast<size_t>(config_.num_nodes);
  const size_t n = contributions[0][0].size();

  std::vector<std::vector<uint64_t>> acc;
  int scale_power = 1;

  switch (op) {
    case SmpcOp::kSum: {
      acc.assign(nodes, std::vector<uint64_t>(n, 0));
      for (const auto& contrib : contributions) {
        for (size_t p = 0; p < nodes; ++p) {
          for (size_t e = 0; e < n; ++e) {
            acc[p][e] = Field::Add(acc[p][e], contrib[p][e]);
          }
        }
      }
      break;
    }
    case SmpcOp::kProduct: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        MIP_ASSIGN_OR_RETURN(
            acc, shamir_.MultiplyReshare(acc, contributions[c], &rng_));
        stats_.field_mults += nodes * nodes * n;
        AccountTransfer(static_cast<uint64_t>(nodes) * nodes * n * 8, 1);
        ++scale_power;
      }
      break;
    }
    case SmpcOp::kMin:
    case SmpcOp::kMax: {
      acc = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        const auto& other = contributions[c];
        std::vector<std::vector<uint64_t>> next(
            nodes, std::vector<uint64_t>(n));
        for (size_t e = 0; e < n; ++e) {
          // Blinded-sign comparison, honest-but-curious variant.
          std::vector<std::vector<uint64_t>> d(nodes,
                                               std::vector<uint64_t>(1));
          for (size_t p = 0; p < nodes; ++p) {
            d[p][0] = Field::Sub(acc[p][e], other[p][e]);
          }
          const uint64_t r = 1 + rng_.NextBounded((1ull << 18) - 1);
          std::vector<uint64_t> r_shares = shamir_.Share(r, &rng_);
          std::vector<std::vector<uint64_t>> rs(nodes,
                                                std::vector<uint64_t>(1));
          for (size_t p = 0; p < nodes; ++p) rs[p][0] = r_shares[p];
          MIP_ASSIGN_OR_RETURN(auto z,
                               shamir_.MultiplyReshare(d, rs, &rng_));
          MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> opened,
                               shamir_.ReconstructVector(z));
          AccountTransfer(nodes * 8 * 2, 2);
          const bool x_less = opened[0] > Field::kPrime / 2;
          const bool pick_x = (op == SmpcOp::kMin) ? x_less : !x_less;
          for (size_t p = 0; p < nodes; ++p) {
            next[p][e] = pick_x ? acc[p][e] : other[p][e];
          }
        }
        acc = std::move(next);
      }
      break;
    }
    case SmpcOp::kUnion: {
      size_t total = 0;
      for (const auto& contrib : contributions) total += contrib[0].size();
      acc.assign(nodes, std::vector<uint64_t>());
      for (size_t p = 0; p < nodes; ++p) {
        acc[p].reserve(total);
        for (const auto& contrib : contributions) {
          acc[p].insert(acc[p].end(), contrib[p].begin(), contrib[p].end());
        }
      }
      break;
    }
  }

  if (noise.kind != NoiseSpec::Kind::kNone && op == SmpcOp::kSum) {
    const size_t n_out = acc[0].size();
    for (int k = 0; k < config_.num_nodes; ++k) {
      std::vector<double> partial(n_out);
      for (double& v : partial) {
        v = SamplePartialNoise(noise, config_.num_nodes, &rng_);
      }
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> enc,
                           codec_.EncodeVector(partial));
      auto noise_shares = shamir_.ShareVector(enc, &rng_);
      for (size_t p = 0; p < nodes; ++p) {
        for (size_t e = 0; e < n_out; ++e) {
          acc[p][e] = Field::Add(acc[p][e], noise_shares[p][e]);
        }
      }
    }
    AccountTransfer(static_cast<uint64_t>(nodes) * nodes * acc[0].size() * 8,
                    1);
  }

  MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> opened,
                       shamir_.ReconstructVector(acc));
  stats_.field_mults += nodes * acc[0].size();  // Lagrange recombination
  AccountTransfer(static_cast<uint64_t>(nodes) * acc[0].size() * 8, 1);

  std::vector<double> result(opened.size());
  for (size_t e = 0; e < opened.size(); ++e) {
    result[e] = DecodeWithScalePower(opened[e], codec_.scale(), scale_power);
  }
  results_[job_id] = std::move(result);
  return Status::OK();
}

}  // namespace mip::smpc
