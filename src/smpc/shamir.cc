#include "smpc/shamir.h"

#include <cassert>
#include <set>

#include "smpc/field.h"

namespace mip::smpc {

namespace {

// Evaluates a polynomial (coefficients low-to-high) at x via Horner.
uint64_t EvalPoly(const std::vector<uint64_t>& coeffs, uint64_t x) {
  uint64_t acc = 0;
  for (size_t i = coeffs.size(); i > 0; --i) {
    acc = Field::Add(Field::Mul(acc, x), coeffs[i - 1]);
  }
  return acc;
}

}  // namespace

ShamirScheme::ShamirScheme(int threshold, int num_parties)
    : threshold_(threshold), num_parties_(num_parties) {
  assert(threshold_ >= 0 && threshold_ < num_parties_);
  lagrange_full_.resize(static_cast<size_t>(num_parties_));
  for (int i = 0; i < num_parties_; ++i) {
    const uint64_t xi = static_cast<uint64_t>(i + 1);
    uint64_t num = 1;
    uint64_t den = 1;
    for (int j = 0; j < num_parties_; ++j) {
      if (j == i) continue;
      const uint64_t xj = static_cast<uint64_t>(j + 1);
      num = Field::Mul(num, xj);
      den = Field::Mul(den, Field::Sub(xj, xi));
    }
    lagrange_full_[static_cast<size_t>(i)] =
        Field::Mul(num, Field::Inv(den));
  }
}

std::vector<uint64_t> ShamirScheme::Share(uint64_t secret, Rng* rng) const {
  std::vector<uint64_t> coeffs(static_cast<size_t>(threshold_) + 1);
  coeffs[0] = Field::Reduce(secret);
  for (int d = 1; d <= threshold_; ++d) {
    coeffs[static_cast<size_t>(d)] = Field::Random(rng);
  }
  std::vector<uint64_t> shares(static_cast<size_t>(num_parties_));
  for (int i = 0; i < num_parties_; ++i) {
    shares[static_cast<size_t>(i)] =
        EvalPoly(coeffs, static_cast<uint64_t>(i + 1));
  }
  return shares;
}

std::vector<std::vector<uint64_t>> ShamirScheme::ShareVector(
    const std::vector<uint64_t>& secrets, Rng* rng) const {
  std::vector<std::vector<uint64_t>> out(
      static_cast<size_t>(num_parties_),
      std::vector<uint64_t>(secrets.size()));
  for (size_t e = 0; e < secrets.size(); ++e) {
    std::vector<uint64_t> shares = Share(secrets[e], rng);
    for (int p = 0; p < num_parties_; ++p) {
      out[static_cast<size_t>(p)][e] = shares[static_cast<size_t>(p)];
    }
  }
  return out;
}

std::vector<std::vector<uint64_t>> ShamirScheme::ShareVectorBatch(
    const std::vector<uint64_t>& secrets, Rng* rng,
    const VecExec& exec) const {
  const size_t n = secrets.size();
  const size_t np = static_cast<size_t>(num_parties_);
  const size_t t = static_cast<size_t>(threshold_);
  // Scalar draw order: per element, coefficients 1..t. One bulk draw with
  // coeff(e, d) = rand[e * t + (d - 1)] reproduces it exactly.
  std::vector<uint64_t> rand(n * t);
  Field::RandomVec(rand.data(), rand.size(), rng);
  std::vector<std::vector<uint64_t>> out(np, std::vector<uint64_t>(n));
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    // Transpose this chunk's coefficients to degree-major contiguous rows
    // so each Horner step is a sweep over contiguous spans.
    std::vector<uint64_t> coef((t + 1) * len);
    field_vec::ReduceVec(secrets.data() + b, len, coef.data());  // c0
    for (size_t d = 1; d <= t; ++d) {
      uint64_t* row = coef.data() + d * len;
      for (size_t e = 0; e < len; ++e) row[e] = rand[(b + e) * t + (d - 1)];
    }
    std::vector<uint64_t> acc(len);
    for (size_t p = 0; p < np; ++p) {
      const uint64_t x = static_cast<uint64_t>(p + 1);
      // EvalPoly starts acc = 0; the first step yields the top coefficient.
      std::copy(coef.begin() + static_cast<long>(t * len),
                coef.begin() + static_cast<long>((t + 1) * len), acc.begin());
      for (size_t d = t; d-- > 0;) {
        field_vec::HornerStepVec(acc.data(), x, coef.data() + d * len, len);
      }
      std::copy(acc.begin(), acc.end(), out[p].begin() + static_cast<long>(b));
    }
  });
  return out;
}

Result<uint64_t> ShamirScheme::Reconstruct(
    const std::vector<std::pair<int, uint64_t>>& shares) const {
  if (static_cast<int>(shares.size()) < threshold_ + 1) {
    return Status::SecurityError(
        "Shamir reconstruction needs at least t+1 = " +
        std::to_string(threshold_ + 1) + " shares, got " +
        std::to_string(shares.size()));
  }
  std::set<int> seen;
  for (const auto& [p, s] : shares) {
    if (p < 0 || p >= num_parties_) {
      return Status::InvalidArgument("bad party index in reconstruction");
    }
    if (!seen.insert(p).second) {
      return Status::InvalidArgument("duplicate party in reconstruction");
    }
  }
  // Lagrange interpolation at x = 0 over exactly the provided subset.
  uint64_t secret = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    const uint64_t xi = static_cast<uint64_t>(shares[i].first + 1);
    uint64_t num = 1;
    uint64_t den = 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      const uint64_t xj = static_cast<uint64_t>(shares[j].first + 1);
      num = Field::Mul(num, xj);
      den = Field::Mul(den, Field::Sub(xj, xi));
    }
    const uint64_t lambda = Field::Mul(num, Field::Inv(den));
    secret = Field::Add(secret, Field::Mul(lambda, shares[i].second));
  }
  return secret;
}

Result<std::vector<uint64_t>> ShamirScheme::ReconstructVector(
    const std::vector<std::vector<uint64_t>>& shares) const {
  if (static_cast<int>(shares.size()) != num_parties_) {
    return Status::InvalidArgument("expected one share vector per party");
  }
  const size_t n_elems = shares.empty() ? 0 : shares[0].size();
  std::vector<uint64_t> out(n_elems, 0);
  for (size_t e = 0; e < n_elems; ++e) {
    uint64_t secret = 0;
    for (int p = 0; p < num_parties_; ++p) {
      secret = Field::Add(
          secret, Field::Mul(lagrange_full_[static_cast<size_t>(p)],
                             shares[static_cast<size_t>(p)][e]));
    }
    out[e] = secret;
  }
  return out;
}

Result<std::vector<uint64_t>> ShamirScheme::ReconstructVectorBatch(
    const std::vector<std::vector<uint64_t>>& shares,
    const VecExec& exec) const {
  if (static_cast<int>(shares.size()) != num_parties_) {
    return Status::InvalidArgument("expected one share vector per party");
  }
  const size_t n = shares.empty() ? 0 : shares[0].size();
  std::vector<uint64_t> out(n, 0);
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    for (int p = 0; p < num_parties_; ++p) {
      field_vec::MulScalarAccumVec(lagrange_full_[static_cast<size_t>(p)],
                                   shares[static_cast<size_t>(p)].data() + b,
                                   len, out.data() + b);
    }
  });
  return out;
}

Result<std::vector<std::vector<uint64_t>>> ShamirScheme::MultiplyReshare(
    const std::vector<std::vector<uint64_t>>& x,
    const std::vector<std::vector<uint64_t>>& y, Rng* rng) const {
  if (2 * threshold_ >= num_parties_) {
    return Status::SecurityError(
        "Shamir multiplication requires 2t < n (degree reduction)");
  }
  if (x.size() != static_cast<size_t>(num_parties_) || x.size() != y.size()) {
    return Status::InvalidArgument("party count mismatch");
  }
  const size_t n_elems = x[0].size();
  // Each party computes its local product share (degree 2t polynomial
  // evaluation) and re-shares it with a fresh degree-t polynomial; the new
  // share of the product for party j is the Lagrange-weighted sum of the
  // re-shares it received.
  std::vector<std::vector<uint64_t>> out(
      static_cast<size_t>(num_parties_), std::vector<uint64_t>(n_elems, 0));
  // Lagrange weights for interpolating a degree-2t polynomial at 0 from all
  // n points — we reuse the full-set weights (valid because 2t < n).
  for (size_t e = 0; e < n_elems; ++e) {
    for (int p = 0; p < num_parties_; ++p) {
      const uint64_t local_prod = Field::Mul(
          x[static_cast<size_t>(p)][e], y[static_cast<size_t>(p)][e]);
      // Re-share local_prod.
      std::vector<uint64_t> resh = Share(local_prod, rng);
      const uint64_t lambda = lagrange_full_[static_cast<size_t>(p)];
      for (int q = 0; q < num_parties_; ++q) {
        out[static_cast<size_t>(q)][e] = Field::Add(
            out[static_cast<size_t>(q)][e],
            Field::Mul(lambda, resh[static_cast<size_t>(q)]));
      }
    }
  }
  return out;
}

Result<std::vector<std::vector<uint64_t>>> ShamirScheme::MultiplyReshareBatch(
    const std::vector<std::vector<uint64_t>>& x,
    const std::vector<std::vector<uint64_t>>& y, Rng* rng,
    const VecExec& exec) const {
  if (2 * threshold_ >= num_parties_) {
    return Status::SecurityError(
        "Shamir multiplication requires 2t < n (degree reduction)");
  }
  if (x.size() != static_cast<size_t>(num_parties_) || x.size() != y.size()) {
    return Status::InvalidArgument("party count mismatch");
  }
  const size_t n = x[0].size();
  const size_t np = static_cast<size_t>(num_parties_);
  const size_t t = static_cast<size_t>(threshold_);
  // Scalar draw order: element-major, party-minor, t coefficients per
  // re-sharing — coeff(e, p, d) = rand[(e * np + p) * t + (d - 1)].
  std::vector<uint64_t> rand(n * np * t);
  Field::RandomVec(rand.data(), rand.size(), rng);
  std::vector<std::vector<uint64_t>> out(np, std::vector<uint64_t>(n, 0));
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    std::vector<uint64_t> coef((t + 1) * len);
    std::vector<uint64_t> acc(len);
    for (size_t p = 0; p < np; ++p) {
      // c0 = this party's local product shares for the chunk.
      field_vec::MulVec(x[p].data() + b, y[p].data() + b, len, coef.data());
      for (size_t d = 1; d <= t; ++d) {
        uint64_t* row = coef.data() + d * len;
        for (size_t e = 0; e < len; ++e) {
          row[e] = rand[((b + e) * np + p) * t + (d - 1)];
        }
      }
      const uint64_t lambda = lagrange_full_[p];
      for (size_t q = 0; q < np; ++q) {
        const uint64_t xq = static_cast<uint64_t>(q + 1);
        std::copy(coef.begin() + static_cast<long>(t * len),
                  coef.begin() + static_cast<long>((t + 1) * len),
                  acc.begin());
        for (size_t d = t; d-- > 0;) {
          field_vec::HornerStepVec(acc.data(), xq, coef.data() + d * len, len);
        }
        field_vec::MulScalarAccumVec(lambda, acc.data(), len,
                                     out[q].data() + b);
      }
    }
  });
  return out;
}

uint64_t ShamirScheme::LagrangeAtZero(int party) const {
  return lagrange_full_[static_cast<size_t>(party)];
}

}  // namespace mip::smpc
