#include "smpc/field.h"

namespace mip::smpc {

uint64_t Field::Pow(uint64_t a, uint64_t e) {
  uint64_t base = Reduce(a);
  uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

std::vector<uint64_t> Field::RandomVector(size_t n, Rng* rng) {
  std::vector<uint64_t> out(n);
  for (auto& v : out) v = Random(rng);
  return out;
}

}  // namespace mip::smpc
