#include "smpc/field.h"

namespace mip::smpc {

uint64_t Field::Pow(uint64_t a, uint64_t e) {
  uint64_t base = Reduce(a);
  uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

size_t Field::AcceptFieldWords(const uint64_t* raw, size_t n, uint64_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t r = raw[i] & kPrime;  // low 61 bits; mask == p
    out[kept] = r;
    kept += (r < kPrime) ? 1 : 0;  // rejects only r == p (probability 2^-61)
  }
  return kept;
}

void Field::RandomVec(uint64_t* out, size_t n, Rng* rng) {
  // Draw raw words directly into the tail of `out` and compact: a scalar
  // Random() call consumes one raw word per accepted value (plus one per
  // rejection), so filling exactly the deficit each pass reproduces the
  // per-value rejection stream bit for bit — including the state the Rng is
  // left in.
  size_t filled = 0;
  while (filled < n) {
    const size_t want = n - filled;
    rng->FillUint64(out + filled, want);
    filled += AcceptFieldWords(out + filled, want, out + filled);
  }
}

std::vector<uint64_t> Field::RandomVector(size_t n, Rng* rng) {
  std::vector<uint64_t> out(n);
  RandomVec(out.data(), n, rng);
  return out;
}

}  // namespace mip::smpc
