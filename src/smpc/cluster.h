#ifndef MIP_SMPC_CLUSTER_H_
#define MIP_SMPC_CLUSTER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "smpc/fixed_point.h"
#include "smpc/noise.h"
#include "smpc/shamir.h"
#include "smpc/spdz.h"

namespace mip::smpc {

/// Which secret-sharing scheme the cluster runs — the paper's two security
/// modes: full threshold (active security with abort, slow) and Shamir
/// (honest-but-curious, fast). Data owners pick per the
/// security-efficiency trade-off.
enum class SmpcScheme { kFullThreshold, kShamir };

/// Aggregations the SMPC engine supports (paper: "sum, multiplication,
/// min/max operation and disjoint union").
enum class SmpcOp { kSum, kProduct, kMin, kMax, kUnion };

struct SmpcConfig {
  SmpcScheme scheme = SmpcScheme::kFullThreshold;
  int num_nodes = 3;
  /// Shamir threshold t (ignored for full threshold). Default n/3.
  int threshold = 1;
  int frac_bits = 20;
  uint64_t seed = 0x51B2C3D4E5F60718ull;
  /// Simulated network model for reported latency: per-round RTT and
  /// throughput on each link.
  double round_latency_ms = 2.0;
  double bandwidth_mbps = 100.0;
  /// Batched kernels (field_vec) vs the scalar reference loops. Both paths
  /// produce bit-identical shares, MACs and openings for the same seed (the
  /// property tests pin this); the flag exists for the ablation benchmarks.
  bool use_batched_kernels = true;
  /// Optional morsel-parallelism for the batched kernels over large
  /// vectors. Not owned; null runs single-threaded. Thread count never
  /// changes results (deterministic chunking).
  ThreadPool* pool = nullptr;
  /// Elements per columnar wire block for share distribution (0 = one
  /// block per column).
  size_t wire_block_elems = 4096;
};

/// Communication/computation accounting for one cluster (reset-able). The
/// FT-vs-Shamir benchmark (experiment E4) reads these. Byte counts on the
/// share-distribution path are measured from the columnar wire encoding
/// (smpc/wire.h), not estimated.
struct SmpcCostStats {
  uint64_t bytes_transferred = 0;
  uint64_t rounds = 0;
  uint64_t field_mults = 0;
  uint64_t triples_consumed = 0;
  uint64_t wire_blocks = 0;      ///< columnar blocks shipped
  double online_seconds = 0.0;   ///< measured wall time of online phase
  double offline_seconds = 0.0;  ///< measured wall time of preprocessing

  /// Per-op wall-time distributions (milliseconds, log-linear buckets) —
  /// rendered in the gateway /metrics text.
  LatencyHistogram share_ms;        ///< secure import (share + distribute)
  LatencyHistogram triple_ms;       ///< Beaver triple generation batches
  LatencyHistogram online_ms;       ///< Compute() calls end-to-end
  LatencyHistogram reconstruct_ms;  ///< final open / reconstruction

  /// Latency the simulated network model assigns to the traffic so far.
  double SimulatedNetworkSeconds(const SmpcConfig& config) const;
};

/// \brief The SMPC cluster: a set of computing nodes, decoupled from the
/// data-owning Workers, that aggregate secret-shared vectors.
///
/// Usage mirrors the paper's flow: a computation gets a globally unique job
/// id; Workers secure-import their local vectors under that id
/// (ImportShares — each entry is secret-shared and each node receives only
/// its share); the Master signals Compute; the result is retrieved
/// asynchronously by job id (GetResult).
///
/// The nodes are simulated in-process but the protocol structure is real:
/// per-node share storage, explicit openings, MAC checks (FT), resharing
/// rounds (Shamir), and byte/round accounting on every exchange. Share
/// storage is SoA (SpdzMatrix / per-node limb vectors) so the batched
/// field_vec kernels operate on contiguous spans; the scalar reference path
/// reads the same storage through per-element accessors.
class SmpcCluster {
 public:
  explicit SmpcCluster(SmpcConfig config);

  const SmpcConfig& config() const { return config_; }

  /// Installs (or clears) the thread pool used for morsel-parallel batched
  /// kernels. Safe to call between operations; never changes results.
  void set_pool(ThreadPool* pool) {
    std::lock_guard<std::mutex> lock(mu_);
    config_.pool = pool;
  }

  /// Runs the offline phase: pre-generates Beaver triples (full threshold
  /// only; Shamir needs none). Time lands in stats().offline_seconds.
  void PrecomputeTriples(size_t count);

  /// Secure importation of one Worker's vector under `job_id`. May be
  /// called once per contributing Worker; contributions are aggregated by
  /// Compute. Values are fixed-point encoded and secret-shared; node k only
  /// ever stores its own share. The share matrix ships as columnar wire
  /// blocks (smpc/wire.h) whose measured sizes land in the cost stats.
  Status ImportShares(const std::string& job_id,
                      const std::vector<double>& values);

  /// Runs `op` over all contributions of `job_id` (elementwise across
  /// contributions for sum/product/min/max; concatenation for union),
  /// optionally injecting DP noise inside the protocol, and stores the
  /// opened result for asynchronous retrieval.
  Status Compute(const std::string& job_id, SmpcOp op,
                 const NoiseSpec& noise = NoiseSpec());

  /// Retrieves the result of a finished computation.
  Result<std::vector<double>> GetResult(const std::string& job_id) const;

  /// Number of contributions imported under a job id.
  size_t NumContributions(const std::string& job_id) const;

  /// Security-experiment hook: additively corrupts node `node`'s share of
  /// element `index` in contribution `contribution` of `job_id`. Full
  /// threshold detects this at opening (Compute returns SecurityError);
  /// Shamir silently produces a wrong result — demonstrating the threat
  /// model gap the paper describes.
  Status TamperWithShare(int node, const std::string& job_id,
                         size_t contribution, size_t index, uint64_t delta);

  SmpcCostStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = SmpcCostStats();
  }

  /// Prometheus-style text block for the gateway /metrics endpoint:
  /// counters plus the per-op latency histogram summaries.
  std::string MetricsText() const;

 private:
  struct FtJob {
    // contributions[c] is a party-major SoA share matrix.
    std::vector<SpdzMatrix> contributions;
  };
  struct ShamirJob {
    std::vector<std::vector<std::vector<uint64_t>>> contributions;
  };

  VecExec Exec() const { return {config_.pool, 16384}; }

  Status ComputeFt(const std::string& job_id, SmpcOp op,
                   const NoiseSpec& noise);
  Status ComputeShamir(const std::string& job_id, SmpcOp op,
                       const NoiseSpec& noise);

  // Secure elementwise min/max over two FT sharings via the blinded-sign
  // comparison protocol (leaks only the comparison outcome). Scalar
  // reference: one comparison round per element.
  Result<SpdzMatrix> MinMaxFt(const SpdzMatrix& x, const SpdzMatrix& y,
                              bool want_min);
  // Batched variant: one comparison round per contribution (all elements'
  // blinded differences open together). Blinding factors are drawn in bulk,
  // so the Rng transcript differs from the scalar path, but the selection
  // (sign of d) — and therefore the result — is identical.
  Result<SpdzMatrix> MinMaxFtVec(const SpdzMatrix& x, const SpdzMatrix& y,
                                 bool want_min);

  /// Measured wire bytes for distributing one party-major share matrix
  /// (values + MACs per node), accumulating stats_.wire_blocks.
  uint64_t MeasureFtWire(const SpdzMatrix& m);
  uint64_t MeasureShamirWire(const std::vector<std::vector<uint64_t>>& m);

  void AccountTransfer(uint64_t bytes, uint64_t rounds);

  /// Serializes all cluster state. Workers import shares concurrently
  /// during the Master's fan-out, so every public entry point locks; the
  /// aggregation ops in use on that path (elementwise modular sums) are
  /// order-independent, which keeps concurrent results byte-identical to
  /// sequential ones.
  mutable std::mutex mu_;
  SmpcConfig config_;
  Rng rng_;
  FixedPointCodec codec_;
  SpdzDealer dealer_;
  ShamirScheme shamir_;
  std::map<std::string, FtJob> ft_jobs_;
  std::map<std::string, ShamirJob> shamir_jobs_;
  std::map<std::string, std::vector<double>> results_;
  SmpcCostStats stats_;
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_CLUSTER_H_
