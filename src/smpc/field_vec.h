#ifndef MIP_SMPC_FIELD_VEC_H_
#define MIP_SMPC_FIELD_VEC_H_

#include <cstddef>
#include <cstdint>

#include "common/parallel.h"

namespace mip::smpc {

/// \brief Array-at-a-time Mersenne-61 kernels.
///
/// These are the SMPC hot-path primitives: every batched share, MAC, triple
/// and reconstruction loop in spdz.cc / shamir.cc / cluster.cc bottoms out
/// here. Each kernel applies exactly the same per-element formula as the
/// scalar `Field::` op it mirrors, so batched results are bit-identical to
/// scalar loops — modular arithmetic is exact, which makes any loop
/// restructuring reassociation-safe. The loops are written branch-light over
/// contiguous spans so compilers auto-vectorize them; we deliberately use no
/// intrinsics (the __int128 product in MulVec already maps to the widening
/// multiply on every 64-bit target, and portable code keeps the UBSan/TSan
/// jobs meaningful).
///
/// All spans may alias only when an `out` parameter equals one of the inputs
/// element-for-element (in-place update); partially overlapping spans are
/// not supported.
namespace field_vec {

/// out[i] = Reduce(a[i])
void ReduceVec(const uint64_t* a, size_t n, uint64_t* out);

/// out[i] = Add(a[i], b[i])
void AddVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);

/// out[i] = Sub(a[i], b[i])
void SubVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);

/// out[i] = Mul(a[i], b[i])
void MulVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);

/// out[i] = Mul(c, a[i])
void MulScalarVec(uint64_t c, const uint64_t* a, size_t n, uint64_t* out);

/// out[i] = Add(a[i], c)
void AddScalarVec(uint64_t c, const uint64_t* a, size_t n, uint64_t* out);

/// acc[i] = Add(acc[i], Mul(a[i], b[i]))
void MulAccumVec(const uint64_t* a, const uint64_t* b, size_t n,
                 uint64_t* acc);

/// acc[i] = Add(acc[i], Mul(c, a[i]))
void MulScalarAccumVec(uint64_t c, const uint64_t* a, size_t n, uint64_t* acc);

/// acc[i] = Add(Mul(acc[i], x), coeffs[i]) — one Horner step with a shared
/// evaluation point and per-element coefficients (Shamir: many independent
/// polynomials evaluated at one party's point x).
void HornerStepVec(uint64_t* acc, uint64_t x, const uint64_t* coeffs,
                   size_t n);

/// Returns Reduce-sum of a[0..n): Add-folded left to right, identical to the
/// scalar loop `for (v : a) s = Field::Add(s, v)`.
uint64_t SumVec(const uint64_t* a, size_t n);

}  // namespace field_vec

/// \brief Execution context for the batched kernels: optional morsel
/// parallelism over large spans.
///
/// A null pool (the default) runs everything on the calling thread. With a
/// pool, ParallelSpan splits [0, n) into `grain`-sized chunks via
/// ThreadPool::ParallelFor; chunk boundaries depend only on (n, grain), and
/// the kernels are element-wise, so results are bit-identical at any thread
/// count.
struct VecExec {
  ThreadPool* pool = nullptr;
  size_t grain = 16384;
};

/// Runs `body(begin, end)` over [0, n), parallel when `exec.pool` is set and
/// the span is larger than one grain, serial otherwise.
template <typename Body>
void ParallelSpan(size_t n, const VecExec& exec, const Body& body) {
  if (exec.pool != nullptr && n > exec.grain) {
    exec.pool->ParallelFor(n, exec.grain,
                           [&body](size_t b, size_t e) { body(b, e); });
  } else if (n > 0) {
    body(0, n);
  }
}

}  // namespace mip::smpc

#endif  // MIP_SMPC_FIELD_VEC_H_
