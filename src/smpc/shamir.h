#ifndef MIP_SMPC_SHAMIR_H_
#define MIP_SMPC_SHAMIR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "smpc/field_vec.h"

namespace mip::smpc {

/// \brief Shamir (t, n) secret sharing over F_p.
///
/// Party i (0-based) receives the evaluation of a random degree-t polynomial
/// at x = i + 1; any t+1 shares reconstruct, any t shares are uniformly
/// random. This is MIP's fast scheme, secure against honest-but-curious
/// adversaries with t < n/2 (no MACs — tampering is NOT detected, which the
/// security tests demonstrate as the contrast to full-threshold SPDZ).
class ShamirScheme {
 public:
  /// `threshold` is the polynomial degree t; reconstruction needs t+1
  /// shares. Requires 0 <= t < n.
  ShamirScheme(int threshold, int num_parties);

  int threshold() const { return threshold_; }
  int num_parties() const { return num_parties_; }

  /// Shares one secret: element i of the result goes to party i.
  std::vector<uint64_t> Share(uint64_t secret, Rng* rng) const;

  /// Shares a vector (party-major result). Scalar reference: one Share call
  /// per element.
  std::vector<std::vector<uint64_t>> ShareVector(
      const std::vector<uint64_t>& secrets, Rng* rng) const;

  /// Batched sharing: bit-identical to ShareVector for the same Rng state.
  /// Coefficients come from one bulk draw (scalar draw order), then each
  /// party's shares are one vectorized Horner sweep over all elements.
  std::vector<std::vector<uint64_t>> ShareVectorBatch(
      const std::vector<uint64_t>& secrets, Rng* rng,
      const VecExec& exec = {}) const;

  /// Reconstructs from (party_index, share) pairs. Needs at least t+1
  /// distinct parties.
  Result<uint64_t> Reconstruct(
      const std::vector<std::pair<int, uint64_t>>& shares) const;

  /// Reconstructs a full party-major share matrix using all n parties.
  Result<std::vector<uint64_t>> ReconstructVector(
      const std::vector<std::vector<uint64_t>>& shares) const;

  /// Batched reconstruction: bit-identical to ReconstructVector, Lagrange
  /// recombination done with MulScalarAccumVec sweeps per party.
  Result<std::vector<uint64_t>> ReconstructVectorBatch(
      const std::vector<std::vector<uint64_t>>& shares,
      const VecExec& exec = {}) const;

  /// Degree reduction after a local share product: each party re-shares its
  /// local product share, and the new shares are recombined with Lagrange
  /// weights — the classic BGW multiplication step (one communication
  /// round). Input/output are party-major matrices of share vectors.
  Result<std::vector<std::vector<uint64_t>>> MultiplyReshare(
      const std::vector<std::vector<uint64_t>>& x,
      const std::vector<std::vector<uint64_t>>& y, Rng* rng) const;

  /// Batched BGW multiplication: bit-identical to MultiplyReshare for the
  /// same Rng state (resharing coefficients are drawn in the scalar
  /// element-major, party-minor order, then consumed by vector kernels).
  Result<std::vector<std::vector<uint64_t>>> MultiplyReshareBatch(
      const std::vector<std::vector<uint64_t>>& x,
      const std::vector<std::vector<uint64_t>>& y, Rng* rng,
      const VecExec& exec = {}) const;

  /// Lagrange coefficient for party `i` when interpolating at x = 0 using
  /// the full party set {1..n}.
  uint64_t LagrangeAtZero(int party) const;

 private:
  int threshold_;
  int num_parties_;
  std::vector<uint64_t> lagrange_full_;  // precomputed for the full set
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_SHAMIR_H_
