#include "smpc/noise.h"

#include <cmath>

namespace mip::smpc {

double SamplePartialNoise(const NoiseSpec& spec, int num_nodes, Rng* rng) {
  switch (spec.kind) {
    case NoiseSpec::Kind::kNone:
      return 0.0;
    case NoiseSpec::Kind::kGaussian:
      return rng->NextGaussian(
          0.0, spec.param / std::sqrt(static_cast<double>(num_nodes)));
    case NoiseSpec::Kind::kLaplace: {
      // Laplace(b) = Gamma(1, b) - Gamma(1, b) and Gamma is infinitely
      // divisible: each node contributes G(1/n, b) - G(1/n, b).
      const double shape = 1.0 / static_cast<double>(num_nodes);
      return rng->NextGamma(shape, spec.param) -
             rng->NextGamma(shape, spec.param);
    }
  }
  return 0.0;
}

}  // namespace mip::smpc
