#ifndef MIP_SMPC_SPDZ_H_
#define MIP_SMPC_SPDZ_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace mip::smpc {

/// \brief One party's authenticated additive share: a value share plus an
/// information-theoretic MAC share (SPDZ).
///
/// For a secret x, the parties hold value shares x_i with sum x, and MAC
/// shares m_i with sum alpha * x, where alpha is the global MAC key (itself
/// additively shared, never reconstructed). Any additive tampering with a
/// share is caught by the MAC check at opening time — this is the "full
/// threshold, secure with abort against an active majority" mode of the
/// paper.
struct SpdzShare {
  uint64_t value = 0;
  uint64_t mac = 0;
};

/// A full sharing: outer index = party, inner = element.
using SpdzSharedVector = std::vector<std::vector<SpdzShare>>;

/// \brief A Beaver multiplication triple (a, b, c = a*b), shared per party.
struct SpdzTriple {
  SpdzShare a;
  SpdzShare b;
  SpdzShare c;
};

/// \brief Simulated SPDZ offline phase.
///
/// Real SPDZ generates MACed shares and Beaver triples with somewhat
/// homomorphic encryption / OT (MASCOT) among the parties themselves; this
/// repo simulates that preprocessing with a dealer so the online protocol —
/// the part the paper's latency claims are about — is exercised faithfully.
/// The dealer's alpha never enters the online path except inside MacCheck's
/// distributed verification identity.
class SpdzDealer {
 public:
  SpdzDealer(int num_parties, uint64_t seed);

  int num_parties() const { return num_parties_; }
  const std::vector<uint64_t>& alpha_shares() const { return alpha_shares_; }

  /// Authenticated sharing of a public/plaintext field element.
  std::vector<SpdzShare> ShareValue(uint64_t x);

  /// Authenticated sharing of a vector (party-major result).
  SpdzSharedVector ShareVector(const std::vector<uint64_t>& xs);

  /// One Beaver triple (per-party shares).
  std::vector<SpdzTriple> MakeTriple();

  /// Pre-generates `count` triples into the pool (the offline phase).
  void PrecomputeTriples(size_t count);

  /// Pops one triple; falls back to on-demand generation (counted
  /// separately so benchmarks can report the offline-phase benefit).
  std::vector<SpdzTriple> TakeTriple();

  size_t pool_size() const { return pool_.size(); }
  size_t triples_precomputed() const { return triples_precomputed_; }
  size_t triples_generated_online() const { return triples_online_; }

  /// A shared uniformly random value in [1, 2^bits) (used as a positive
  /// blinding factor by the comparison protocol).
  std::vector<SpdzShare> SharePositiveRandom(int bits);

 private:
  int num_parties_;
  Rng rng_;
  uint64_t alpha_;
  std::vector<uint64_t> alpha_shares_;
  std::vector<std::vector<SpdzTriple>> pool_;
  size_t triples_precomputed_ = 0;
  size_t triples_online_ = 0;
};

/// \brief Online-phase SPDZ operations over per-party shares.
class Spdz {
 public:
  /// z_i = x_i + y_i (local, no communication).
  static SpdzShare Add(const SpdzShare& x, const SpdzShare& y) {
    return {AddF(x.value, y.value), AddF(x.mac, y.mac)};
  }

  /// z_i = x_i - y_i (local).
  static SpdzShare Sub(const SpdzShare& x, const SpdzShare& y);

  /// Adds a public constant c: party 0 adjusts its value share, every party
  /// adjusts its MAC share with alpha_i * c.
  static SpdzShare AddPublic(const SpdzShare& x, uint64_t c, int party,
                             uint64_t alpha_share);

  /// Multiplies by a public constant (local).
  static SpdzShare MulPublic(const SpdzShare& x, uint64_t c);

  /// Opens a sharing with the SPDZ MAC check. `shares[i]` is party i's
  /// share. Fails with SecurityError ("abort") if the MAC identity does not
  /// hold — i.e. some party tampered with a share.
  static Result<uint64_t> Open(const std::vector<SpdzShare>& shares,
                               const std::vector<uint64_t>& alpha_shares);

  /// Beaver multiplication: given sharings of x and y and a triple, returns
  /// the product sharing. Opens x - a and y - b (2 field elements of
  /// communication per party). The openings are themselves MAC-checked.
  static Result<std::vector<SpdzShare>> Multiply(
      const std::vector<SpdzShare>& x, const std::vector<SpdzShare>& y,
      const std::vector<SpdzTriple>& triple,
      const std::vector<uint64_t>& alpha_shares);

 private:
  static uint64_t AddF(uint64_t a, uint64_t b);
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_SPDZ_H_
