#ifndef MIP_SMPC_SPDZ_H_
#define MIP_SMPC_SPDZ_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "smpc/field_vec.h"

namespace mip::smpc {

/// \brief One party's authenticated additive share: a value share plus an
/// information-theoretic MAC share (SPDZ).
///
/// For a secret x, the parties hold value shares x_i with sum x, and MAC
/// shares m_i with sum alpha * x, where alpha is the global MAC key (itself
/// additively shared, never reconstructed). Any additive tampering with a
/// share is caught by the MAC check at opening time — this is the "full
/// threshold, secure with abort against an active majority" mode of the
/// paper.
struct SpdzShare {
  uint64_t value = 0;
  uint64_t mac = 0;
};

/// A full sharing: outer index = party, inner = element.
using SpdzSharedVector = std::vector<std::vector<SpdzShare>>;

/// \brief One party's authenticated sharing of a vector, structure-of-arrays:
/// parallel value/MAC limb arrays. This is the batched hot-path layout —
/// contiguous limbs feed the field_vec kernels directly and a vector of n
/// elements costs two allocations instead of n struct copies.
struct SpdzVec {
  std::vector<uint64_t> values;
  std::vector<uint64_t> macs;

  size_t size() const { return values.size(); }
  void resize(size_t n) {
    values.resize(n);
    macs.resize(n);
  }
};

/// Party-major SoA share matrix: matrix[p] is party p's SpdzVec.
using SpdzMatrix = std::vector<SpdzVec>;

/// \brief A Beaver multiplication triple (a, b, c = a*b), shared per party.
struct SpdzTriple {
  SpdzShare a;
  SpdzShare b;
  SpdzShare c;
};

/// \brief A block of Beaver triples in SoA form: a/b/c are party-major share
/// matrices with one element per triple. The dealer's batched offline phase
/// emits these; the batched Beaver path consumes them without ever
/// materializing per-triple objects.
struct SpdzTripleBlock {
  SpdzMatrix a;
  SpdzMatrix b;
  SpdzMatrix c;

  size_t size() const { return a.empty() ? 0 : a[0].size(); }
};

/// AoS <-> SoA conversions (tests and the scalar reference path use these at
/// the boundary; the hot path stays SoA throughout).
SpdzMatrix ToMatrix(const SpdzSharedVector& shares);
SpdzSharedVector ToShared(const SpdzMatrix& m);

/// \brief Simulated SPDZ offline phase.
///
/// Real SPDZ generates MACed shares and Beaver triples with somewhat
/// homomorphic encryption / OT (MASCOT) among the parties themselves; this
/// repo simulates that preprocessing with a dealer so the online protocol —
/// the part the paper's latency claims are about — is exercised faithfully.
/// The dealer's alpha never enters the online path except inside MacCheck's
/// distributed verification identity.
///
/// Every batched method consumes the dealer Rng in exactly the order its
/// scalar counterpart would (one bulk draw, then index mapping), so for the
/// same seed the batched and scalar paths emit bit-identical shares and
/// triples — the property tests pin this.
class SpdzDealer {
 public:
  SpdzDealer(int num_parties, uint64_t seed);

  int num_parties() const { return num_parties_; }
  const std::vector<uint64_t>& alpha_shares() const { return alpha_shares_; }

  /// Authenticated sharing of a public/plaintext field element.
  std::vector<SpdzShare> ShareValue(uint64_t x);

  /// Authenticated sharing of a vector (party-major result). Scalar
  /// reference: one ShareValue per element.
  SpdzSharedVector ShareVector(const std::vector<uint64_t>& xs);

  /// Batched sharing: bit-identical to ShareVector for the same Rng state,
  /// but draws all randomness in one bulk fill and computes the closing
  /// party's shares with the field_vec kernels (morsel-parallel via `exec`).
  SpdzMatrix ShareVectorBatch(const std::vector<uint64_t>& xs,
                              const VecExec& exec = {});

  /// One Beaver triple (per-party shares). Scalar reference.
  std::vector<SpdzTriple> MakeTriple();

  /// Batched triple generation: bit-identical to `count` MakeTriple calls
  /// for the same Rng state.
  SpdzTripleBlock MakeTriples(size_t count, const VecExec& exec = {});

  /// Pre-generates `count` triples into the pool (the offline phase),
  /// using the batched generator.
  void PrecomputeTriples(size_t count, const VecExec& exec = {});

  /// Scalar ablation of PrecomputeTriples: same pool contents for the same
  /// seed, one MakeTriple call per triple. Kept callable so the offline
  /// benchmark can report the batching speedup from a single binary.
  void PrecomputeTriplesScalar(size_t count);

  /// Pops one triple; falls back to on-demand generation (counted
  /// separately so benchmarks can report the offline-phase benefit).
  std::vector<SpdzTriple> TakeTriple();

  /// Takes `count` triples as a block — element e is exactly the triple the
  /// e-th of `count` successive TakeTriple calls would return (LIFO pops
  /// from the pool, then batch-generated on demand).
  SpdzTripleBlock TakeTriples(size_t count, const VecExec& exec = {});

  size_t pool_size() const { return pool_.size(); }
  size_t triples_precomputed() const { return triples_precomputed_; }
  size_t triples_generated_online() const { return triples_online_; }

  /// A shared uniformly random value in [1, 2^bits) (used as a positive
  /// blinding factor by the comparison protocol).
  std::vector<SpdzShare> SharePositiveRandom(int bits);

  /// Batch of `n` independent positive blinding factors. NOTE: draws all
  /// bounded randoms before sharing, so the Rng transcript differs from n
  /// interleaved SharePositiveRandom calls — the comparison protocol only
  /// needs r > 0, so min/max results are unchanged (result parity, not
  /// transcript parity; see DESIGN.md).
  SpdzMatrix SharePositiveRandomVec(int bits, size_t n,
                                    const VecExec& exec = {});

 private:
  /// Appends `count` fresh triples to `blk`'s columns in place (morsel
  /// streaming; pipelined RNG draw when `exec.pool` is set). Reusing a
  /// block's retained capacity keeps steady-state refills in warm memory.
  void GenerateTriplesInto(SpdzTripleBlock* blk, size_t count,
                           const VecExec& exec);

  int num_parties_;
  Rng rng_;
  uint64_t alpha_;
  std::vector<uint64_t> alpha_shares_;
  /// SoA triple pool, consumed LIFO from the back. Batched and scalar
  /// precompute fill it with identical contents for the same seed.
  SpdzTripleBlock pool_;
  size_t triples_precomputed_ = 0;
  size_t triples_online_ = 0;
};

/// \brief Online-phase SPDZ operations over per-party shares.
class Spdz {
 public:
  /// z_i = x_i + y_i (local, no communication).
  static SpdzShare Add(const SpdzShare& x, const SpdzShare& y) {
    return {AddF(x.value, y.value), AddF(x.mac, y.mac)};
  }

  /// z_i = x_i - y_i (local).
  static SpdzShare Sub(const SpdzShare& x, const SpdzShare& y);

  /// Adds a public constant c: party 0 adjusts its value share, every party
  /// adjusts its MAC share with alpha_i * c.
  static SpdzShare AddPublic(const SpdzShare& x, uint64_t c, int party,
                             uint64_t alpha_share);

  /// Multiplies by a public constant (local).
  static SpdzShare MulPublic(const SpdzShare& x, uint64_t c);

  /// Opens a sharing with the SPDZ MAC check. `shares[i]` is party i's
  /// share. Fails with SecurityError ("abort") if the MAC identity does not
  /// hold — i.e. some party tampered with a share.
  static Result<uint64_t> Open(const std::vector<SpdzShare>& shares,
                               const std::vector<uint64_t>& alpha_shares);

  /// Batched open over a party-major SoA matrix: element e of `*out` is
  /// bit-identical to Open() of the per-party shares of element e, and the
  /// MAC check covers every element (SecurityError if any fails).
  static Status OpenVec(const SpdzMatrix& shares,
                        const std::vector<uint64_t>& alpha_shares,
                        const VecExec& exec, std::vector<uint64_t>* out);

  /// Beaver multiplication: given sharings of x and y and a triple, returns
  /// the product sharing. Opens x - a and y - b (2 field elements of
  /// communication per party). The openings are themselves MAC-checked.
  static Result<std::vector<SpdzShare>> Multiply(
      const std::vector<SpdzShare>& x, const std::vector<SpdzShare>& y,
      const std::vector<SpdzTriple>& triple,
      const std::vector<uint64_t>& alpha_shares);

  /// Batched elementwise Beaver multiplication over SoA matrices with a
  /// triple block. Element e of `*out` is bit-identical to Multiply() on
  /// element e with triple block element e.
  static Status MultiplyVec(const SpdzMatrix& x, const SpdzMatrix& y,
                            const SpdzTripleBlock& triples,
                            const std::vector<uint64_t>& alpha_shares,
                            const VecExec& exec, SpdzMatrix* out);

 private:
  static uint64_t AddF(uint64_t a, uint64_t b);
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_SPDZ_H_
