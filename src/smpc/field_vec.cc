#include "smpc/field_vec.h"

#include "smpc/field.h"

namespace mip::smpc::field_vec {

// Each loop body is the corresponding Field:: op inlined by hand, with the
// conditional subtractions expressed as compares + masked adds so the
// compiler can keep the whole iteration branch-free and vectorize it.

void ReduceVec(const uint64_t* a, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = (a[i] & Field::kPrime) + (a[i] >> 61);
    if (x >= Field::kPrime) x -= Field::kPrime;
    out[i] = x;
  }
}

void AddVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = a[i] + b[i];  // inputs < p < 2^61, so no overflow
    if (s >= Field::kPrime) s -= Field::kPrime;
    out[i] = s;
  }
}

void SubVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + Field::kPrime - b[i];
  }
}

void MulVec(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod = static_cast<unsigned __int128>(a[i]) *
                                   static_cast<unsigned __int128>(b[i]);
    const uint64_t lo = static_cast<uint64_t>(prod) & Field::kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    out[i] = Field::Reduce(lo + Field::Reduce(hi));
  }
}

void MulScalarVec(uint64_t c, const uint64_t* a, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(c) * static_cast<unsigned __int128>(a[i]);
    const uint64_t lo = static_cast<uint64_t>(prod) & Field::kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    out[i] = Field::Reduce(lo + Field::Reduce(hi));
  }
}

void AddScalarVec(uint64_t c, const uint64_t* a, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = a[i] + c;
    if (s >= Field::kPrime) s -= Field::kPrime;
    out[i] = s;
  }
}

void MulAccumVec(const uint64_t* a, const uint64_t* b, size_t n,
                 uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod = static_cast<unsigned __int128>(a[i]) *
                                   static_cast<unsigned __int128>(b[i]);
    const uint64_t lo = static_cast<uint64_t>(prod) & Field::kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    const uint64_t m = Field::Reduce(lo + Field::Reduce(hi));
    uint64_t s = acc[i] + m;
    if (s >= Field::kPrime) s -= Field::kPrime;
    acc[i] = s;
  }
}

void MulScalarAccumVec(uint64_t c, const uint64_t* a, size_t n,
                       uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(c) * static_cast<unsigned __int128>(a[i]);
    const uint64_t lo = static_cast<uint64_t>(prod) & Field::kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    const uint64_t m = Field::Reduce(lo + Field::Reduce(hi));
    uint64_t s = acc[i] + m;
    if (s >= Field::kPrime) s -= Field::kPrime;
    acc[i] = s;
  }
}

void HornerStepVec(uint64_t* acc, uint64_t x, const uint64_t* coeffs,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(acc[i]) *
        static_cast<unsigned __int128>(x);
    const uint64_t lo = static_cast<uint64_t>(prod) & Field::kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    const uint64_t m = Field::Reduce(lo + Field::Reduce(hi));
    uint64_t s = m + coeffs[i];
    if (s >= Field::kPrime) s -= Field::kPrime;
    acc[i] = s;
  }
}

uint64_t SumVec(const uint64_t* a, size_t n) {
  uint64_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += a[i];
    if (s >= Field::kPrime) s -= Field::kPrime;
  }
  return s;
}

}  // namespace mip::smpc::field_vec
