#include "smpc/fixed_point.h"

#include <cmath>

#include "smpc/field.h"

namespace mip::smpc {

FixedPointCodec::FixedPointCodec(int frac_bits)
    : frac_bits_(frac_bits), scale_(std::ldexp(1.0, frac_bits)) {}

double FixedPointCodec::MaxMagnitude() const {
  return static_cast<double>(Field::kPrime / 2) / scale_;
}

Result<uint64_t> FixedPointCodec::Encode(double x) const {
  if (!std::isfinite(x)) {
    return Status::InvalidArgument("cannot encode non-finite value");
  }
  if (std::fabs(x) >= MaxMagnitude()) {
    return Status::OutOfRange("fixed-point overflow encoding " +
                              std::to_string(x));
  }
  const double scaled = std::round(x * scale_);
  if (scaled >= 0) {
    return static_cast<uint64_t>(scaled);
  }
  return Field::kPrime - static_cast<uint64_t>(-scaled);
}

double FixedPointCodec::Decode(uint64_t v) const {
  if (v > Field::kPrime / 2) {
    return -static_cast<double>(Field::kPrime - v) / scale_;
  }
  return static_cast<double>(v) / scale_;
}

Result<std::vector<uint64_t>> FixedPointCodec::EncodeVector(
    const std::vector<double>& xs) const {
  std::vector<uint64_t> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    MIP_ASSIGN_OR_RETURN(out[i], Encode(xs[i]));
  }
  return out;
}

std::vector<double> FixedPointCodec::DecodeVector(
    const std::vector<uint64_t>& vs) const {
  std::vector<double> out(vs.size());
  for (size_t i = 0; i < vs.size(); ++i) out[i] = Decode(vs[i]);
  return out;
}

double FixedPointCodec::DecodeProduct(uint64_t v) const {
  if (v > Field::kPrime / 2) {
    return -static_cast<double>(Field::kPrime - v) / (scale_ * scale_);
  }
  return static_cast<double>(v) / (scale_ * scale_);
}

}  // namespace mip::smpc
