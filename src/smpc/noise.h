#ifndef MIP_SMPC_NOISE_H_
#define MIP_SMPC_NOISE_H_

#include "common/rng.h"

namespace mip::smpc {

/// \brief Differential-privacy noise to inject *inside* the SMPC protocol
/// (the paper: "the engine also supports injecting Laplacian and Gaussian
/// noise during the SMPC to the result of the computation").
struct NoiseSpec {
  enum class Kind { kNone, kLaplace, kGaussian };
  Kind kind = Kind::kNone;
  /// Laplace scale b, or Gaussian standard deviation sigma, of the TOTAL
  /// noise on the opened result.
  double param = 0.0;
};

/// \brief Samples one node's partial noise such that the SUM over
/// `num_nodes` independent draws follows the target distribution.
///
/// Gaussian uses stability (sum of N(0, s²/n) is N(0, s²)); Laplace uses
/// infinite divisibility (difference of Gamma(1/n, b) sums). No single node
/// ever knows the total noise, so a breached node cannot denoise the output.
double SamplePartialNoise(const NoiseSpec& spec, int num_nodes, Rng* rng);

}  // namespace mip::smpc

#endif  // MIP_SMPC_NOISE_H_
