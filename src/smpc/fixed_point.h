#ifndef MIP_SMPC_FIXED_POINT_H_
#define MIP_SMPC_FIXED_POINT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mip::smpc {

/// \brief Signed fixed-point encoding of reals into F_p.
///
/// x is encoded as round(x * 2^frac_bits) mod p, with negatives mapped to the
/// upper half of the field (two's-complement style). Decoding interprets
/// values above p/2 as negative. The representable magnitude after summing k
/// contributions must stay below p / 2^(frac_bits+1); with the default 20
/// fractional bits that is ~2^40 ≈ 10^12 — comfortably above any clinical
/// aggregate MIP ships.
class FixedPointCodec {
 public:
  explicit FixedPointCodec(int frac_bits = 20);

  int frac_bits() const { return frac_bits_; }
  double scale() const { return scale_; }

  /// Largest encodable magnitude.
  double MaxMagnitude() const;

  /// Encodes one real. Values beyond MaxMagnitude() are an error.
  Result<uint64_t> Encode(double x) const;

  /// Decodes one field element.
  double Decode(uint64_t v) const;

  Result<std::vector<uint64_t>> EncodeVector(
      const std::vector<double>& xs) const;
  std::vector<double> DecodeVector(const std::vector<uint64_t>& vs) const;

  /// Decoding after a product of two encoded values carries scale^2; this
  /// decodes with the doubled scale.
  double DecodeProduct(uint64_t v) const;

 private:
  int frac_bits_;
  double scale_;
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_FIXED_POINT_H_
