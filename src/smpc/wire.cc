#include "smpc/wire.h"

#include <algorithm>

#include "common/bytes.h"
#include "engine/encoding.h"

namespace mip::smpc::wire {

namespace {

// Limbs travel as int64 columns: the bit pattern is preserved verbatim
// (field elements are < 2^61, so they stay non-negative as int64, which
// also keeps delta-varint's zigzag well-behaved).
void EncodeInto(const uint64_t* limbs, size_t n, size_t block_elems,
                BufferWriter* w) {
  engine::PutVarint(w, n);
  const size_t step = block_elems == 0 ? (n == 0 ? 1 : n) : block_elems;
  std::vector<int64_t> block;
  for (size_t off = 0; off < n; off += step) {
    const size_t len = std::min(step, n - off);
    block.assign(limbs + off, limbs + off + len);
    engine::EncodeInts(block, w);
  }
}

}  // namespace

std::vector<uint8_t> EncodeLimbBlocks(const uint64_t* limbs, size_t n,
                                      size_t block_elems) {
  BufferWriter w;
  w.Reserve(n * sizeof(uint64_t) + 16);
  EncodeInto(limbs, n, block_elems, &w);
  return w.TakeBytes();
}

Result<std::vector<uint64_t>> DecodeLimbBlocks(
    const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  MIP_ASSIGN_OR_RETURN(uint64_t n, engine::GetVarint(&r));
  if (n > engine::kMaxWireElements) {
    return Status::IOError("share column element count exceeds wire cap");
  }
  std::vector<uint64_t> out;
  out.reserve(n);
  while (out.size() < n) {
    MIP_ASSIGN_OR_RETURN(std::vector<int64_t> block, engine::DecodeInts(&r));
    if (block.empty() || block.size() > n - out.size()) {
      return Status::IOError("share column block does not tile the count");
    }
    for (int64_t v : block) out.push_back(static_cast<uint64_t>(v));
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after share column blocks");
  }
  return out;
}

size_t MeasureLimbBlocks(const uint64_t* limbs, size_t n,
                         size_t block_elems) {
  BufferWriter w;
  EncodeInto(limbs, n, block_elems, &w);
  return w.size();
}

}  // namespace mip::smpc::wire
