#ifndef MIP_SMPC_FIELD_H_
#define MIP_SMPC_FIELD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mip::smpc {

/// \brief Arithmetic in the prime field F_p with p = 2^61 - 1 (Mersenne).
///
/// All SMPC values — secret shares, MACs, Beaver triples — are elements of
/// this field. A Mersenne prime keeps modular reduction to shifts/adds and
/// 61 bits leave ample headroom for the fixed-point encoding of clinical
/// aggregates (see fixed_point.h).
class Field {
 public:
  /// The field modulus 2^61 - 1.
  static constexpr uint64_t kPrime = (1ull << 61) - 1;

  /// Reduces an arbitrary 64-bit value into [0, p).
  static uint64_t Reduce(uint64_t x) {
    x = (x & kPrime) + (x >> 61);
    if (x >= kPrime) x -= kPrime;
    return x;
  }

  static uint64_t Add(uint64_t a, uint64_t b) {
    uint64_t s = a + b;  // < 2^62, no overflow
    if (s >= kPrime) s -= kPrime;
    return s;
  }

  static uint64_t Sub(uint64_t a, uint64_t b) {
    return a >= b ? a - b : a + kPrime - b;
  }

  static uint64_t Neg(uint64_t a) { return a == 0 ? 0 : kPrime - a; }

  static uint64_t Mul(uint64_t a, uint64_t b) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    // Mersenne folding: hi * 2^61 + lo ≡ hi + lo (mod 2^61 - 1).
    const uint64_t lo = static_cast<uint64_t>(prod) & kPrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    return Reduce(lo + Reduce(hi));
  }

  /// a^e mod p by square-and-multiply.
  static uint64_t Pow(uint64_t a, uint64_t e);

  /// Multiplicative inverse via Fermat (a != 0).
  static uint64_t Inv(uint64_t a) { return Pow(a, kPrime - 2); }

  /// Uniform field element.
  static uint64_t Random(Rng* rng) {
    for (;;) {
      const uint64_t r = rng->NextUint64() & ((1ull << 61) - 1);
      if (r < kPrime) return r;
    }
  }

  /// Bulk uniform sampling: fills `out[0..n)` with exactly the values (and
  /// stream positions) that n successive Random() calls would produce. Raw
  /// words come from Rng::FillUint64 in blocks and rejections are compacted
  /// in place, so the per-call rejection loop is amortized away.
  static void RandomVec(uint64_t* out, size_t n, Rng* rng);

  /// The compaction step of RandomVec, visible for the property tests:
  /// masks each raw word to 61 bits and keeps accepted (< p) values in draw
  /// order. Returns how many were accepted. `out` may alias `raw`.
  static size_t AcceptFieldWords(const uint64_t* raw, size_t n, uint64_t* out);

  /// Uniform vector of field elements.
  static std::vector<uint64_t> RandomVector(size_t n, Rng* rng);
};

}  // namespace mip::smpc

#endif  // MIP_SMPC_FIELD_H_
