#include "smpc/spdz.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "smpc/field.h"

namespace mip::smpc {

SpdzMatrix ToMatrix(const SpdzSharedVector& shares) {
  SpdzMatrix m(shares.size());
  for (size_t p = 0; p < shares.size(); ++p) {
    m[p].resize(shares[p].size());
    for (size_t e = 0; e < shares[p].size(); ++e) {
      m[p].values[e] = shares[p][e].value;
      m[p].macs[e] = shares[p][e].mac;
    }
  }
  return m;
}

SpdzSharedVector ToShared(const SpdzMatrix& m) {
  SpdzSharedVector shares(m.size());
  for (size_t p = 0; p < m.size(); ++p) {
    shares[p].resize(m[p].size());
    for (size_t e = 0; e < m[p].size(); ++e) {
      shares[p][e] = {m[p].values[e], m[p].macs[e]};
    }
  }
  return shares;
}

namespace {

/// Fused triple-generation kernel: one pass over the morsel's random words
/// computes a, b, c = a*b and every party's (value, mac) share for all three
/// sharings, writing straight into the 6*np output column tails. Templating
/// on the party count makes np, the word stride and every column index a
/// compile-time constant, so the inner loops fully unroll and the column
/// pointers live in registers — measured ~2x over the runtime-np version.
/// The formulas and accumulation order are the scalar MakeTriple/ShareValue
/// ones verbatim (bit-parity pinned in smpc_property_test).
template <int NP>
void FuseTriples(const uint64_t* rand, uint64_t* const* col_in, size_t len,
                 uint64_t alpha) {
  constexpr size_t kPerShare = 2 * (static_cast<size_t>(NP) - 1);
  constexpr size_t kStride = 2 + 3 * kPerShare;
  uint64_t* c[6 * NP];
  for (size_t j = 0; j < 6 * static_cast<size_t>(NP); ++j) c[j] = col_in[j];
  for (size_t t = 0; t < len; ++t) {
    const uint64_t* r = rand + t * kStride;
    const uint64_t a = r[0];
    const uint64_t b = r[1];
    const uint64_t cc = Field::Mul(a, b);
    const uint64_t plains[3] = {a, b, cc};
    for (int s = 0; s < 3; ++s) {
      const size_t off = 2 + static_cast<size_t>(s) * kPerShare;
      uint64_t* const* share_cols = c + s * NP * 2;
      uint64_t vsum = 0;
      uint64_t msum = 0;
      for (int p = 0; p + 1 < NP; ++p) {
        const uint64_t v = r[off + 2 * static_cast<size_t>(p)];
        const uint64_t m = r[off + 2 * static_cast<size_t>(p) + 1];
        share_cols[2 * p][t] = v;
        share_cols[2 * p + 1][t] = m;
        vsum = Field::Add(vsum, v);
        msum = Field::Add(msum, m);
      }
      share_cols[2 * (NP - 1)][t] = Field::Sub(plains[s], vsum);
      share_cols[2 * (NP - 1) + 1][t] =
          Field::Sub(Field::Mul(alpha, plains[s]), msum);
    }
  }
}

/// Runtime-np fallback for party counts without a specialized instantiation.
void FuseTriplesGeneric(const uint64_t* rand, uint64_t* const* col, size_t len,
                        uint64_t alpha, int np, size_t stride,
                        size_t per_share) {
  for (size_t t = 0; t < len; ++t) {
    const uint64_t* r = rand + t * stride;
    const uint64_t a = r[0];
    const uint64_t b = r[1];
    const uint64_t cc = Field::Mul(a, b);
    const uint64_t plains[3] = {a, b, cc};
    for (int s = 0; s < 3; ++s) {
      const size_t off = 2 + static_cast<size_t>(s) * per_share;
      uint64_t* const* share_cols =
          col + static_cast<size_t>(s) * static_cast<size_t>(np) * 2;
      uint64_t vsum = 0;
      uint64_t msum = 0;
      for (int p = 0; p + 1 < np; ++p) {
        const uint64_t v = r[off + 2 * static_cast<size_t>(p)];
        const uint64_t m = r[off + 2 * static_cast<size_t>(p) + 1];
        share_cols[2 * p][t] = v;
        share_cols[2 * p + 1][t] = m;
        vsum = Field::Add(vsum, v);
        msum = Field::Add(msum, m);
      }
      share_cols[2 * (np - 1)][t] = Field::Sub(plains[s], vsum);
      share_cols[2 * (np - 1) + 1][t] =
          Field::Sub(Field::Mul(alpha, plains[s]), msum);
    }
  }
}

using FuseFn = void (*)(const uint64_t*, uint64_t* const*, size_t, uint64_t);

FuseFn FuseForParties(int np) {
  switch (np) {
    case 1: return &FuseTriples<1>;
    case 2: return &FuseTriples<2>;
    case 3: return &FuseTriples<3>;
    case 4: return &FuseTriples<4>;
    case 5: return &FuseTriples<5>;
    case 6: return &FuseTriples<6>;
    case 7: return &FuseTriples<7>;
    case 8: return &FuseTriples<8>;
    default: return nullptr;
  }
}

/// Computes the party-major SoA authenticated sharing of plain[0..n), where
/// party p's (value, mac) random words for element e sit at
/// rand[e * stride + offset + 2p (+ 1)]. The word layout is exactly the draw
/// order of the scalar ShareValue loop, which is what makes every batched
/// sharing bit-identical to its scalar counterpart.
void ShareBatchFromRandom(const uint64_t* plain, size_t n, int np,
                          uint64_t alpha, const uint64_t* rand, size_t stride,
                          size_t offset, const VecExec& exec,
                          SpdzMatrix* out) {
  out->assign(static_cast<size_t>(np), SpdzVec{});
  for (auto& v : *out) v.resize(n);
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    for (int p = 0; p + 1 < np; ++p) {
      uint64_t* vals = (*out)[static_cast<size_t>(p)].values.data();
      uint64_t* macs = (*out)[static_cast<size_t>(p)].macs.data();
      const size_t base = offset + 2 * static_cast<size_t>(p);
      for (size_t e = b; e < end; ++e) {
        vals[e] = rand[e * stride + base];
        macs[e] = rand[e * stride + base + 1];
      }
    }
    // Closing party: value = x - sum(other values), mac = alpha*x - sum.
    // Serial SubVec folds: Sub(Sub(x, v0), v1) == Sub(x, Add(v0, v1)) in
    // exact modular arithmetic, so no temporary sum buffers are needed and
    // the result is still bit-identical to the scalar loop.
    SpdzVec& last = (*out)[static_cast<size_t>(np) - 1];
    std::copy(plain + b, plain + end, last.values.data() + b);
    field_vec::MulScalarVec(alpha, plain + b, len, last.macs.data() + b);
    for (int p = 0; p + 1 < np; ++p) {
      field_vec::SubVec(last.values.data() + b,
                        (*out)[static_cast<size_t>(p)].values.data() + b, len,
                        last.values.data() + b);
      field_vec::SubVec(last.macs.data() + b,
                        (*out)[static_cast<size_t>(p)].macs.data() + b, len,
                        last.macs.data() + b);
    }
  });
}

}  // namespace

SpdzDealer::SpdzDealer(int num_parties, uint64_t seed)
    : num_parties_(num_parties), rng_(seed) {
  alpha_ = Field::Random(&rng_);
  alpha_shares_.resize(static_cast<size_t>(num_parties_));
  uint64_t sum = 0;
  for (int i = 0; i < num_parties_ - 1; ++i) {
    alpha_shares_[static_cast<size_t>(i)] = Field::Random(&rng_);
    sum = Field::Add(sum, alpha_shares_[static_cast<size_t>(i)]);
  }
  alpha_shares_[static_cast<size_t>(num_parties_ - 1)] =
      Field::Sub(alpha_, sum);
}

std::vector<SpdzShare> SpdzDealer::ShareValue(uint64_t x) {
  std::vector<SpdzShare> shares(static_cast<size_t>(num_parties_));
  const uint64_t mac = Field::Mul(alpha_, x);
  uint64_t vsum = 0;
  uint64_t msum = 0;
  for (int i = 0; i < num_parties_ - 1; ++i) {
    shares[static_cast<size_t>(i)].value = Field::Random(&rng_);
    shares[static_cast<size_t>(i)].mac = Field::Random(&rng_);
    vsum = Field::Add(vsum, shares[static_cast<size_t>(i)].value);
    msum = Field::Add(msum, shares[static_cast<size_t>(i)].mac);
  }
  shares[static_cast<size_t>(num_parties_ - 1)].value = Field::Sub(x, vsum);
  shares[static_cast<size_t>(num_parties_ - 1)].mac = Field::Sub(mac, msum);
  return shares;
}

SpdzSharedVector SpdzDealer::ShareVector(const std::vector<uint64_t>& xs) {
  SpdzSharedVector out(static_cast<size_t>(num_parties_),
                       std::vector<SpdzShare>(xs.size()));
  for (size_t e = 0; e < xs.size(); ++e) {
    std::vector<SpdzShare> shares = ShareValue(xs[e]);
    for (int p = 0; p < num_parties_; ++p) {
      out[static_cast<size_t>(p)][e] = shares[static_cast<size_t>(p)];
    }
  }
  return out;
}

SpdzMatrix SpdzDealer::ShareVectorBatch(const std::vector<uint64_t>& xs,
                                        const VecExec& exec) {
  const size_t n = xs.size();
  const size_t per_elem = 2 * static_cast<size_t>(num_parties_ - 1);
  std::vector<uint64_t> rand(n * per_elem);
  Field::RandomVec(rand.data(), rand.size(), &rng_);
  SpdzMatrix out;
  ShareBatchFromRandom(xs.data(), n, num_parties_, alpha_, rand.data(),
                       per_elem, 0, exec, &out);
  return out;
}

std::vector<SpdzTriple> SpdzDealer::MakeTriple() {
  const uint64_t a = Field::Random(&rng_);
  const uint64_t b = Field::Random(&rng_);
  const uint64_t c = Field::Mul(a, b);
  std::vector<SpdzShare> as = ShareValue(a);
  std::vector<SpdzShare> bs = ShareValue(b);
  std::vector<SpdzShare> cs = ShareValue(c);
  std::vector<SpdzTriple> out(static_cast<size_t>(num_parties_));
  for (int p = 0; p < num_parties_; ++p) {
    out[static_cast<size_t>(p)] = {as[static_cast<size_t>(p)],
                                   bs[static_cast<size_t>(p)],
                                   cs[static_cast<size_t>(p)]};
  }
  return out;
}

void SpdzDealer::GenerateTriplesInto(SpdzTripleBlock* blk, size_t count,
                                     const VecExec& exec) {
  // Draw order per triple (matching count scalar MakeTriple calls):
  // a, b, shares(a), shares(b), shares(c) — 2 + 6(np-1) words, flat.
  // Appends to `blk` in place: a long-lived dealer's pool keeps its array
  // capacity across drains, so steady-state refills write into warm,
  // already-faulted memory instead of paying a fresh 4 KiB page fault per
  // ~500 triples (profiling showed first-touch faults rivaling the field
  // arithmetic itself).
  const size_t per_share = 2 * static_cast<size_t>(num_parties_ - 1);
  const size_t stride = 2 + 3 * per_share;
  const int np = num_parties_;
  const size_t ncols = 6 * static_cast<size_t>(np);  // {a,b,c} x p x {v,m}
  // Flat view of the 6*np output columns, ordered (sharing, party, val|mac).
  std::vector<std::vector<uint64_t>*> arrs(ncols);
  {
    SpdzMatrix* mats[3] = {&blk->a, &blk->b, &blk->c};
    for (int s = 0; s < 3; ++s) {
      if (mats[s]->empty()) mats[s]->assign(static_cast<size_t>(np), SpdzVec{});
      for (int p = 0; p < np; ++p) {
        SpdzVec& v = (*mats[s])[static_cast<size_t>(p)];
        v.values.reserve(v.values.size() + count);
        v.macs.reserve(v.macs.size() + count);
        const size_t j = (static_cast<size_t>(s) * static_cast<size_t>(np) +
                          static_cast<size_t>(p)) *
                         2;
        arrs[j] = &v.values;
        arrs[j + 1] = &v.macs;
      }
    }
  }
  const uint64_t alpha = alpha_;
  // Generation streams over cache-resident morsels: draw the morsel's
  // random words, grow each output column by `len` zeros (the fresh tail
  // stays in cache, so the immediate overwrite below never pays the
  // read-for-ownership that writing cold full-size columns would), then one
  // fused pass computes value/mac/closing-party arithmetic while each
  // triple's stride block of words is still in registers. Profiling showed
  // the alternatives — full-size resize() + strided kernel passes — were
  // bound on DRAM round trips, not on the field arithmetic. The formulas
  // and accumulation order are the scalar MakeTriple/ShareValue ones
  // verbatim (bit-parity pinned in smpc_property_test).
  // Fuse granularity: small enough that a morsel's random words plus the 18
  // column tails stay cache-resident.
  constexpr size_t kMorsel = 1024;
  // Pipeline handoff granularity: one producer/consumer exchange per
  // kBlockMorsels morsels, so condition-variable wakeup latency amortizes
  // over ~100k words instead of being paid per morsel.
  constexpr size_t kBlockMorsels = 8;
  constexpr size_t kBlock = kMorsel * kBlockMorsels;
  const size_t nblocks = (count + kBlock - 1) / kBlock;
  const FuseFn fixed_fuse = FuseForParties(np);
  const auto fuse = [&](const uint64_t* rand, uint64_t* const* col,
                        size_t len) {
    if (fixed_fuse != nullptr) {
      fixed_fuse(rand, col, len, alpha);
    } else {
      FuseTriplesGeneric(rand, col, len, alpha, np, stride, per_share);
    }
  };

  // With a pool, the block loop becomes a two-stage pipeline: a single
  // producer task draws block k+1's random words (still strictly in stream
  // order — the RNG sequence is the parity contract) while this thread
  // fuses block k. The double buffer bounds the producer's lead.
  // NOTE: must not be called from a task of the same pool (the producer
  // would queue behind the blocked caller).
  const bool pipelined = exec.pool != nullptr && nblocks >= 2;
  std::vector<uint64_t> rand[2];
  rand[0].resize(kBlock * stride);
  if (pipelined) rand[1].resize(kBlock * stride);
  std::mutex mu;
  std::condition_variable cv;
  size_t filled = 0;    // blocks drawn by the producer
  size_t consumed = 0;  // blocks fused by this thread
  if (pipelined) {
    exec.pool->Submit([&, count] {
      for (size_t k = 0; k < nblocks; ++k) {
        const size_t len = std::min(kBlock, count - k * kBlock);
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return k < consumed + 2; });
        }
        Field::RandomVec(rand[k % 2].data(), len * stride, &rng_);
        {
          std::lock_guard<std::mutex> lock(mu);
          filled = k + 1;
        }
        cv.notify_all();
      }
    });
  }

  std::vector<uint64_t*> cols(ncols);
  for (size_t k = 0; k < nblocks; ++k) {
    const size_t blk_lo = k * kBlock;
    const size_t blk_len = std::min(kBlock, count - blk_lo);
    if (pipelined) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return filled > k; });
    } else {
      Field::RandomVec(rand[0].data(), blk_len * stride, &rng_);
    }
    const uint64_t* rblock = rand[pipelined ? k % 2 : 0].data();
    static const uint64_t kZeros[kMorsel] = {};
    for (size_t m = 0; m < blk_len; m += kMorsel) {
      const size_t len = std::min(kMorsel, blk_len - m);
      for (size_t j = 0; j < ncols; ++j) {
        arrs[j]->insert(arrs[j]->end(), kZeros, kZeros + len);
        cols[j] = arrs[j]->data() + (arrs[j]->size() - len);
      }
      fuse(rblock + m * stride, cols.data(), len);
    }
    if (pipelined) {
      std::lock_guard<std::mutex> lock(mu);
      consumed = k + 1;
      cv.notify_all();
    }
  }
}

SpdzTripleBlock SpdzDealer::MakeTriples(size_t count, const VecExec& exec) {
  SpdzTripleBlock blk;
  GenerateTriplesInto(&blk, count, exec);
  return blk;
}

namespace {

void EnsureParties(SpdzMatrix* m, int np) {
  if (m->empty()) m->assign(static_cast<size_t>(np), SpdzVec{});
}

}  // namespace

void SpdzDealer::PrecomputeTriples(size_t count, const VecExec& exec) {
  // Generates straight into the pool arrays: no block-adoption copy, and a
  // drained pool's retained capacity makes steady-state refills run in warm
  // memory.
  GenerateTriplesInto(&pool_, count, exec);
  triples_precomputed_ += count;
}

void SpdzDealer::PrecomputeTriplesScalar(size_t count) {
  EnsureParties(&pool_.a, num_parties_);
  EnsureParties(&pool_.b, num_parties_);
  EnsureParties(&pool_.c, num_parties_);
  for (size_t i = 0; i < count; ++i) {
    std::vector<SpdzTriple> t = MakeTriple();
    for (size_t p = 0; p < t.size(); ++p) {
      pool_.a[p].values.push_back(t[p].a.value);
      pool_.a[p].macs.push_back(t[p].a.mac);
      pool_.b[p].values.push_back(t[p].b.value);
      pool_.b[p].macs.push_back(t[p].b.mac);
      pool_.c[p].values.push_back(t[p].c.value);
      pool_.c[p].macs.push_back(t[p].c.mac);
    }
  }
  triples_precomputed_ += count;
}

std::vector<SpdzTriple> SpdzDealer::TakeTriple() {
  const size_t avail = pool_.size();
  if (avail > 0) {
    const size_t e = avail - 1;
    std::vector<SpdzTriple> t(static_cast<size_t>(num_parties_));
    for (size_t p = 0; p < t.size(); ++p) {
      t[p].a = {pool_.a[p].values[e], pool_.a[p].macs[e]};
      t[p].b = {pool_.b[p].values[e], pool_.b[p].macs[e]};
      t[p].c = {pool_.c[p].values[e], pool_.c[p].macs[e]};
      pool_.a[p].resize(e);
      pool_.b[p].resize(e);
      pool_.c[p].resize(e);
    }
    return t;
  }
  ++triples_online_;
  return MakeTriple();
}

SpdzTripleBlock SpdzDealer::TakeTriples(size_t count, const VecExec& exec) {
  SpdzTripleBlock out;
  out.a.assign(static_cast<size_t>(num_parties_), SpdzVec{});
  out.b.assign(static_cast<size_t>(num_parties_), SpdzVec{});
  out.c.assign(static_cast<size_t>(num_parties_), SpdzVec{});
  for (int p = 0; p < num_parties_; ++p) {
    out.a[static_cast<size_t>(p)].resize(count);
    out.b[static_cast<size_t>(p)].resize(count);
    out.c[static_cast<size_t>(p)].resize(count);
  }
  const size_t avail = pool_.size();
  const size_t from_pool = std::min(count, avail);
  // LIFO parity: element e must be the triple the e-th TakeTriple call
  // would pop, i.e. pool element (avail - 1 - e).
  for (size_t p = 0; p < out.a.size(); ++p) {
    for (size_t e = 0; e < from_pool; ++e) {
      const size_t src = avail - 1 - e;
      out.a[p].values[e] = pool_.a[p].values[src];
      out.a[p].macs[e] = pool_.a[p].macs[src];
      out.b[p].values[e] = pool_.b[p].values[src];
      out.b[p].macs[e] = pool_.b[p].macs[src];
      out.c[p].values[e] = pool_.c[p].values[src];
      out.c[p].macs[e] = pool_.c[p].macs[src];
    }
    if (from_pool > 0) {
      pool_.a[p].resize(avail - from_pool);
      pool_.b[p].resize(avail - from_pool);
      pool_.c[p].resize(avail - from_pool);
    }
  }
  if (count > from_pool) {
    const size_t fresh = count - from_pool;
    SpdzTripleBlock gen = MakeTriples(fresh, exec);
    triples_online_ += fresh;
    for (size_t p = 0; p < out.a.size(); ++p) {
      std::copy(gen.a[p].values.begin(), gen.a[p].values.end(),
                out.a[p].values.begin() + static_cast<long>(from_pool));
      std::copy(gen.a[p].macs.begin(), gen.a[p].macs.end(),
                out.a[p].macs.begin() + static_cast<long>(from_pool));
      std::copy(gen.b[p].values.begin(), gen.b[p].values.end(),
                out.b[p].values.begin() + static_cast<long>(from_pool));
      std::copy(gen.b[p].macs.begin(), gen.b[p].macs.end(),
                out.b[p].macs.begin() + static_cast<long>(from_pool));
      std::copy(gen.c[p].values.begin(), gen.c[p].values.end(),
                out.c[p].values.begin() + static_cast<long>(from_pool));
      std::copy(gen.c[p].macs.begin(), gen.c[p].macs.end(),
                out.c[p].macs.begin() + static_cast<long>(from_pool));
    }
  }
  return out;
}

std::vector<SpdzShare> SpdzDealer::SharePositiveRandom(int bits) {
  const uint64_t r = 1 + rng_.NextBounded((1ull << bits) - 1);
  return ShareValue(r);
}

SpdzMatrix SpdzDealer::SharePositiveRandomVec(int bits, size_t n,
                                              const VecExec& exec) {
  std::vector<uint64_t> rs(n);
  for (uint64_t& r : rs) r = 1 + rng_.NextBounded((1ull << bits) - 1);
  return ShareVectorBatch(rs, exec);
}

uint64_t Spdz::AddF(uint64_t a, uint64_t b) { return Field::Add(a, b); }

SpdzShare Spdz::Sub(const SpdzShare& x, const SpdzShare& y) {
  return {Field::Sub(x.value, y.value), Field::Sub(x.mac, y.mac)};
}

SpdzShare Spdz::AddPublic(const SpdzShare& x, uint64_t c, int party,
                          uint64_t alpha_share) {
  SpdzShare out = x;
  if (party == 0) out.value = Field::Add(out.value, c);
  out.mac = Field::Add(out.mac, Field::Mul(alpha_share, c));
  return out;
}

SpdzShare Spdz::MulPublic(const SpdzShare& x, uint64_t c) {
  return {Field::Mul(x.value, c), Field::Mul(x.mac, c)};
}

Result<uint64_t> Spdz::Open(const std::vector<SpdzShare>& shares,
                            const std::vector<uint64_t>& alpha_shares) {
  uint64_t x = 0;
  for (const SpdzShare& s : shares) x = Field::Add(x, s.value);
  // MAC check: each party i computes sigma_i = mac_i - alpha_i * x and the
  // parties verify that the sigmas sum to zero (in the real protocol via a
  // commit-and-open round).
  uint64_t sigma_sum = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    const uint64_t sigma =
        Field::Sub(shares[i].mac, Field::Mul(alpha_shares[i], x));
    sigma_sum = Field::Add(sigma_sum, sigma);
  }
  if (sigma_sum != 0) {
    return Status::SecurityError(
        "SPDZ MAC check failed: a share was tampered with; aborting");
  }
  return x;
}

Status Spdz::OpenVec(const SpdzMatrix& shares,
                     const std::vector<uint64_t>& alpha_shares,
                     const VecExec& exec, std::vector<uint64_t>* out) {
  if (shares.empty() || shares.size() != alpha_shares.size()) {
    return Status::InvalidArgument("party count mismatch in OpenVec");
  }
  const size_t np = shares.size();
  const size_t n = shares[0].size();
  out->assign(n, 0);
  std::atomic<bool> tampered{false};
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    uint64_t* x = out->data() + b;
    std::copy(shares[0].values.begin() + static_cast<long>(b),
              shares[0].values.begin() + static_cast<long>(end), x);
    for (size_t p = 1; p < np; ++p) {
      field_vec::AddVec(x, shares[p].values.data() + b, len, x);
    }
    std::vector<uint64_t> sigma(len, 0);
    std::vector<uint64_t> tmp(len);
    for (size_t p = 0; p < np; ++p) {
      field_vec::MulScalarVec(alpha_shares[p], x, len, tmp.data());
      field_vec::SubVec(shares[p].macs.data() + b, tmp.data(), len,
                        tmp.data());
      field_vec::AddVec(sigma.data(), tmp.data(), len, sigma.data());
    }
    for (size_t i = 0; i < len; ++i) {
      if (sigma[i] != 0) tampered.store(true, std::memory_order_relaxed);
    }
  });
  if (tampered.load(std::memory_order_relaxed)) {
    return Status::SecurityError(
        "SPDZ MAC check failed: a share was tampered with; aborting");
  }
  return Status::OK();
}

Result<std::vector<SpdzShare>> Spdz::Multiply(
    const std::vector<SpdzShare>& x, const std::vector<SpdzShare>& y,
    const std::vector<SpdzTriple>& triple,
    const std::vector<uint64_t>& alpha_shares) {
  const size_t n = x.size();
  if (y.size() != n || triple.size() != n || alpha_shares.size() != n) {
    return Status::InvalidArgument("party count mismatch in Multiply");
  }
  // Open epsilon = x - a and delta = y - b.
  std::vector<SpdzShare> eps_shares(n);
  std::vector<SpdzShare> delta_shares(n);
  for (size_t i = 0; i < n; ++i) {
    eps_shares[i] = Sub(x[i], triple[i].a);
    delta_shares[i] = Sub(y[i], triple[i].b);
  }
  MIP_ASSIGN_OR_RETURN(uint64_t eps, Open(eps_shares, alpha_shares));
  MIP_ASSIGN_OR_RETURN(uint64_t delta, Open(delta_shares, alpha_shares));

  // z = c + eps*b + delta*a + eps*delta.
  std::vector<SpdzShare> z(n);
  const uint64_t eps_delta = Field::Mul(eps, delta);
  for (size_t i = 0; i < n; ++i) {
    SpdzShare s = triple[i].c;
    s = Add(s, MulPublic(triple[i].b, eps));
    s = Add(s, MulPublic(triple[i].a, delta));
    s = AddPublic(s, eps_delta, static_cast<int>(i), alpha_shares[i]);
    z[i] = s;
  }
  return z;
}

Status Spdz::MultiplyVec(const SpdzMatrix& x, const SpdzMatrix& y,
                         const SpdzTripleBlock& triples,
                         const std::vector<uint64_t>& alpha_shares,
                         const VecExec& exec, SpdzMatrix* out) {
  const size_t np = x.size();
  if (np == 0 || y.size() != np || triples.a.size() != np ||
      alpha_shares.size() != np) {
    return Status::InvalidArgument("party count mismatch in MultiplyVec");
  }
  const size_t n = x[0].size();
  if (triples.size() != n) {
    return Status::InvalidArgument("triple block size mismatch");
  }
  // Elementwise epsilon = x - a, delta = y - b, opened with the MAC check.
  SpdzMatrix eps_m(np);
  SpdzMatrix delta_m(np);
  for (size_t p = 0; p < np; ++p) {
    eps_m[p].resize(n);
    delta_m[p].resize(n);
  }
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    for (size_t p = 0; p < np; ++p) {
      field_vec::SubVec(x[p].values.data() + b, triples.a[p].values.data() + b,
                        len, eps_m[p].values.data() + b);
      field_vec::SubVec(x[p].macs.data() + b, triples.a[p].macs.data() + b,
                        len, eps_m[p].macs.data() + b);
      field_vec::SubVec(y[p].values.data() + b, triples.b[p].values.data() + b,
                        len, delta_m[p].values.data() + b);
      field_vec::SubVec(y[p].macs.data() + b, triples.b[p].macs.data() + b,
                        len, delta_m[p].macs.data() + b);
    }
  });
  std::vector<uint64_t> eps;
  std::vector<uint64_t> delta;
  MIP_RETURN_NOT_OK(OpenVec(eps_m, alpha_shares, exec, &eps));
  MIP_RETURN_NOT_OK(OpenVec(delta_m, alpha_shares, exec, &delta));

  // z = c + eps*b + delta*a + eps*delta, same chain order as the scalar
  // Multiply so every limb matches bit for bit.
  out->assign(np, SpdzVec{});
  for (size_t p = 0; p < np; ++p) (*out)[p].resize(n);
  ParallelSpan(n, exec, [&](size_t b, size_t end) {
    const size_t len = end - b;
    std::vector<uint64_t> eps_delta(len);
    field_vec::MulVec(eps.data() + b, delta.data() + b, len, eps_delta.data());
    for (size_t p = 0; p < np; ++p) {
      uint64_t* zv = (*out)[p].values.data() + b;
      uint64_t* zm = (*out)[p].macs.data() + b;
      std::copy(triples.c[p].values.begin() + static_cast<long>(b),
                triples.c[p].values.begin() + static_cast<long>(end), zv);
      std::copy(triples.c[p].macs.begin() + static_cast<long>(b),
                triples.c[p].macs.begin() + static_cast<long>(end), zm);
      field_vec::MulAccumVec(triples.b[p].values.data() + b, eps.data() + b,
                             len, zv);
      field_vec::MulAccumVec(triples.b[p].macs.data() + b, eps.data() + b,
                             len, zm);
      field_vec::MulAccumVec(triples.a[p].values.data() + b, delta.data() + b,
                             len, zv);
      field_vec::MulAccumVec(triples.a[p].macs.data() + b, delta.data() + b,
                             len, zm);
      if (p == 0) field_vec::AddVec(zv, eps_delta.data(), len, zv);
      field_vec::MulScalarAccumVec(alpha_shares[p], eps_delta.data(), len, zm);
    }
  });
  return Status::OK();
}

}  // namespace mip::smpc
