#include "smpc/spdz.h"

#include "smpc/field.h"

namespace mip::smpc {

SpdzDealer::SpdzDealer(int num_parties, uint64_t seed)
    : num_parties_(num_parties), rng_(seed) {
  alpha_ = Field::Random(&rng_);
  alpha_shares_.resize(static_cast<size_t>(num_parties_));
  uint64_t sum = 0;
  for (int i = 0; i < num_parties_ - 1; ++i) {
    alpha_shares_[static_cast<size_t>(i)] = Field::Random(&rng_);
    sum = Field::Add(sum, alpha_shares_[static_cast<size_t>(i)]);
  }
  alpha_shares_[static_cast<size_t>(num_parties_ - 1)] =
      Field::Sub(alpha_, sum);
}

std::vector<SpdzShare> SpdzDealer::ShareValue(uint64_t x) {
  std::vector<SpdzShare> shares(static_cast<size_t>(num_parties_));
  const uint64_t mac = Field::Mul(alpha_, x);
  uint64_t vsum = 0;
  uint64_t msum = 0;
  for (int i = 0; i < num_parties_ - 1; ++i) {
    shares[static_cast<size_t>(i)].value = Field::Random(&rng_);
    shares[static_cast<size_t>(i)].mac = Field::Random(&rng_);
    vsum = Field::Add(vsum, shares[static_cast<size_t>(i)].value);
    msum = Field::Add(msum, shares[static_cast<size_t>(i)].mac);
  }
  shares[static_cast<size_t>(num_parties_ - 1)].value = Field::Sub(x, vsum);
  shares[static_cast<size_t>(num_parties_ - 1)].mac = Field::Sub(mac, msum);
  return shares;
}

SpdzSharedVector SpdzDealer::ShareVector(const std::vector<uint64_t>& xs) {
  SpdzSharedVector out(static_cast<size_t>(num_parties_),
                       std::vector<SpdzShare>(xs.size()));
  for (size_t e = 0; e < xs.size(); ++e) {
    std::vector<SpdzShare> shares = ShareValue(xs[e]);
    for (int p = 0; p < num_parties_; ++p) {
      out[static_cast<size_t>(p)][e] = shares[static_cast<size_t>(p)];
    }
  }
  return out;
}

std::vector<SpdzTriple> SpdzDealer::MakeTriple() {
  const uint64_t a = Field::Random(&rng_);
  const uint64_t b = Field::Random(&rng_);
  const uint64_t c = Field::Mul(a, b);
  std::vector<SpdzShare> as = ShareValue(a);
  std::vector<SpdzShare> bs = ShareValue(b);
  std::vector<SpdzShare> cs = ShareValue(c);
  std::vector<SpdzTriple> out(static_cast<size_t>(num_parties_));
  for (int p = 0; p < num_parties_; ++p) {
    out[static_cast<size_t>(p)] = {as[static_cast<size_t>(p)],
                                   bs[static_cast<size_t>(p)],
                                   cs[static_cast<size_t>(p)]};
  }
  return out;
}

void SpdzDealer::PrecomputeTriples(size_t count) {
  for (size_t i = 0; i < count; ++i) pool_.push_back(MakeTriple());
  triples_precomputed_ += count;
}

std::vector<SpdzTriple> SpdzDealer::TakeTriple() {
  if (!pool_.empty()) {
    std::vector<SpdzTriple> t = std::move(pool_.back());
    pool_.pop_back();
    return t;
  }
  ++triples_online_;
  return MakeTriple();
}

std::vector<SpdzShare> SpdzDealer::SharePositiveRandom(int bits) {
  const uint64_t r = 1 + rng_.NextBounded((1ull << bits) - 1);
  return ShareValue(r);
}

uint64_t Spdz::AddF(uint64_t a, uint64_t b) { return Field::Add(a, b); }

SpdzShare Spdz::Sub(const SpdzShare& x, const SpdzShare& y) {
  return {Field::Sub(x.value, y.value), Field::Sub(x.mac, y.mac)};
}

SpdzShare Spdz::AddPublic(const SpdzShare& x, uint64_t c, int party,
                          uint64_t alpha_share) {
  SpdzShare out = x;
  if (party == 0) out.value = Field::Add(out.value, c);
  out.mac = Field::Add(out.mac, Field::Mul(alpha_share, c));
  return out;
}

SpdzShare Spdz::MulPublic(const SpdzShare& x, uint64_t c) {
  return {Field::Mul(x.value, c), Field::Mul(x.mac, c)};
}

Result<uint64_t> Spdz::Open(const std::vector<SpdzShare>& shares,
                            const std::vector<uint64_t>& alpha_shares) {
  uint64_t x = 0;
  for (const SpdzShare& s : shares) x = Field::Add(x, s.value);
  // MAC check: each party i computes sigma_i = mac_i - alpha_i * x and the
  // parties verify that the sigmas sum to zero (in the real protocol via a
  // commit-and-open round).
  uint64_t sigma_sum = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    const uint64_t sigma =
        Field::Sub(shares[i].mac, Field::Mul(alpha_shares[i], x));
    sigma_sum = Field::Add(sigma_sum, sigma);
  }
  if (sigma_sum != 0) {
    return Status::SecurityError(
        "SPDZ MAC check failed: a share was tampered with; aborting");
  }
  return x;
}

Result<std::vector<SpdzShare>> Spdz::Multiply(
    const std::vector<SpdzShare>& x, const std::vector<SpdzShare>& y,
    const std::vector<SpdzTriple>& triple,
    const std::vector<uint64_t>& alpha_shares) {
  const size_t n = x.size();
  if (y.size() != n || triple.size() != n || alpha_shares.size() != n) {
    return Status::InvalidArgument("party count mismatch in Multiply");
  }
  // Open epsilon = x - a and delta = y - b.
  std::vector<SpdzShare> eps_shares(n);
  std::vector<SpdzShare> delta_shares(n);
  for (size_t i = 0; i < n; ++i) {
    eps_shares[i] = Sub(x[i], triple[i].a);
    delta_shares[i] = Sub(y[i], triple[i].b);
  }
  MIP_ASSIGN_OR_RETURN(uint64_t eps, Open(eps_shares, alpha_shares));
  MIP_ASSIGN_OR_RETURN(uint64_t delta, Open(delta_shares, alpha_shares));

  // z = c + eps*b + delta*a + eps*delta.
  std::vector<SpdzShare> z(n);
  const uint64_t eps_delta = Field::Mul(eps, delta);
  for (size_t i = 0; i < n; ++i) {
    SpdzShare s = triple[i].c;
    s = Add(s, MulPublic(triple[i].b, eps));
    s = Add(s, MulPublic(triple[i].a, delta));
    s = AddPublic(s, eps_delta, static_cast<int>(i), alpha_shares[i]);
    z[i] = s;
  }
  return z;
}

}  // namespace mip::smpc
