#ifndef MIP_FEDERATION_FAULT_H_
#define MIP_FEDERATION_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "net/transport.h"

namespace mip::federation {

using Envelope = net::Envelope;

/// \brief Fault model for one bus link (or for every link into a node).
///
/// All faults apply to *request delivery*: a faulted message is lost before
/// it reaches the destination handler, so the handler's side effects (local
/// computation, SMPC share import) never happen for a failed delivery and a
/// retry is always safe.
struct FaultSpec {
  /// Probability in [0, 1] that a delivery is dropped (per attempt).
  double drop_rate = 0.0;
  /// Deterministically fail the first N deliveries on this link, then
  /// deliver normally — models a site that recovers after transient errors.
  int fail_first_n = 0;
  /// Fixed simulated transit delay per delivery (applied as real sleep so
  /// concurrency benchmarks observe it).
  double delay_ms = 0.0;
  /// Extra uniform random delay in [0, jitter_ms), drawn from the link's
  /// deterministic stream.
  double jitter_ms = 0.0;
};

/// \brief Deterministic, seeded fault injection hook for any net::Transport
/// (the in-process MessageBus and the TCP transport consult it at the same
/// point: on the sender, before a request leaves).
///
/// Faults are keyed per link ("from->to" exact match wins) or per
/// destination endpoint (any sender). Each key owns an independent Rng
/// derived from the injector seed and the key, and the drop/jitter decision
/// sequence advances only with deliveries on that key — so outcomes are
/// reproducible regardless of how concurrent fan-outs interleave across
/// links, and identical across transports.
class FaultInjector : public net::FaultHook {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA017ull) : seed_(seed) {}

  /// Installs `spec` on the directed link `from` -> `to`.
  void SetLinkFault(const std::string& from, const std::string& to,
                    FaultSpec spec);
  /// Installs `spec` on every link into `node` (used unless an exact link
  /// spec exists).
  void SetEndpointFault(const std::string& node, FaultSpec spec);
  void Clear();

  /// Called by the transport before the envelope leaves the sender.
  /// Sleeps the simulated delay, then returns Unavailable if the
  /// delivery is dropped / force-failed, OK otherwise.
  Status BeforeDeliver(const Envelope& envelope) override;

  /// Number of deliveries (successful or not) seen on a key — test hook.
  int DeliveriesOn(const std::string& key) const;

 private:
  struct LinkState {
    FaultSpec spec;
    Rng rng;
    int deliveries = 0;
    explicit LinkState(FaultSpec s, uint64_t seed)
        : spec(s), rng(seed) {}
  };

  LinkState* FindState(const std::string& from, const std::string& to);

  mutable std::mutex mu_;
  uint64_t seed_;
  std::map<std::string, LinkState> links_;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_FAULT_H_
