#ifndef MIP_FEDERATION_BUS_H_
#define MIP_FEDERATION_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace mip::federation {

class FaultInjector;

/// \brief One message on the federation bus (the Celery/RabbitMQ stand-in).
struct Envelope {
  std::string from;
  std::string to;
  std::string type;  ///< message kind (e.g. "local_run", "fetch_table")
  std::string job_id;
  std::vector<uint8_t> payload;
};

/// \brief Per-link traffic accounting plus a simple latency model, so
/// experiments can report simulated network time for inter-hospital links.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  /// latency-per-message + bytes/bandwidth.
  double SimulatedSeconds(double latency_ms_per_message,
                          double bandwidth_mbps) const {
    return static_cast<double>(messages) * latency_ms_per_message / 1e3 +
           static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  }
};

/// \brief In-process message bus connecting the Master, the Workers and the
/// SMPC cluster front end.
///
/// Every payload that crosses a node boundary goes through Send() as
/// serialized bytes — there is no back door — so the byte counts are honest
/// and "only aggregated, encrypted data leaves the hospital" is checkable
/// in tests by inspecting the traffic log.
///
/// Send() is safe to call from many threads at once (the Master fans
/// local-run requests out concurrently); handlers for distinct endpoints
/// run in parallel, outside the bus lock. RegisterEndpoint() is also
/// locked, but topology is expected to be set up before traffic starts.
class MessageBus {
 public:
  /// A handler consumes an envelope and produces a serialized reply payload.
  using Handler =
      std::function<Result<std::vector<uint8_t>>(const Envelope&)>;

  /// Registers an endpoint (node id must be unique).
  Status RegisterEndpoint(const std::string& node_id, Handler handler);

  /// Sends a request and returns the reply payload. Both directions are
  /// metered; a request lost to fault injection meters the request bytes
  /// only (they did leave the sender).
  Result<std::vector<uint8_t>> Send(Envelope envelope);

  /// Totals across all links (copied under the bus lock).
  NetworkStats stats() const;
  /// Per-link accounting keyed "from->to". The sum over links equals
  /// stats() — the invariant the concurrency property test checks.
  std::map<std::string, NetworkStats> link_stats() const;
  void ResetStats();

  /// Optional fault-injection hook consulted before every delivery. Not
  /// owned; pass nullptr to detach. Set while no traffic is in flight.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Log of (from, to, type, sizes) for traffic-audit tests. Only metadata
  /// and byte counts are retained — never payload bytes — so the log stays
  /// O(#messages) even for large-cohort transfers.
  struct LogEntry {
    std::string from;
    std::string to;
    std::string type;
    uint64_t request_bytes;
    uint64_t reply_bytes;
  };
  /// Snapshot of the traffic log. Entries are appended in delivery-
  /// completion order under concurrency.
  std::vector<LogEntry> log() const;
  void ClearLog();
  /// When false (default) the log is not kept (hot paths stay cheap).
  void set_keep_log(bool keep);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Handler> endpoints_;
  NetworkStats stats_;
  std::map<std::string, NetworkStats> link_stats_;
  std::vector<LogEntry> log_;
  bool keep_log_ = false;
  FaultInjector* injector_ = nullptr;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_BUS_H_
