#ifndef MIP_FEDERATION_BUS_H_
#define MIP_FEDERATION_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/transport.h"

namespace mip::federation {

class FaultInjector;

/// The federation layer's message and accounting types are the transport
/// layer's: the same Envelope rides the in-process bus and the TCP
/// transport (src/net).
using Envelope = net::Envelope;
using NetworkStats = net::NetworkStats;

/// \brief In-process implementation of net::Transport connecting the Master,
/// the Workers and the SMPC cluster front end (the Celery/RabbitMQ
/// stand-in, and the determinism baseline the TCP transport is checked
/// against).
///
/// Every payload that crosses a node boundary goes through Send() as
/// serialized bytes — there is no back door — so the byte counts are honest
/// and "only aggregated, encrypted data leaves the hospital" is checkable
/// in tests by inspecting the traffic log.
///
/// Send() is safe to call from many threads at once (the Master fans
/// local-run requests out concurrently); handlers for distinct endpoints
/// run in parallel, outside the bus lock. RegisterEndpoint() is also
/// locked, but topology is expected to be set up before traffic starts.
class MessageBus : public net::Transport {
 public:
  using Handler = net::Transport::Handler;

  /// Registers an endpoint (node id must be unique).
  Status RegisterEndpoint(const std::string& node_id,
                          Handler handler) override;

  /// Sends a request and returns the reply payload. Both directions are
  /// metered; a request lost to fault injection meters the request bytes
  /// only (they did leave the sender). Envelope::deadline_ms is ignored:
  /// the in-process bus cannot preempt a running handler, so deadlines
  /// stay cooperative (enforced by the session after the reply).
  Result<std::vector<uint8_t>> Send(Envelope envelope) override;

  /// Totals across all links (copied under the bus lock).
  NetworkStats stats() const override;
  /// Per-link accounting keyed "from->to". The sum over links equals
  /// stats() — the invariant the concurrency property test checks.
  std::map<std::string, NetworkStats> link_stats() const override;
  void ResetStats() override;

  /// Optional fault-injection hook consulted before every delivery. Not
  /// owned; pass nullptr to detach. Set while no traffic is in flight.
  void set_fault_hook(net::FaultHook* hook) override { injector_ = hook; }
  /// Legacy spelling kept for the fault-injection suites.
  void set_fault_injector(FaultInjector* injector);

  /// Everything on the in-process bus is the same build, so codecs are
  /// supported by default; set_codecs_enabled(false) emulates a pre-codec
  /// cohort (Send then delivers with codec_ok unset).
  bool SupportsCodecs(const std::string& peer_id) override;
  void MeterCodec(const std::string& from, const std::string& to,
                  uint64_t raw_bytes, uint64_t wire_bytes) override;
  void set_codecs_enabled(bool enabled);

  /// Log of (from, to, type, sizes) for traffic-audit tests. Only metadata
  /// and byte counts are retained — never payload bytes — so the log stays
  /// O(#messages) even for large-cohort transfers.
  struct LogEntry {
    std::string from;
    std::string to;
    std::string type;
    uint64_t request_bytes;
    uint64_t reply_bytes;
  };
  /// Snapshot of the traffic log. Entries are appended in delivery-
  /// completion order under concurrency.
  std::vector<LogEntry> log() const;
  void ClearLog();
  /// When false (default) the log is not kept (hot paths stay cheap).
  void set_keep_log(bool keep);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Handler> endpoints_;
  NetworkStats stats_;
  std::map<std::string, NetworkStats> link_stats_;
  std::vector<LogEntry> log_;
  bool keep_log_ = false;
  bool codecs_enabled_ = true;
  net::FaultHook* injector_ = nullptr;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_BUS_H_
