#ifndef MIP_FEDERATION_BUS_H_
#define MIP_FEDERATION_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace mip::federation {

/// \brief One message on the federation bus (the Celery/RabbitMQ stand-in).
struct Envelope {
  std::string from;
  std::string to;
  std::string type;  ///< message kind (e.g. "local_run", "fetch_table")
  std::string job_id;
  std::vector<uint8_t> payload;
};

/// \brief Per-link traffic accounting plus a simple latency model, so
/// experiments can report simulated network time for inter-hospital links.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  /// latency-per-message + bytes/bandwidth.
  double SimulatedSeconds(double latency_ms_per_message,
                          double bandwidth_mbps) const {
    return static_cast<double>(messages) * latency_ms_per_message / 1e3 +
           static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  }
};

/// \brief In-process, synchronous message bus connecting the Master, the
/// Workers and the SMPC cluster front end.
///
/// Every payload that crosses a node boundary goes through Send() as
/// serialized bytes — there is no back door — so the byte counts are honest
/// and "only aggregated, encrypted data leaves the hospital" is checkable
/// in tests by inspecting the traffic log.
class MessageBus {
 public:
  /// A handler consumes an envelope and produces a serialized reply payload.
  using Handler =
      std::function<Result<std::vector<uint8_t>>(const Envelope&)>;

  /// Registers an endpoint (node id must be unique).
  Status RegisterEndpoint(const std::string& node_id, Handler handler);

  /// Sends a request and returns the reply payload. Both directions are
  /// metered.
  Result<std::vector<uint8_t>> Send(Envelope envelope);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  /// Log of (from, to, type, bytes) for traffic-audit tests.
  struct LogEntry {
    std::string from;
    std::string to;
    std::string type;
    uint64_t request_bytes;
    uint64_t reply_bytes;
  };
  const std::vector<LogEntry>& log() const { return log_; }
  void ClearLog() { log_.clear(); }
  /// When false (default) the log is not kept (hot paths stay cheap).
  void set_keep_log(bool keep) { keep_log_ = keep; }

 private:
  std::map<std::string, Handler> endpoints_;
  NetworkStats stats_;
  std::vector<LogEntry> log_;
  bool keep_log_ = false;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_BUS_H_
