#include "federation/transfer.h"

#include "engine/encoding.h"

namespace mip::federation {

Result<std::string> TransferData::GetString(const std::string& key) const {
  auto it = strings_.find(key);
  if (it == strings_.end()) {
    return Status::NotFound("transfer has no string '" + key + "'");
  }
  return it->second;
}

Result<std::vector<std::string>> TransferData::GetStringList(
    const std::string& key) const {
  auto it = string_lists_.find(key);
  if (it == string_lists_.end()) {
    return Status::NotFound("transfer has no string list '" + key + "'");
  }
  return it->second;
}

std::vector<std::string> TransferData::GetStringListOrEmpty(
    const std::string& key) const {
  auto it = string_lists_.find(key);
  return it == string_lists_.end() ? std::vector<std::string>{} : it->second;
}

Result<double> TransferData::GetScalar(const std::string& key) const {
  auto it = scalars_.find(key);
  if (it == scalars_.end()) {
    return Status::NotFound("transfer has no scalar '" + key + "'");
  }
  return it->second;
}

Result<std::vector<double>> TransferData::GetVector(
    const std::string& key) const {
  auto it = vectors_.find(key);
  if (it == vectors_.end()) {
    return Status::NotFound("transfer has no vector '" + key + "'");
  }
  return it->second;
}

Result<stats::Matrix> TransferData::GetMatrix(const std::string& key) const {
  auto it = matrices_.find(key);
  if (it == matrices_.end()) {
    return Status::NotFound("transfer has no matrix '" + key + "'");
  }
  return it->second;
}

Result<engine::Table> TransferData::GetTable(const std::string& key) const {
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("transfer has no table '" + key + "'");
  }
  return it->second;
}

void TransferData::Serialize(BufferWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(strings_.size()));
  for (const auto& [k, v] : strings_) {
    w->WriteString(k);
    w->WriteString(v);
  }
  w->WriteU32(static_cast<uint32_t>(string_lists_.size()));
  for (const auto& [k, v] : string_lists_) {
    w->WriteString(k);
    w->WriteU32(static_cast<uint32_t>(v.size()));
    for (const std::string& s : v) w->WriteString(s);
  }
  w->WriteU32(static_cast<uint32_t>(scalars_.size()));
  for (const auto& [k, v] : scalars_) {
    w->WriteString(k);
    w->WriteDouble(v);
  }
  w->WriteU32(static_cast<uint32_t>(vectors_.size()));
  for (const auto& [k, v] : vectors_) {
    w->WriteString(k);
    w->WriteDoubleVector(v);
  }
  w->WriteU32(static_cast<uint32_t>(matrices_.size()));
  for (const auto& [k, m] : matrices_) {
    w->WriteString(k);
    w->WriteU32(static_cast<uint32_t>(m.rows()));
    w->WriteU32(static_cast<uint32_t>(m.cols()));
    w->WriteDoubleVector(m.Flatten());
  }
  w->WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [k, t] : tables_) {
    w->WriteString(k);
    engine::SerializeTable(t, w);
  }
}

void TransferData::Serialize(BufferWriter* w, bool codecs) const {
  if (!codecs) {
    Serialize(w);
    return;
  }
  // Compressed (v2) container: strings / string lists / scalars keep the v1
  // encoding (they are small and key-dominated); vectors, matrices and
  // tables go through the columnar codec blocks. Committed only when the
  // measured size beats v1, so bytes_wire <= bytes_raw always holds.
  BufferWriter scratch;
  scratch.WriteU32(kTransferWireMagic);
  scratch.WriteU8(kTransferWireVersion);
  scratch.WriteU32(static_cast<uint32_t>(strings_.size()));
  for (const auto& [k, v] : strings_) {
    scratch.WriteString(k);
    scratch.WriteString(v);
  }
  scratch.WriteU32(static_cast<uint32_t>(string_lists_.size()));
  for (const auto& [k, v] : string_lists_) {
    scratch.WriteString(k);
    scratch.WriteU32(static_cast<uint32_t>(v.size()));
    for (const std::string& s : v) scratch.WriteString(s);
  }
  scratch.WriteU32(static_cast<uint32_t>(scalars_.size()));
  for (const auto& [k, v] : scalars_) {
    scratch.WriteString(k);
    scratch.WriteDouble(v);
  }
  scratch.WriteU32(static_cast<uint32_t>(vectors_.size()));
  for (const auto& [k, v] : vectors_) {
    scratch.WriteString(k);
    engine::EncodeDoubles(v, &scratch);
  }
  scratch.WriteU32(static_cast<uint32_t>(matrices_.size()));
  for (const auto& [k, m] : matrices_) {
    scratch.WriteString(k);
    scratch.WriteU32(static_cast<uint32_t>(m.rows()));
    scratch.WriteU32(static_cast<uint32_t>(m.cols()));
    engine::EncodeDoubles(m.Flatten(), &scratch);
  }
  scratch.WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [k, t] : tables_) {
    scratch.WriteString(k);
    engine::SerializeTable(t, &scratch, engine::TableWireOptions{true});
  }
  if (scratch.size() < RawSerializedBytes()) {
    w->AppendRaw(scratch.bytes().data(), scratch.size());
  } else {
    Serialize(w);
  }
}

Result<TransferData> TransferData::Deserialize(BufferReader* r) {
  {
    Result<uint32_t> sniff = r->PeekU32();
    if (sniff.ok() && sniff.ValueOrDie() == kTransferWireMagic) {
      MIP_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
      (void)magic;
      MIP_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
      if (version != kTransferWireVersion) {
        return Status::IOError("unsupported compressed transfer version " +
                               std::to_string(version));
      }
      TransferData out;
      MIP_ASSIGN_OR_RETURN(uint32_t n_strings, r->ReadU32());
      for (uint32_t i = 0; i < n_strings; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(std::string v, r->ReadString());
        out.strings_[k] = std::move(v);
      }
      MIP_ASSIGN_OR_RETURN(uint32_t n_lists, r->ReadU32());
      for (uint32_t i = 0; i < n_lists; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(uint32_t len, r->ReadU32());
        if (static_cast<size_t>(len) > r->Remaining() / sizeof(uint32_t)) {
          return Status::IOError("truncated buffer while deserializing");
        }
        std::vector<std::string> v(len);
        for (uint32_t j = 0; j < len; ++j) {
          MIP_ASSIGN_OR_RETURN(v[j], r->ReadString());
        }
        out.string_lists_[k] = std::move(v);
      }
      MIP_ASSIGN_OR_RETURN(uint32_t n_scalars, r->ReadU32());
      for (uint32_t i = 0; i < n_scalars; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(double v, r->ReadDouble());
        out.scalars_[k] = v;
      }
      MIP_ASSIGN_OR_RETURN(uint32_t n_vectors, r->ReadU32());
      for (uint32_t i = 0; i < n_vectors; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(std::vector<double> v,
                             engine::DecodeDoubles(r));
        out.vectors_[k] = std::move(v);
      }
      MIP_ASSIGN_OR_RETURN(uint32_t n_matrices, r->ReadU32());
      for (uint32_t i = 0; i < n_matrices; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(uint32_t rows, r->ReadU32());
        MIP_ASSIGN_OR_RETURN(uint32_t cols, r->ReadU32());
        MIP_ASSIGN_OR_RETURN(std::vector<double> flat,
                             engine::DecodeDoubles(r));
        MIP_ASSIGN_OR_RETURN(
            stats::Matrix m,
            stats::Matrix::FromFlat(rows, cols, std::move(flat)));
        out.matrices_[k] = std::move(m);
      }
      MIP_ASSIGN_OR_RETURN(uint32_t n_tables, r->ReadU32());
      for (uint32_t i = 0; i < n_tables; ++i) {
        MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
        MIP_ASSIGN_OR_RETURN(engine::Table t, engine::DeserializeTable(r));
        out.tables_[k] = std::move(t);
      }
      return out;
    }
  }
  TransferData out;
  MIP_ASSIGN_OR_RETURN(uint32_t n_strings, r->ReadU32());
  for (uint32_t i = 0; i < n_strings; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(std::string v, r->ReadString());
    out.strings_[k] = std::move(v);
  }
  MIP_ASSIGN_OR_RETURN(uint32_t n_lists, r->ReadU32());
  for (uint32_t i = 0; i < n_lists; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(uint32_t len, r->ReadU32());
    // Each string needs at least its 4-byte length prefix; reject counts the
    // remaining bytes cannot possibly hold before allocating.
    if (static_cast<size_t>(len) > r->Remaining() / sizeof(uint32_t)) {
      return Status::IOError("truncated buffer while deserializing");
    }
    std::vector<std::string> v(len);
    for (uint32_t j = 0; j < len; ++j) {
      MIP_ASSIGN_OR_RETURN(v[j], r->ReadString());
    }
    out.string_lists_[k] = std::move(v);
  }
  MIP_ASSIGN_OR_RETURN(uint32_t n_scalars, r->ReadU32());
  for (uint32_t i = 0; i < n_scalars; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(double v, r->ReadDouble());
    out.scalars_[k] = v;
  }
  MIP_ASSIGN_OR_RETURN(uint32_t n_vectors, r->ReadU32());
  for (uint32_t i = 0; i < n_vectors; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(std::vector<double> v, r->ReadDoubleVector());
    out.vectors_[k] = std::move(v);
  }
  MIP_ASSIGN_OR_RETURN(uint32_t n_matrices, r->ReadU32());
  for (uint32_t i = 0; i < n_matrices; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(uint32_t rows, r->ReadU32());
    MIP_ASSIGN_OR_RETURN(uint32_t cols, r->ReadU32());
    MIP_ASSIGN_OR_RETURN(std::vector<double> flat, r->ReadDoubleVector());
    MIP_ASSIGN_OR_RETURN(stats::Matrix m,
                         stats::Matrix::FromFlat(rows, cols, std::move(flat)));
    out.matrices_[k] = std::move(m);
  }
  MIP_ASSIGN_OR_RETURN(uint32_t n_tables, r->ReadU32());
  for (uint32_t i = 0; i < n_tables; ++i) {
    MIP_ASSIGN_OR_RETURN(std::string k, r->ReadString());
    MIP_ASSIGN_OR_RETURN(engine::Table t, engine::DeserializeTable(r));
    out.tables_[k] = std::move(t);
  }
  return out;
}

size_t TransferData::SerializedBytes() const {
  BufferWriter w;
  Serialize(&w);
  return w.size();
}

size_t TransferData::RawSerializedBytes() const {
  auto keyed = [](const std::string& k) { return sizeof(uint32_t) + k.size(); };
  size_t total = 6 * sizeof(uint32_t);  // the six section counts
  for (const auto& [k, v] : strings_) {
    total += keyed(k) + sizeof(uint32_t) + v.size();
  }
  for (const auto& [k, v] : string_lists_) {
    total += keyed(k) + sizeof(uint32_t);
    for (const std::string& s : v) total += sizeof(uint32_t) + s.size();
  }
  for (const auto& [k, v] : scalars_) {
    (void)v;
    total += keyed(k) + sizeof(double);
  }
  for (const auto& [k, v] : vectors_) {
    total += keyed(k) + sizeof(uint32_t) + v.size() * sizeof(double);
  }
  for (const auto& [k, m] : matrices_) {
    total += keyed(k) + 3 * sizeof(uint32_t) +
             m.rows() * m.cols() * sizeof(double);
  }
  for (const auto& [k, t] : tables_) {
    total += keyed(k) + engine::RawTableWireBytes(t);
  }
  return total;
}

Result<TransferData> TransferData::SumMerge(
    const std::vector<TransferData>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("SumMerge over zero transfers");
  }
  TransferData out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    const TransferData& p = parts[i];
    if (p.scalars_.size() != out.scalars_.size() ||
        p.vectors_.size() != out.vectors_.size() ||
        p.matrices_.size() != out.matrices_.size()) {
      return Status::InvalidArgument(
          "transfer shapes differ across workers; cannot merge");
    }
    for (auto& [k, v] : out.scalars_) {
      MIP_ASSIGN_OR_RETURN(double other, p.GetScalar(k));
      v += other;
    }
    for (auto& [k, v] : out.vectors_) {
      MIP_ASSIGN_OR_RETURN(std::vector<double> other, p.GetVector(k));
      if (other.size() != v.size()) {
        return Status::InvalidArgument("vector '" + k +
                                       "' length differs across workers");
      }
      for (size_t j = 0; j < v.size(); ++j) v[j] += other[j];
    }
    for (auto& [k, m] : out.matrices_) {
      MIP_ASSIGN_OR_RETURN(stats::Matrix other, p.GetMatrix(k));
      MIP_RETURN_NOT_OK(m.AddInPlace(other));
    }
    for (const auto& [k, t] : p.tables_) {
      auto it = out.tables_.find(k);
      if (it == out.tables_.end()) {
        out.tables_[k] = t;
      } else {
        MIP_ASSIGN_OR_RETURN(engine::Table merged,
                             engine::Table::Concat({it->second, t}));
        it->second = std::move(merged);
      }
    }
  }
  return out;
}

std::vector<double> TransferData::FlattenNumeric() const {
  std::vector<double> flat;
  for (const auto& [k, v] : scalars_) flat.push_back(v);
  for (const auto& [k, v] : vectors_) {
    flat.insert(flat.end(), v.begin(), v.end());
  }
  for (const auto& [k, m] : matrices_) {
    const std::vector<double> f = m.Flatten();
    flat.insert(flat.end(), f.begin(), f.end());
  }
  return flat;
}

Result<TransferData> TransferData::UnflattenNumeric(
    const std::vector<double>& flat) const {
  TransferData out;
  size_t pos = 0;
  for (const auto& [k, v] : scalars_) {
    (void)v;
    if (pos >= flat.size()) return Status::OutOfRange("flat vector too short");
    out.scalars_[k] = flat[pos++];
  }
  for (const auto& [k, v] : vectors_) {
    if (pos + v.size() > flat.size()) {
      return Status::OutOfRange("flat vector too short");
    }
    out.vectors_[k] =
        std::vector<double>(flat.begin() + static_cast<long>(pos),
                            flat.begin() + static_cast<long>(pos + v.size()));
    pos += v.size();
  }
  for (const auto& [k, m] : matrices_) {
    const size_t n = m.rows() * m.cols();
    if (pos + n > flat.size()) {
      return Status::OutOfRange("flat vector too short");
    }
    std::vector<double> data(flat.begin() + static_cast<long>(pos),
                             flat.begin() + static_cast<long>(pos + n));
    MIP_ASSIGN_OR_RETURN(
        stats::Matrix mat,
        stats::Matrix::FromFlat(m.rows(), m.cols(), std::move(data)));
    out.matrices_[k] = std::move(mat);
    pos += n;
  }
  if (pos != flat.size()) {
    return Status::InvalidArgument("flat vector length mismatch");
  }
  return out;
}

}  // namespace mip::federation
