#ifndef MIP_FEDERATION_WORKER_STEPS_H_
#define MIP_FEDERATION_WORKER_STEPS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "federation/worker.h"

namespace mip::federation {

/// \brief Registers the portable local computation steps compiled into both
/// the in-process federation and the `mip_worker` daemon.
///
/// MIP ships the same algorithm code to every node; for the multi-process
/// deployment that means the Master's process and each worker daemon must
/// register bit-identical step implementations, because a local step only
/// exists where its code runs. These are the steps the cross-process tests
/// and the daemon rely on:
///
///   "mip.echo"      — returns the args transfer unchanged (liveness probe).
///   "mip.sleep"     — sleeps scalar "ms" then replies (deadline tests).
///   "stats.moments" — scalars sum / sum_sq / n of column "column" of table
///                     "dataset".
///   "linreg.grad"   — FederatedTrainer-compatible linear-regression step:
///                     reads vector "weights" and string "dataset" (columns
///                     x0..x{p-1}, y), returns "grad" = X^T(Xw - y),
///                     "loss" = sum of squared residuals / 2, "n" = rows.
///
/// Registration is idempotent (AlreadyExists is ignored) so callers can
/// layer it over an existing registry.
Status RegisterPortableSteps(LocalFunctionRegistry* registry);

/// \brief Deterministic synthetic linear-regression cohort: features
/// x0..x{p-1} ~ N(0,1) from Rng(seed), y = true_weights . x + sigma * noise.
/// Master and worker daemons call this with the same (seed, rows, weights)
/// to materialize bit-identical hospital datasets in different processes —
/// the precondition for the byte-identical training acceptance check.
engine::Table MakeSyntheticLinregTable(uint64_t seed, size_t rows,
                                       const std::vector<double>& true_weights,
                                       double noise_sigma);

}  // namespace mip::federation

#endif  // MIP_FEDERATION_WORKER_STEPS_H_
