#include "federation/gateway.h"

#include <cstdio>
#include <utility>

#include "common/bytes.h"
#include "common/stopwatch.h"
#include "engine/table.h"
#include "smpc/cluster.h"

namespace mip::federation {

// --- ResultCache -----------------------------------------------------------

Result<engine::Table> ResultCache::GetOrCompute(
    const Key& key, const std::function<Result<engine::Table>()>& compute) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto hit = index_.find(key);
    if (hit != index_.end()) {
      lru_.splice(lru_.begin(), lru_, hit->second);  // mark most recent
      stats_.hits += 1;
      return hit->second->second;
    }
    auto flying = inflight_.find(key);
    if (flying == inflight_.end()) break;  // become the leader
    // Wait for the leader; on its failure loop back and retry (the next
    // round either finds a cached entry, a new leader, or elects us).
    std::shared_ptr<InFlight> state = flying->second;
    stats_.coalesced += 1;
    cv_.wait(lock, [&] { return state->done; });
    if (state->status.ok()) return state->table;
  }

  auto state = std::make_shared<InFlight>();
  inflight_.emplace(key, state);
  stats_.misses += 1;
  lock.unlock();

  Result<engine::Table> result = compute();

  lock.lock();
  inflight_.erase(key);
  state->done = true;
  if (result.ok()) {
    state->status = Status::OK();
    state->table = result.ValueOrDie();
    lru_.emplace_front(key, state->table);
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      stats_.evictions += 1;
    }
  } else {
    state->status = result.status();
  }
  cv_.notify_all();
  return result;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- Gateway ---------------------------------------------------------------

Gateway::Gateway(engine::Database* db, GatewayOptions options)
    : db_(db),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {}

Status Gateway::Attach(net::Transport* transport) {
  return transport->RegisterEndpoint(
      options_.node_id,
      [this](const net::Envelope& envelope) { return Handle(envelope); });
}

Result<std::vector<uint8_t>> Gateway::Handle(const net::Envelope& envelope) {
  const std::string tenant =
      envelope.from.empty() ? "anonymous" : envelope.from;
  if (envelope.type == kGatewayMetrics) {
    const std::string text = MetricsText();
    return std::vector<uint8_t>(text.begin(), text.end());
  }
  if (envelope.type != kGatewayRunSql) {
    return Status::InvalidArgument("gateway does not handle message type '" +
                                   envelope.type + "'");
  }

  // Admission control: shed instead of queue. The BUSY status crosses the
  // wire typed (kResourceExhausted), so clients can back off deliberately
  // rather than treat it as a node failure.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ >= options_.max_in_flight) {
      stats_.shed_capacity += 1;
      return Status::ResourceExhausted(
          "BUSY: gateway at max in-flight (" +
          std::to_string(options_.max_in_flight) + "); retry with backoff");
    }
    size_t& tenant_count = tenant_in_flight_[tenant];
    if (tenant_count >= options_.per_tenant_in_flight) {
      stats_.shed_quota += 1;
      return Status::ResourceExhausted(
          "BUSY: tenant '" + tenant + "' at quota (" +
          std::to_string(options_.per_tenant_in_flight) +
          " in flight); retry with backoff");
    }
    in_flight_ += 1;
    tenant_count += 1;
    stats_.admitted += 1;
  }

  Stopwatch sw;
  Result<std::vector<uint8_t>> reply = RunSql(envelope);
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= 1;
    tenant_in_flight_[tenant] -= 1;
    tenant_hist_[tenant].Record(sw.ElapsedMillis());
    if (reply.ok()) {
      stats_.served += 1;
    } else {
      stats_.errors += 1;
    }
  }
  return reply;
}

Result<std::vector<uint8_t>> Gateway::RunSql(const net::Envelope& envelope) {
  BufferReader reader(envelope.payload);
  MIP_ASSIGN_OR_RETURN(std::string sql, reader.ReadString());

  engine::PlanPtr plan;
  ResultCache::Key key{0, 0};
  {
    // Planning (and any non-SELECT statement) mutates catalog state — the
    // remote-schema cache during planning, tables during DDL/DML — so it
    // runs exclusive.
    std::unique_lock<std::shared_mutex> exclusive(db_mu_);
    MIP_ASSIGN_OR_RETURN(plan, db_->TryPlanSelectSql(sql));
    if (plan == nullptr) {
      MIP_ASSIGN_OR_RETURN(engine::Table table, db_->ExecuteSql(sql));
      BufferWriter writer;
      engine::SerializeTable(table, &writer,
                             engine::TableWireOptions{envelope.codec_ok});
      return writer.TakeBytes();
    }
    key = {engine::PlanFingerprint(*plan), db_->catalog_version()};
  }

  // Execution only reads the catalog, so concurrent SELECTs share the lock;
  // remote round trips happen inside, overlapping freely.
  std::shared_lock<std::shared_mutex> shared(db_mu_);
  engine::Table table;
  // A DDL may have slipped in between the two lock scopes; it cannot run
  // *during* this shared section, so if the version still matches the key,
  // the cached entry is exactly the data this execution reads.
  const bool cacheable = options_.cache_enabled &&
                         options_.cache_capacity > 0 &&
                         db_->catalog_version() == key.second;
  if (cacheable) {
    MIP_ASSIGN_OR_RETURN(
        table, cache_.GetOrCompute(
                   key, [&] { return db_->ExecutePlannedSelect(*plan); }));
  } else {
    MIP_ASSIGN_OR_RETURN(table, db_->ExecutePlannedSelect(*plan));
  }
  BufferWriter writer;
  engine::SerializeTable(table, &writer,
                         engine::TableWireOptions{envelope.codec_ok});
  return writer.TakeBytes();
}

Gateway::Stats Gateway::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string Gateway::MetricsText() const {
  std::string out;
  char line[256];
  const ResultCache::Stats cache = cache_.stats();
  const size_t entries = cache_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    out += "# gateway admission\n";
    std::snprintf(line, sizeof(line),
                  "gateway_admitted %llu\ngateway_shed_capacity %llu\n"
                  "gateway_shed_quota %llu\ngateway_served %llu\n"
                  "gateway_errors %llu\ngateway_in_flight %llu\n",
                  static_cast<unsigned long long>(stats_.admitted),
                  static_cast<unsigned long long>(stats_.shed_capacity),
                  static_cast<unsigned long long>(stats_.shed_quota),
                  static_cast<unsigned long long>(stats_.served),
                  static_cast<unsigned long long>(stats_.errors),
                  static_cast<unsigned long long>(in_flight_));
    out += line;
    out += "# result cache\n";
    std::snprintf(line, sizeof(line),
                  "cache_hits %llu\ncache_misses %llu\ncache_coalesced "
                  "%llu\ncache_evictions %llu\ncache_entries %llu\n",
                  static_cast<unsigned long long>(cache.hits),
                  static_cast<unsigned long long>(cache.misses),
                  static_cast<unsigned long long>(cache.coalesced),
                  static_cast<unsigned long long>(cache.evictions),
                  static_cast<unsigned long long>(entries));
    out += line;
    out += "# tenant latency (ms)\n";
    for (const auto& [tenant, hist] : tenant_hist_) {
      out += "tenant{id=\"" + tenant + "\"} " + hist.Summary() + "\n";
    }
  }
  if (link_source_ != nullptr) {
    out += "# link latency (ms)\n";
    for (const auto& [link, hist] : link_source_->link_histograms()) {
      out += "link{id=\"" + link + "\"} " + hist.Summary() + "\n";
    }
  }
  if (smpc_source_ != nullptr) {
    out += "# smpc\n";
    out += smpc_source_->MetricsText();
  }
  if (db_ != nullptr && db_->storage() != nullptr) {
    const engine::StorageCounters sc = db_->storage()->Counters();
    out += "# storage\n";
    std::snprintf(line, sizeof(line),
                  "storage_segments_scanned %llu\n"
                  "storage_segments_pruned %llu\n"
                  "storage_index_probes %llu\nstorage_index_hits %llu\n"
                  "storage_flushes %llu\nstorage_compactions %llu\n"
                  "storage_wal_replays %llu\n",
                  static_cast<unsigned long long>(sc.segments_scanned),
                  static_cast<unsigned long long>(sc.segments_pruned),
                  static_cast<unsigned long long>(sc.index_probes),
                  static_cast<unsigned long long>(sc.index_hits),
                  static_cast<unsigned long long>(sc.flushes),
                  static_cast<unsigned long long>(sc.compactions),
                  static_cast<unsigned long long>(sc.wal_replays));
    out += line;
  }
  if (db_ != nullptr) {
    const engine::JoinCounters* jc = db_->join_counters();
    out += "# joins\n";
    std::snprintf(
        line, sizeof(line),
        "joins_planned %llu\njoins_broadcast_chosen %llu\n"
        "joins_collect_chosen %llu\njoin_build_rows %llu\n"
        "join_probe_rows %llu\n",
        static_cast<unsigned long long>(
            jc->joins_planned.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            jc->broadcast_chosen.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            jc->collect_chosen.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            jc->build_rows.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            jc->probe_rows.load(std::memory_order_relaxed)));
    out += line;
  }
  return out;
}

}  // namespace mip::federation
