#include "federation/fault.h"

#include <chrono>
#include <thread>

namespace mip::federation {

namespace {

// FNV-1a: stable across runs and standard libraries (std::hash<string> is
// only guaranteed stable within one execution).
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string LinkKey(const std::string& from, const std::string& to) {
  return from + "->" + to;
}

std::string EndpointKey(const std::string& to) { return "*->" + to; }

}  // namespace

void FaultInjector::SetLinkFault(const std::string& from,
                                 const std::string& to, FaultSpec spec) {
  const std::string key = LinkKey(from, to);
  std::lock_guard<std::mutex> lock(mu_);
  links_.erase(key);
  links_.emplace(key, LinkState(spec, seed_ ^ HashKey(key)));
}

void FaultInjector::SetEndpointFault(const std::string& node,
                                     FaultSpec spec) {
  const std::string key = EndpointKey(node);
  std::lock_guard<std::mutex> lock(mu_);
  links_.erase(key);
  links_.emplace(key, LinkState(spec, seed_ ^ HashKey(key)));
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  links_.clear();
}

FaultInjector::LinkState* FaultInjector::FindState(const std::string& from,
                                                   const std::string& to) {
  auto it = links_.find(LinkKey(from, to));
  if (it == links_.end()) it = links_.find(EndpointKey(to));
  return it == links_.end() ? nullptr : &it->second;
}

Status FaultInjector::BeforeDeliver(const Envelope& envelope) {
  double sleep_ms = 0.0;
  Status outcome = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    LinkState* state = FindState(envelope.from, envelope.to);
    if (state == nullptr) return Status::OK();
    const int delivery = state->deliveries++;
    sleep_ms = state->spec.delay_ms;
    if (state->spec.jitter_ms > 0) {
      sleep_ms += state->rng.NextUniform(0.0, state->spec.jitter_ms);
    }
    if (delivery < state->spec.fail_first_n) {
      outcome = Status::Unavailable("injected fault: link " + envelope.from +
                                    "->" + envelope.to + " failing delivery " +
                                    std::to_string(delivery + 1) + " of " +
                                    std::to_string(state->spec.fail_first_n));
    } else if (state->spec.drop_rate > 0 &&
               state->rng.NextDouble() < state->spec.drop_rate) {
      outcome = Status::Unavailable("injected fault: message from " +
                                    envelope.from + " to " + envelope.to +
                                    " dropped");
    }
  }
  // Sleep outside the lock so concurrent deliveries on other links overlap.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  return outcome;
}

int FaultInjector::DeliveriesOn(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(key);
  return it == links_.end() ? 0 : it->second.deliveries;
}

}  // namespace mip::federation
