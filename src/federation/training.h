#ifndef MIP_FEDERATION_TRAINING_H_
#define MIP_FEDERATION_TRAINING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dp/mechanisms.h"
#include "federation/master.h"

namespace mip::federation {

/// Privacy regime of the federated training loop (paper §2 "Training"):
/// local DP (each Worker noises its update before it leaves the hospital)
/// or secure aggregation (updates are secret-shared; noise is injected once,
/// inside the SMPC protocol, on the aggregate).
enum class TrainingPrivacy { kNone, kLocalDp, kSecureAggregation };

/// Aggregation rule of the training loop. kFedSgd: Workers return the
/// gradient sum at the current weights and the Master takes one step per
/// round. kFedAvg: Workers run `local_epochs` of local SGD and return the
/// (example-weighted) model delta; the Master averages the deltas —
/// McMahan-style FederatedAveraging, one of the "other methods" the paper
/// alludes to.
enum class TrainingAlgorithm { kFedSgd, kFedAvg };

struct TrainingConfig {
  TrainingAlgorithm algorithm = TrainingAlgorithm::kFedSgd;
  int rounds = 30;
  double learning_rate = 0.5;
  /// kFedAvg only: local passes and local step size per round.
  int local_epochs = 1;
  double local_learning_rate = 0.1;
  TrainingPrivacy privacy = TrainingPrivacy::kNone;
  /// Total (epsilon, delta) privacy budget across all rounds.
  double epsilon = 1.0;
  double delta = 1e-5;
  /// L2 clip bound applied to each worker's update before noising.
  double clip_norm = 1.0;
  uint64_t seed = 0x7EA1A1A17EA1ull;
};

struct TrainingRound {
  int round = 0;
  double loss = 0.0;
  double grad_norm = 0.0;
  /// Wall time of the round's fan-out + aggregation.
  double elapsed_ms = 0.0;
  /// Workers still in the cohort when the round ran (quorum policies may
  /// shrink this mid-training).
  size_t active_workers = 0;
};

struct TrainingResult {
  std::vector<double> weights;
  std::vector<TrainingRound> history;
  double spent_epsilon = 0.0;
  int64_t total_examples = 0;
  /// Hospitals dropped by the session's quorum policy during training;
  /// their examples are absent from the final model.
  std::vector<std::string> excluded_workers;
};

/// \brief The federated-learning loop: Master ships current parameters,
/// Workers compute local updates next to their data, updates come back
/// noised (local DP) or secret-shared (SA), Master applies them and starts
/// the next cycle.
///
/// The model is abstract: callers register a local step named `grad_func`
/// that reads "weights" (vector) from the args transfer and returns
/// "loss" (sum of per-example losses), "n" (local example count), and
/// either "grad" (kFedSgd: sum of per-example gradients) or "delta"
/// (kFedAvg: (w_local - w_global) * n after "local_epochs" local passes at
/// "local_lr", both provided in the args transfer).
class FederatedTrainer {
 public:
  FederatedTrainer(MasterNode* master, TrainingConfig config);

  /// Trains for config.rounds rounds over the session's workers.
  /// `dim` is the parameter dimension; initial weights are zero unless
  /// `init` is non-empty.
  Result<TrainingResult> Train(FederationSession* session,
                               const std::string& grad_func, int dim,
                               const std::vector<double>& init = {});

  const dp::PrivacyAccountant& accountant() const { return accountant_; }

 private:
  MasterNode* master_;
  TrainingConfig config_;
  dp::PrivacyAccountant accountant_;
  Rng rng_;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_TRAINING_H_
