#include "federation/master.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <thread>

#include "common/stopwatch.h"

namespace mip::federation {

namespace {

/// Only delivery-level failures are worth retrying; algorithm and
/// serialization errors are deterministic and would fail again.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIOError;
}

}  // namespace

Result<std::vector<TransferData>> FederationSession::FanOutLocalRun(
    const char* msg_type, const std::string& func, const std::string& smpc_job,
    const TransferData& args, bool enforce_timeout) {
  const std::vector<std::string> ids = active_worker_ids_;
  const size_t n = ids.size();
  if (n == 0) {
    return Status::Unavailable("session " + job_id_ +
                               " has no active workers left");
  }

  const FanoutPolicy policy = fanout_;
  net::Transport* transport = master_->transport_;

  // Ask the transport, per worker, whether codec-compressed payloads are
  // acceptable (on TCP the first ask runs the one-time version handshake;
  // later asks answer from the cache). Serialize each accepted variant once
  // and share it across the fan-out.
  std::vector<char> codec_ok(n, 0);
  bool any_codec = false;
  bool any_plain = false;
  for (size_t i = 0; i < n; ++i) {
    codec_ok[i] = transport->SupportsCodecs(ids[i]) ? 1 : 0;
    if (codec_ok[i]) {
      any_codec = true;
    } else {
      any_plain = true;
    }
  }
  auto build_payload = [&](bool codecs) {
    BufferWriter writer;
    writer.WriteString(func);
    writer.WriteString(smpc_job);
    args.Serialize(&writer, codecs);
    return writer.TakeBytes();
  };
  std::vector<uint8_t> payload_plain;
  std::vector<uint8_t> payload_codec;
  if (any_plain) payload_plain = build_payload(false);
  if (any_codec) payload_codec = build_payload(true);
  // Fixed-width request size, for the per-link compression ledger.
  const size_t raw_request_bytes = sizeof(uint32_t) + func.size() +
                                   sizeof(uint32_t) + smpc_job.size() +
                                   args.RawSerializedBytes();

  struct Slot {
    Status status = Status::Unavailable("not attempted");
    std::optional<TransferData> value;
    int attempts = 0;
    double elapsed_ms = 0.0;
  };
  std::vector<Slot> slots(n);

  // One call = one worker's full dispatch: attempts, backoff, deadline.
  // Writes only its own slot; all sharing goes through the locked bus.
  auto run_one = [&](size_t i) {
    Slot& slot = slots[i];
    const std::vector<uint8_t>& payload =
        codec_ok[i] ? payload_codec : payload_plain;
    Stopwatch total;
    const int max_attempts = std::max(1, policy.max_attempts);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      slot.attempts = attempt;
      Stopwatch rtt;
      Envelope envelope{"master", ids[i], msg_type, job_id_, payload};
      // Hard deadline for transports that can enforce one at the socket
      // (TCP); the cooperative post-hoc check below covers the in-process
      // bus, which cannot preempt a running handler.
      if (enforce_timeout && policy.worker_timeout_ms > 0) {
        envelope.deadline_ms = policy.worker_timeout_ms;
      }
      Result<std::vector<uint8_t>> reply = transport->Send(std::move(envelope));
      if (reply.ok()) {
        if (enforce_timeout && policy.worker_timeout_ms > 0 &&
            rtt.ElapsedMillis() > policy.worker_timeout_ms) {
          slot.status = Status::Unavailable(
              "worker '" + ids[i] + "' exceeded the " +
              std::to_string(policy.worker_timeout_ms) + " ms step deadline");
        } else {
          BufferReader reader(reply.ValueOrDie());
          Result<TransferData> parsed = TransferData::Deserialize(&reader);
          if (parsed.ok()) {
            // Compression ledger for both directions of this round trip:
            // raw-equivalent sizes are computed analytically, never by
            // re-serializing.
            transport->MeterCodec("master", ids[i], raw_request_bytes,
                                  payload.size());
            transport->MeterCodec(
                ids[i], "master",
                parsed.ValueOrDie().RawSerializedBytes(),
                reply.ValueOrDie().size());
            slot.value = std::move(parsed).MoveValueUnsafe();
            slot.status = Status::OK();
          } else {
            slot.status = parsed.status();
          }
          break;
        }
      } else {
        slot.status = reply.status();
      }
      if (attempt == max_attempts || !IsTransient(slot.status.code())) break;
      if (policy.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            policy.retry_backoff_ms * static_cast<double>(1 << (attempt - 1))));
      }
    }
    slot.elapsed_ms = total.ElapsedMillis();
  };

  const int lanes =
      policy.max_concurrency > 0
          ? std::min<int>(policy.max_concurrency, static_cast<int>(n))
          : static_cast<int>(n);
  if (lanes <= 1) {
    // Sequential dispatch in worker order — the legacy path and the
    // determinism baseline the concurrency tests compare against.
    for (size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Strided assignment over `lanes` ParallelFor chunks (grain 1), chunk t
    // owning workers t, t+lanes, ... — honors max_concurrency (at most
    // `lanes` chunks run at once) with the same work-distribution idiom the
    // engine's morsel dispatch uses.
    master_->pool().ParallelFor(
        static_cast<size_t>(lanes), 1, [&](size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) {
            for (size_t i = t; i < n; i += static_cast<size_t>(lanes)) {
              run_one(i);
            }
          }
        });
  }

  last_reports_.clear();
  last_reports_.reserve(n);
  size_t successes = 0;
  for (size_t i = 0; i < n; ++i) {
    WorkerRunReport report{ids[i], slots[i].status, slots[i].attempts,
                           slots[i].elapsed_ms};
    auto [it, inserted] = cumulative_.try_emplace(ids[i], report);
    if (!inserted) {
      it->second.status = report.status;
      it->second.attempts += report.attempts;
      it->second.elapsed_ms += report.elapsed_ms;
    }
    last_reports_.push_back(std::move(report));
    if (slots[i].status.ok()) ++successes;
  }

  if (policy.min_workers == 0) {
    // Strict mode: the first failure (in worker order) fails the step.
    for (const Slot& slot : slots) {
      if (!slot.status.ok()) return slot.status;
    }
  } else if (successes < policy.min_workers) {
    std::string detail;
    for (size_t i = 0; i < n; ++i) {
      if (slots[i].status.ok()) continue;
      if (!detail.empty()) detail += "; ";
      detail += ids[i] + ": " + slots[i].status.ToString();
    }
    return Status::Unavailable(
        "quorum not met: " + std::to_string(successes) + " of " +
        std::to_string(n) + " workers succeeded (min_workers=" +
        std::to_string(policy.min_workers) + ") [" + detail + "]");
  }

  std::vector<TransferData> results;
  results.reserve(successes);
  std::vector<std::string> survivors;
  survivors.reserve(successes);
  for (size_t i = 0; i < n; ++i) {
    if (slots[i].status.ok()) {
      results.push_back(std::move(*slots[i].value));
      survivors.push_back(ids[i]);
    } else {
      excluded_workers_.push_back(ids[i]);
    }
  }
  // Degrade to the surviving cohort for the remaining steps so multi-step
  // algorithms keep a consistent worker set.
  active_worker_ids_ = std::move(survivors);
  return results;
}

std::vector<std::string> FederationSession::ExcludedDatasets() const {
  std::set<std::string> session_scope(datasets_.begin(), datasets_.end());
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const std::string& wid : excluded_workers_) {
    const std::vector<std::string>* worker_datasets = nullptr;
    if (WorkerNode* worker = master_->GetWorker(wid); worker != nullptr) {
      worker_datasets = &worker->datasets();
    } else if (auto it = master_->remote_workers_.find(wid);
               it != master_->remote_workers_.end()) {
      worker_datasets = &it->second.datasets;
    } else {
      continue;
    }
    for (const std::string& ds : *worker_datasets) {
      if (!session_scope.empty() && session_scope.count(ds) == 0) continue;
      if (seen.insert(ds).second) out.push_back(ds);
    }
  }
  return out;
}

std::vector<WorkerRunReport> FederationSession::CumulativeReports() const {
  std::vector<WorkerRunReport> out;
  out.reserve(worker_ids_.size());
  for (const std::string& wid : worker_ids_) {
    auto it = cumulative_.find(wid);
    if (it != cumulative_.end()) out.push_back(it->second);
  }
  return out;
}

Result<std::vector<TransferData>> FederationSession::LocalRun(
    const std::string& func, const TransferData& args) {
  // No SMPC job on the plain path.
  return FanOutLocalRun("local_run", func, "", args,
                        /*enforce_timeout=*/true);
}

Result<TransferData> FederationSession::LocalRunAndAggregate(
    const std::string& func, const TransferData& args, AggregationMode mode,
    const smpc::NoiseSpec& noise) {
  if (mode == AggregationMode::kPlain) {
    MIP_ASSIGN_OR_RETURN(std::vector<TransferData> parts,
                         LocalRun(func, args));
    return TransferData::SumMerge(parts);
  }
  // Secure path: each worker imports its transfer into the SMPC cluster;
  // only shapes travel on the bus. The step deadline is not enforced here:
  // once a (late) reply arrives the shares are already in the cluster, and
  // excluding the worker afterwards would corrupt the aggregate.
  const std::string smpc_job = NextSmpcJobId();
  // Large share vectors batch-process on the fan-out pool (morsel
  // parallelism never changes the shares — deterministic chunking).
  master_->smpc_.set_pool(&master_->pool());
  MIP_ASSIGN_OR_RETURN(
      std::vector<TransferData> shapes,
      FanOutLocalRun("local_run_secure", func, smpc_job, args,
                     /*enforce_timeout=*/false));
  if (shapes.empty()) {
    return Status::ExecutionError("no workers in session");
  }
  MIP_RETURN_NOT_OK(
      master_->smpc_.Compute(smpc_job, smpc::SmpcOp::kSum, noise));
  MIP_ASSIGN_OR_RETURN(std::vector<double> flat,
                       master_->smpc_.GetResult(smpc_job));
  return shapes[0].UnflattenNumeric(flat);
}

Result<std::vector<double>> FederationSession::LocalRunSecureOp(
    const std::string& func, const TransferData& args,
    const std::string& vector_key, smpc::SmpcOp op) {
  // Deliberately sequential: kUnion concatenates contributions, so import
  // order is part of the result and must stay deterministic.
  const std::string smpc_job = NextSmpcJobId();
  master_->smpc_.set_pool(&master_->pool());
  for (const std::string& wid : active_worker_ids_) {
    // Run plainly on the worker but import only the requested vector.
    WorkerNode* worker = master_->GetWorker(wid);
    if (worker == nullptr) return Status::NotFound("worker " + wid);
    MIP_ASSIGN_OR_RETURN(TransferData result,
                         worker->RunLocal(func, job_id_, args));
    MIP_ASSIGN_OR_RETURN(std::vector<double> vec,
                         result.GetVector(vector_key));
    MIP_RETURN_NOT_OK(master_->smpc_.ImportShares(smpc_job, vec));
  }
  MIP_RETURN_NOT_OK(master_->smpc_.Compute(smpc_job, op));
  return master_->smpc_.GetResult(smpc_job);
}

MasterNode::MasterNode(MasterConfig config)
    : config_(config),
      smpc_(config.smpc),
      local_db_("master_db"),
      functions_(std::make_shared<LocalFunctionRegistry>()),
      rng_(config.seed) {
  // The Master's local engine resolves REMOTE tables over the bus.
  local_db_.SetRemoteFetcher(
      [this](const std::string& location,
             const std::string& remote_name) -> Result<engine::Table> {
        BufferWriter writer;
        writer.WriteString(remote_name);
        Envelope envelope{"master", location, "fetch_table", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             transport_->Send(std::move(envelope)));
        BufferReader reader(reply);
        MIP_ASSIGN_OR_RETURN(engine::Table table,
                             engine::DeserializeTable(&reader));
        transport_->MeterCodec(location, "master",
                               engine::RawTableWireBytes(table), reply.size());
        return table;
      });
  // ... and pushes partial aggregates to the data when it can.
  local_db_.SetRemoteQueryRunner(
      [this](const std::string& location,
             const std::string& sql) -> Result<engine::Table> {
        BufferWriter writer;
        writer.WriteString(sql);
        Envelope envelope{"master", location, "run_sql", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             transport_->Send(std::move(envelope)));
        BufferReader reader(reply);
        MIP_ASSIGN_OR_RETURN(engine::Table table,
                             engine::DeserializeTable(&reader));
        transport_->MeterCodec(location, "master",
                               engine::RawTableWireBytes(table), reply.size());
        return table;
      });
  // ... and learns remote schemas from a zero-row probe so the planner can
  // prune projections without a full fetch. (Database falls back to a full
  // fetch if a peer does not answer.)
  local_db_.SetRemoteSchemaFetcher(
      [this](const std::string& location,
             const std::string& remote_name) -> Result<engine::Schema> {
        BufferWriter writer;
        writer.WriteString(remote_name);
        Envelope envelope{"master", location, "get_schema", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             transport_->Send(std::move(envelope)));
        BufferReader reader(reply);
        MIP_ASSIGN_OR_RETURN(engine::Table table,
                             engine::DeserializeTable(&reader));
        transport_->MeterCodec(location, "master",
                               engine::RawTableWireBytes(table), reply.size());
        return table.schema();
      });
  // ... and learns remote table statistics the same way — a tiny stats
  // table crosses the wire, never the relation — feeding the join cost
  // model. (Database answers NotImplemented when a peer cannot; the model
  // degrades to collect.)
  local_db_.SetRemoteStatsFetcher(
      [this](const std::string& location,
             const std::string& remote_name) -> Result<engine::TableStats> {
        BufferWriter writer;
        writer.WriteString(remote_name);
        Envelope envelope{"master", location, "get_stats", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             transport_->Send(std::move(envelope)));
        BufferReader reader(reply);
        MIP_ASSIGN_OR_RETURN(engine::Table table,
                             engine::DeserializeTable(&reader));
        transport_->MeterCodec(location, "master",
                               engine::RawTableWireBytes(table), reply.size());
        return engine::StatsFromTable(table);
      });
  // ... and ships small build sides next to the data for broadcast joins:
  // the worker registers the bound table under a temp name, runs the join
  // SQL, drops the temp, and only joined rows come back.
  local_db_.SetRemoteBoundRunner(
      [this](const std::string& location, const std::string& temp_name,
             const std::string& sql,
             const engine::Table& bound) -> Result<engine::Table> {
        BufferWriter writer;
        writer.WriteString(temp_name);
        writer.WriteString(sql);
        // Compressed build side only for peers whose handshake vouches they
        // decode it, mirroring the fan-out path's per-peer codec choice.
        engine::SerializeTable(
            bound, &writer,
            engine::TableWireOptions{transport_->SupportsCodecs(location)});
        std::vector<uint8_t> payload = writer.TakeBytes();
        const uint64_t request_bytes = payload.size();
        Envelope envelope{"master", location, "run_sql_bound", "",
                          std::move(payload)};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             transport_->Send(std::move(envelope)));
        transport_->MeterCodec("master", location,
                               engine::RawTableWireBytes(bound),
                               request_bytes);
        BufferReader reader(reply);
        MIP_ASSIGN_OR_RETURN(engine::Table table,
                             engine::DeserializeTable(&reader));
        transport_->MeterCodec(location, "master",
                               engine::RawTableWireBytes(table), reply.size());
        return table;
      });
}

ThreadPool& MasterNode::pool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    // Fan-out tasks are latency-bound (they wait on simulated links), so
    // size the pool well past the core count and for the current cohort.
    const int threads = std::max(
        {HardwareThreads(), static_cast<int>(workers_.size()), 16});
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return *pool_;
}

Result<WorkerNode*> MasterNode::AddWorker(const std::string& worker_id) {
  for (const auto& w : workers_) {
    if (w->id() == worker_id) {
      return Status::AlreadyExists("worker '" + worker_id + "' exists");
    }
  }
  if (remote_workers_.count(worker_id) > 0) {
    return Status::AlreadyExists("worker '" + worker_id +
                                 "' exists as a remote endpoint");
  }
  auto worker = std::make_unique<WorkerNode>(worker_id, functions_,
                                             rng_.NextUint64());
  MIP_RETURN_NOT_OK(worker->AttachToBus(&bus_));
  worker->SetSmpcCluster(&smpc_);
  workers_.push_back(std::move(worker));
  return workers_.back().get();
}

Status MasterNode::AddRemoteWorker(const std::string& worker_id,
                                   const std::vector<std::string>& datasets) {
  if (GetWorker(worker_id) != nullptr ||
      remote_workers_.count(worker_id) > 0) {
    return Status::AlreadyExists("worker '" + worker_id + "' exists");
  }
  remote_workers_.emplace(worker_id, RemoteEndpoint{worker_id, datasets});
  for (const std::string& ds : datasets) {
    auto& holders = catalog_[ds];
    bool present = false;
    for (const std::string& h : holders) present = present || h == worker_id;
    if (!present) holders.push_back(worker_id);
  }
  return Status::OK();
}

WorkerNode* MasterNode::GetWorker(const std::string& worker_id) {
  for (const auto& w : workers_) {
    if (w->id() == worker_id) return w.get();
  }
  return nullptr;
}

Status MasterNode::LoadDataset(const std::string& worker_id,
                               const std::string& dataset_name,
                               engine::Table data) {
  WorkerNode* worker = GetWorker(worker_id);
  if (worker == nullptr) {
    return Status::NotFound("no worker '" + worker_id + "'");
  }
  MIP_RETURN_NOT_OK(worker->LoadDataset(dataset_name, std::move(data)));
  auto& holders = catalog_[dataset_name];
  for (const std::string& h : holders) {
    if (h == worker_id) return Status::OK();
  }
  holders.push_back(worker_id);
  return Status::OK();
}

std::vector<std::string> MasterNode::WorkersWithDatasets(
    const std::vector<std::string>& datasets) const {
  if (datasets.empty()) {
    std::vector<std::string> all;
    for (const auto& w : workers_) all.push_back(w->id());
    for (const auto& [id, endpoint] : remote_workers_) all.push_back(id);
    return all;
  }
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const std::string& ds : datasets) {
    auto it = catalog_.find(ds);
    if (it == catalog_.end()) continue;
    for (const std::string& wid : it->second) {
      if (seen.insert(wid).second) out.push_back(wid);
    }
  }
  return out;
}

Result<FederationSession> MasterNode::StartSession(
    const std::vector<std::string>& datasets) {
  std::vector<std::string> workers = WorkersWithDatasets(datasets);
  if (workers.empty()) {
    return Status::NotFound("no workers hold the requested datasets");
  }
  const std::string job_id =
      "job-" + std::to_string(++job_counter_) + "-" +
      std::to_string(rng_.NextUint64() & 0xFFFFFFull);
  return FederationSession(this, job_id, std::move(workers), datasets,
                           config_.fanout);
}

Result<std::string> MasterNode::CreateFederatedView(
    const std::string& dataset_name) {
  auto it = catalog_.find(dataset_name);
  if (it == catalog_.end()) {
    return Status::NotFound("dataset '" + dataset_name +
                            "' not in the catalog");
  }
  std::vector<std::string> part_names;
  for (const std::string& wid : it->second) {
    const std::string part = dataset_name + "_" + wid;
    if (!local_db_.HasTable(part)) {
      MIP_ASSIGN_OR_RETURN(
          engine::Table ignored,
          local_db_.ExecuteSql("CREATE REMOTE TABLE " + part + " ON '" + wid +
                               "' AS " + dataset_name));
      (void)ignored;
    }
    part_names.push_back(part);
  }
  const std::string merge_name = dataset_name + "_federated";
  if (!local_db_.HasTable(merge_name)) {
    std::string sql = "CREATE MERGE TABLE " + merge_name + " (";
    for (size_t i = 0; i < part_names.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += part_names[i];
    }
    sql += ")";
    MIP_ASSIGN_OR_RETURN(engine::Table ignored, local_db_.ExecuteSql(sql));
    (void)ignored;
  }
  return merge_name;
}

}  // namespace mip::federation
