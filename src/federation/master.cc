#include "federation/master.h"

#include <set>

namespace mip::federation {

Result<std::vector<TransferData>> FederationSession::LocalRun(
    const std::string& func, const TransferData& args) {
  std::vector<TransferData> results;
  results.reserve(worker_ids_.size());
  for (const std::string& wid : worker_ids_) {
    BufferWriter writer;
    writer.WriteString(func);
    writer.WriteString("");  // no SMPC job on the plain path
    args.Serialize(&writer);
    Envelope envelope{"master", wid, "local_run", job_id_,
                      writer.TakeBytes()};
    MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                         master_->bus_.Send(std::move(envelope)));
    BufferReader reader(reply);
    MIP_ASSIGN_OR_RETURN(TransferData t, TransferData::Deserialize(&reader));
    results.push_back(std::move(t));
  }
  return results;
}

Result<TransferData> FederationSession::LocalRunAndAggregate(
    const std::string& func, const TransferData& args, AggregationMode mode,
    const smpc::NoiseSpec& noise) {
  if (mode == AggregationMode::kPlain) {
    MIP_ASSIGN_OR_RETURN(std::vector<TransferData> parts,
                         LocalRun(func, args));
    return TransferData::SumMerge(parts);
  }
  // Secure path: each worker imports its transfer into the SMPC cluster;
  // only shapes travel on the bus.
  const std::string smpc_job = NextSmpcJobId();
  std::vector<TransferData> shapes;
  for (const std::string& wid : worker_ids_) {
    BufferWriter writer;
    writer.WriteString(func);
    writer.WriteString(smpc_job);
    args.Serialize(&writer);
    Envelope envelope{"master", wid, "local_run_secure", job_id_,
                      writer.TakeBytes()};
    MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                         master_->bus_.Send(std::move(envelope)));
    BufferReader reader(reply);
    MIP_ASSIGN_OR_RETURN(TransferData shape,
                         TransferData::Deserialize(&reader));
    shapes.push_back(std::move(shape));
  }
  if (shapes.empty()) {
    return Status::ExecutionError("no workers in session");
  }
  MIP_RETURN_NOT_OK(
      master_->smpc_.Compute(smpc_job, smpc::SmpcOp::kSum, noise));
  MIP_ASSIGN_OR_RETURN(std::vector<double> flat,
                       master_->smpc_.GetResult(smpc_job));
  return shapes[0].UnflattenNumeric(flat);
}

Result<std::vector<double>> FederationSession::LocalRunSecureOp(
    const std::string& func, const TransferData& args,
    const std::string& vector_key, smpc::SmpcOp op) {
  const std::string smpc_job = NextSmpcJobId();
  for (const std::string& wid : worker_ids_) {
    // Run plainly on the worker but import only the requested vector.
    WorkerNode* worker = master_->GetWorker(wid);
    if (worker == nullptr) return Status::NotFound("worker " + wid);
    MIP_ASSIGN_OR_RETURN(TransferData result,
                         worker->RunLocal(func, job_id_, args));
    MIP_ASSIGN_OR_RETURN(std::vector<double> vec,
                         result.GetVector(vector_key));
    MIP_RETURN_NOT_OK(master_->smpc_.ImportShares(smpc_job, vec));
  }
  MIP_RETURN_NOT_OK(master_->smpc_.Compute(smpc_job, op));
  return master_->smpc_.GetResult(smpc_job);
}

MasterNode::MasterNode(MasterConfig config)
    : config_(config),
      smpc_(config.smpc),
      local_db_("master_db"),
      functions_(std::make_shared<LocalFunctionRegistry>()),
      rng_(config.seed) {
  // The Master's local engine resolves REMOTE tables over the bus.
  local_db_.SetRemoteFetcher(
      [this](const std::string& location,
             const std::string& remote_name) -> Result<engine::Table> {
        BufferWriter writer;
        writer.WriteString(remote_name);
        Envelope envelope{"master", location, "fetch_table", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             bus_.Send(std::move(envelope)));
        BufferReader reader(reply);
        return engine::DeserializeTable(&reader);
      });
  // ... and pushes partial aggregates to the data when it can.
  local_db_.SetRemoteQueryRunner(
      [this](const std::string& location,
             const std::string& sql) -> Result<engine::Table> {
        BufferWriter writer;
        writer.WriteString(sql);
        Envelope envelope{"master", location, "run_sql", "",
                          writer.TakeBytes()};
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                             bus_.Send(std::move(envelope)));
        BufferReader reader(reply);
        return engine::DeserializeTable(&reader);
      });
}

Result<WorkerNode*> MasterNode::AddWorker(const std::string& worker_id) {
  for (const auto& w : workers_) {
    if (w->id() == worker_id) {
      return Status::AlreadyExists("worker '" + worker_id + "' exists");
    }
  }
  auto worker = std::make_unique<WorkerNode>(worker_id, functions_,
                                             rng_.NextUint64());
  MIP_RETURN_NOT_OK(worker->AttachToBus(&bus_));
  worker->SetSmpcCluster(&smpc_);
  workers_.push_back(std::move(worker));
  return workers_.back().get();
}

WorkerNode* MasterNode::GetWorker(const std::string& worker_id) {
  for (const auto& w : workers_) {
    if (w->id() == worker_id) return w.get();
  }
  return nullptr;
}

Status MasterNode::LoadDataset(const std::string& worker_id,
                               const std::string& dataset_name,
                               engine::Table data) {
  WorkerNode* worker = GetWorker(worker_id);
  if (worker == nullptr) {
    return Status::NotFound("no worker '" + worker_id + "'");
  }
  MIP_RETURN_NOT_OK(worker->LoadDataset(dataset_name, std::move(data)));
  auto& holders = catalog_[dataset_name];
  for (const std::string& h : holders) {
    if (h == worker_id) return Status::OK();
  }
  holders.push_back(worker_id);
  return Status::OK();
}

std::vector<std::string> MasterNode::WorkersWithDatasets(
    const std::vector<std::string>& datasets) const {
  if (datasets.empty()) {
    std::vector<std::string> all;
    for (const auto& w : workers_) all.push_back(w->id());
    return all;
  }
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const std::string& ds : datasets) {
    auto it = catalog_.find(ds);
    if (it == catalog_.end()) continue;
    for (const std::string& wid : it->second) {
      if (seen.insert(wid).second) out.push_back(wid);
    }
  }
  return out;
}

Result<FederationSession> MasterNode::StartSession(
    const std::vector<std::string>& datasets) {
  std::vector<std::string> workers = WorkersWithDatasets(datasets);
  if (workers.empty()) {
    return Status::NotFound("no workers hold the requested datasets");
  }
  const std::string job_id =
      "job-" + std::to_string(++job_counter_) + "-" +
      std::to_string(rng_.NextUint64() & 0xFFFFFFull);
  return FederationSession(this, job_id, std::move(workers), datasets);
}

Result<std::string> MasterNode::CreateFederatedView(
    const std::string& dataset_name) {
  auto it = catalog_.find(dataset_name);
  if (it == catalog_.end()) {
    return Status::NotFound("dataset '" + dataset_name +
                            "' not in the catalog");
  }
  std::vector<std::string> part_names;
  for (const std::string& wid : it->second) {
    const std::string part = dataset_name + "_" + wid;
    if (!local_db_.HasTable(part)) {
      MIP_ASSIGN_OR_RETURN(
          engine::Table ignored,
          local_db_.ExecuteSql("CREATE REMOTE TABLE " + part + " ON '" + wid +
                               "' AS " + dataset_name));
      (void)ignored;
    }
    part_names.push_back(part);
  }
  const std::string merge_name = dataset_name + "_federated";
  if (!local_db_.HasTable(merge_name)) {
    std::string sql = "CREATE MERGE TABLE " + merge_name + " (";
    for (size_t i = 0; i < part_names.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += part_names[i];
    }
    sql += ")";
    MIP_ASSIGN_OR_RETURN(engine::Table ignored, local_db_.ExecuteSql(sql));
    (void)ignored;
  }
  return merge_name;
}

}  // namespace mip::federation
