#include "federation/training.h"

#include <cmath>

#include "common/stopwatch.h"

namespace mip::federation {

FederatedTrainer::FederatedTrainer(MasterNode* master, TrainingConfig config)
    : master_(master), config_(config), rng_(config.seed) {}

Result<TrainingResult> FederatedTrainer::Train(
    FederationSession* session, const std::string& grad_func, int dim,
    const std::vector<double>& init) {
  TrainingResult out;
  out.weights.assign(static_cast<size_t>(dim), 0.0);
  if (!init.empty()) {
    if (init.size() != static_cast<size_t>(dim)) {
      return Status::InvalidArgument("init weights dimension mismatch");
    }
    out.weights = init;
  }

  const double eps_per_round =
      config_.rounds > 0 ? config_.epsilon / config_.rounds : config_.epsilon;
  const double delta_per_round =
      config_.rounds > 0 ? config_.delta / config_.rounds : config_.delta;

  const bool fed_avg = config_.algorithm == TrainingAlgorithm::kFedAvg;
  const char* update_key = fed_avg ? "delta" : "grad";
  for (int round = 0; round < config_.rounds; ++round) {
    Stopwatch round_sw;
    TransferData args;
    args.PutVector("weights", out.weights);
    if (fed_avg) {
      args.PutScalar("local_epochs", config_.local_epochs);
      args.PutScalar("local_lr", config_.local_learning_rate);
    }

    std::vector<double> grad_sum(static_cast<size_t>(dim), 0.0);
    double loss_sum = 0.0;
    double n_total = 0.0;

    switch (config_.privacy) {
      case TrainingPrivacy::kNone: {
        MIP_ASSIGN_OR_RETURN(
            TransferData agg,
            session->LocalRunAndAggregate(grad_func, args,
                                          AggregationMode::kPlain));
        MIP_ASSIGN_OR_RETURN(grad_sum, agg.GetVector(update_key));
        MIP_ASSIGN_OR_RETURN(loss_sum, agg.GetScalar("loss"));
        MIP_ASSIGN_OR_RETURN(n_total, agg.GetScalar("n"));
        break;
      }
      case TrainingPrivacy::kLocalDp: {
        // Each worker clips and noises its own update before it leaves the
        // hospital: per-worker sensitivity is the clip bound.
        MIP_ASSIGN_OR_RETURN(std::vector<TransferData> parts,
                             session->LocalRun(grad_func, args));
        const dp::GaussianMechanism mech(eps_per_round, delta_per_round,
                                         config_.clip_norm);
        for (TransferData& part : parts) {
          MIP_ASSIGN_OR_RETURN(std::vector<double> g,
                               part.GetVector(update_key));
          MIP_ASSIGN_OR_RETURN(double loss, part.GetScalar("loss"));
          MIP_ASSIGN_OR_RETURN(double n, part.GetScalar("n"));
          // Clip the mean update, then noise (worker-level DP).
          std::vector<double> mean_g(g.size());
          for (size_t i = 0; i < g.size(); ++i) {
            mean_g[i] = n > 0 ? g[i] / n : 0.0;
          }
          mean_g = dp::ClipL2(mean_g, config_.clip_norm);
          mean_g = mech.ApplyVector(mean_g, &rng_);
          for (size_t i = 0; i < g.size(); ++i) {
            grad_sum[i] += mean_g[i] * n;
          }
          loss_sum += loss;
          n_total += n;
        }
        accountant_.Spend(eps_per_round, delta_per_round);
        break;
      }
      case TrainingPrivacy::kSecureAggregation: {
        // Updates are secret-shared; Gaussian noise is injected once,
        // inside the SMPC protocol, on the aggregate. Same per-round
        // epsilon, but the noise is added once rather than per worker —
        // the accuracy advantage experiment E7 measures.
        const dp::GaussianMechanism mech(eps_per_round, delta_per_round,
                                         config_.clip_norm);
        smpc::NoiseSpec noise;
        noise.kind = smpc::NoiseSpec::Kind::kGaussian;
        noise.param = mech.sigma();
        MIP_ASSIGN_OR_RETURN(
            TransferData agg,
            session->LocalRunAndAggregate(grad_func, args,
                                          AggregationMode::kSecure, noise));
        MIP_ASSIGN_OR_RETURN(grad_sum, agg.GetVector(update_key));
        MIP_ASSIGN_OR_RETURN(loss_sum, agg.GetScalar("loss"));
        MIP_ASSIGN_OR_RETURN(n_total, agg.GetScalar("n"));
        accountant_.Spend(eps_per_round, delta_per_round);
        break;
      }
    }

    if (n_total <= 0) {
      return Status::ExecutionError("no training examples across workers");
    }

    double grad_norm_sq = 0.0;
    for (size_t i = 0; i < grad_sum.size(); ++i) {
      const double g = grad_sum[i] / n_total;
      if (fed_avg) {
        // grad_sum holds example-weighted model deltas: w += mean delta.
        out.weights[i] += g;
      } else {
        out.weights[i] -= config_.learning_rate * g;
      }
      grad_norm_sq += g * g;
    }

    TrainingRound tr;
    tr.round = round;
    tr.loss = loss_sum / n_total;
    tr.grad_norm = std::sqrt(grad_norm_sq);
    tr.elapsed_ms = round_sw.ElapsedMillis();
    tr.active_workers = session->active_workers().size();
    out.history.push_back(tr);
    out.total_examples = static_cast<int64_t>(n_total);
  }

  out.spent_epsilon = accountant_.TotalEpsilonBasic();
  out.excluded_workers = session->excluded_workers();
  return out;
}

}  // namespace mip::federation
