#include "federation/worker.h"

#include <mutex>
#include <utility>

#include "engine/stats.h"

namespace mip::federation {

namespace {

/// Leading-keyword sniff: SELECT/EXPLAIN never mutate the catalog, so they
/// may run under the shared lock; everything else (DDL, INSERT) is treated
/// as a write.
bool IsReadOnlySql(const std::string& sql) {
  size_t i = sql.find_first_not_of(" \t\r\n");
  if (i == std::string::npos) return false;
  auto starts_with = [&](const char* kw) {
    for (size_t j = 0; kw[j] != '\0'; ++j) {
      if (i + j >= sql.size()) return false;
      const char c = sql[i + j];
      const char lower = c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c;
      if (lower != kw[j]) return false;
    }
    return true;
  };
  return starts_with("select") || starts_with("explain");
}

}  // namespace

engine::Database& WorkerContext::db() { return worker_->db(); }
TransferData& WorkerContext::state() { return worker_->JobState(job_id_); }
Rng& WorkerContext::rng() { return worker_->rng(); }
const std::string& WorkerContext::worker_id() const { return worker_->id(); }
const engine::ExecContext& WorkerContext::exec() {
  return engine::ExecContext::Resolve(worker_->db().exec_context());
}
const std::vector<std::string>& WorkerContext::datasets() const {
  return worker_->datasets();
}

Status LocalFunctionRegistry::Register(const std::string& name, LocalFn fn) {
  if (fns_.count(name) > 0) {
    return Status::AlreadyExists("local function '" + name +
                                 "' already registered");
  }
  fns_.emplace(name, std::move(fn));
  return Status::OK();
}

Result<const LocalFn*> LocalFunctionRegistry::Find(
    const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("no local function '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> LocalFunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [k, v] : fns_) names.push_back(k);
  return names;
}

WorkerNode::WorkerNode(std::string id,
                       std::shared_ptr<LocalFunctionRegistry> functions,
                       uint64_t seed)
    : id_(std::move(id)),
      db_("db_" + id_),
      functions_(std::move(functions)),
      rng_(seed) {}

Status WorkerNode::LoadDataset(const std::string& dataset_name,
                               engine::Table data) {
  MIP_RETURN_NOT_OK(db_.PutTable(dataset_name, std::move(data)));
  if (!HasDataset(dataset_name)) datasets_.push_back(dataset_name);
  return Status::OK();
}

Status WorkerNode::AttachDiskStorage(engine::TableStorage* storage) {
  MIP_RETURN_NOT_OK(db_.AttachStorage(storage));
  for (const std::string& name : storage->StorageTableNames()) {
    if (!HasDataset(name)) datasets_.push_back(name);
  }
  return Status::OK();
}

bool WorkerNode::HasDataset(const std::string& dataset_name) const {
  for (const std::string& d : datasets_) {
    if (d == dataset_name) return true;
  }
  return false;
}

Result<TransferData> WorkerNode::RunLocal(const std::string& func,
                                          const std::string& job_id,
                                          const TransferData& args) {
  MIP_ASSIGN_OR_RETURN(const LocalFn* fn, functions_->Find(func));
  WorkerContext ctx(this, job_id);
  return (*fn)(ctx, args);
}

Status WorkerNode::AttachToBus(net::Transport* transport) {
  return transport->RegisterEndpoint(
      id_, [this](const Envelope& e) { return HandleEnvelope(e); });
}

Result<std::vector<uint8_t>> WorkerNode::HandleEnvelope(
    const Envelope& envelope) {
  BufferReader reader(envelope.payload);
  // The transport vouches that the requester decodes the compressed wire
  // format; replies to old peers stay in the v1 layout.
  const bool codecs = envelope.codec_ok;
  if (envelope.type == "local_run" || envelope.type == "local_run_secure") {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    MIP_ASSIGN_OR_RETURN(std::string func, reader.ReadString());
    MIP_ASSIGN_OR_RETURN(std::string smpc_job, reader.ReadString());
    MIP_ASSIGN_OR_RETURN(TransferData args,
                         TransferData::Deserialize(&reader));
    MIP_ASSIGN_OR_RETURN(TransferData result,
                         RunLocal(func, envelope.job_id, args));
    BufferWriter writer;
    if (envelope.type == "local_run_secure") {
      if (smpc_ == nullptr) {
        return Status::ExecutionError("worker " + id_ +
                                      " has no SMPC cluster attached");
      }
      if (result.HasTables()) {
        return Status::SecurityError(
            "table payloads cannot ride the secure aggregation path");
      }
      // The actual values go to the SMPC cluster as secret shares; only the
      // SHAPE (keys + zeroed numerics) crosses the bus back to the Master.
      MIP_RETURN_NOT_OK(smpc_->ImportShares(smpc_job,
                                            result.FlattenNumeric()));
      const std::vector<double> zeros(result.FlattenNumeric().size(), 0.0);
      MIP_ASSIGN_OR_RETURN(TransferData shape,
                           result.UnflattenNumeric(zeros));
      shape.Serialize(&writer, codecs);
      return writer.TakeBytes();
    }
    result.Serialize(&writer, codecs);
    return writer.TakeBytes();
  }
  if (envelope.type == "fetch_table") {
    MIP_ASSIGN_OR_RETURN(std::string table_name, reader.ReadString());
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    MIP_ASSIGN_OR_RETURN(engine::Table table, db_.GetTable(table_name));
    BufferWriter writer;
    engine::SerializeTable(table, &writer, engine::TableWireOptions{codecs});
    return writer.TakeBytes();
  }
  if (envelope.type == "get_schema") {
    // Schema-only probe: ships a zero-row table so the Master's planner can
    // prune remote projections without ever materializing the relation.
    MIP_ASSIGN_OR_RETURN(std::string table_name, reader.ReadString());
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    MIP_ASSIGN_OR_RETURN(engine::Schema schema, db_.GetSchema(table_name));
    BufferWriter writer;
    engine::SerializeTable(engine::Table::Empty(std::move(schema)), &writer,
                           engine::TableWireOptions{codecs});
    return writer.TakeBytes();
  }
  if (envelope.type == "get_stats") {
    // Statistics-only probe, the get_schema of the cost model: row count
    // plus per-column NDV/null/range stats cross the wire as a tiny table,
    // never the relation itself.
    MIP_ASSIGN_OR_RETURN(std::string table_name, reader.ReadString());
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    MIP_ASSIGN_OR_RETURN(engine::TableStats stats,
                         db_.GetTableStats(table_name));
    BufferWriter writer;
    engine::SerializeTable(engine::StatsToTable(stats), &writer,
                           engine::TableWireOptions{codecs});
    return writer.TakeBytes();
  }
  if (envelope.type == "run_sql") {
    // Remote query execution: lets the Master push partial aggregates to
    // the data instead of pulling relations (merge-table pushdown).
    MIP_ASSIGN_OR_RETURN(std::string sql, reader.ReadString());
    std::shared_lock<std::shared_mutex> shared(db_mu_, std::defer_lock);
    std::unique_lock<std::shared_mutex> exclusive(db_mu_, std::defer_lock);
    if (IsReadOnlySql(sql)) {
      shared.lock();
    } else {
      exclusive.lock();
    }
    MIP_ASSIGN_OR_RETURN(engine::Table table, db_.ExecuteSql(sql));
    BufferWriter writer;
    engine::SerializeTable(table, &writer, engine::TableWireOptions{codecs});
    return writer.TakeBytes();
  }
  if (envelope.type == "run_sql_bound") {
    // Broadcast-join transport: the Master ships a small build side, the
    // join runs here next to the data, only joined rows go back. The temp
    // table never outlives the request — dropped on success and failure
    // alike — and the exclusive lock keeps the register/run/drop atomic
    // against every other envelope.
    MIP_ASSIGN_OR_RETURN(std::string temp_name, reader.ReadString());
    MIP_ASSIGN_OR_RETURN(std::string sql, reader.ReadString());
    MIP_ASSIGN_OR_RETURN(engine::Table bound,
                         engine::DeserializeTable(&reader));
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    if (db_.HasTable(temp_name)) {
      return Status::InvalidArgument("bound temp table '" + temp_name +
                                     "' collides with an existing table on " +
                                     id_);
    }
    MIP_RETURN_NOT_OK(db_.PutTable(temp_name, std::move(bound)));
    Result<engine::Table> result = db_.ExecuteSql(sql);
    const Status dropped = db_.DropTable(temp_name);
    MIP_RETURN_NOT_OK(result.status());
    MIP_RETURN_NOT_OK(dropped);
    BufferWriter writer;
    engine::SerializeTable(*result, &writer,
                           engine::TableWireOptions{codecs});
    return writer.TakeBytes();
  }
  return Status::InvalidArgument("worker " + id_ +
                                 ": unknown message type '" + envelope.type +
                                 "'");
}

}  // namespace mip::federation
