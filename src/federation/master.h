#ifndef MIP_FEDERATION_MASTER_H_
#define MIP_FEDERATION_MASTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "engine/database.h"
#include "federation/bus.h"
#include "federation/worker.h"
#include "smpc/cluster.h"

namespace mip::federation {

/// How local results are combined on (or on behalf of) the Master.
enum class AggregationMode {
  /// Remote/merge-table style transfer: local aggregates travel to the
  /// Master in the clear. For non-sensitive data.
  kPlain,
  /// SMPC secure aggregation: workers import secret shares; only the
  /// aggregate (optionally noised) is ever opened.
  kSecure,
};

/// \brief How a session dispatches local-run steps across its workers and
/// what happens when a site is slow or down — the paper's 40+-hospital
/// deployments make stragglers and outages the norm, not the exception.
struct FanoutPolicy {
  /// Workers contacted concurrently per step. 0 = all at once;
  /// 1 = strictly sequential in worker order (the legacy dispatch path,
  /// kept as the determinism baseline for tests).
  int max_concurrency = 0;
  /// Total delivery attempts per worker per step (>= 1). Only transient
  /// failures (Unavailable / IOError) are retried; algorithm errors are
  /// not.
  int max_attempts = 3;
  /// Sleep before retry k is `retry_backoff_ms * 2^(k-1)`.
  double retry_backoff_ms = 1.0;
  /// A worker whose round-trip exceeds this is classified Unavailable for
  /// the step (cooperative: the in-process bus cannot preempt a running
  /// handler). 0 disables the deadline. Not enforced on the secure path,
  /// where a late reply means shares were already imported.
  double worker_timeout_ms = 0.0;
  /// Quorum. 0 = strict: every worker must succeed or the step fails
  /// (legacy behavior). N > 0 = degraded mode: the step succeeds if at
  /// least N workers answer; persistent failers are excluded from the rest
  /// of the session and reported.
  size_t min_workers = 0;
};

/// \brief Outcome of one worker's participation in a fan-out step (or,
/// accumulated, in a whole session).
struct WorkerRunReport {
  std::string worker_id;
  Status status;        ///< final status after retries
  int attempts = 0;     ///< deliveries attempted
  double elapsed_ms = 0.0;  ///< wall time across all attempts
};

struct MasterConfig {
  smpc::SmpcConfig smpc;
  /// Link model for reporting simulated inter-hospital latency.
  double link_latency_ms = 5.0;
  double link_bandwidth_mbps = 100.0;
  uint64_t seed = 0xFEDE7A7E5EEDull;
  /// Default dispatch/failure policy inherited by new sessions.
  FanoutPolicy fanout;
};

/// \brief Master-side record of a worker living in another OS process: the
/// node id the transport routes by, plus the datasets the site advertises
/// (fed into the Master's availability catalog). The address itself lives
/// in the transport's peer table (net::TcpTransport::AddPeer).
struct RemoteEndpoint {
  std::string worker_id;
  std::vector<std::string> datasets;
};

class MasterNode;

/// \brief One algorithm execution against a set of datasets: a globally
/// unique job id, the participating workers, and the local-run /
/// aggregate primitives of the paper's Figure 2.
class FederationSession {
 public:
  const std::string& job_id() const { return job_id_; }
  const std::vector<std::string>& worker_ids() const { return worker_ids_; }
  size_t num_workers() const { return worker_ids_.size(); }
  MasterNode& master() { return *master_; }

  /// The dataset filter this session was opened with (workers' local steps
  /// read it from the args transfer under key "datasets" if needed).
  const std::vector<std::string>& datasets() const { return datasets_; }

  /// Dispatch/failure policy for this session (seeded from
  /// MasterConfig::fanout; override before running steps).
  const FanoutPolicy& fanout_policy() const { return fanout_; }
  void set_fanout_policy(FanoutPolicy policy) { fanout_ = policy; }

  /// Workers still participating: the original cohort minus the workers a
  /// quorum policy excluded after persistent failures.
  const std::vector<std::string>& active_workers() const {
    return active_worker_ids_;
  }
  /// Workers excluded so far (quorum mode only), in exclusion order.
  const std::vector<std::string>& excluded_workers() const {
    return excluded_workers_;
  }
  /// Session datasets that lost a replica to an exclusion — the
  /// "which hospitals' data is missing from this result" report.
  std::vector<std::string> ExcludedDatasets() const;

  /// Per-worker outcome of the most recent fan-out step, in the step's
  /// worker order.
  const std::vector<WorkerRunReport>& last_reports() const {
    return last_reports_;
  }
  /// Per-worker totals accumulated over every step of this session
  /// (attempts and wall time summed, status = latest), in original worker
  /// order.
  std::vector<WorkerRunReport> CumulativeReports() const;

  /// Runs the named local step on every participating worker, returning
  /// each worker's transfer (plain path).
  Result<std::vector<TransferData>> LocalRun(const std::string& func,
                                             const TransferData& args);

  /// Runs the named local step on every worker and aggregates the
  /// transfers: kPlain sums on the Master; kSecure routes the values
  /// through the SMPC cluster (only shares cross the network) with optional
  /// in-protocol DP noise.
  Result<TransferData> LocalRunAndAggregate(
      const std::string& func, const TransferData& args, AggregationMode mode,
      const smpc::NoiseSpec& noise = smpc::NoiseSpec());

  /// Secure aggregation with a non-sum SMPC op (min/max/product/union) over
  /// a single named vector produced by the local step.
  Result<std::vector<double>> LocalRunSecureOp(const std::string& func,
                                               const TransferData& args,
                                               const std::string& vector_key,
                                               smpc::SmpcOp op);

 private:
  friend class MasterNode;
  FederationSession(MasterNode* master, std::string job_id,
                    std::vector<std::string> worker_ids,
                    std::vector<std::string> datasets, FanoutPolicy fanout)
      : master_(master),
        job_id_(std::move(job_id)),
        worker_ids_(std::move(worker_ids)),
        datasets_(std::move(datasets)),
        fanout_(fanout),
        active_worker_ids_(worker_ids_) {}

  std::string NextSmpcJobId() {
    return job_id_ + "/step" + std::to_string(step_counter_++);
  }

  /// Dispatches one local-run step (`msg_type` is "local_run" or
  /// "local_run_secure") to every active worker according to the fan-out
  /// policy: concurrent delivery over the Master's thread pool, retry with
  /// exponential backoff on transient failures, per-worker deadline, then
  /// quorum evaluation. Returns the surviving workers' transfers in worker
  /// order; updates last_reports()/excluded_workers()/active_workers().
  Result<std::vector<TransferData>> FanOutLocalRun(const char* msg_type,
                                                   const std::string& func,
                                                   const std::string& smpc_job,
                                                   const TransferData& args,
                                                   bool enforce_timeout);

  MasterNode* master_;
  std::string job_id_;
  std::vector<std::string> worker_ids_;
  std::vector<std::string> datasets_;
  FanoutPolicy fanout_;
  std::vector<std::string> active_worker_ids_;
  std::vector<std::string> excluded_workers_;
  std::vector<WorkerRunReport> last_reports_;
  std::map<std::string, WorkerRunReport> cumulative_;
  int step_counter_ = 0;
};

/// \brief The Master node: governs worker communication, tracks dataset
/// availability for algorithm shipping, orchestrates algorithm flows, and
/// merges aggregates. Also hosts a local engine instance (the paper:
/// "it is also possible to perform computations locally as well").
class MasterNode {
 public:
  explicit MasterNode(MasterConfig config = MasterConfig());

  MessageBus& bus() { return bus_; }
  /// Transport carrying session fan-outs and remote-table traffic. Defaults
  /// to the in-process bus; point it at a net::TcpTransport (with a peer per
  /// remote worker) to run the federation across OS processes. Swap only
  /// while no traffic is in flight.
  net::Transport& transport() { return *transport_; }
  void set_transport(net::Transport* transport) {
    transport_ = transport != nullptr ? transport : &bus_;
  }
  smpc::SmpcCluster& smpc() { return smpc_; }
  /// Shared worker pool for session fan-outs; created on first use, sized
  /// for latency-bound dispatch (requests mostly wait on simulated links).
  ThreadPool& pool();
  engine::Database& local_db() { return local_db_; }
  const MasterConfig& config() const { return config_; }
  std::shared_ptr<LocalFunctionRegistry> functions() { return functions_; }

  /// Creates a worker, attaches it to the bus and the SMPC cluster.
  Result<WorkerNode*> AddWorker(const std::string& worker_id);

  /// Declares a worker that runs in another process (an `mip_worker`
  /// daemon). Its datasets enter the availability catalog so sessions can
  /// route to it; the transport must know the peer's address. Remote
  /// workers support the plain aggregation paths — the secure path needs
  /// the in-process SMPC cluster and reports its error if attempted.
  Status AddRemoteWorker(const std::string& worker_id,
                         const std::vector<std::string>& datasets);
  const std::map<std::string, RemoteEndpoint>& remote_workers() const {
    return remote_workers_;
  }

  WorkerNode* GetWorker(const std::string& worker_id);
  size_t num_workers() const {
    return workers_.size() + remote_workers_.size();
  }

  /// Loads a dataset onto a worker and records availability in the catalog.
  Status LoadDataset(const std::string& worker_id,
                     const std::string& dataset_name, engine::Table data);

  /// Workers holding (any of) the requested datasets — the Master's
  /// dataset-availability tracking for efficient algorithm shipping.
  std::vector<std::string> WorkersWithDatasets(
      const std::vector<std::string>& datasets) const;

  /// Opens a session over the workers that hold the requested datasets
  /// (all workers when `datasets` is empty). Generates the globally unique
  /// job id used to index local state and SMPC shares.
  Result<FederationSession> StartSession(
      const std::vector<std::string>& datasets = {});

  /// Builds, on the Master's local engine, a REMOTE table per participating
  /// worker plus a MERGE table over them — the non-secure data-aggregation
  /// machinery. Returns the merge-table name.
  Result<std::string> CreateFederatedView(const std::string& dataset_name);

 private:
  friend class FederationSession;

  MasterConfig config_;
  MessageBus bus_;
  net::Transport* transport_ = &bus_;
  smpc::SmpcCluster smpc_;
  engine::Database local_db_;
  std::shared_ptr<LocalFunctionRegistry> functions_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::map<std::string, RemoteEndpoint> remote_workers_;
  std::map<std::string, std::vector<std::string>> catalog_;  // dataset->workers
  Rng rng_;
  int64_t job_counter_ = 0;
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_MASTER_H_
