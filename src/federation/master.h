#ifndef MIP_FEDERATION_MASTER_H_
#define MIP_FEDERATION_MASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "federation/bus.h"
#include "federation/worker.h"
#include "smpc/cluster.h"

namespace mip::federation {

/// How local results are combined on (or on behalf of) the Master.
enum class AggregationMode {
  /// Remote/merge-table style transfer: local aggregates travel to the
  /// Master in the clear. For non-sensitive data.
  kPlain,
  /// SMPC secure aggregation: workers import secret shares; only the
  /// aggregate (optionally noised) is ever opened.
  kSecure,
};

struct MasterConfig {
  smpc::SmpcConfig smpc;
  /// Link model for reporting simulated inter-hospital latency.
  double link_latency_ms = 5.0;
  double link_bandwidth_mbps = 100.0;
  uint64_t seed = 0xFEDE7A7E5EEDull;
};

class MasterNode;

/// \brief One algorithm execution against a set of datasets: a globally
/// unique job id, the participating workers, and the local-run /
/// aggregate primitives of the paper's Figure 2.
class FederationSession {
 public:
  const std::string& job_id() const { return job_id_; }
  const std::vector<std::string>& worker_ids() const { return worker_ids_; }
  size_t num_workers() const { return worker_ids_.size(); }
  MasterNode& master() { return *master_; }

  /// The dataset filter this session was opened with (workers' local steps
  /// read it from the args transfer under key "datasets" if needed).
  const std::vector<std::string>& datasets() const { return datasets_; }

  /// Runs the named local step on every participating worker, returning
  /// each worker's transfer (plain path).
  Result<std::vector<TransferData>> LocalRun(const std::string& func,
                                             const TransferData& args);

  /// Runs the named local step on every worker and aggregates the
  /// transfers: kPlain sums on the Master; kSecure routes the values
  /// through the SMPC cluster (only shares cross the network) with optional
  /// in-protocol DP noise.
  Result<TransferData> LocalRunAndAggregate(
      const std::string& func, const TransferData& args, AggregationMode mode,
      const smpc::NoiseSpec& noise = smpc::NoiseSpec());

  /// Secure aggregation with a non-sum SMPC op (min/max/product/union) over
  /// a single named vector produced by the local step.
  Result<std::vector<double>> LocalRunSecureOp(const std::string& func,
                                               const TransferData& args,
                                               const std::string& vector_key,
                                               smpc::SmpcOp op);

 private:
  friend class MasterNode;
  FederationSession(MasterNode* master, std::string job_id,
                    std::vector<std::string> worker_ids,
                    std::vector<std::string> datasets)
      : master_(master),
        job_id_(std::move(job_id)),
        worker_ids_(std::move(worker_ids)),
        datasets_(std::move(datasets)) {}

  std::string NextSmpcJobId() {
    return job_id_ + "/step" + std::to_string(step_counter_++);
  }

  MasterNode* master_;
  std::string job_id_;
  std::vector<std::string> worker_ids_;
  std::vector<std::string> datasets_;
  int step_counter_ = 0;
};

/// \brief The Master node: governs worker communication, tracks dataset
/// availability for algorithm shipping, orchestrates algorithm flows, and
/// merges aggregates. Also hosts a local engine instance (the paper:
/// "it is also possible to perform computations locally as well").
class MasterNode {
 public:
  explicit MasterNode(MasterConfig config = MasterConfig());

  MessageBus& bus() { return bus_; }
  smpc::SmpcCluster& smpc() { return smpc_; }
  engine::Database& local_db() { return local_db_; }
  const MasterConfig& config() const { return config_; }
  std::shared_ptr<LocalFunctionRegistry> functions() { return functions_; }

  /// Creates a worker, attaches it to the bus and the SMPC cluster.
  Result<WorkerNode*> AddWorker(const std::string& worker_id);

  WorkerNode* GetWorker(const std::string& worker_id);
  size_t num_workers() const { return workers_.size(); }

  /// Loads a dataset onto a worker and records availability in the catalog.
  Status LoadDataset(const std::string& worker_id,
                     const std::string& dataset_name, engine::Table data);

  /// Workers holding (any of) the requested datasets — the Master's
  /// dataset-availability tracking for efficient algorithm shipping.
  std::vector<std::string> WorkersWithDatasets(
      const std::vector<std::string>& datasets) const;

  /// Opens a session over the workers that hold the requested datasets
  /// (all workers when `datasets` is empty). Generates the globally unique
  /// job id used to index local state and SMPC shares.
  Result<FederationSession> StartSession(
      const std::vector<std::string>& datasets = {});

  /// Builds, on the Master's local engine, a REMOTE table per participating
  /// worker plus a MERGE table over them — the non-secure data-aggregation
  /// machinery. Returns the merge-table name.
  Result<std::string> CreateFederatedView(const std::string& dataset_name);

 private:
  friend class FederationSession;

  MasterConfig config_;
  MessageBus bus_;
  smpc::SmpcCluster smpc_;
  engine::Database local_db_;
  std::shared_ptr<LocalFunctionRegistry> functions_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::map<std::string, std::vector<std::string>> catalog_;  // dataset->workers
  Rng rng_;
  int64_t job_counter_ = 0;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_MASTER_H_
