#include "federation/bus.h"

namespace mip::federation {

Status MessageBus::RegisterEndpoint(const std::string& node_id,
                                    Handler handler) {
  if (endpoints_.count(node_id) > 0) {
    return Status::AlreadyExists("endpoint '" + node_id +
                                 "' already registered");
  }
  endpoints_.emplace(node_id, std::move(handler));
  return Status::OK();
}

Result<std::vector<uint8_t>> MessageBus::Send(Envelope envelope) {
  auto it = endpoints_.find(envelope.to);
  if (it == endpoints_.end()) {
    return Status::NotFound("no endpoint '" + envelope.to + "' on the bus");
  }
  const uint64_t request_bytes = envelope.payload.size();
  stats_.messages += 1;
  stats_.bytes += request_bytes;
  Result<std::vector<uint8_t>> reply = it->second(envelope);
  if (!reply.ok()) return reply;
  stats_.messages += 1;
  stats_.bytes += reply.ValueOrDie().size();
  if (keep_log_) {
    log_.push_back({envelope.from, envelope.to, envelope.type, request_bytes,
                    reply.ValueOrDie().size()});
  }
  return reply;
}

}  // namespace mip::federation
