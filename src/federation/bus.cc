#include "federation/bus.h"

#include "common/stopwatch.h"
#include "federation/fault.h"

namespace mip::federation {

void MessageBus::set_fault_injector(FaultInjector* injector) {
  set_fault_hook(injector);
}

Status MessageBus::RegisterEndpoint(const std::string& node_id,
                                    Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.count(node_id) > 0) {
    return Status::AlreadyExists("endpoint '" + node_id +
                                 "' already registered");
  }
  endpoints_.emplace(node_id, std::move(handler));
  return Status::OK();
}

bool MessageBus::SupportsCodecs(const std::string& peer_id) {
  (void)peer_id;
  std::lock_guard<std::mutex> lock(mu_);
  return codecs_enabled_;
}

void MessageBus::MeterCodec(const std::string& from, const std::string& to,
                            uint64_t raw_bytes, uint64_t wire_bytes) {
  const std::string link = from + "->" + to;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_raw += raw_bytes;
  stats_.bytes_wire += wire_bytes;
  link_stats_[link].bytes_raw += raw_bytes;
  link_stats_[link].bytes_wire += wire_bytes;
}

void MessageBus::set_codecs_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  codecs_enabled_ = enabled;
}

Result<std::vector<uint8_t>> MessageBus::Send(Envelope envelope) {
  const Handler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(envelope.to);
    if (it == endpoints_.end()) {
      return Status::NotFound("no endpoint '" + envelope.to + "' on the bus");
    }
    // Map nodes are stable and registration happens before traffic, so the
    // handler pointer stays valid outside the lock.
    handler = &it->second;
    // Same-build delivery: the handler may answer compressed whenever the
    // bus has codecs on (the TCP transport derives this from the frame
    // version handshake instead).
    envelope.codec_ok = codecs_enabled_;
  }

  const uint64_t request_bytes = envelope.payload.size();
  const std::string link = envelope.from + "->" + envelope.to;

  // Fault injection simulates the wire: the sleep/drop happens before the
  // destination handler runs, outside the bus lock so links overlap.
  if (injector_ != nullptr) {
    Status fault = injector_->BeforeDeliver(envelope);
    if (!fault.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.messages += 1;
      stats_.bytes += request_bytes;
      link_stats_[link].messages += 1;
      link_stats_[link].bytes += request_bytes;
      return fault;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.messages += 1;
    stats_.bytes += request_bytes;
    link_stats_[link].messages += 1;
    link_stats_[link].bytes += request_bytes;
  }

  Stopwatch rtt;
  Result<std::vector<uint8_t>> reply = (*handler)(envelope);
  if (!reply.ok()) return reply;

  const double wall = rtt.ElapsedMillis();
  const uint64_t reply_bytes = reply.ValueOrDie().size();
  const std::string reverse = envelope.to + "->" + envelope.from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.messages += 1;
    stats_.bytes += reply_bytes;
    stats_.round_trips += 1;
    stats_.wall_ms += wall;
    // Measured wall time is charged to the forward link at completion,
    // mirroring the TCP transport's round-trip accounting.
    NetworkStats& fwd = link_stats_[link];
    fwd.round_trips += 1;
    fwd.wall_ms += wall;
    link_stats_[reverse].messages += 1;
    link_stats_[reverse].bytes += reply_bytes;
    if (keep_log_) {
      log_.push_back({envelope.from, envelope.to, envelope.type,
                      request_bytes, reply_bytes});
    }
  }
  return reply;
}

NetworkStats MessageBus::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, NetworkStats> MessageBus::link_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return link_stats_;
}

void MessageBus::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = NetworkStats();
  link_stats_.clear();
}

std::vector<MessageBus::LogEntry> MessageBus::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void MessageBus::ClearLog() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.clear();
}

void MessageBus::set_keep_log(bool keep) {
  std::lock_guard<std::mutex> lock(mu_);
  keep_log_ = keep;
}

}  // namespace mip::federation
