#include "federation/worker_steps.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "engine/column.h"
#include "engine/exec_context.h"

namespace mip::federation {

namespace {

Status RegisterIgnoringDuplicate(LocalFunctionRegistry* registry,
                                 const std::string& name, LocalFn fn) {
  const Status st = registry->Register(name, std::move(fn));
  if (st.code() == StatusCode::kAlreadyExists) return Status::OK();
  return st;
}

Result<TransferData> Echo(WorkerContext&, const TransferData& args) {
  return args;
}

/// Resolves the dataset a step should read: the explicit "dataset" arg when
/// present, otherwise the worker's sole hosted dataset (the FederatedTrainer
/// builds the args transfer itself and cannot inject extra keys).
Result<std::string> ResolveDataset(WorkerContext& ctx,
                                   const TransferData& args) {
  auto explicit_name = args.GetString("dataset");
  if (explicit_name.ok()) return explicit_name;
  if (ctx.datasets().size() == 1) return ctx.datasets().front();
  return Status::InvalidArgument(
      "no 'dataset' arg and worker '" + ctx.worker_id() + "' hosts " +
      std::to_string(ctx.datasets().size()) + " datasets");
}

Result<TransferData> Sleep(WorkerContext&, const TransferData& args) {
  MIP_ASSIGN_OR_RETURN(const double ms, args.GetScalar("ms"));
  if (ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
  }
  TransferData out;
  out.PutScalar("ms", ms);
  return out;
}

Result<TransferData> Moments(WorkerContext& ctx, const TransferData& args) {
  MIP_ASSIGN_OR_RETURN(const std::string dataset, ResolveDataset(ctx, args));
  MIP_ASSIGN_OR_RETURN(const std::string column, args.GetString("column"));
  MIP_ASSIGN_OR_RETURN(const engine::Table t, ctx.db().GetTable(dataset));
  MIP_ASSIGN_OR_RETURN(const engine::Column* col, t.ColumnByName(column));
  // Per-morsel partial moments merged in morsel order: the same sums at any
  // thread count (morsel boundaries depend only on the exec context).
  const engine::ExecContext& exec = ctx.exec();
  struct Partial {
    double sum = 0.0, sum_sq = 0.0, n = 0.0;
  };
  std::vector<Partial> parts(exec.NumMorsels(col->length()));
  exec.ForEachMorsel(
      col->length(), [&](size_t morsel, size_t begin, size_t end) {
        Partial& p = parts[morsel];
        for (size_t i = begin; i < end; ++i) {
          if (!col->IsValid(i)) continue;
          const double v = col->AsDoubleAt(i);
          p.sum += v;
          p.sum_sq += v * v;
          p.n += 1.0;
        }
      });
  double sum = 0.0, sum_sq = 0.0, n = 0.0;
  for (const Partial& p : parts) {
    sum += p.sum;
    sum_sq += p.sum_sq;
    n += p.n;
  }
  TransferData out;
  out.PutScalar("sum", sum);
  out.PutScalar("sum_sq", sum_sq);
  out.PutScalar("n", n);
  return out;
}

Result<TransferData> LinregGrad(WorkerContext& ctx, const TransferData& args) {
  MIP_ASSIGN_OR_RETURN(const std::vector<double> w, args.GetVector("weights"));
  MIP_ASSIGN_OR_RETURN(const std::string dataset, ResolveDataset(ctx, args));
  MIP_ASSIGN_OR_RETURN(const engine::Table t, ctx.db().GetTable(dataset));
  if (t.num_columns() != w.size() + 1) {
    return Status::InvalidArgument(
        "linreg.grad: dataset " + dataset + " has " +
        std::to_string(t.num_columns()) + " columns; expected " +
        std::to_string(w.size()) + " features + y");
  }
  const size_t p = w.size();
  const engine::ExecContext& exec = ctx.exec();
  struct Partial {
    std::vector<double> grad;
    double loss = 0.0;
  };
  std::vector<Partial> parts(exec.NumMorsels(t.num_rows()));
  exec.ForEachMorsel(
      t.num_rows(), [&](size_t morsel, size_t begin, size_t end) {
        Partial& part = parts[morsel];
        part.grad.assign(p, 0.0);
        for (size_t r = begin; r < end; ++r) {
          double pred = 0.0;
          for (size_t j = 0; j < p; ++j) {
            pred += w[j] * t.column(j).AsDoubleAt(r);
          }
          const double resid = pred - t.column(p).AsDoubleAt(r);
          for (size_t j = 0; j < p; ++j) {
            part.grad[j] += resid * t.column(j).AsDoubleAt(r);
          }
          part.loss += 0.5 * resid * resid;
        }
      });
  std::vector<double> grad(p, 0.0);
  double loss = 0.0;
  for (const Partial& part : parts) {
    for (size_t j = 0; j < p; ++j) grad[j] += part.grad[j];
    loss += part.loss;
  }
  TransferData out;
  out.PutVector("grad", std::move(grad));
  out.PutScalar("loss", loss);
  out.PutScalar("n", static_cast<double>(t.num_rows()));
  return out;
}

}  // namespace

Status RegisterPortableSteps(LocalFunctionRegistry* registry) {
  MIP_RETURN_NOT_OK(RegisterIgnoringDuplicate(registry, "mip.echo", Echo));
  MIP_RETURN_NOT_OK(RegisterIgnoringDuplicate(registry, "mip.sleep", Sleep));
  MIP_RETURN_NOT_OK(
      RegisterIgnoringDuplicate(registry, "stats.moments", Moments));
  MIP_RETURN_NOT_OK(
      RegisterIgnoringDuplicate(registry, "linreg.grad", LinregGrad));
  return Status::OK();
}

engine::Table MakeSyntheticLinregTable(uint64_t seed, size_t rows,
                                       const std::vector<double>& true_weights,
                                       double noise_sigma) {
  const size_t p = true_weights.size();
  Rng rng(seed);
  std::vector<std::vector<double>> xs(p, std::vector<double>());
  std::vector<double> ys;
  for (size_t j = 0; j < p; ++j) xs[j].reserve(rows);
  ys.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    double y = 0.0;
    for (size_t j = 0; j < p; ++j) {
      const double x = rng.NextGaussian();
      xs[j].push_back(x);
      y += true_weights[j] * x;
    }
    ys.push_back(y + noise_sigma * rng.NextGaussian());
  }
  engine::Schema schema;
  std::vector<engine::Column> columns;
  for (size_t j = 0; j < p; ++j) {
    // Feature names are fixed by convention (x0..x{p-1}, then y); collisions
    // are impossible, so AddField cannot fail here.
    (void)schema.AddField(
        {"x" + std::to_string(j), engine::DataType::kFloat64});
    columns.push_back(engine::Column::FromDoubles(std::move(xs[j])));
  }
  (void)schema.AddField({"y", engine::DataType::kFloat64});
  columns.push_back(engine::Column::FromDoubles(std::move(ys)));
  auto table = engine::Table::Make(std::move(schema), std::move(columns));
  return table.MoveValueUnsafe();
}

}  // namespace mip::federation
