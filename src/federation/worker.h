#ifndef MIP_FEDERATION_WORKER_H_
#define MIP_FEDERATION_WORKER_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/database.h"
#include "federation/bus.h"
#include "federation/transfer.h"
#include "smpc/cluster.h"

namespace mip::federation {

class WorkerNode;

/// \brief Execution context handed to a local computation step running on a
/// Worker: the in-database engine, per-job persistent state (the "pointer to
/// the actual data" of the paper — local results stay on the worker, indexed
/// by job id), and a deterministic RNG.
class WorkerContext {
 public:
  WorkerContext(WorkerNode* worker, std::string job_id)
      : worker_(worker), job_id_(std::move(job_id)) {}

  engine::Database& db();
  /// Per-job state surviving across steps of one algorithm execution.
  TransferData& state();
  Rng& rng();
  const std::string& worker_id() const;
  const std::string& job_id() const { return job_id_; }

  /// Datasets hosted on this worker (CDE-harmonized table names).
  const std::vector<std::string>& datasets() const;

  /// Execution context for the worker's local compute: the engine database's
  /// context when one was installed, ExecContext::Default() otherwise.
  /// Algorithm steps use this to morsel-parallelize their sufficient-
  /// statistics loops with the same determinism guarantee as the engine.
  const engine::ExecContext& exec();

 private:
  WorkerNode* worker_;
  std::string job_id_;
};

/// \brief A local computation step: procedural code the algorithm developer
/// writes, shipped to workers and executed next to the data.
using LocalFn =
    std::function<Result<TransferData>(WorkerContext&, const TransferData&)>;

/// \brief Registry of local computation steps, shared by all workers of a
/// federation (MIP ships the same algorithm code to every node).
class LocalFunctionRegistry {
 public:
  Status Register(const std::string& name, LocalFn fn);
  Result<const LocalFn*> Find(const std::string& name) const;
  bool Has(const std::string& name) const { return fns_.count(name) > 0; }
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, LocalFn> fns_;
};

/// \brief A Worker node: hosts sensitive hospital data inside its own
/// Database and executes local computation steps against it. Results leave
/// the node only as aggregates (plain path) or as secret shares imported
/// into the SMPC cluster (secure path).
class WorkerNode {
 public:
  WorkerNode(std::string id, std::shared_ptr<LocalFunctionRegistry> functions,
             uint64_t seed);

  const std::string& id() const { return id_; }
  engine::Database& db() { return db_; }
  Rng& rng() { return rng_; }

  /// Loads a harmonized dataset into the worker's engine under
  /// `dataset_name`.
  Status LoadDataset(const std::string& dataset_name, engine::Table data);
  const std::vector<std::string>& datasets() const { return datasets_; }
  bool HasDataset(const std::string& dataset_name) const;

  /// Attaches a disk-backed table store (storage::StorageEngine) to the
  /// worker's database and advertises every disk table as a hosted dataset
  /// — the persistent alternative to LoadDataset. The storage must outlive
  /// the worker.
  Status AttachDiskStorage(engine::TableStorage* storage);

  /// Registers this worker's request handler on a transport (the in-process
  /// bus, or a listening TcpTransport when the worker runs as its own
  /// process). Message types: "local_run" (returns the transfer),
  /// "local_run_secure" (imports the transfer into the SMPC cluster; only
  /// the shape goes back over the wire), "fetch_table" (serves REMOTE-table
  /// scans), "get_schema" / "get_stats" (planner probes: schema and table
  /// statistics without materializing), "run_sql" (merge-table pushdown),
  /// "run_sql_bound" (broadcast joins: registers a shipped temp table, runs
  /// the SQL, drops the temp).
  Status AttachToBus(net::Transport* transport);

  /// Wires the worker to the SMPC cluster for secure imports.
  void SetSmpcCluster(smpc::SmpcCluster* cluster) { smpc_ = cluster; }

  /// Executes a registered local step directly (in-process path; the bus
  /// handler funnels here).
  Result<TransferData> RunLocal(const std::string& func,
                                const std::string& job_id,
                                const TransferData& args);

  TransferData& JobState(const std::string& job_id) {
    return job_state_[job_id];
  }
  void ClearJobState(const std::string& job_id) { job_state_.erase(job_id); }

 private:
  Result<std::vector<uint8_t>> HandleEnvelope(const Envelope& envelope);

  std::string id_;
  /// Transports run handlers concurrently (the Master fans out from a
  /// thread pool), so envelope types that mutate the catalog —
  /// run_sql_bound's temp-table register/drop, run_sql DDL — take this
  /// exclusively; read-only serving (fetch_table, get_schema, get_stats,
  /// run_sql SELECTs) shares it.
  std::shared_mutex db_mu_;
  engine::Database db_;
  std::shared_ptr<LocalFunctionRegistry> functions_;
  Rng rng_;
  std::vector<std::string> datasets_;
  std::map<std::string, TransferData> job_state_;
  smpc::SmpcCluster* smpc_ = nullptr;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_WORKER_H_
