#ifndef MIP_FEDERATION_TRANSFER_H_
#define MIP_FEDERATION_TRANSFER_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "engine/table.h"
#include "stats/matrix.h"

namespace mip::federation {

/// Magic prefix of the compressed (v2) TransferData layout. The v1 layout
/// starts with the string-map count — never remotely this large — so
/// Deserialize can sniff the format from the first four bytes.
inline constexpr uint32_t kTransferWireMagic = 0x32585443u;  // "CTX2"
inline constexpr uint8_t kTransferWireVersion = 2;

/// \brief The typed payload a local computation step "shares to global" (and
/// a global step shares back to locals) — the `transfer` objects of the
/// paper's Figure 2.
///
/// A TransferData is a named bag of scalars, vectors, matrices and tables.
/// The numeric parts are exactly what the SMPC engine can aggregate
/// (vectors); tables ride only on the non-secure merge-table path.
class TransferData {
 public:
  TransferData() = default;

  void PutScalar(const std::string& key, double v) { scalars_[key] = v; }
  void PutString(const std::string& key, std::string v) {
    strings_[key] = std::move(v);
  }
  void PutStringList(const std::string& key, std::vector<std::string> v) {
    string_lists_[key] = std::move(v);
  }
  void PutVector(const std::string& key, std::vector<double> v) {
    vectors_[key] = std::move(v);
  }
  void PutMatrix(const std::string& key, stats::Matrix m) {
    matrices_[key] = std::move(m);
  }
  void PutTable(const std::string& key, engine::Table t) {
    tables_[key] = std::move(t);
  }

  bool HasScalar(const std::string& key) const {
    return scalars_.count(key) > 0;
  }
  bool HasString(const std::string& key) const {
    return strings_.count(key) > 0;
  }
  bool HasVector(const std::string& key) const {
    return vectors_.count(key) > 0;
  }
  bool HasMatrix(const std::string& key) const {
    return matrices_.count(key) > 0;
  }
  bool HasTable(const std::string& key) const { return tables_.count(key) > 0; }

  Result<double> GetScalar(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<std::vector<std::string>> GetStringList(const std::string& key) const;
  /// Missing string list -> empty list (common for optional filters).
  std::vector<std::string> GetStringListOrEmpty(const std::string& key) const;
  Result<std::vector<double>> GetVector(const std::string& key) const;
  Result<stats::Matrix> GetMatrix(const std::string& key) const;
  Result<engine::Table> GetTable(const std::string& key) const;

  const std::map<std::string, double>& scalars() const { return scalars_; }
  const std::map<std::string, std::vector<double>>& vectors() const {
    return vectors_;
  }
  const std::map<std::string, stats::Matrix>& matrices() const {
    return matrices_;
  }
  const std::map<std::string, engine::Table>& tables() const {
    return tables_;
  }

  bool HasTables() const { return !tables_.empty(); }

  /// Serializes the full payload (the byte count is what the federation
  /// cost model charges the link) in the legacy fixed-width (v1) layout.
  void Serialize(BufferWriter* w) const;
  /// Codec-aware serializer: with `codecs` true, vectors/matrices/tables go
  /// through the engine::Codec blocks inside a magic-tagged v2 container —
  /// committed only when measurably smaller than v1, so the wire size never
  /// exceeds the raw size. With false, identical to Serialize(w).
  void Serialize(BufferWriter* w, bool codecs) const;
  /// Accepts both the v1 and the v2 layout (sniffed from the first bytes).
  static Result<TransferData> Deserialize(BufferReader* r);
  size_t SerializedBytes() const;
  /// Exact v1 byte size, computed without serializing — the "raw" side of
  /// the bytes_raw/bytes_wire compression ledger.
  size_t RawSerializedBytes() const;

  /// Elementwise sum of the numeric parts of several transfers (all must
  /// share identical key sets and shapes); tables are concatenated.
  /// This is the Master-side merge used by the plain aggregation path.
  static Result<TransferData> SumMerge(const std::vector<TransferData>& parts);

  /// Flattens every scalar / vector / matrix (keys in sorted order) into one
  /// double vector — the layout imported into the SMPC cluster.
  std::vector<double> FlattenNumeric() const;

  /// Rebuilds a transfer with this one's shape from a flat vector produced
  /// by FlattenNumeric on an identically-shaped transfer.
  Result<TransferData> UnflattenNumeric(const std::vector<double>& flat) const;

 private:
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::vector<std::string>> string_lists_;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::vector<double>> vectors_;
  std::map<std::string, stats::Matrix> matrices_;
  std::map<std::string, engine::Table> tables_;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_TRANSFER_H_
