#ifndef MIP_FEDERATION_GATEWAY_H_
#define MIP_FEDERATION_GATEWAY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "engine/database.h"
#include "net/transport.h"

namespace mip::smpc {
class SmpcCluster;
}

namespace mip::federation {

/// \brief LRU result cache for the gateway, keyed by (optimized plan
/// fingerprint, catalog version) with single-flight computation.
///
/// Keying off the *optimized plan* instead of the SQL text means two
/// spellings of the same question share an entry, while any semantic
/// difference (predicate, projection, limit, source) diverges. The catalog
/// version in the key makes invalidation implicit: every DDL/DML bumps it,
/// so stale entries simply stop matching and age out of the LRU.
///
/// Single-flight: concurrent callers of one key elect a leader that computes
/// while the rest wait; the result is computed once. A failing leader does
/// not poison the key — one waiter takes over and retries.
class ResultCache {
 public:
  /// (PlanFingerprint, Database::catalog_version).
  using Key = std::pair<uint64_t, uint64_t>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;     ///< leader computations started
    uint64_t coalesced = 0;  ///< waiters that rode a leader's computation
    uint64_t evictions = 0;  ///< entries dropped by the capacity bound
  };

  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached table for `key`, or runs `compute` — once across
  /// all concurrent callers of the same key — and caches its result.
  /// `compute` runs without the cache lock held.
  Result<engine::Table> GetOrCompute(
      const Key& key, const std::function<Result<engine::Table>()>& compute);

  void Clear();
  size_t size() const;
  Stats stats() const;

 private:
  struct InFlight {
    bool done = false;
    Status status;
    engine::Table table;
  };
  using LruList = std::list<std::pair<Key, engine::Table>>;

  size_t capacity_;
  mutable std::mutex mu_;
  /// Signaled when any in-flight computation completes.
  std::condition_variable cv_;
  LruList lru_;  ///< most recently used first
  std::map<Key, LruList::iterator> index_;
  std::map<Key, std::shared_ptr<InFlight>> inflight_;
  Stats stats_;
};

struct GatewayOptions {
  /// Endpoint id the gateway serves under (Envelope::to routing key).
  std::string node_id = "gateway";
  /// Global admission cap: requests in flight beyond this are shed with a
  /// typed BUSY (kResourceExhausted) reply instead of queuing unboundedly.
  size_t max_in_flight = 64;
  /// Per-tenant quota (tenant = Envelope::from): one noisy dashboard cannot
  /// starve the others even below the global cap.
  size_t per_tenant_in_flight = 16;
  /// Result cache entries (0 disables caching).
  size_t cache_capacity = 128;
  bool cache_enabled = true;
};

/// Message types the gateway endpoint understands.
inline constexpr char kGatewayRunSql[] = "run_sql";
inline constexpr char kGatewayMetrics[] = "metrics";

/// \brief Multi-tenant SQL serving front end over a (typically federated)
/// Database: admission control, per-tenant quotas, a fingerprint-keyed
/// result cache, and a /metrics-style observability surface.
///
/// Protocol ("run_sql" mirrors the worker endpoint, so any existing client
/// works): payload = WriteString(sql); reply = SerializeTable(result).
/// Shed requests answer Status kResourceExhausted ("BUSY") — retryable by
/// client backoff but deliberately NOT auto-retried by the federation
/// fan-out, because hammering an overloaded node makes it worse. "metrics"
/// replies with the MetricsText() bytes.
///
/// Thread safety: handlers run concurrently (the epoll server's pool). The
/// hosted Database is guarded by a shared_mutex — exclusive for planning
/// and DDL/DML (planning mutates the remote-schema cache), shared for plan
/// execution, which only reads the catalog while remote round trips happen.
class Gateway {
 public:
  explicit Gateway(engine::Database* db,
                   GatewayOptions options = GatewayOptions());

  /// Registers this gateway as endpoint options().node_id on `transport`
  /// (works for both the in-process bus and a TCP transport).
  Status Attach(net::Transport* transport);

  /// Optional: the transport whose link_histograms() feed MetricsText's
  /// per-link section (usually the transport carrying worker traffic).
  void set_link_source(const net::Transport* transport) {
    link_source_ = transport;
  }

  /// Optional: the SMPC cluster whose per-op latency histograms and
  /// transfer counters feed MetricsText's "# smpc" section.
  void set_smpc_source(const smpc::SmpcCluster* cluster) {
    smpc_source_ = cluster;
  }

  /// The endpoint handler: admission -> quota -> cache -> execute.
  Result<std::vector<uint8_t>> Handle(const net::Envelope& envelope);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed_capacity = 0;  ///< BUSY: global in-flight cap hit
    uint64_t shed_quota = 0;     ///< BUSY: per-tenant quota hit
    uint64_t served = 0;         ///< requests answered successfully
    uint64_t errors = 0;         ///< requests answered with an error status
  };
  Stats stats() const;
  ResultCache& cache() { return cache_; }
  const GatewayOptions& options() const { return options_; }

  /// Plain-text metrics: admission and cache counters, log-linear latency
  /// quantiles (p50/p99/p999) per tenant and per link, and — when the
  /// hosted database has disk storage attached — the storage layer's
  /// lifetime counters (segments scanned/pruned, index probes/hits,
  /// flushes, compactions, WAL replays).
  std::string MetricsText() const;

 private:
  Result<std::vector<uint8_t>> RunSql(const net::Envelope& envelope);

  engine::Database* db_;
  GatewayOptions options_;
  ResultCache cache_;
  const net::Transport* link_source_ = nullptr;
  const smpc::SmpcCluster* smpc_source_ = nullptr;

  /// Catalog lock; see the class comment for the sharing discipline.
  std::shared_mutex db_mu_;

  mutable std::mutex mu_;  ///< admission counters, stats, tenant tables
  size_t in_flight_ = 0;
  std::map<std::string, size_t> tenant_in_flight_;
  std::map<std::string, LatencyHistogram> tenant_hist_;
  Stats stats_;
};

}  // namespace mip::federation

#endif  // MIP_FEDERATION_GATEWAY_H_
