#ifndef MIP_ENGINE_ROW_INTERPRETER_H_
#define MIP_ENGINE_ROW_INTERPRETER_H_

#include "common/result.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::engine {

class FunctionRegistry;

/// \brief Tuple-at-a-time expression evaluation (the textbook Volcano-style
/// baseline).
///
/// Every call boxes operands into Value and walks the expression tree, which
/// is exactly the overhead vectorized and JIT-fused execution eliminate —
/// this function exists as the baseline for experiment E6 (bench_engine) and
/// as the semantic reference the fast paths are property-tested against.
Result<Value> EvalRow(const Expr& expr, const Table& table, size_t row,
                      const FunctionRegistry* registry = nullptr);

/// \brief Evaluates one built-in scalar function on boxed arguments
/// (shared by the row interpreter and the vectorized evaluator's generic
/// fallback). `lower_name` must already be lower-cased.
Result<Value> EvalScalarBuiltin(const std::string& lower_name,
                                const std::vector<Value>& argv);

}  // namespace mip::engine

#endif  // MIP_ENGINE_ROW_INTERPRETER_H_
