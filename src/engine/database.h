#ifndef MIP_ENGINE_DATABASE_H_
#define MIP_ENGINE_DATABASE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/function_registry.h"
#include "engine/sql_ast.h"
#include "engine/table.h"

namespace mip::engine {

/// \brief An in-memory analytics database instance: catalog + SQL executor +
/// UDF registry.
///
/// Every federation Worker hosts one Database (the MonetDB stand-in). It
/// supports base tables, MonetDB-style REMOTE tables (scans served by
/// another node through a pluggable fetcher) and MERGE tables
/// (non-materialized UNION ALL views over parts) — the two features MIP's
/// non-secure aggregation path is built on.
class Database {
 public:
  explicit Database(std::string name = "mipdb") : name_(std::move(name)) {}

  /// Non-copyable (owns a function registry with closures), movable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const std::string& name() const { return name_; }

  /// Resolves REMOTE table scans: (location, remote_table_name) -> Table.
  /// The federation layer installs a fetcher that routes through the message
  /// bus (and its cost model).
  using RemoteFetcher = std::function<Result<Table>(
      const std::string& location, const std::string& remote_name)>;
  void SetRemoteFetcher(RemoteFetcher fetcher) {
    fetcher_ = std::move(fetcher);
  }

  /// Runs a SQL statement ON the remote node and returns its result —
  /// enables aggregate pushdown through REMOTE tables (only the partial
  /// aggregate crosses the network instead of the full relation).
  using RemoteQueryRunner = std::function<Result<Table>(
      const std::string& location, const std::string& sql)>;
  void SetRemoteQueryRunner(RemoteQueryRunner runner) {
    query_runner_ = std::move(runner);
  }

  /// Execution context for query operators (morsel parallelism). nullptr
  /// (the default) resolves to ExecContext::Default(), i.e. the process-wide
  /// MIP_THREADS-sized pool; pass &ExecContext::Serial() to force
  /// single-threaded execution. The context must outlive the database.
  void set_exec_context(const ExecContext* exec) { exec_context_ = exec; }
  const ExecContext* exec_context() const { return exec_context_; }

  /// Disables merge-table aggregate pushdown (ablation switch for the E5
  /// benchmark; on by default).
  void set_aggregate_pushdown(bool enabled) {
    aggregate_pushdown_ = enabled;
  }
  bool aggregate_pushdown() const { return aggregate_pushdown_; }

  /// Creates an empty base table.
  Status CreateTable(const std::string& table_name, Schema schema);

  /// Registers (or replaces) a fully built base table — the ETL entry point.
  Status PutTable(const std::string& table_name, Table table);

  Status DropTable(const std::string& table_name);
  bool HasTable(const std::string& table_name) const;
  std::vector<std::string> TableNames() const;

  /// Materializes the named table. Base tables are returned as stored;
  /// remote tables are fetched; merge tables concatenate their parts
  /// (conceptually non-materialized — the executor only calls this when it
  /// actually scans).
  Result<Table> GetTable(const std::string& table_name) const;

  /// Schema without materializing (remote tables are fetched once and the
  /// schema cached is NOT implemented; merge uses first part).
  Result<Schema> GetSchema(const std::string& table_name) const;

  /// Executes one SQL statement. DDL/DML return an empty table.
  Result<Table> ExecuteSql(const std::string& sql);

  /// Executes a parsed SELECT.
  Result<Table> ExecuteSelect(const SelectStmt& stmt);

  FunctionRegistry* functions() { return &functions_; }
  const FunctionRegistry* functions() const { return &functions_; }

 private:
  struct Entry {
    enum class Kind { kBase, kRemote, kMerge };
    Kind kind = Kind::kBase;
    Table table;              // kBase
    std::string location;     // kRemote
    std::string remote_name;  // kRemote
    std::vector<std::string> parts;  // kMerge
  };

  Result<Table> ResolveTableRef(const TableRef& ref);

  /// Merge-table aggregate pushdown: computes per-part partial aggregates
  /// (remotely when a query runner is installed) and combines them. Returns
  /// NotImplemented when the query shape does not decompose; the caller
  /// falls back to materialization.
  Result<Table> TryMergeAggregatePushdown(const SelectStmt& stmt);

  std::string name_;
  std::map<std::string, Entry> tables_;
  FunctionRegistry functions_;
  RemoteFetcher fetcher_;
  RemoteQueryRunner query_runner_;
  bool aggregate_pushdown_ = true;
  const ExecContext* exec_context_ = nullptr;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_DATABASE_H_
