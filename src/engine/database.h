#ifndef MIP_ENGINE_DATABASE_H_
#define MIP_ENGINE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/function_registry.h"
#include "engine/plan.h"
#include "engine/sql_ast.h"
#include "engine/storage_iface.h"
#include "engine/table.h"

namespace mip::engine {

/// \brief An in-memory analytics database instance: catalog + SQL executor +
/// UDF registry.
///
/// Every federation Worker hosts one Database (the MonetDB stand-in). It
/// supports base tables, MonetDB-style REMOTE tables (scans served by
/// another node through a pluggable fetcher) and MERGE tables
/// (non-materialized UNION ALL views over parts) — the two features MIP's
/// non-secure aggregation path is built on.
///
/// SELECTs run through a three-stage pipeline: PlanSelect builds a logical
/// plan, OptimizePlan rewrites it (predicate/projection/limit pushdown into
/// remote scans, merge-aggregate decomposition), and ExecutePlan walks the
/// result with the vectorized operators. `EXPLAIN <select>` renders the
/// optimized plan instead of executing it. The Database itself is the
/// planner's catalog (PlanCatalog).
class Database : public PlanCatalog {
 public:
  explicit Database(std::string name = "mipdb");

  /// Non-copyable (owns a function registry with closures), movable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const std::string& name() const { return name_; }

  /// Resolves REMOTE table scans: (location, remote_table_name) -> Table.
  /// The federation layer installs a fetcher that routes through the message
  /// bus (and its cost model).
  using RemoteFetcher = std::function<Result<Table>(
      const std::string& location, const std::string& remote_name)>;
  void SetRemoteFetcher(RemoteFetcher fetcher) {
    fetcher_ = std::move(fetcher);
  }

  /// Runs a SQL statement ON the remote node and returns its result — the
  /// transport for every pushdown (filters, pruned projections, LIMITs and
  /// partial aggregates all ship as SQL text instead of whole tables).
  using RemoteQueryRunner = std::function<Result<Table>(
      const std::string& location, const std::string& sql)>;
  void SetRemoteQueryRunner(RemoteQueryRunner runner) {
    query_runner_ = std::move(runner);
  }

  /// Fetches just the schema of a remote table (location, remote_name) ->
  /// Schema. Lets the planner prune remote projections without ever
  /// materializing the relation; results are cached per remote table. When
  /// unset (or when the peer fails the request) GetSchema falls back to a
  /// full fetch, like the pre-plan-layer interpreter.
  using RemoteSchemaFetcher = std::function<Result<Schema>(
      const std::string& location, const std::string& remote_name)>;
  void SetRemoteSchemaFetcher(RemoteSchemaFetcher fetcher) {
    schema_fetcher_ = std::move(fetcher);
  }

  /// Fetches table statistics (row count, per-column NDV sketches and
  /// ranges) for a remote table without materializing it — the stats layer
  /// the join cost model runs on. Results are cached next to the remote
  /// schema cache and invalidated by catalog version. When unset (or when
  /// the peer fails the request) GetTableStats answers NotImplemented and
  /// the cost model degrades to the pre-cost-model plan (collect) — never
  /// to a wrong result.
  using RemoteStatsFetcher = std::function<Result<TableStats>(
      const std::string& location, const std::string& remote_name)>;
  void SetRemoteStatsFetcher(RemoteStatsFetcher fetcher) {
    stats_fetcher_ = std::move(fetcher);
  }

  /// Runs SQL on a remote node with a bound temp table shipped alongside —
  /// the broadcast-join transport. The peer registers `bound` under
  /// `temp_name`, runs `sql`, drops the temp, and returns the result.
  /// Without one the optimizer never picks broadcast.
  using RemoteBoundRunner = std::function<Result<Table>(
      const std::string& location, const std::string& temp_name,
      const std::string& sql, const Table& bound)>;
  void SetRemoteBoundRunner(RemoteBoundRunner runner) {
    bound_runner_ = std::move(runner);
  }

  /// Execution context for query operators (morsel parallelism). nullptr
  /// (the default) resolves to ExecContext::Default(), i.e. the process-wide
  /// MIP_THREADS-sized pool; pass &ExecContext::Serial() to force
  /// single-threaded execution. The context must outlive the database.
  void set_exec_context(const ExecContext* exec) { exec_context_ = exec; }
  const ExecContext* exec_context() const { return exec_context_; }

  /// Disables merge-table aggregate pushdown (ablation switch for the E5
  /// benchmark; on by default). This is the only optimizer rule that is not
  /// bit-exact (it reassociates float sums), hence its own switch.
  void set_aggregate_pushdown(bool enabled) {
    aggregate_pushdown_ = enabled;
  }
  bool aggregate_pushdown() const { return aggregate_pushdown_; }

  /// Master switch for the plan optimizer (default on; the environment
  /// variable MIP_OPTIMIZER=0 flips the default off). With the optimizer off,
  /// SELECTs execute the naive plan: whole-table fetches, local filtering —
  /// byte-identical results, more bytes on the wire.
  void set_optimizer_enabled(bool enabled) { optimizer_enabled_ = enabled; }
  bool optimizer_enabled() const { return optimizer_enabled_; }

  /// Ablation switch for the Scan-vs-IndexScan access-path rule (default
  /// on; MIP_INDEX_SCAN=0 flips the default off). Off = disk scans always
  /// take the zone-map path — byte-identical results, more segments
  /// decoded; the E18 benchmark measures the two paths against each other.
  void set_index_scan(bool enabled) { index_scan_ = enabled; }
  bool index_scan() const { return index_scan_; }

  /// Ablation switch for the join cost model (default on; MIP_COST_MODEL=0
  /// flips the default off). Off = no stats are fetched at plan time and
  /// every join collects — byte-identical results, the pre-cost-model wire
  /// profile; the E19 benchmark measures the model against the ablation.
  void set_cost_model(bool enabled) { cost_model_ = enabled; }
  bool cost_model() const { return cost_model_; }

  /// Forces every join's physical strategy (a JoinStrategy value; -1 = let
  /// the cost model choose). MIP_JOIN_STRATEGY=broadcast|collect sets the
  /// default; benchmarks use it to measure both sides of the crossover.
  void set_force_join_strategy(int strategy) {
    force_join_strategy_ = strategy;
  }
  int force_join_strategy() const { return force_join_strategy_; }

  /// Lifetime join counters (planned / broadcast / collect / build rows /
  /// probe rows), surfaced by the gateway's /metrics. Never null.
  JoinCounters* join_counters() const { return join_counters_.get(); }

  /// Attaches a disk-resident table store (storage::StorageEngine behind
  /// the TableStorage interface) and registers every table it holds as a
  /// TableKind::kDisk catalog entry next to the in-memory ones. Non-owning:
  /// the storage must outlive the database. Fails on a name collision with
  /// an existing entry. Bumps the catalog version.
  Status AttachStorage(TableStorage* storage);
  TableStorage* storage() const { return storage_; }

  /// Appends rows to a disk table through the attached storage (creating
  /// the table and its catalog entry when new) and bumps the catalog
  /// version — the ingest path tools and tests use for bulk loads; SQL
  /// INSERT into a disk entry routes here too.
  Status IngestDisk(const std::string& table_name, const Table& rows);

  /// Creates an empty base table.
  Status CreateTable(const std::string& table_name, Schema schema);

  /// Registers (or replaces) a fully built base table — the ETL entry point.
  Status PutTable(const std::string& table_name, Table table);

  Status DropTable(const std::string& table_name);
  bool HasTable(const std::string& table_name) const;
  std::vector<std::string> TableNames() const;

  /// Materializes the named table. Base tables are returned as stored;
  /// remote tables are fetched; merge tables concatenate their parts
  /// (conceptually non-materialized — the executor only calls this when it
  /// actually scans).
  Result<Table> GetTable(const std::string& table_name) const;

  /// Schema without materializing. Remote schemas come from the schema
  /// fetcher when installed (cached thereafter), else from a one-off full
  /// fetch; merge uses its first part.
  Result<Schema> GetSchema(const std::string& table_name) const;

  /// Executes one SQL statement. DDL/DML return an empty table; EXPLAIN
  /// returns a one-column table ("plan") with one row per plan line.
  Result<Table> ExecuteSql(const std::string& sql);

  /// Executes a parsed SELECT through the plan/optimize/execute pipeline.
  Result<Table> ExecuteSelect(const SelectStmt& stmt);

  /// Monotonic counter bumped by every catalog or data mutation (DDL,
  /// INSERT, PutTable/DropTable). Paired with PlanFingerprint it keys the
  /// gateway's result cache: any mutation changes the version, so stale
  /// cached results simply stop matching — no explicit invalidation walk.
  uint64_t catalog_version() const { return catalog_version_; }
  /// Out-of-band invalidation hook for data changed behind the catalog's
  /// back (e.g. a remote worker reloading its dataset).
  void BumpCatalogVersion() { ++catalog_version_; }

  /// Parses `sql` and, when it is a plain SELECT, returns its optimized
  /// plan — the gateway's cache key (PlanFingerprint) and execution handle.
  /// Any other statement kind returns nullptr with OK status (the caller
  /// routes it through ExecuteSql). Planning may populate the remote schema
  /// cache: callers coordinating concurrent access need their exclusive
  /// lock here, while ExecutePlannedSelect only reads.
  Result<PlanPtr> TryPlanSelectSql(const std::string& sql);

  /// Executes a plan built by TryPlanSelectSql / BuildOptimizedPlan.
  /// Read-only on the catalog (remote round trips happen through the
  /// installed fetcher/runner), so concurrent executions may share it.
  Result<Table> ExecutePlannedSelect(const PlanNode& plan) const;

  /// Renders the optimized logical plan for a SELECT as a text tree.
  Result<std::string> ExplainSelect(const SelectStmt& stmt);

  // PlanCatalog implementation (the planner's view of this catalog).
  Result<TableInfo> Describe(const std::string& table_name) const override;
  Result<ScanStats> DiskPrunePreview(const std::string& table_name,
                                     const Expr* prune_filter) const override;
  Result<IndexPreview> DiskIndexPreview(const std::string& table_name,
                                        const Expr* prune_filter) const override;
  Result<Schema> TableSchema(const std::string& table_name) const override {
    return GetSchema(table_name);
  }
  /// Table statistics for the cost model: base tables are profiled in
  /// process (and cached), disk tables fold their segment footers, merge
  /// tables merge their parts' stats, remote tables go through the stats
  /// fetcher. Cached per table, keyed by catalog version — any mutation
  /// simply stops matching, like the gateway's result cache.
  Result<TableStats> GetTableStats(
      const std::string& table_name) const override;
  Result<Table> RunTableFunction(
      const std::string& func_name,
      const std::vector<Value>& args) const override;

  FunctionRegistry* functions() { return &functions_; }
  const FunctionRegistry* functions() const { return &functions_; }

 private:
  struct Entry {
    enum class Kind { kBase, kRemote, kMerge, kDisk };
    Kind kind = Kind::kBase;
    Table table;              // kBase
    std::string location;     // kRemote
    std::string remote_name;  // kRemote
    std::vector<std::string> parts;  // kMerge
  };

  /// Plan -> optimized plan, honoring the optimizer/pushdown switches.
  Result<PlanPtr> BuildOptimizedPlan(const SelectStmt& stmt);

  std::string name_;
  std::map<std::string, Entry> tables_;
  FunctionRegistry functions_;
  RemoteFetcher fetcher_;
  RemoteQueryRunner query_runner_;
  RemoteSchemaFetcher schema_fetcher_;
  RemoteStatsFetcher stats_fetcher_;
  RemoteBoundRunner bound_runner_;
  TableStorage* storage_ = nullptr;  // non-owning; see AttachStorage
  bool aggregate_pushdown_ = true;
  bool optimizer_enabled_ = true;
  bool index_scan_ = true;
  bool cost_model_ = true;
  int force_join_strategy_ = -1;
  uint64_t catalog_version_ = 1;
  const ExecContext* exec_context_ = nullptr;
  /// Behind a pointer (atomics are immovable) so Database stays movable.
  std::unique_ptr<JoinCounters> join_counters_;
  /// Remote-table schemas learned via the schema fetcher (or a full fetch),
  /// keyed by lower-cased local name. Invalidated on PutTable/DropTable.
  mutable std::map<std::string, Schema> remote_schema_cache_;
  /// Table statistics keyed by lower-cased name, tagged with the catalog
  /// version they were computed under; a stale tag is a miss. Unlike the
  /// schema cache (whose fills callers serialize with their planning lock),
  /// this one carries its own lock: workers fill it while planning pushed
  /// join SQL, where no caller lock exists. Behind a pointer so Database
  /// stays movable.
  mutable std::map<std::string, std::pair<uint64_t, TableStats>> stats_cache_;
  std::unique_ptr<std::mutex> stats_mu_;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_DATABASE_H_
